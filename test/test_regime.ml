(* Regime epochs: plan-derived topology segmentation, online/offline
   equivalence of the epoch-indexed spec monitors across the registry,
   and the during-split campaign gates. *)

module Regime = Sim.Regime
module Faults = Sim.Faults
module Epoch = Graybox.Tme_spec.Epoch
module Registry = Graybox.Registry
module S = Tme.Scenarios
module Campaign = Chaos.Campaign

(* plan values for the syntactic derivation only — never executed *)
let split ?(mode = Faults.Lossy) ~from_t ~until_t groups : (unit, unit) Faults.event =
  Faults.at from_t (Faults.Split { groups; from_t; until_t; mode })

let crash ~at ~until_t proc : (unit, unit) Faults.event =
  Faults.at at
    (Faults.Crash { proc = Faults.Proc proc; until_t; lose_deliveries = false })

let topo_label t = Printf.sprintf "e%d:%s@%d" t.Regime.epoch (Regime.groups_label t) t.Regime.since

let timeline_label tl =
  String.concat " " (List.map topo_label (Regime.epochs tl))

(* ------------------------------------------------------------------ *)
(* Segmentation                                                        *)

let test_trivial () =
  let tl = Regime.trivial ~n:4 in
  Alcotest.(check bool) "trivial is trivial" false (Regime.nontrivial tl);
  Alcotest.(check string) "one global epoch" "e0:{0,1,2,3}@0" (timeline_label tl);
  let empty = Regime.of_plan ~n:4 ([] : (unit, unit) Faults.plan) in
  Alcotest.(check string) "empty plan = trivial" (timeline_label tl)
    (timeline_label empty)

let test_split_segmentation () =
  let tl = Regime.of_plan ~n:4 [ split ~from_t:100 ~until_t:200 [ [ 0; 1 ] ] ] in
  Alcotest.(check bool) "nontrivial" true (Regime.nontrivial tl);
  Alcotest.(check string) "three epochs"
    "e0:{0,1,2,3}@0 e1:{0,1}|{2,3}@100 e2:{0,1,2,3}@200" (timeline_label tl);
  (* [at] keys on the epoch boundaries *)
  List.iter
    (fun (t, e) ->
      Alcotest.(check int) (Printf.sprintf "at %d" t) e (Regime.at tl t).Regime.epoch)
    [ (0, 0); (99, 0); (100, 1); (199, 1); (200, 2); (10_000, 2) ]

let test_degenerate_plans () =
  let trivial = timeline_label (Regime.trivial ~n:4) in
  let zero_width =
    Regime.of_plan ~n:4 [ split ~from_t:100 ~until_t:100 [ [ 0; 1 ] ] ]
  in
  Alcotest.(check string) "zero-width window ignored" trivial
    (timeline_label zero_width);
  let no_cut =
    Regime.of_plan ~n:4 [ split ~from_t:100 ~until_t:200 [ [ 3; 1; 0; 2 ] ] ]
  in
  Alcotest.(check string) "non-partitioning groups ignored" trivial
    (timeline_label no_cut)

let test_adjacent_merge () =
  let tl =
    Regime.of_plan ~n:4
      [ split ~from_t:100 ~until_t:200 [ [ 0; 1 ] ];
        split ~from_t:200 ~until_t:300 [ [ 1; 0 ] ] ]
  in
  Alcotest.(check string) "back-to-back identical splits merge"
    "e0:{0,1,2,3}@0 e1:{0,1}|{2,3}@100 e2:{0,1,2,3}@300" (timeline_label tl)

let test_overlap_refines () =
  let tl =
    Regime.of_plan ~n:4
      [ split ~from_t:100 ~until_t:300 [ [ 0; 1 ] ];
        split ~from_t:200 ~until_t:400 [ [ 0; 2 ] ] ]
  in
  Alcotest.(check string) "overlap is the pairwise refinement"
    "e0:{0,1,2,3}@0 e1:{0,1}|{2,3}@100 e2:{0}|{1}|{2}|{3}@200 \
     e3:{0,2}|{1,3}@300 e4:{0,1,2,3}@400"
    (timeline_label tl)

let test_crash_live () =
  let tl = Regime.of_plan ~n:3 [ crash ~at:50 ~until_t:120 1 ] in
  Alcotest.(check bool) "crash window is nontrivial" true (Regime.nontrivial tl);
  let during = Regime.at tl 80 and after = Regime.at tl 200 in
  Alcotest.(check bool) "dead during window" false during.Regime.live.(1);
  Alcotest.(check bool) "alive after" true after.Regime.live.(1)

let test_group_ops () =
  let tl = Regime.of_plan ~n:5 [ split ~from_t:10 ~until_t:20 [ [ 0; 3 ] ] ] in
  let topo = Regime.at tl 15 in
  Alcotest.(check (list int)) "group of 3" [ 0; 3 ] (Regime.group_members topo 3);
  Alcotest.(check (list int)) "remainder group" [ 1; 2; 4 ]
    (Regime.group_members topo 2);
  Alcotest.(check bool) "same group" true (Regime.same_group topo 0 3);
  Alcotest.(check bool) "cross group" false (Regime.same_group topo 0 4);
  Alcotest.(check int) "group_of out of range" (-1) (Regime.group_of topo 9)

let test_cursor_agrees_with_at () =
  let tl =
    Regime.of_plan ~n:4
      [ split ~from_t:100 ~until_t:300 [ [ 0; 1 ] ];
        split ~from_t:200 ~until_t:400 [ [ 0; 2 ] ] ]
  in
  let c = Regime.cursor tl in
  for t = 0 to 500 do
    Alcotest.(check int)
      (Printf.sprintf "advance %d" t)
      (Regime.at tl t).Regime.epoch (Regime.advance c t).Regime.epoch
  done;
  (* earlier times read the current epoch, not a rewind *)
  Alcotest.(check int) "monotone" (Regime.at tl 500).Regime.epoch
    (Regime.advance c 0).Regime.epoch

(* ------------------------------------------------------------------ *)
(* Online == offline equivalence                                       *)

(* Every registered protocol, both heal modes, >= 10 seeds: the
   streaming epoch monitors (Epoch.feed) and the offline recomputation
   over the recorded trace (Epoch.of_trace) must produce the same
   report — verdict for verdict, reason for reason.  Odd seeds run
   unwrapped so the streaming early-exit (synthetic tail feed) is on
   the tested path. *)
let epoch_report ~streaming proto ~seed ~mode ~wrapper =
  let faults =
    [ S.Split { groups = [ [ 0; 1 ] ]; from_t = 300; until_t = 600; mode } ]
  in
  let r = S.run proto ~n:4 ~seed ~steps:1200 ~streaming ~wrapper ~faults in
  match r.S.epoch_spec with
  | Some ep -> ep
  | None -> Alcotest.fail "split plan produced no epoch report"

let test_online_offline_equivalence () =
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun mode ->
          for seed = 0 to 9 do
            let wrapper =
              if seed mod 2 = 0 then S.wrapped ~delta:e.Registry.default_delta ()
              else Graybox.Harness.Off
            in
            let off =
              epoch_report ~streaming:false e.Registry.proto ~seed ~mode ~wrapper
            in
            let on =
              epoch_report ~streaming:true e.Registry.proto ~seed ~mode ~wrapper
            in
            let label =
              Printf.sprintf "%s seed %d %s" e.Registry.name seed
                (match mode with
                 | Faults.Lossy -> "lossy"
                 | Faults.Buffered -> "buffered")
            in
            Alcotest.(check string)
              (label ^ " rendering")
              (Format.asprintf "%a" Epoch.pp off)
              (Format.asprintf "%a" Epoch.pp on);
            Alcotest.(check bool) (label ^ " structurally") true (off = on)
          done)
        [ Faults.Lossy; Faults.Buffered ])
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* During-split campaign gates                                         *)

(* The tolerant variant must pass its weak-ME1 gate with nonzero
   during-split grants; the never-heals ablation must be caught; and
   the whole report — per-epoch verdicts included — must be invariant
   in the worker count. *)
let during_cfg ~jobs =
  Campaign.config ~seeds:8 ~budget:4 ~n:4 ~steps:1200
    ~protocols:[ "ra-lease"; "ra-lease-stale" ]
    ~shrink:false ~jobs ~partitions:true ()

let find_cell report ~protocol ~wrapped ~during =
  match
    List.find_opt
      (fun (c : Campaign.cell) ->
        c.Campaign.cell_protocol = protocol
        && c.Campaign.cell_wrapped = wrapped
        && (c.Campaign.cell_during <> None) = during)
      report.Campaign.cells
  with
  | Some c -> c
  | None -> Alcotest.fail (Printf.sprintf "no %s cell (wrapped=%b)" protocol wrapped)

let test_during_gates () =
  let report = Campaign.run (during_cfg ~jobs:2) in
  Alcotest.(check bool) "campaign gate" true report.Campaign.gate_ok;
  Alcotest.(check bool) "during table present" true
    (Campaign.has_during_cells report);
  let lease = find_cell report ~protocol:"ra-lease" ~wrapped:true ~during:true in
  Alcotest.(check bool) "ra-lease during gate" true lease.Campaign.cell_ok;
  let grants =
    List.fold_left
      (fun acc (r : Campaign.row) ->
        match r.Campaign.row_epoch with
        | Some (_, entries) -> acc + entries
        | None -> acc)
      0 lease.Campaign.rows
  in
  Alcotest.(check bool) "serves during the split" true (grants > 0);
  List.iter
    (fun (r : Campaign.row) ->
      match r.Campaign.row_epoch with
      | Some (safe, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "ra-lease epoch-safe (seed %d)" r.Campaign.row_seed)
          true safe
      | None -> Alcotest.fail "during cell row without epoch verdict")
    lease.Campaign.rows;
  let stale =
    find_cell report ~protocol:"ra-lease-stale" ~wrapped:true ~during:true
  in
  Alcotest.(check bool) "ablation cell gated as failure" true
    (stale.Campaign.cell_expect = Campaign.Expect_failure);
  Alcotest.(check bool) "ablation caught" true stale.Campaign.cell_ok;
  Alcotest.(check bool) "some stale run is epoch-unsafe" true
    (List.exists
       (fun (r : Campaign.row) ->
         match r.Campaign.row_epoch with Some (safe, _) -> not safe | None -> false)
       stale.Campaign.rows);
  (* non-during cells never carry epoch verdicts (byte-identity) *)
  List.iter
    (fun (c : Campaign.cell) ->
      if c.Campaign.cell_during = None then
        List.iter
          (fun (r : Campaign.row) ->
            Alcotest.(check bool) "no epoch verdict outside during cells" true
              (r.Campaign.row_epoch = None))
          c.Campaign.rows)
    report.Campaign.cells

let test_during_jobs_invariant () =
  let render jobs =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (during_cfg ~jobs)))
  in
  Alcotest.(check bool) "jobs=1 == jobs=4" true (render 1 = render 4)

let () =
  Alcotest.run "regime"
    [ ( "segmentation",
        [ Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "split" `Quick test_split_segmentation;
          Alcotest.test_case "degenerate" `Quick test_degenerate_plans;
          Alcotest.test_case "adjacent-merge" `Quick test_adjacent_merge;
          Alcotest.test_case "overlap-refines" `Quick test_overlap_refines;
          Alcotest.test_case "crash-live" `Quick test_crash_live;
          Alcotest.test_case "group-ops" `Quick test_group_ops;
          Alcotest.test_case "cursor" `Quick test_cursor_agrees_with_at ] );
      ( "equivalence",
        [ Alcotest.test_case "online==offline" `Slow
            test_online_offline_equivalence ] );
      ( "during-gates",
        [ Alcotest.test_case "tolerant-passes-ablation-caught" `Slow
            test_during_gates;
          Alcotest.test_case "jobs-invariant" `Slow test_during_jobs_invariant ] )
    ]
