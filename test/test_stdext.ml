(* Unit and property tests for the stdext substrate: RNG determinism,
   FIFO queue semantics, pairing-heap ordering, table rendering, and
   summary statistics. *)

open Stdext

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (x >= -5 && x <= 5)
  done

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_rng_copy () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b)

let test_rng_chance_extremes () =
  let rng = Rng.create 9 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_rng_pick_weighted () =
  let rng = Rng.create 13 in
  for _ = 1 to 200 do
    let x = Rng.pick_weighted rng [ ("a", 0); ("b", 5); ("c", 0) ] in
    Alcotest.(check string) "only positive weight picked" "b" x
  done

let test_rng_pick_weighted_all_zero () =
  let rng = Rng.create 13 in
  Alcotest.check_raises "no positive weight"
    (Invalid_argument "Rng.pick_weighted: no positive weight") (fun () ->
      ignore (Rng.pick_weighted rng [ ("a", 0) ]))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17 in
  let xs = Array.init 20 Fun.id in
  let ys = Array.copy xs in
  Rng.shuffle rng ys;
  let sorted = Array.copy ys in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" xs sorted

let prop_rng_float_bounds =
  qtest "Rng.float in [0,bound)" QCheck2.Gen.(pair small_int (1 -- 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.float rng (float_of_int bound) in
      x >= 0.0 && x < float_of_int bound)

(* ------------------------------------------------------------------ *)
(* Fqueue                                                              *)

let test_fqueue_fifo_order () =
  let q = List.fold_left (fun q x -> Fqueue.push x q) Fqueue.empty [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (Fqueue.to_list q)

let test_fqueue_pop () =
  let q = Fqueue.of_list [ 1; 2 ] in
  (match Fqueue.pop q with
   | Some (1, q') ->
     Alcotest.(check (list int)) "rest" [ 2 ] (Fqueue.to_list q')
   | _ -> Alcotest.fail "expected Some (1, _)");
  Alcotest.(check bool) "empty pop" true (Fqueue.pop Fqueue.empty = None)

let test_fqueue_peek () =
  Alcotest.(check (option int)) "peek" (Some 1)
    (Fqueue.peek (Fqueue.of_list [ 1; 2 ]));
  Alcotest.(check (option int)) "peek empty" None (Fqueue.peek Fqueue.empty)

let test_fqueue_peek_after_push () =
  (* the back list must be consulted when the front is empty *)
  let q = Fqueue.push 9 Fqueue.empty in
  Alcotest.(check (option int)) "peek finds back" (Some 9) (Fqueue.peek q)

let test_fqueue_length () =
  let q = Fqueue.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "length" 3 (Fqueue.length q);
  match Fqueue.pop q with
  | Some (_, q') -> Alcotest.(check int) "after pop" 2 (Fqueue.length q')
  | None -> Alcotest.fail "pop failed"

let test_fqueue_remove_at () =
  let q = Fqueue.of_list [ 10; 20; 30 ] in
  (match Fqueue.remove_at 1 q with
   | Some (20, q') ->
     Alcotest.(check (list int)) "removed middle" [ 10; 30 ]
       (Fqueue.to_list q')
   | _ -> Alcotest.fail "expected removal of 20");
  Alcotest.(check bool) "out of range" true (Fqueue.remove_at 5 q = None);
  Alcotest.(check bool) "negative" true (Fqueue.remove_at (-1) q = None)

let test_fqueue_insert_at () =
  let q = Fqueue.of_list [ 1; 3 ] in
  Alcotest.(check (list int)) "insert middle" [ 1; 2; 3 ]
    (Fqueue.to_list (Fqueue.insert_at 1 2 q));
  Alcotest.(check (list int)) "insert past end" [ 1; 3; 9 ]
    (Fqueue.to_list (Fqueue.insert_at 10 9 q));
  Alcotest.(check (list int)) "insert front" [ 0; 1; 3 ]
    (Fqueue.to_list (Fqueue.insert_at 0 0 q))

let test_fqueue_map_filter () =
  let q = Fqueue.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ]
    (Fqueue.to_list (Fqueue.map (fun x -> 2 * x) q));
  Alcotest.(check (list int)) "filter" [ 2; 4 ]
    (Fqueue.to_list (Fqueue.filter (fun x -> x mod 2 = 0) q))

let prop_fqueue_push_pop_roundtrip =
  qtest "Fqueue push/pop preserves order" QCheck2.Gen.(list small_int)
    (fun xs ->
      let q = List.fold_left (fun q x -> Fqueue.push x q) Fqueue.empty xs in
      let rec drain q acc =
        match Fqueue.pop q with
        | None -> List.rev acc
        | Some (x, q') -> drain q' (x :: acc)
      in
      drain q [] = xs)

let prop_fqueue_mixed_ops_length =
  qtest "Fqueue length consistent under mixed ops"
    QCheck2.Gen.(list (pair bool small_int))
    (fun ops ->
      let q, expected =
        List.fold_left
          (fun (q, len) (is_push, x) ->
            if is_push then (Fqueue.push x q, len + 1)
            else
              match Fqueue.pop q with
              | None -> (q, len)
              | Some (_, q') -> (q', len - 1))
          (Fqueue.empty, 0) ops
      in
      Fqueue.length q = expected)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_orders () =
  let q =
    Pqueue.of_list ~leq:( <= ) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ]
  in
  Alcotest.(check (list (pair int string)))
    "ascending" [ (1, "a"); (2, "b"); (3, "c"); (5, "e") ] (Pqueue.to_list q)

let test_pqueue_pop_min () =
  let q = Pqueue.of_list ~leq:( <= ) [ (2, ()); (1, ()) ] in
  match Pqueue.pop_min q with
  | Some (1, (), q') ->
    Alcotest.(check int) "size" 1 (Pqueue.size q');
    Alcotest.(check bool) "peek" true (Pqueue.peek_min q' = Some (2, ()))
  | _ -> Alcotest.fail "expected min 1"

let test_pqueue_empty () =
  let q = Pqueue.empty ~leq:( <= ) in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop_min q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek_min q = None)

let prop_pqueue_sorted_drain =
  qtest "Pqueue drains in sorted order" QCheck2.Gen.(list small_int)
    (fun xs ->
      let q =
        List.fold_left (fun q x -> Pqueue.insert x () q)
          (Pqueue.empty ~leq:( <= ))
          xs
      in
      List.map fst (Pqueue.to_list q) = List.sort compare xs)

let prop_pqueue_size =
  qtest "Pqueue size tracks inserts" QCheck2.Gen.(list small_int)
    (fun xs ->
      let q =
        List.fold_left (fun q x -> Pqueue.insert x () q)
          (Pqueue.empty ~leq:( <= ))
          xs
      in
      Pqueue.size q = List.length xs)

(* ------------------------------------------------------------------ *)
(* Tabular and Stats                                                   *)

let test_tabular_alignment () =
  let t = Tabular.create [ "name"; "value" ] in
  Tabular.add_row t [ "x"; "1" ];
  Tabular.add_row t [ "long-name"; "22" ];
  let rendered = Tabular.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
   | header :: _ ->
     Alcotest.(check bool) "header present" true
       (String.length header >= String.length "name  value")
   | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "contains row" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'l') lines)

let test_tabular_short_rows_padded () =
  let t = Tabular.create [ "a"; "b"; "c" ] in
  Tabular.add_row t [ "1" ];
  let rendered = Tabular.render t in
  Alcotest.(check bool) "renders without exception" true
    (String.length rendered > 0)

let test_tabular_cells () =
  Alcotest.(check string) "int" "42" (Tabular.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Tabular.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Tabular.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "bool" "yes" (Tabular.cell_bool true);
  Alcotest.(check string) "bool no" "no" (Tabular.cell_bool false)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  Alcotest.(check feq) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.mean []))

let test_stats_median () =
  Alcotest.(check feq) "odd" 2.0 (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check feq) "even (lower)" 2.0 (Stats.median [ 1.; 2.; 3.; 4. ])

let test_stats_stddev () =
  Alcotest.(check feq) "constant" 0.0 (Stats.stddev [ 5.; 5.; 5. ]);
  Alcotest.(check feq) "known" 2.0 (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check feq) "p50" 50.0 (Stats.percentile 50. xs);
  Alcotest.(check feq) "p99" 99.0 (Stats.percentile 99. xs);
  Alcotest.(check feq) "p100" 100.0 (Stats.percentile 100. xs)

let test_stats_min_max () =
  Alcotest.(check (pair feq feq)) "min max" (1., 9.)
    (Stats.min_max [ 3.; 1.; 9.; 4. ])

let prop_stats_mean_bounds =
  qtest "mean within min/max"
    QCheck2.Gen.(list_size (1 -- 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let vec_of_list xs =
  let v = Vec.create () in
  List.iter (Vec.push v) xs;
  v

let test_stats_percentiles_empty () =
  Alcotest.(check bool) "all nan" true
    (List.for_all Float.is_nan
       (Stats.percentiles (Vec.create ()) [ 50.; 99.; 99.9 ]));
  Alcotest.(check (list feq)) "no percentiles asked" []
    (Stats.percentiles (vec_of_list [ 1.; 2. ]) [])

let test_stats_percentiles_singleton () =
  Alcotest.(check (list feq)) "every percentile is the sample"
    [ 7.; 7.; 7.; 7. ]
    (Stats.percentiles (vec_of_list [ 7. ]) [ 0.; 50.; 99.9; 100. ])

let test_stats_percentiles_ties () =
  (* tie-heavy sample: nearest-rank must land inside the tied run, and
     the p999 of a mostly-constant sample is the rare outlier only when
     the sample is large enough to resolve it *)
  let heavy = List.init 999 (fun _ -> 5.) @ [ 100. ] in
  Alcotest.(check (list feq)) "ties" [ 5.; 5.; 100.; 100. ]
    (Stats.percentiles (vec_of_list heavy) [ 50.; 99.; 99.91; 100. ]);
  let small = [ 5.; 5.; 5.; 5.; 100. ] in
  Alcotest.(check (list feq)) "small sample tail" [ 5.; 100.; 100. ]
    (Stats.percentiles (vec_of_list small) [ 50.; 99.; 99.9 ])

let test_stats_percentile_supported () =
  (* the load bench's suppression rule: a pX.Y needs >= 2 samples at or
     above it.  Integer-exact at the p99.9/2000 boundary, where the
     float form [2000. *. (1. -. 0.999)] lands just under 2. *)
  Alcotest.(check bool) "p99.9 at 2000 samples" true
    (Stats.percentile_supported ~samples:2000 99.9);
  Alcotest.(check bool) "p99.9 at 1999 samples" false
    (Stats.percentile_supported ~samples:1999 99.9);
  Alcotest.(check bool) "p99 at 200 samples" true
    (Stats.percentile_supported ~samples:200 99.);
  Alcotest.(check bool) "p99 at 199 samples" false
    (Stats.percentile_supported ~samples:199 99.);
  Alcotest.(check bool) "p50 at 4 samples" true
    (Stats.percentile_supported ~samples:4 50.);
  Alcotest.(check bool) "p50 at 3 samples" false
    (Stats.percentile_supported ~samples:3 50.)

let test_stats_suppress_unsupported () =
  Alcotest.(check (list (option feq))) "mixed support"
    [ Some 1.; None ]
    (Stats.suppress_unsupported ~samples:100 [ 50.; 99.9 ] [ 1.; 2. ]);
  Alcotest.(check (list (option feq))) "nan suppressed regardless"
    [ None ]
    (Stats.suppress_unsupported ~samples:100 [ 50. ] [ nan ])

let prop_stats_percentiles_agree =
  (* one sort for many percentiles must agree value-for-value with the
     list-based single-percentile call (chaos campaign reports rely on
     this to keep goldens stable across the retrofit) *)
  qtest "percentiles = map percentile"
    QCheck2.Gen.(
      pair
        (list_size (1 -- 60) (float_bound_inclusive 100.))
        (list_size (0 -- 6) (float_bound_inclusive 100.)))
    (fun (xs, ps) ->
      Stats.percentiles (vec_of_list xs) ps
      = List.map (fun p -> Stats.percentile p xs) ps)

(* ------------------------------------------------------------------ *)
(* Fenwick                                                             *)

let test_fenwick_basics () =
  let t = Fenwick.create 5 in
  Alcotest.(check int) "length" 5 (Fenwick.length t);
  Alcotest.(check int) "fresh total" 0 (Fenwick.total t);
  Fenwick.set t 0 2;
  Fenwick.set t 3 1;
  Fenwick.add t 3 2;
  Alcotest.(check int) "get" 3 (Fenwick.get t 3);
  Alcotest.(check int) "total" 5 (Fenwick.total t);
  Alcotest.(check int) "prefix 0" 0 (Fenwick.prefix t 0);
  Alcotest.(check int) "prefix mid" 2 (Fenwick.prefix t 3);
  Alcotest.(check int) "prefix all" 5 (Fenwick.prefix t 5);
  (* weight units 0,1 live in slot 0; units 2,3,4 in slot 3 *)
  Alcotest.(check (list int)) "select walk" [ 0; 0; 3; 3; 3 ]
    (List.init 5 (Fenwick.select t));
  Alcotest.check_raises "select out of range"
    (Invalid_argument "Fenwick.select: rank out of range") (fun () ->
      ignore (Fenwick.select t 5));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Fenwick.add: negative weight") (fun () ->
      Fenwick.add t 0 (-3))

let prop_fenwick_matches_array_model =
  (* random set/add sequences against a plain int array: get, total,
     every prefix, and a full select walk must agree with the model at
     every step *)
  qtest "fenwick = array model" ~count:100
    QCheck2.Gen.(
      pair (1 -- 12) (list_size (0 -- 60) (triple bool (0 -- 11) (0 -- 5))))
    (fun (n, ops) ->
      let t = Fenwick.create n in
      let model = Array.make n 0 in
      List.for_all
        (fun (is_set, i, v) ->
          let i = i mod n in
          if is_set then begin
            Fenwick.set t i v;
            model.(i) <- v
          end
          else begin
            Fenwick.add t i v;
            model.(i) <- model.(i) + v
          end;
          let total = Array.fold_left ( + ) 0 model in
          let prefix i = Array.fold_left ( + ) 0 (Array.sub model 0 i) in
          let select k =
            (* first slot whose cumulative weight exceeds k *)
            let rec go i acc =
              if acc + model.(i) > k then i else go (i + 1) (acc + model.(i))
            in
            go 0 0
          in
          Fenwick.total t = total
          && List.for_all (fun i -> Fenwick.get t i = model.(i))
               (List.init n Fun.id)
          && List.for_all (fun i -> Fenwick.prefix t i = prefix i)
               (List.init (n + 1) Fun.id)
          && List.for_all (fun k -> Fenwick.select t k = select k)
               (List.init total Fun.id))
        ops)

(* ------------------------------------------------------------------ *)
(* Oset                                                                *)

let test_oset_basics () =
  let s = Oset.of_list [ 7; 3; 11; 3; 5 ] in
  Alcotest.(check int) "cardinal dedups" 4 (Oset.cardinal s);
  Alcotest.(check (list int)) "elements ascending" [ 3; 5; 7; 11 ]
    (Oset.elements s);
  Alcotest.(check int) "nth" 7 (Oset.nth s 2);
  Alcotest.(check int) "count_below" 2 (Oset.count_below s 6);
  Alcotest.(check int) "count_range" 2 (Oset.count_range s ~lo:5 ~hi:11);
  Alcotest.(check (list int)) "fold_range ascending" [ 5; 7 ]
    (List.rev (Oset.fold_range ~lo:4 ~hi:8 (fun x acc -> x :: acc) s []));
  Alcotest.(check bool) "mem" true (Oset.mem 5 s);
  Alcotest.(check bool) "remove" false (Oset.mem 5 (Oset.remove 5 s));
  Alcotest.(check int) "persistent" 4 (Oset.cardinal s);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Oset.nth: rank out of range") (fun () ->
      ignore (Oset.nth s 4))

let prop_oset_matches_sorted_list_model =
  (* random add/remove sequences against a sorted dedup'd list model:
     membership, rank, select, range counts, and range folds must all
     agree — these are exactly the queries the network's live-channel
     index answers during scheduling *)
  qtest "oset = sorted list model" ~count:150
    QCheck2.Gen.(list_size (0 -- 80) (pair bool (0 -- 30)))
    (fun ops ->
      let s, model =
        List.fold_left
          (fun (s, m) (ins, x) ->
            if ins then (Oset.add x s, List.sort_uniq compare (x :: m))
            else (Oset.remove x s, List.filter (( <> ) x) m))
          (Oset.empty, []) ops
      in
      let len = List.length model in
      Oset.cardinal s = len
      && Oset.elements s = model
      && List.for_all (fun k -> Oset.nth s k = List.nth model k)
           (List.init len Fun.id)
      && List.for_all
           (fun x ->
             Oset.mem x s = List.mem x model
             && Oset.count_below s x
                = List.length (List.filter (fun y -> y < x) model))
           (List.init 32 Fun.id)
      && List.for_all
           (fun lo ->
             let hi = lo + 7 in
             let expect = List.filter (fun y -> lo <= y && y < hi) model in
             Oset.count_range s ~lo ~hi = List.length expect
             && List.rev (Oset.fold_range ~lo ~hi (fun x acc -> x :: acc) s [])
                = expect)
           (List.init 28 Fun.id))

let prop_oset_union =
  qtest "union = list union" ~count:150
    QCheck2.Gen.(pair (list_size (0 -- 40) (0 -- 50)) (list_size (0 -- 40) (0 -- 50)))
    (fun (a, b) ->
      Oset.elements (Oset.union (Oset.of_list a) (Oset.of_list b))
      = List.sort_uniq compare (a @ b))

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * 3)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "first" 0 (Vec.get v 0);
  Alcotest.(check int) "middle" 150 (Vec.get v 50);
  Alcotest.(check int) "last" 297 (Vec.get v 99)

let test_vec_to_list_order () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "push order" [ "a"; "b"; "c" ] (Vec.to_list v)

let test_vec_out_of_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get past end"
    (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let prop_vec_grows_like_list =
  (* pushes survive the internal doublings: a Vec fed any sequence
     reads back exactly as the list of its pushes *)
  qtest "to_list = pushes" QCheck2.Gen.(list_size (0 -- 600) int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && List.for_all2 (fun i x -> Vec.get v i = x)
           (List.init (List.length xs) Fun.id)
           xs)

(* ------------------------------------------------------------------ *)
(* Parray                                                              *)

let test_parray_basics () =
  let a = Parray.init 4 (fun i -> i * 10) in
  Alcotest.(check int) "length" 4 (Parray.length a);
  Alcotest.(check (list int)) "init" [ 0; 10; 20; 30 ] (Parray.to_list a);
  let b = Parray.set a 2 99 in
  Alcotest.(check int) "new version" 99 (Parray.get b 2);
  Alcotest.(check int) "old version unchanged" 20 (Parray.get a 2);
  Alcotest.(check (list int)) "foldi order" [ 30; 99; 10; 0 ]
    (Parray.foldi (fun _ acc x -> x :: acc) [] b)

let test_parray_set_same_element_is_noop () =
  let a = Parray.make 3 "x" in
  Alcotest.(check bool) "physically equal" true (Parray.set a 1 "x" == a)

let prop_parray_versions_survive_rerooting =
  (* apply a random write sequence, keep every intermediate version,
     then read them back newest-first and oldest-first: reads reroot
     the backing array, and no version may be disturbed by it *)
  qtest "all versions readable in any order"
    QCheck2.Gen.(list_size (1 -- 40) (pair (0 -- 4) (0 -- 9)))
    (fun writes ->
      let model v = List.init 5 (Array.get v) in
      let p0 = Parray.make 5 0 in
      let versions, _ =
        List.fold_left
          (fun (acc, (p, m)) (i, x) ->
            let p = Parray.set p i x in
            let m = Array.copy m in
            m.(i) <- x;
            ((p, model m) :: acc, (p, m)))
          ([ (p0, List.init 5 (fun _ -> 0)) ], (p0, Array.make 5 0))
          writes
      in
      let ok (p, expected) = Parray.to_list p = expected in
      List.for_all ok versions && List.for_all ok (List.rev versions))

(* ------------------------------------------------------------------ *)
(* Blockfile                                                           *)

let with_blockfile f =
  let t = Blockfile.create ~dir:(Filename.get_temp_dir_name ()) ~prefix:"t" in
  Fun.protect ~finally:(fun () -> Blockfile.remove t) (fun () -> f t)

let test_blockfile_roundtrip () =
  with_blockfile (fun t ->
      let a = [| 1; -2; max_int; min_int; 0; 42 |] in
      let off1 = Blockfile.append t a ~off:0 ~len:6 in
      let off2 = Blockfile.append t a ~off:2 ~len:3 in
      Alcotest.(check int) "first offset" 0 off1;
      Alcotest.(check int) "second offset" 6 off2;
      Alcotest.(check int) "words" 9 (Blockfile.words t);
      let r = Blockfile.reader t in
      Fun.protect
        ~finally:(fun () -> Blockfile.close_reader r)
        (fun () ->
          let buf = Array.make 9 0 in
          Blockfile.pread r ~woff:0 buf ~off:0 ~len:9;
          Alcotest.(check (array int))
            "all words, extremes included"
            [| 1; -2; max_int; min_int; 0; 42; max_int; min_int; 0 |]
            buf;
          (* positional re-read of an interior slice *)
          let mid = Array.make 2 0 in
          Blockfile.pread r ~woff:2 mid ~off:0 ~len:2;
          Alcotest.(check (array int)) "interior slice" [| max_int; min_int |] mid))

let test_blockfile_reader_sees_later_appends () =
  (* the spill path opens readers lazily and keeps them across later
     flushes: a reader must see words appended after it was opened *)
  with_blockfile (fun t ->
      ignore (Blockfile.append t [| 10; 11 |] ~off:0 ~len:2);
      let r = Blockfile.reader t in
      Fun.protect
        ~finally:(fun () -> Blockfile.close_reader r)
        (fun () ->
          ignore (Blockfile.append t [| 20; 21; 22 |] ~off:0 ~len:3);
          let buf = Array.make 3 0 in
          Blockfile.pread r ~woff:2 buf ~off:0 ~len:3;
          Alcotest.(check (array int)) "write-through" [| 20; 21; 22 |] buf))

let test_blockfile_records () =
  with_blockfile (fun t ->
      ignore (Blockfile.append_record t [| 5; 6; 7 |] ~off:0 ~len:3);
      ignore (Blockfile.append_record t [||] ~off:0 ~len:0);
      ignore (Blockfile.append_record t [| 9 |] ~off:0 ~len:1);
      let r = Blockfile.reader t in
      Fun.protect
        ~finally:(fun () -> Blockfile.close_reader r)
        (fun () ->
          let got = ref [] in
          Blockfile.iter_records r (fun buf len ->
              got := Array.to_list (Array.sub buf 0 len) :: !got);
          Alcotest.(check (list (list int)))
            "records in order" [ [ 5; 6; 7 ]; []; [ 9 ] ] (List.rev !got)))

let test_blockfile_remove_idempotent () =
  let t = Blockfile.create ~dir:(Filename.get_temp_dir_name ()) ~prefix:"t" in
  let p = Blockfile.path t in
  Alcotest.(check bool) "file exists" true (Sys.file_exists p);
  Blockfile.remove t;
  Blockfile.remove t;
  Alcotest.(check bool) "file gone" false (Sys.file_exists p)

let test_blockfile_bad_ranges () =
  with_blockfile (fun t ->
      ignore (Blockfile.append t [| 1; 2 |] ~off:0 ~len:2);
      Alcotest.(check bool) "bad slice rejected" true
        (match Blockfile.append t [| 1 |] ~off:0 ~len:2 with
        | _ -> false
        | exception Invalid_argument _ -> true);
      let r = Blockfile.reader t in
      Fun.protect
        ~finally:(fun () -> Blockfile.close_reader r)
        (fun () ->
          let buf = Array.make 4 0 in
          Alcotest.(check bool) "read past eof rejected" true
            (match Blockfile.pread r ~woff:1 buf ~off:0 ~len:4 with
            | () -> false
            | exception Invalid_argument _ -> true)))

let prop_blockfile_matches_array_model =
  qtest ~count:50 "blockfile append/pread matches an int-array model"
    QCheck2.Gen.(small_list (small_list (int_range (-1000) 1000)))
    (fun slices ->
      with_blockfile (fun t ->
          let model = ref [] in
          List.iter
            (fun ws ->
              let a = Array.of_list ws in
              let at = Blockfile.append t a ~off:0 ~len:(Array.length a) in
              assert (at = List.length !model);
              model := !model @ ws)
            slices;
          let all = Array.of_list !model in
          let n = Array.length all in
          let r = Blockfile.reader t in
          Fun.protect
            ~finally:(fun () -> Blockfile.close_reader r)
            (fun () ->
              let buf = Array.make (max n 1) 0 in
              Blockfile.pread r ~woff:0 buf ~off:0 ~len:n;
              Array.sub buf 0 n = all)))

let () =
  Alcotest.run "stdext"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "pick_weighted" `Quick test_rng_pick_weighted;
          Alcotest.test_case "pick_weighted all zero" `Quick
            test_rng_pick_weighted_all_zero;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          prop_rng_float_bounds ] );
      ( "fqueue",
        [ Alcotest.test_case "fifo order" `Quick test_fqueue_fifo_order;
          Alcotest.test_case "pop" `Quick test_fqueue_pop;
          Alcotest.test_case "peek" `Quick test_fqueue_peek;
          Alcotest.test_case "peek after push" `Quick test_fqueue_peek_after_push;
          Alcotest.test_case "length" `Quick test_fqueue_length;
          Alcotest.test_case "remove_at" `Quick test_fqueue_remove_at;
          Alcotest.test_case "insert_at" `Quick test_fqueue_insert_at;
          Alcotest.test_case "map/filter" `Quick test_fqueue_map_filter;
          prop_fqueue_push_pop_roundtrip;
          prop_fqueue_mixed_ops_length ] );
      ( "pqueue",
        [ Alcotest.test_case "orders" `Quick test_pqueue_orders;
          Alcotest.test_case "pop_min" `Quick test_pqueue_pop_min;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          prop_pqueue_sorted_drain;
          prop_pqueue_size ] );
      ( "tabular",
        [ Alcotest.test_case "alignment" `Quick test_tabular_alignment;
          Alcotest.test_case "short rows" `Quick test_tabular_short_rows_padded;
          Alcotest.test_case "cells" `Quick test_tabular_cells ] );
      ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "to_list order" `Quick test_vec_to_list_order;
          Alcotest.test_case "out of bounds" `Quick test_vec_out_of_bounds;
          prop_vec_grows_like_list ] );
      ( "parray",
        [ Alcotest.test_case "basics" `Quick test_parray_basics;
          Alcotest.test_case "set same element" `Quick
            test_parray_set_same_element_is_noop;
          prop_parray_versions_survive_rerooting ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          prop_stats_mean_bounds;
          Alcotest.test_case "percentiles empty" `Quick
            test_stats_percentiles_empty;
          Alcotest.test_case "percentiles singleton" `Quick
            test_stats_percentiles_singleton;
          Alcotest.test_case "percentiles ties" `Quick
            test_stats_percentiles_ties;
          Alcotest.test_case "percentile supported" `Quick
            test_stats_percentile_supported;
          Alcotest.test_case "suppress unsupported" `Quick
            test_stats_suppress_unsupported;
          prop_stats_percentiles_agree ] );
      ( "fenwick",
        [ Alcotest.test_case "basics" `Quick test_fenwick_basics;
          prop_fenwick_matches_array_model ] );
      ( "oset",
        [ Alcotest.test_case "basics" `Quick test_oset_basics;
          prop_oset_matches_sorted_list_model;
          prop_oset_union ] );
      ( "blockfile",
        [ Alcotest.test_case "roundtrip" `Quick test_blockfile_roundtrip;
          Alcotest.test_case "reader sees later appends" `Quick
            test_blockfile_reader_sees_later_appends;
          Alcotest.test_case "records" `Quick test_blockfile_records;
          Alcotest.test_case "remove idempotent" `Quick
            test_blockfile_remove_idempotent;
          Alcotest.test_case "bad ranges" `Quick test_blockfile_bad_ranges;
          prop_blockfile_matches_array_model ] ) ]
