(* Scheduler-equivalence suite: the engine's event-indexed move
   bookkeeping (Fenwick action counts + the network's live-channel
   rank/select sets) must produce BIT-IDENTICAL schedules to the
   original per-step full scan it replaced — same RNG draws, same
   (kind, index) selection, same trace, same verdicts.  Every scenario
   here runs twice, [~indexed:true] and [~indexed:false], and the
   results are compared structurally.

   The grid deliberately crosses every registered protocol (references,
   ablations, and negative controls — a protocol that deadlocks or
   violates safety must do so identically in both modes) with fault
   scripts that exercise the index maintenance paths: bursts (state
   corruption + message loss), crash windows with and without losing
   deliveries (the indexed scheduler keeps an explicit crashed-pid
   list), buffered splits (waiting-channel promotion), and heavy-tail
   delays (the waiting set). *)

module R = Graybox.Registry
module S = Tme.Scenarios

let entries = R.all ()

(* Fault script touching every index-maintenance path; times sit well
   inside the horizon so recovery is observable either way. *)
let stress_faults =
  S.burst ~at:300
  @ [ S.Crash
        { procs = Sim.Faults.Proc 0; from_t = 500; until_t = 700; lose = true };
      S.Crash
        { procs = Sim.Faults.Proc 1; from_t = 900; until_t = 1000; lose = false };
      S.Split
        { groups = [ [ 0; 1 ] ];
          from_t = 1200;
          until_t = 1400;
          mode = Sim.Faults.Buffered };
      S.Delay
        { at = 1600;
          chan = Sim.Faults.Any_chan;
          dist = Sim.Faults.Heavy_tail { mean = 3; cap = 12 } } ]

let run_both proto ~wrapper ~faults ~n ~seed ~steps =
  let go indexed =
    S.run proto ~wrapper ~faults ~indexed ~live_monitors:true ~n ~seed ~steps
  in
  (go true, go false)

(* snapshot [channels] is a lazy thunk (a closure until forced), so
   traces compare field-wise with the channel matrix forced *)
let traces_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : _ Sim.Trace.snapshot) (y : _ Sim.Trace.snapshot) ->
         x.Sim.Trace.time = y.Sim.Trace.time
         && x.Sim.Trace.event = y.Sim.Trace.event
         && x.Sim.Trace.states = y.Sim.Trace.states
         && Sim.Trace.channels x = Sim.Trace.channels y)
       a b

let check_equal name (a : S.result) (b : S.result) =
  Alcotest.(check bool) (name ^ ": vtrace identical") true
    (traces_equal a.S.vtrace b.S.vtrace);
  Alcotest.(check bool) (name ^ ": analysis identical") true
    (a.S.analysis = b.S.analysis);
  Alcotest.(check (option int)) (name ^ ": recovery latency")
    a.S.recovery_latency b.S.recovery_latency;
  Alcotest.(check int) (name ^ ": entries") a.S.total_entries b.S.total_entries;
  Alcotest.(check int) (name ^ ": sent") a.S.sent_total b.S.sent_total;
  Alcotest.(check int) (name ^ ": delivered") a.S.delivered b.S.delivered;
  Alcotest.(check bool) (name ^ ": ME verdicts identical") true
    (S.tme_report a = S.tme_report b)

let test_grid () =
  List.iter
    (fun (e : R.entry) ->
      List.iter
        (fun seed ->
          (* n sweeps 3..8: crosses the engine's small-n corner cases
             (n=3 is the minimum ring) without slowing the suite *)
          List.iter
            (fun n ->
              let name = Printf.sprintf "%s n=%d seed=%d" e.R.name n seed in
              let wrapper =
                S.wrapped ~delta:e.R.default_delta ()
              in
              let a, b =
                run_both e.R.proto ~wrapper ~faults:stress_faults ~n ~seed
                  ~steps:2500
              in
              check_equal name a b)
            [ 3; 4; 5; 6; 7; 8 ])
        [ 7; 101 ])
    entries

let test_clean_runs () =
  (* fault-free closed-loop runs must also agree — the index fast path
     with no crash bookkeeping at all *)
  List.iter
    (fun (e : R.entry) ->
      let a, b =
        run_both e.R.proto ~wrapper:Graybox.Harness.Off ~faults:[] ~n:5
          ~seed:23 ~steps:3000
      in
      check_equal (e.R.name ^ " clean") a b)
    entries

let test_load_indexed_vs_scan () =
  (* the open-loop driver's result — every latency sample included —
     is independent of the move-index implementation *)
  List.iter
    (fun (e : R.entry) ->
      let go indexed =
        Tme.Load.run ~indexed e.R.proto ~n:40 ~seed:5 ~rate:0.02
          ~max_requests:25 ~max_steps:12000 ()
      in
      let a = go true and b = go false in
      Alcotest.(check bool) (e.R.name ^ ": load result identical") true (a = b);
      Alcotest.(check int) (e.R.name ^ ": all granted") a.Tme.Load.requests
        a.Tme.Load.grants)
    (R.all ~role:R.Reference ())

let test_load_jobs_invariant () =
  (* Pool.map with any worker count returns the same rows in the same
     order: load runs share no state, so --jobs is a wall-clock knob,
     never a results knob *)
  let sweep jobs =
    Stdext.Pool.map ~jobs
      (fun (name, seed) ->
        let e = Option.get (R.find name) in
        Tme.Load.run e.R.proto ~n:30 ~seed ~rate:0.02 ~max_requests:20
          ~max_steps:10000 ())
      [ ("ra", 1); ("ra", 2); ("lamport", 1); ("central", 9); ("ra-gcl", 3) ]
  in
  let serial = sweep 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches serial" jobs)
        true
        (sweep jobs = serial))
    [ 2; 4 ]

let () =
  Alcotest.run "scheduler_equiv"
    [ ( "indexed = scan",
        [ Alcotest.test_case "registry x seed x n grid, faulted" `Slow
            test_grid;
          Alcotest.test_case "clean runs" `Quick test_clean_runs;
          Alcotest.test_case "open-loop load" `Quick test_load_indexed_vs_scan;
          Alcotest.test_case "load invariant under --jobs" `Quick
            test_load_jobs_invariant ] ) ]
