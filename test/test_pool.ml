(* Stdext.Pool: the domain pool must be observably List.map. *)

open Stdext

let test_ordering () =
  let xs = List.init 200 Fun.id in
  Alcotest.(check (list int))
    "results in input order under parallel execution"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_matches_list_map_uneven_work () =
  (* uneven per-item cost shuffles completion order; results must not be *)
  let work x =
    let rec spin k acc = if k = 0 then acc else spin (k - 1) (acc + x) in
    spin (x mod 7 * 1000) x
  in
  let xs = List.init 64 (fun i -> i + 1) in
  Alcotest.(check (list int))
    "parallel equals serial" (List.map work xs) (Pool.map ~jobs:3 work xs)

let test_jobs1_is_serial () =
  (* evaluation-order side effects prove jobs:1 is List.map on the
     calling domain, not a one-worker pool *)
  let log = ref [] in
  let f x =
    log := x :: !log;
    x + 1
  in
  let ys = Pool.map ~jobs:1 f [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] ys;
  Alcotest.(check (list int)) "strict left-to-right" [ 3; 2; 1 ] !log

let test_edges () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check (list int))
    "more jobs than items" [ 1; 2 ]
    (Pool.map ~jobs:16 succ [ 0; 1 ])

exception Boom of int

let test_exception_propagation () =
  Alcotest.check_raises "smallest failing input index wins" (Boom 2)
    (fun () ->
      ignore
        (Pool.map ~jobs:3
           (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
           [ 1; 2; 3; 4; 5; 6 ]))

let test_jobs_validation () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs = %d rejected" jobs)
        (Invalid_argument "Pool.map: need jobs >= 1")
        (fun () -> ignore (Pool.map ~jobs Fun.id [ 1 ])))
    [ 0; -1 ]

(* -- shard routing -------------------------------------------------- *)

let test_shard_of_range () =
  (* every hash lands in range, and a realistic mixed-hash stream
     spreads over all shards *)
  let seen = Array.make 8 0 in
  for i = 0 to 9999 do
    (* splitmix-style mix so high bits vary, as Mcheck's hash does *)
    let h = i * 0x9e3779b97f4a7c1 in
    let h = (h lxor (h lsr 31)) land max_int in
    let s = Pool.shard_of ~hash:h ~shards:8 in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "shard %d populated" i) true (c > 0))
    seen

let test_shard_of_single () =
  Alcotest.(check int) "one shard takes all" 0
    (Pool.shard_of ~hash:max_int ~shards:1)

let test_shard_of_high_bits () =
  (* low-bit changes (the probe bits) must not move the shard *)
  let h = 0x1234 * 0x9e3779b97f4a7c1 land max_int in
  Alcotest.(check int) "low bits ignored"
    (Pool.shard_of ~hash:h ~shards:8)
    (Pool.shard_of ~hash:(h lxor 0xFFFF) ~shards:8)

let test_shard_of_validation () =
  Alcotest.check_raises "shards = 0 rejected"
    (Invalid_argument "Pool.shard_of: need shards >= 1") (fun () ->
      ignore (Pool.shard_of ~hash:1 ~shards:0))

let () =
  Alcotest.run "pool"
    [ ( "shard_of",
        [ Alcotest.test_case "range and spread" `Quick test_shard_of_range;
          Alcotest.test_case "single shard" `Quick test_shard_of_single;
          Alcotest.test_case "routes by high bits" `Quick
            test_shard_of_high_bits;
          Alcotest.test_case "validation" `Quick test_shard_of_validation ] );
      ( "map",
        [ Alcotest.test_case "input ordering" `Quick test_ordering;
          Alcotest.test_case "matches List.map (uneven work)" `Quick
            test_matches_list_map_uneven_work;
          Alcotest.test_case "jobs=1 is serial" `Quick test_jobs1_is_serial;
          Alcotest.test_case "edge cases" `Quick test_edges;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation ] )
    ]
