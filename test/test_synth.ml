(* CEGIS wrapper synthesis (Synth) and its model-checking oracle
   (Mcheck.Oracle): the synthesizer rediscovers the paper's refined W
   for every synthesizable registry entry, the transcript is invariant
   under the pool width, the oracle's verdicts (and counterexample
   traces) are invariant under jobs/shards/memory budget, and the DSL
   terms evaluate exactly as the historical variant surface. *)

module W = Graybox.Wrapper
module O = Mcheck.Oracle
module S = Tme.Scenarios

let ra = Option.get (Graybox.Registry.find_protocol "ra")

(* -- synthesis ------------------------------------------------------ *)

let test_synthesizes_w_refined () =
  let r = Synth.synthesize ra (Synth.config ()) in
  (match r.Synth.synthesized with
   | None -> Alcotest.fail "synthesis found nothing for ra"
   | Some w ->
     Alcotest.(check bool) "synthesized term is the paper's refined W" true
       (W.equal w W.w_refined));
  Alcotest.(check bool) "pruning engaged" true (r.Synth.pruned > 0);
  Alcotest.(check bool) "oracle consulted" true (r.Synth.checked > 0);
  Alcotest.(check int) "every tried candidate is in the transcript"
    (r.Synth.checked + r.Synth.pruned)
    (List.length r.Synth.attempts);
  (* the transcript is index-sorted and each index appears once *)
  let idxs = List.map (fun a -> a.Synth.index) r.Synth.attempts in
  Alcotest.(check bool) "transcript sorted by enumeration index" true
    (List.sort_uniq compare idxs = idxs)

let test_matches_registered_term () =
  (* ra-synth's registered wrapper_term is exactly what synthesis
     produces for ra: the registry entry is the synthesis result made
     a first-class protocol *)
  let entry = Option.get (Graybox.Registry.find "ra-synth") in
  let r = Synth.synthesize ra (Synth.config ()) in
  match (entry.Graybox.Registry.wrapper_term, r.Synth.synthesized) with
  | Some registered, Some synthesized ->
    Alcotest.(check bool) "ra-synth registers the synthesized term" true
      (W.equal registered synthesized)
  | _ -> Alcotest.fail "ra-synth term or synthesis result missing"

let test_transcript_jobs_invariant () =
  (* the whole result — synthesized term, transcript, counts — is
     byte-identical for every pool width *)
  let run jobs = Synth.synthesize ra (Synth.config ~jobs ()) in
  let reference = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d == jobs=1" jobs)
        true
        (run jobs = reference))
    [ 2; 8 ]

let test_budget_exhaustion_is_honest () =
  (* a tiny check budget must return None with a full transcript, not
     a bogus term *)
  let r = Synth.synthesize ra (Synth.config ~max_checks:3 ()) in
  Alcotest.(check bool) "no term within 3 checks" true
    (r.Synth.synthesized = None);
  Alcotest.(check int) "stopped at the budget" 3 r.Synth.checked

(* -- oracle determinism --------------------------------------------- *)

let scrub_stats s = { s with Mcheck.peak_mem_words = 0; spill_bytes = 0 }

let scrub = function
  | O.Safe stats -> O.Safe (List.map scrub_stats stats)
  | O.Cex cex -> O.Cex { cex with O.stats = List.map scrub_stats cex.O.stats }

let spill_dir = Filename.temp_file "graybox-synth-oracle" ".d"

let () =
  (* temp_file created a file; we want a directory for spill shards *)
  Sys.remove spill_dir;
  Unix.mkdir spill_dir 0o700

let check_oracle_differential name candidate ~n () =
  let run ~jobs ~shards ~mem_budget =
    O.check ra ~n ~jobs ~shards ~mem_budget ~spill_dir candidate
  in
  let reference = run ~jobs:1 ~shards:1 ~mem_budget:max_int in
  (* fixed budget: full equality, including memory stats *)
  List.iter
    (fun (jobs, shards) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d shards=%d == serial" name jobs shards)
        true
        (run ~jobs ~shards ~mem_budget:max_int = reference))
    [ (2, 1); (8, 1); (2, 4); (8, 3) ];
  (* tiny budget forces the spill path in the underlying explorations;
     the verdict — including any counterexample trace — must be
     unchanged modulo the two memory figures *)
  let spilled = run ~jobs:2 ~shards:4 ~mem_budget:64 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: spill-forced == in-RAM (modulo memory stats)" name)
    true
    (scrub spilled = scrub reference);
  let stats_of = function O.Safe s -> s | O.Cex c -> c.O.stats in
  Alcotest.(check bool)
    (Printf.sprintf "%s: spill engaged" name)
    true
    (List.exists (fun s -> s.Mcheck.spill_bytes > 0) (stats_of spilled));
  Alcotest.(check bool)
    (Printf.sprintf "%s: in-RAM run never spills" name)
    true
    (List.for_all (fun s -> s.Mcheck.spill_bytes = 0) (stats_of reference))

let oracle_safe =
  (* w_refined certifies: the Safe verdict's per-run stats must be
     jobs/shards/budget-invariant *)
  check_oracle_differential "safe(w_refined)" W.w_refined ~n:2

let oracle_cex =
  (* reply-to-all forges grants and fails safety: the counterexample —
     seed label, action trace, path, blamed firings — must be
     byte-identical across configurations *)
  check_oracle_differential "cex(reply-to-all)"
    { W.guard = W.Mode W.Is_hungry;
      target = W.Any_peer;
      send = W.Send_reply }
    ~n:2

let test_oracle_verdicts () =
  (match O.check ra ~n:2 W.w_refined with
   | O.Safe _ -> ()
   | O.Cex cex ->
     Alcotest.failf "w_refined refuted: %s" (O.obligation_label cex.O.obligation));
  (match
     O.check ra ~n:2
       { W.guard = W.Mode W.Is_hungry;
         target = W.Any_peer;
         send = W.Send_reply }
   with
   | O.Cex { O.obligation = O.Safety; fired; _ } ->
     Alcotest.(check bool) "safety cex blames the candidate's firings" true
       (fired <> [])
   | O.Cex { O.obligation = o; _ } ->
     Alcotest.failf "expected a safety cex, got %s" (O.obligation_label o)
   | O.Safe _ -> Alcotest.fail "reply-to-all must not certify");
  match
    O.check ra ~n:2
      { W.guard = W.Mode W.Is_eating;
        target = W.Any_peer;
        send = W.Send_request }
  with
  | O.Cex { O.obligation = O.Recovery _ | O.Progress; _ } -> ()
  | O.Cex { O.obligation = O.Safety; _ } ->
    Alcotest.fail "a never-firing-when-wedged candidate cannot break safety"
  | O.Safe _ -> Alcotest.fail "an eating-gated wrapper cannot unwedge"

(* -- DSL / variant equivalence -------------------------------------- *)

let harvest_views () =
  (* views from a faulty wrapped run: covers all three modes and
     mutually-inconsistent timestamp states *)
  let r =
    S.run ra ~n:4 ~seed:7 ~steps:4000
      ~wrapper:(S.wrapped ~delta:4 ())
      ~faults:(S.burst ~at:800)
  in
  List.concat_map
    (fun snap -> Array.to_list snap.Sim.Trace.states)
    r.S.vtrace

let test_variant_term_agreement () =
  let views = harvest_views () in
  Alcotest.(check bool) "harvested a real sample" true
    (List.length views > 100);
  List.iter
    (fun variant ->
      let term = W.term_of_variant variant in
      List.iter
        (fun v ->
          Alcotest.(check (list int))
            "targets variant == term_targets of its term"
            (W.targets variant v ~n:4)
            (W.term_targets term v ~n:4 ~timer:0);
          Alcotest.(check bool) "fire variant == eval of its term" true
            (W.fire variant v ~n:4 = W.eval term v ~n:4 ~timer:0))
        views)
    [ W.Refined; W.Unrefined ]

let test_on_vs_on_term_trace_equal () =
  (* at delta = 0 the [On Refined] and [On_term w_refined] harness
     modes have identical enablement and identical sends, so the whole
     scenario must agree event for event *)
  let run wrapper =
    S.run ra ~n:4 ~seed:11 ~steps:6000 ~wrapper
      ~faults:[ S.Drop_requests_window { from_t = 800; until_t = 860 } ]
  in
  let a = run (S.wrapped ~variant:W.Refined ~delta:0 ()) in
  let b = run (S.wrapped_term ~term:W.w_refined ~delta:0 ()) in
  Alcotest.(check int) "wrapper sends equal" a.S.wrapper_sends b.S.wrapper_sends;
  Alcotest.(check int) "total sends equal" a.S.sent_total b.S.sent_total;
  Alcotest.(check int) "deliveries equal" a.S.delivered b.S.delivered;
  Alcotest.(check int) "entries equal" a.S.total_entries b.S.total_entries;
  Alcotest.(check bool) "analyses equal" true (a.S.analysis = b.S.analysis);
  Alcotest.(check bool) "recovery latency equal" true
    (a.S.recovery_latency = b.S.recovery_latency);
  Alcotest.(check bool) "view traces equal" true
    (List.for_all2
       (fun (x : _ Sim.Trace.snapshot) (y : _ Sim.Trace.snapshot) ->
         x.Sim.Trace.time = y.Sim.Trace.time
         && x.Sim.Trace.event = y.Sim.Trace.event
         && x.Sim.Trace.states = y.Sim.Trace.states)
       a.S.vtrace b.S.vtrace)

let () =
  Alcotest.run "synth"
    [ ( "cegis",
        [ Alcotest.test_case "synthesizes w_refined" `Slow
            test_synthesizes_w_refined;
          Alcotest.test_case "matches the registered ra-synth term" `Slow
            test_matches_registered_term;
          Alcotest.test_case "transcript jobs-invariant" `Slow
            test_transcript_jobs_invariant;
          Alcotest.test_case "budget exhaustion is honest" `Quick
            test_budget_exhaustion_is_honest ] );
      ( "oracle",
        [ Alcotest.test_case "verdicts" `Quick test_oracle_verdicts;
          Alcotest.test_case "safe verdict differential" `Slow oracle_safe;
          Alcotest.test_case "cex differential" `Slow oracle_cex ] );
      ( "dsl",
        [ Alcotest.test_case "variant == term evaluation" `Quick
            test_variant_term_agreement;
          Alcotest.test_case "On == On_term at delta 0" `Quick
            test_on_vs_on_term_trace_equal ] ) ]
