(* Tests for the chaos-campaign engine: plan generation, outcome
   classification, counterexample shrinking, and campaign determinism. *)

module Rng = Stdext.Rng
module Plan_gen = Chaos.Plan_gen
module Outcome = Chaos.Outcome
module Shrink = Chaos.Shrink
module Campaign = Chaos.Campaign

(* ------------------------------------------------------------------ *)
(* Plan generation                                                     *)

let test_plan_gen_budget () =
  let cfg = Plan_gen.config ~n:4 ~horizon:2000 ~budget:7 () in
  let plan = Plan_gen.generate (Rng.create 5) cfg in
  Alcotest.(check int) "budget events" 7 (List.length plan);
  let empty = Plan_gen.generate (Rng.create 5) { cfg with budget = 0 } in
  Alcotest.(check int) "zero budget" 0 (List.length empty)

let test_plan_gen_deterministic () =
  let cfg = Plan_gen.config ~n:4 ~horizon:4000 ~budget:6 () in
  let render seed =
    Plan_gen.plan_label (Plan_gen.generate (Rng.create seed) cfg)
  in
  Alcotest.(check string) "same seed same plan" (render 11) (render 11);
  (* not a constant generator: some nearby seed must differ *)
  let base = render 1 in
  Alcotest.(check bool) "seeds matter" true
    (List.exists (fun s -> render s <> base) [ 2; 3; 4; 5; 6 ])

let test_plan_gen_times_bounded () =
  let cfg = Plan_gen.config ~n:4 ~horizon:1000 ~budget:40 () in
  let plan = Plan_gen.generate (Rng.create 9) cfg in
  List.iter
    (fun spec ->
      let t = Plan_gen.spec_time spec in
      Alcotest.(check bool)
        (Printf.sprintf "fault at %d leaves a convergence tail" t)
        true
        (t >= 0 && t <= cfg.Plan_gen.horizon * 3 / 5))
    plan;
  (* sorted by injection time *)
  let times = List.map Plan_gen.spec_time plan in
  Alcotest.(check (list int)) "sorted" (List.sort compare times) times

let test_plan_gen_validation () =
  Alcotest.check_raises "n < 2" (Invalid_argument "Plan_gen.config: need n >= 2")
    (fun () -> ignore (Plan_gen.config ~n:1 ~horizon:1000 ~budget:3 ()))

(* Exhaustive by construction: adding a fault_spec constructor breaks
   this match, forcing the new kind into the coverage assertion. *)
let spec_tag = function
  | Tme.Scenarios.Drop_requests _ -> "drop-requests"
  | Tme.Scenarios.Drop_requests_window _ -> "drop-requests-window"
  | Tme.Scenarios.Drop_any _ -> "drop-any"
  | Tme.Scenarios.Duplicate _ -> "duplicate"
  | Tme.Scenarios.Corrupt_messages _ -> "corrupt-messages"
  | Tme.Scenarios.Reorder _ -> "reorder"
  | Tme.Scenarios.Flush _ -> "flush"
  | Tme.Scenarios.Partition _ -> "partition"
  | Tme.Scenarios.Corrupt_state _ -> "corrupt-state"
  | Tme.Scenarios.Reset_state _ -> "reset-state"
  | Tme.Scenarios.Crash _ -> "crash"
  | Tme.Scenarios.Split _ -> "split"
  | Tme.Scenarios.Delay _ -> "delay"

let all_tags =
  [ "drop-requests"; "drop-requests-window"; "drop-any"; "duplicate";
    "corrupt-messages"; "reorder"; "flush"; "partition"; "corrupt-state";
    "reset-state"; "crash"; "split"; "delay" ]

let sampled_tags cfg seeds =
  List.fold_left
    (fun acc seed ->
      List.fold_left
        (fun acc spec -> (spec_tag spec :: acc))
        acc
        (Plan_gen.generate (Rng.create seed) cfg))
    [] (List.init seeds Fun.id)
  |> List.sort_uniq compare

let test_plan_gen_samples_every_kind () =
  (* with partitions on, every fault_spec constructor is eventually
     generated *)
  let cfg = Plan_gen.config ~partitions:true ~n:4 ~horizon:2000 ~budget:8 () in
  let seen = sampled_tags cfg 200 in
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " sampled") true (List.mem tag seen))
    all_tags;
  (* with partitions off (the default), the partition family never
     appears — default plan streams are unchanged *)
  let seen_default =
    sampled_tags (Plan_gen.config ~n:4 ~horizon:2000 ~budget:8 ()) 200
  in
  Alcotest.(check bool) "no split by default" false
    (List.mem "split" seen_default);
  Alcotest.(check bool) "no delay by default" false
    (List.mem "delay" seen_default)

let test_plan_gen_partition_labels () =
  Alcotest.(check string) "split label" "split@120-200({0,1}|{2},buf)"
    (Plan_gen.spec_label
       (Tme.Scenarios.Split
          { groups = [ [ 0; 1 ]; [ 2 ] ];
            from_t = 120;
            until_t = 200;
            mode = Sim.Faults.Buffered }));
  Alcotest.(check string) "delay label" "delay@80(p0->p2,~exp30)"
    (Plan_gen.spec_label
       (Tme.Scenarios.Delay
          { at = 80;
            chan = Sim.Faults.Chan (0, 2);
            dist = Sim.Faults.Heavy_tail { mean = 30; cap = 120 } }));
  Alcotest.(check string) "fixed delay label" "delay@5(*,=3)"
    (Plan_gen.spec_label
       (Tme.Scenarios.Delay
          { at = 5; chan = Sim.Faults.Any_chan; dist = Sim.Faults.Fixed 3 }))

let test_plan_gen_split_plan () =
  let cfg = Plan_gen.config ~n:4 ~horizon:2000 ~budget:5 () in
  let check_mode mode =
    match Plan_gen.split_plan (Rng.create 3) cfg ~mode with
    | [ Tme.Scenarios.Split { groups; from_t; until_t; mode = m } ] ->
      Alcotest.(check bool) "mode honoured" true (m = mode);
      Alcotest.(check bool) "window ordered" true (from_t < until_t);
      Alcotest.(check bool) "proper cut" true (List.length groups >= 2)
    | _ -> Alcotest.fail "split_plan must hold exactly one Split"
  in
  check_mode Sim.Faults.Lossy;
  check_mode Sim.Faults.Buffered;
  (* the two modes share the partition geometry: same seed, same groups *)
  match
    ( Plan_gen.split_plan (Rng.create 3) cfg ~mode:Sim.Faults.Lossy,
      Plan_gen.split_plan (Rng.create 3) cfg ~mode:Sim.Faults.Buffered )
  with
  | ( [ Tme.Scenarios.Split { groups = g1; from_t = f1; until_t = u1; _ } ],
      [ Tme.Scenarios.Split { groups = g2; from_t = f2; until_t = u2; _ } ] ) ->
    Alcotest.(check bool) "same geometry" true (g1 = g2 && f1 = f2 && u1 = u2)
  | _ -> Alcotest.fail "split_plan must hold exactly one Split"

(* ------------------------------------------------------------------ *)
(* Outcome classification                                              *)

let analysis ?(me1 = 0) ?(starving = []) ~recovered () =
  { Graybox.Stabilize.trace_len = 100;
    last_fault_index = Some 10;
    converged_index = (if recovered then Some 20 else None);
    recovery_steps = (if recovered then Some 10 else None);
    me1_violations = me1;
    starving;
    recovered }

let verdict = Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Outcome.label v))
    ( = )

let verdict' = Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Campaign.expectation_label e))
    ( = )

let test_outcome_classify () =
  let check msg want a =
    Alcotest.check verdict msg want (Outcome.classify ~n:4 a)
  in
  check "recovered" Outcome.Recovered (analysis ~recovered:true ());
  check "me1 wins over starvation" Outcome.Me1_violation
    (analysis ~me1:2 ~starving:[ 0; 1; 2; 3 ] ~recovered:false ());
  check "all starving = deadlock" Outcome.Deadlock
    (analysis ~starving:[ 0; 1; 2; 3 ] ~recovered:false ());
  check "some starving" Outcome.Starvation
    (analysis ~starving:[ 2 ] ~recovered:false ());
  check "no witness" Outcome.Unstable (analysis ~recovered:false ())

let test_outcome_labels () =
  let labels = List.map Outcome.label Outcome.all in
  Alcotest.(check (list string)) "stable labels"
    [ "recovered"; "me1-violation"; "starvation"; "deadlock"; "unstable" ]
    labels;
  Alcotest.(check bool) "recovered is success" false
    (Outcome.is_failure Outcome.Recovered);
  Alcotest.(check bool) "deadlock is failure" true
    (Outcome.is_failure Outcome.Deadlock)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let ra_scenario ~wrapper =
  match Campaign.resolve "ra" with
  | None -> Alcotest.fail "ra protocol missing"
  | Some proto ->
    { Shrink.protocol = "ra"; proto; wrapper; n = 4; seed = 42; steps = 1500 }

let test_shrink_reduces_deadlock_plan () =
  let sc = ra_scenario ~wrapper:Graybox.Harness.Off in
  (* the §4 deadlock injection buried in noise the shrinker must strip *)
  let plan =
    [ Tme.Scenarios.Duplicate { at = 60; per_chan = 2 };
      Tme.Scenarios.Drop_requests_window { from_t = 150; until_t = 210 };
      Tme.Scenarios.Crash
        { procs = Sim.Faults.Proc 1; from_t = 300; until_t = 320; lose = false };
      Tme.Scenarios.Reorder { at = 400; per_chan = 1 } ]
  in
  Alcotest.(check bool) "plan fails unwrapped" true (Shrink.fails sc plan);
  let r = Shrink.shrink sc plan in
  Alcotest.(check bool) "confirmed" true r.Shrink.confirmed;
  Alcotest.(check bool) "minimal reproducer"
    true
    (List.length r.Shrink.shrunk <= 3);
  Alcotest.(check bool) "shrunk plan still fails" true
    (Shrink.fails sc r.Shrink.shrunk)

let test_shrink_split_window_and_groups () =
  (* a lossy group partition deadlocks the unwrapped reference; the
     shrinker must strip the noise, keep a Split, and the minimal plan
     must re-fail under the original seed (satellite: windowed-kind
     shrinking preserves reproduction) *)
  let sc = ra_scenario ~wrapper:Graybox.Harness.Off in
  let plan =
    [ Tme.Scenarios.Duplicate { at = 60; per_chan = 2 };
      Tme.Scenarios.Split
        { groups = [ [ 0 ]; [ 1 ]; [ 2; 3 ] ];
          from_t = 150;
          until_t = 450;
          mode = Sim.Faults.Lossy };
      Tme.Scenarios.Reorder { at = 500; per_chan = 1 } ]
  in
  Alcotest.(check bool) "plan fails" true (Shrink.fails sc plan);
  let r = Shrink.shrink sc plan in
  Alcotest.(check bool) "confirmed" true r.Shrink.confirmed;
  let split_until =
    List.filter_map
      (function
        | Tme.Scenarios.Split { until_t; _ } -> Some until_t
        | _ -> None)
      r.Shrink.shrunk
  in
  Alcotest.(check int) "a split survives shrinking" 1
    (List.length split_until);
  Alcotest.(check bool) "window no wider than the original" true
    (List.hd split_until <= 450);
  Alcotest.(check bool) "shrunk plan still fails under the same seed" true
    (Shrink.fails sc r.Shrink.shrunk)

let test_shrink_crash_window () =
  (* same property for the other windowed kind: a long lose-deliveries
     crash of one process kills unwrapped RA; the shrunk plan keeps a
     crash and re-fails *)
  let sc = ra_scenario ~wrapper:Graybox.Harness.Off in
  let plan =
    [ Tme.Scenarios.Flush { at = 50 };
      Tme.Scenarios.Crash
        { procs = Sim.Faults.Proc 1; from_t = 100; until_t = 400; lose = true } ]
  in
  if Shrink.fails sc plan then begin
    let r = Shrink.shrink sc plan in
    Alcotest.(check bool) "confirmed" true r.Shrink.confirmed;
    Alcotest.(check bool) "a crash survives shrinking" true
      (List.exists
         (function Tme.Scenarios.Crash _ -> true | _ -> false)
         r.Shrink.shrunk);
    Alcotest.(check bool) "shrunk plan still fails under the same seed" true
      (Shrink.fails sc r.Shrink.shrunk)
  end
  else Alcotest.fail "crash plan must fail unwrapped"

let test_shrink_passing_plan_not_confirmed () =
  let sc =
    ra_scenario
      ~wrapper:(Graybox.Harness.On { variant = Graybox.Wrapper.Refined; delta = 8 })
  in
  let r = Shrink.shrink sc [ Tme.Scenarios.Flush { at = 100 } ] in
  Alcotest.(check bool) "nothing to shrink" false r.Shrink.confirmed

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

let small_config () =
  Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
    ~protocols:[ "lamport" ] ~include_unwrapped:false ~deadlock_canary:false
    ~shrink:false ()

let test_campaign_deterministic () =
  let render () =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (small_config ())))
  in
  Alcotest.(check string) "same seed same report" (render ()) (render ())

let test_campaign_wrapped_lamport_recovers () =
  let report = Campaign.run (small_config ()) in
  Alcotest.(check int) "one cell" 1 (List.length report.Campaign.cells);
  let cell = List.hd report.Campaign.cells in
  Alcotest.(check bool) "wrapped" true cell.Campaign.cell_wrapped;
  List.iter
    (fun row ->
      Alcotest.check verdict "recovers" Outcome.Recovered
        row.Campaign.row_verdict)
    cell.Campaign.rows;
  Alcotest.(check bool) "gate ok" true report.Campaign.gate_ok

let test_campaign_parallel_matches_serial () =
  (* the tentpole determinism claim: a multi-cell sweep (with a failing
     negative control, so shrinking runs too) renders to byte-identical
     JSON whatever the worker count *)
  let cfg jobs =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport"; "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:true ~jobs ()
  in
  let render jobs =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (cfg jobs)))
  in
  Alcotest.(check string) "parallel report == serial report" (render 1)
    (render 3)

let test_campaign_jobs_validation () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Campaign.config: need jobs >= 1") (fun () ->
      ignore (Campaign.config ~jobs:0 ()))

let test_campaign_streaming_byte_identical () =
  (* the tentpole claim: streaming analysis changes nothing observable.
     A multi-cell sweep — negative control, deadlock canary, shrinking,
     so crashes, deadlocks, and re-runs are all exercised — renders to
     byte-identical JSON with and without streaming, at every worker
     count *)
  let cfg ~jobs ~streaming =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport"; "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:true ~jobs ~streaming ()
  in
  let render ~jobs ~streaming =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (cfg ~jobs ~streaming)))
  in
  let recorded = render ~jobs:1 ~streaming:false in
  Alcotest.(check string) "streaming == recorded (serial)" recorded
    (render ~jobs:1 ~streaming:true);
  Alcotest.(check string) "streaming == recorded (parallel)" recorded
    (render ~jobs:3 ~streaming:true)

let test_campaign_unknown_protocol () =
  Alcotest.check_raises "unknown protocol is a typed error"
    (Campaign.Unknown_protocol "nope") (fun () ->
      ignore (Campaign.run (Campaign.config ~protocols:[ "nope" ] ())));
  Alcotest.(check bool) "known_protocols lists the registry" true
    (List.mem "ra" (Campaign.known_protocols ())
    && List.mem "ra-mutant" (Campaign.known_protocols ()))

let test_campaign_negative_control_fails () =
  let cfg =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:false ~shrink:false ()
  in
  let report = Campaign.run cfg in
  List.iter
    (fun cell ->
      Alcotest.(check bool)
        (cell.Campaign.cell_label ^ " expects failure and gets one")
        true
        (cell.Campaign.cell_expect = Campaign.Expect_failure
        && cell.Campaign.cell_ok))
    report.Campaign.cells

(* ------------------------------------------------------------------ *)
(* Partition campaign cells                                            *)

let partition_config ?(jobs = 1) () =
  Campaign.config ~base_seed:7 ~seeds:5 ~budget:3 ~n:4 ~steps:1200
    ~protocols:[ "lamport"; "lamport-unmod" ] ~include_unwrapped:false
    ~deadlock_canary:false ~shrink:false ~partitions:true ~jobs ()

let find_cell report label =
  match
    List.find_opt
      (fun c -> c.Campaign.cell_label = label)
      report.Campaign.cells
  with
  | Some c -> c
  | None -> Alcotest.fail ("missing cell " ^ label)

let test_campaign_partition_cells () =
  let report = Campaign.run (partition_config ()) in
  (* two extra cells per protocol, gated by the registry's partition
     expectation *)
  let lossy = find_cell report "lamport+W'(8)/split-lossy" in
  Alcotest.check verdict' "reference recovers from lossy splits"
    Campaign.Expect_recover lossy.Campaign.cell_expect;
  Alcotest.(check bool) "and does" true lossy.Campaign.cell_ok;
  let neg_lossy = find_cell report "lamport-unmod+W'(8)/split-lossy" in
  Alcotest.check verdict' "negative control must deadlock"
    Campaign.Expect_failure neg_lossy.Campaign.cell_expect;
  Alcotest.(check bool) "and does" true neg_lossy.Campaign.cell_ok;
  (* the buffered sibling demotes Expect_failure to Observe: nothing is
     lost under a buffered heal, so recovery is legitimate there *)
  let neg_buf = find_cell report "lamport-unmod+W'(8)/split-buf" in
  Alcotest.check verdict' "buffered heal is observe-only for the control"
    Campaign.Observe neg_buf.Campaign.cell_expect;
  let buf = find_cell report "lamport+W'(8)/split-buf" in
  Alcotest.check verdict' "reference still gated under buffered heal"
    Campaign.Expect_recover buf.Campaign.cell_expect;
  Alcotest.(check bool) "gate ok" true report.Campaign.gate_ok;
  (* every partition-cell row holds exactly one Split of the cell's mode *)
  List.iter
    (fun row ->
      match row.Campaign.row_plan with
      | [ Tme.Scenarios.Split { mode = Sim.Faults.Lossy; _ } ] -> ()
      | _ -> Alcotest.fail "split-lossy rows must hold one lossy Split")
    lossy.Campaign.rows

let test_campaign_partitions_parallel_matches_serial () =
  let render jobs =
    Chaos.Jsonx.to_string
      (Campaign.to_json (Campaign.run (partition_config ~jobs ())))
  in
  Alcotest.(check string) "partition sweep byte-identical across jobs"
    (render 1) (render 3)

(* ------------------------------------------------------------------ *)
(* Partitioned/delayed scenario runs                                   *)

let partition_faults =
  [ Tme.Scenarios.Split
      { groups = [ [ 0 ] ];
        from_t = 200;
        until_t = 320;
        mode = Sim.Faults.Buffered };
    Tme.Scenarios.Delay
      { at = 400;
        chan = Sim.Faults.Any_chan;
        dist = Sim.Faults.Heavy_tail { mean = 5; cap = 40 } } ]

let lamport_run ~streaming =
  match Graybox.Registry.find "lamport" with
  | None -> Alcotest.fail "lamport missing"
  | Some e ->
    Tme.Scenarios.run e.Graybox.Registry.proto ~n:4 ~seed:9 ~steps:2500
      ~streaming
      ~wrapper:(Tme.Scenarios.wrapped ~delta:8 ())
      ~faults:partition_faults

let test_scenarios_partition_deterministic () =
  let key r =
    (r.Tme.Scenarios.analysis, r.Tme.Scenarios.recovery_latency)
  in
  (* same seed, same run — partitions and heavy-tail delays draw all
     their randomness from the seeded fault stream *)
  Alcotest.(check bool) "seed-deterministic" true
    (key (lamport_run ~streaming:true) = key (lamport_run ~streaming:true));
  (* and the streaming analysis agrees with the recorded one on the
     new fault kinds, field for field *)
  Alcotest.(check bool) "streaming == recorded" true
    (key (lamport_run ~streaming:false) = key (lamport_run ~streaming:true))

let test_scenarios_split_plants_heal_marker () =
  let r = lamport_run ~streaming:false in
  let faults =
    List.filter_map
      (fun s ->
        match s.Sim.Trace.event with
        | Sim.Trace.Fault { label } -> Some (s.Sim.Trace.time, label)
        | _ -> None)
      r.Tme.Scenarios.vtrace
  in
  Alcotest.(check (list (pair int string)))
    "split lowers to split + heal; delay is one event"
    [ (200, "split"); (320, "heal"); (400, "delay") ]
    faults;
  (* latency is measured from the last fault event — the delay here,
     after the heal — so convergence is never billed the window *)
  match r.Tme.Scenarios.analysis.Graybox.Stabilize.last_fault_index with
  | Some i ->
    let snap = List.nth r.Tme.Scenarios.vtrace i in
    Alcotest.(check int) "re-based at the last marker" 400
      snap.Sim.Trace.time
  | None -> Alcotest.fail "fault events must be recorded"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let test_jsonx_rendering () =
  let j =
    Chaos.Jsonx.Obj
      [ ("s", Chaos.Jsonx.String "a\"b\n");
        ("i", Chaos.Jsonx.Int 3);
        ("f", Chaos.Jsonx.Float 0.5);
        ("nan", Chaos.Jsonx.Float nan);
        ("l", Chaos.Jsonx.List [ Chaos.Jsonx.Bool true; Chaos.Jsonx.Null ]) ]
  in
  Alcotest.(check string) "escaping and nan"
    {|{"s":"a\"b\n","i":3,"f":0.5,"nan":null,"l":[true,null]}|}
    (Chaos.Jsonx.to_string j)

let () =
  Alcotest.run "chaos"
    [ ( "plan_gen",
        [ Alcotest.test_case "budget" `Quick test_plan_gen_budget;
          Alcotest.test_case "deterministic" `Quick test_plan_gen_deterministic;
          Alcotest.test_case "times bounded" `Quick test_plan_gen_times_bounded;
          Alcotest.test_case "validation" `Quick test_plan_gen_validation;
          Alcotest.test_case "samples every kind" `Quick
            test_plan_gen_samples_every_kind;
          Alcotest.test_case "partition labels" `Quick
            test_plan_gen_partition_labels;
          Alcotest.test_case "split_plan" `Quick test_plan_gen_split_plan ] );
      ( "outcome",
        [ Alcotest.test_case "classify" `Quick test_outcome_classify;
          Alcotest.test_case "labels" `Quick test_outcome_labels ] );
      ( "shrink",
        [ Alcotest.test_case "reduces deadlock plan" `Quick
            test_shrink_reduces_deadlock_plan;
          Alcotest.test_case "split window/groups" `Quick
            test_shrink_split_window_and_groups;
          Alcotest.test_case "crash window" `Quick test_shrink_crash_window;
          Alcotest.test_case "passing plan" `Quick
            test_shrink_passing_plan_not_confirmed ] );
      ( "campaign",
        [ Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "wrapped lamport recovers" `Quick
            test_campaign_wrapped_lamport_recovers;
          Alcotest.test_case "negative control fails" `Quick
            test_campaign_negative_control_fails;
          Alcotest.test_case "parallel report == serial" `Quick
            test_campaign_parallel_matches_serial;
          Alcotest.test_case "streaming report == recorded report" `Quick
            test_campaign_streaming_byte_identical;
          Alcotest.test_case "jobs validation" `Quick
            test_campaign_jobs_validation;
          Alcotest.test_case "unknown protocol" `Quick
            test_campaign_unknown_protocol;
          Alcotest.test_case "partition cells" `Quick
            test_campaign_partition_cells;
          Alcotest.test_case "partition parallel == serial" `Quick
            test_campaign_partitions_parallel_matches_serial ] );
      ( "scenarios",
        [ Alcotest.test_case "partition determinism/streaming" `Quick
            test_scenarios_partition_deterministic;
          Alcotest.test_case "heal marker" `Quick
            test_scenarios_split_plants_heal_marker ] );
      ("jsonx", [ Alcotest.test_case "rendering" `Quick test_jsonx_rendering ])
    ]
