(* Tests for the chaos-campaign engine: plan generation, outcome
   classification, counterexample shrinking, and campaign determinism. *)

module Rng = Stdext.Rng
module Plan_gen = Chaos.Plan_gen
module Outcome = Chaos.Outcome
module Shrink = Chaos.Shrink
module Campaign = Chaos.Campaign

(* ------------------------------------------------------------------ *)
(* Plan generation                                                     *)

let test_plan_gen_budget () =
  let cfg = Plan_gen.config ~n:4 ~horizon:2000 ~budget:7 in
  let plan = Plan_gen.generate (Rng.create 5) cfg in
  Alcotest.(check int) "budget events" 7 (List.length plan);
  let empty = Plan_gen.generate (Rng.create 5) { cfg with budget = 0 } in
  Alcotest.(check int) "zero budget" 0 (List.length empty)

let test_plan_gen_deterministic () =
  let cfg = Plan_gen.config ~n:4 ~horizon:4000 ~budget:6 in
  let render seed =
    Plan_gen.plan_label (Plan_gen.generate (Rng.create seed) cfg)
  in
  Alcotest.(check string) "same seed same plan" (render 11) (render 11);
  (* not a constant generator: some nearby seed must differ *)
  let base = render 1 in
  Alcotest.(check bool) "seeds matter" true
    (List.exists (fun s -> render s <> base) [ 2; 3; 4; 5; 6 ])

let test_plan_gen_times_bounded () =
  let cfg = Plan_gen.config ~n:4 ~horizon:1000 ~budget:40 in
  let plan = Plan_gen.generate (Rng.create 9) cfg in
  List.iter
    (fun spec ->
      let t = Plan_gen.spec_time spec in
      Alcotest.(check bool)
        (Printf.sprintf "fault at %d leaves a convergence tail" t)
        true
        (t >= 0 && t <= cfg.Plan_gen.horizon * 3 / 5))
    plan;
  (* sorted by injection time *)
  let times = List.map Plan_gen.spec_time plan in
  Alcotest.(check (list int)) "sorted" (List.sort compare times) times

let test_plan_gen_validation () =
  Alcotest.check_raises "n < 2" (Invalid_argument "Plan_gen.config: need n >= 2")
    (fun () -> ignore (Plan_gen.config ~n:1 ~horizon:1000 ~budget:3))

(* ------------------------------------------------------------------ *)
(* Outcome classification                                              *)

let analysis ?(me1 = 0) ?(starving = []) ~recovered () =
  { Graybox.Stabilize.trace_len = 100;
    last_fault_index = Some 10;
    converged_index = (if recovered then Some 20 else None);
    recovery_steps = (if recovered then Some 10 else None);
    me1_violations = me1;
    starving;
    recovered }

let verdict = Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Outcome.label v))
    ( = )

let test_outcome_classify () =
  let check msg want a =
    Alcotest.check verdict msg want (Outcome.classify ~n:4 a)
  in
  check "recovered" Outcome.Recovered (analysis ~recovered:true ());
  check "me1 wins over starvation" Outcome.Me1_violation
    (analysis ~me1:2 ~starving:[ 0; 1; 2; 3 ] ~recovered:false ());
  check "all starving = deadlock" Outcome.Deadlock
    (analysis ~starving:[ 0; 1; 2; 3 ] ~recovered:false ());
  check "some starving" Outcome.Starvation
    (analysis ~starving:[ 2 ] ~recovered:false ());
  check "no witness" Outcome.Unstable (analysis ~recovered:false ())

let test_outcome_labels () =
  let labels = List.map Outcome.label Outcome.all in
  Alcotest.(check (list string)) "stable labels"
    [ "recovered"; "me1-violation"; "starvation"; "deadlock"; "unstable" ]
    labels;
  Alcotest.(check bool) "recovered is success" false
    (Outcome.is_failure Outcome.Recovered);
  Alcotest.(check bool) "deadlock is failure" true
    (Outcome.is_failure Outcome.Deadlock)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let ra_scenario ~wrapper =
  match Campaign.resolve "ra" with
  | None -> Alcotest.fail "ra protocol missing"
  | Some proto ->
    { Shrink.protocol = "ra"; proto; wrapper; n = 4; seed = 42; steps = 1500 }

let test_shrink_reduces_deadlock_plan () =
  let sc = ra_scenario ~wrapper:Graybox.Harness.Off in
  (* the §4 deadlock injection buried in noise the shrinker must strip *)
  let plan =
    [ Tme.Scenarios.Duplicate { at = 60; per_chan = 2 };
      Tme.Scenarios.Drop_requests_window { from_t = 150; until_t = 210 };
      Tme.Scenarios.Crash
        { procs = Sim.Faults.Proc 1; from_t = 300; until_t = 320; lose = false };
      Tme.Scenarios.Reorder { at = 400; per_chan = 1 } ]
  in
  Alcotest.(check bool) "plan fails unwrapped" true (Shrink.fails sc plan);
  let r = Shrink.shrink sc plan in
  Alcotest.(check bool) "confirmed" true r.Shrink.confirmed;
  Alcotest.(check bool) "minimal reproducer"
    true
    (List.length r.Shrink.shrunk <= 3);
  Alcotest.(check bool) "shrunk plan still fails" true
    (Shrink.fails sc r.Shrink.shrunk)

let test_shrink_passing_plan_not_confirmed () =
  let sc =
    ra_scenario
      ~wrapper:(Graybox.Harness.On { variant = Graybox.Wrapper.Refined; delta = 8 })
  in
  let r = Shrink.shrink sc [ Tme.Scenarios.Flush { at = 100 } ] in
  Alcotest.(check bool) "nothing to shrink" false r.Shrink.confirmed

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

let small_config () =
  Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
    ~protocols:[ "lamport" ] ~include_unwrapped:false ~deadlock_canary:false
    ~shrink:false ()

let test_campaign_deterministic () =
  let render () =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (small_config ())))
  in
  Alcotest.(check string) "same seed same report" (render ()) (render ())

let test_campaign_wrapped_lamport_recovers () =
  let report = Campaign.run (small_config ()) in
  Alcotest.(check int) "one cell" 1 (List.length report.Campaign.cells);
  let cell = List.hd report.Campaign.cells in
  Alcotest.(check bool) "wrapped" true cell.Campaign.cell_wrapped;
  List.iter
    (fun row ->
      Alcotest.check verdict "recovers" Outcome.Recovered
        row.Campaign.row_verdict)
    cell.Campaign.rows;
  Alcotest.(check bool) "gate ok" true report.Campaign.gate_ok

let test_campaign_parallel_matches_serial () =
  (* the tentpole determinism claim: a multi-cell sweep (with a failing
     negative control, so shrinking runs too) renders to byte-identical
     JSON whatever the worker count *)
  let cfg jobs =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport"; "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:true ~jobs ()
  in
  let render jobs =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (cfg jobs)))
  in
  Alcotest.(check string) "parallel report == serial report" (render 1)
    (render 3)

let test_campaign_jobs_validation () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Campaign.config: need jobs >= 1") (fun () ->
      ignore (Campaign.config ~jobs:0 ()))

let test_campaign_streaming_byte_identical () =
  (* the tentpole claim: streaming analysis changes nothing observable.
     A multi-cell sweep — negative control, deadlock canary, shrinking,
     so crashes, deadlocks, and re-runs are all exercised — renders to
     byte-identical JSON with and without streaming, at every worker
     count *)
  let cfg ~jobs ~streaming =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport"; "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:true ~jobs ~streaming ()
  in
  let render ~jobs ~streaming =
    Chaos.Jsonx.to_string (Campaign.to_json (Campaign.run (cfg ~jobs ~streaming)))
  in
  let recorded = render ~jobs:1 ~streaming:false in
  Alcotest.(check string) "streaming == recorded (serial)" recorded
    (render ~jobs:1 ~streaming:true);
  Alcotest.(check string) "streaming == recorded (parallel)" recorded
    (render ~jobs:3 ~streaming:true)

let test_campaign_unknown_protocol () =
  Alcotest.check_raises "unknown protocol is a typed error"
    (Campaign.Unknown_protocol "nope") (fun () ->
      ignore (Campaign.run (Campaign.config ~protocols:[ "nope" ] ())));
  Alcotest.(check bool) "known_protocols lists the registry" true
    (List.mem "ra" (Campaign.known_protocols ())
    && List.mem "ra-mutant" (Campaign.known_protocols ()))

let test_campaign_negative_control_fails () =
  let cfg =
    Campaign.config ~base_seed:7 ~seeds:3 ~budget:3 ~n:4 ~steps:1200
      ~protocols:[ "lamport-unmod" ] ~include_unwrapped:true
      ~deadlock_canary:false ~shrink:false ()
  in
  let report = Campaign.run cfg in
  List.iter
    (fun cell ->
      Alcotest.(check bool)
        (cell.Campaign.cell_label ^ " expects failure and gets one")
        true
        (cell.Campaign.cell_expect = Campaign.Expect_failure
        && cell.Campaign.cell_ok))
    report.Campaign.cells

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let test_jsonx_rendering () =
  let j =
    Chaos.Jsonx.Obj
      [ ("s", Chaos.Jsonx.String "a\"b\n");
        ("i", Chaos.Jsonx.Int 3);
        ("f", Chaos.Jsonx.Float 0.5);
        ("nan", Chaos.Jsonx.Float nan);
        ("l", Chaos.Jsonx.List [ Chaos.Jsonx.Bool true; Chaos.Jsonx.Null ]) ]
  in
  Alcotest.(check string) "escaping and nan"
    {|{"s":"a\"b\n","i":3,"f":0.5,"nan":null,"l":[true,null]}|}
    (Chaos.Jsonx.to_string j)

let () =
  Alcotest.run "chaos"
    [ ( "plan_gen",
        [ Alcotest.test_case "budget" `Quick test_plan_gen_budget;
          Alcotest.test_case "deterministic" `Quick test_plan_gen_deterministic;
          Alcotest.test_case "times bounded" `Quick test_plan_gen_times_bounded;
          Alcotest.test_case "validation" `Quick test_plan_gen_validation ] );
      ( "outcome",
        [ Alcotest.test_case "classify" `Quick test_outcome_classify;
          Alcotest.test_case "labels" `Quick test_outcome_labels ] );
      ( "shrink",
        [ Alcotest.test_case "reduces deadlock plan" `Quick
            test_shrink_reduces_deadlock_plan;
          Alcotest.test_case "passing plan" `Quick
            test_shrink_passing_plan_not_confirmed ] );
      ( "campaign",
        [ Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "wrapped lamport recovers" `Quick
            test_campaign_wrapped_lamport_recovers;
          Alcotest.test_case "negative control fails" `Quick
            test_campaign_negative_control_fails;
          Alcotest.test_case "parallel report == serial" `Quick
            test_campaign_parallel_matches_serial;
          Alcotest.test_case "streaming report == recorded report" `Quick
            test_campaign_streaming_byte_identical;
          Alcotest.test_case "jobs validation" `Quick
            test_campaign_jobs_validation;
          Alcotest.test_case "unknown protocol" `Quick
            test_campaign_unknown_protocol ] );
      ("jsonx", [ Alcotest.test_case "rendering" `Quick test_jsonx_rendering ])
    ]
