(* Tests for the simulator: FIFO network and fault primitives, fault
   plans and selectors, traces, metrics, and the engine (determinism,
   message flow, fault application, probabilistic fairness). *)

open Sim

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Pid                                                                 *)

let test_pid_range_others () =
  Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Pid.range 3);
  Alcotest.(check (list int)) "others" [ 0; 2 ] (Pid.others ~self:1 ~n:3)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)

let test_net_send_deliver_fifo () =
  let net = Network.create ~n:3 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:0 ~dst:1 "b" in
  Alcotest.(check (list string)) "contents" [ "a"; "b" ]
    (Network.contents net ~src:0 ~dst:1);
  match Network.deliver net ~src:0 ~dst:1 with
  | Some ("a", net') ->
    Alcotest.(check (list string)) "rest" [ "b" ]
      (Network.contents net' ~src:0 ~dst:1)
  | _ -> Alcotest.fail "expected head a"

let test_net_deliver_empty () =
  let net = Network.create ~n:2 in
  Alcotest.(check bool) "none" true (Network.deliver net ~src:0 ~dst:1 = None)

let test_net_persistence () =
  let net0 = Network.create ~n:2 in
  let net1 = Network.send net0 ~src:0 ~dst:1 "x" in
  Alcotest.(check int) "original untouched" 0 (Network.in_flight net0);
  Alcotest.(check int) "new has message" 1 (Network.in_flight net1)

let test_net_nonempty () =
  let net = Network.create ~n:3 in
  let net = Network.send net ~src:2 ~dst:0 "m" in
  let net = Network.send net ~src:0 ~dst:1 "m" in
  Alcotest.(check (list (pair int int))) "sorted channels" [ (0, 1); (2, 0) ]
    (Network.nonempty net)

let test_net_drop_at () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:0 ~dst:1 "b" in
  let net = Network.drop_at net ~src:0 ~dst:1 ~pos:0 in
  Alcotest.(check (list string)) "dropped head" [ "b" ]
    (Network.contents net ~src:0 ~dst:1);
  let same = Network.drop_at net ~src:0 ~dst:1 ~pos:9 in
  Alcotest.(check (list string)) "out of range noop" [ "b" ]
    (Network.contents same ~src:0 ~dst:1)

let test_net_duplicate_at () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:0 ~dst:1 "b" in
  let net = Network.duplicate_at net ~src:0 ~dst:1 ~pos:0 in
  Alcotest.(check (list string)) "duplicated in place" [ "a"; "a"; "b" ]
    (Network.contents net ~src:0 ~dst:1)

let test_net_corrupt_at () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.corrupt_at net ~src:0 ~dst:1 ~pos:0 ~f:String.uppercase_ascii in
  Alcotest.(check (list string)) "corrupted" [ "A" ]
    (Network.contents net ~src:0 ~dst:1)

let test_net_reorder_at () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:0 ~dst:1 "b" in
  let net = Network.send net ~src:0 ~dst:1 "c" in
  let net = Network.reorder_at net ~src:0 ~dst:1 ~pos:0 in
  Alcotest.(check (list string)) "moved to back" [ "b"; "c"; "a" ]
    (Network.contents net ~src:0 ~dst:1);
  let same = Network.reorder_at net ~src:0 ~dst:1 ~pos:7 in
  Alcotest.(check (list string)) "out of range noop" [ "b"; "c"; "a" ]
    (Network.contents same ~src:0 ~dst:1);
  let same = Network.reorder_at net ~src:1 ~dst:0 ~pos:0 in
  Alcotest.(check (list string)) "empty channel noop" []
    (Network.contents same ~src:1 ~dst:0)

let test_net_flush () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:1 ~dst:0 "b" in
  let net' = Network.flush_channel net ~src:0 ~dst:1 in
  Alcotest.(check int) "one channel flushed" 1 (Network.in_flight net');
  Alcotest.(check int) "flush all" 0 (Network.in_flight (Network.flush_all net))

let test_net_snapshot_and_fold () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:0 ~dst:1 "b" in
  Alcotest.(check (list (triple int int (list string)))) "snapshot"
    [ (0, 1, [ "a"; "b" ]) ]
    (Network.snapshot net);
  let count = Network.fold_messages (fun acc ~src:_ ~dst:_ _ -> acc + 1) 0 net in
  Alcotest.(check int) "fold" 2 count

let test_net_pid_bounds () =
  let net = Network.create ~n:2 in
  Alcotest.check_raises "bad pid" (Invalid_argument "Network: pid out of range")
    (fun () -> ignore (Network.send net ~src:0 ~dst:5 "x"))

(* --- delivery-ready staging (delays and partitions) --------------- *)

let test_net_send_delay_staged () =
  let net = Network.send (Network.create ~n:2) ~delay:3 ~src:0 ~dst:1 "a" in
  Alcotest.(check int) "in flight" 1 (Network.in_flight net);
  Alcotest.(check int) "staged, not live" 1 (Network.waiting_count net);
  Alcotest.(check int) "live count" 0 (Network.live_count net);
  Alcotest.(check (list (pair int int))) "nonempty hides staged" []
    (Network.nonempty net);
  Alcotest.(check bool) "deliver refuses staged head" true
    (Network.deliver net ~src:0 ~dst:1 = None);
  Alcotest.(check (list string)) "contents still shows it" [ "a" ]
    (Network.contents net ~src:0 ~dst:1);
  let net = Network.advance net ~now:3 in
  Alcotest.(check (list (pair int int))) "ready at its step" [ (0, 1) ]
    (Network.nonempty net);
  Alcotest.(check int) "no longer waiting" 0 (Network.waiting_count net);
  match Network.deliver net ~src:0 ~dst:1 with
  | Some ("a", _) -> ()
  | _ -> Alcotest.fail "expected a deliverable head after advance"

let test_net_advance_monotone () =
  let net = Network.send (Network.create ~n:2) ~delay:10 ~src:0 ~dst:1 "a" in
  let net = Network.advance net ~now:5 in
  Alcotest.(check int) "still staged at 5" 1 (Network.waiting_count net);
  (* a stale (smaller) clock is ignored, not applied *)
  let net = Network.advance net ~now:2 in
  let net = Network.advance net ~now:10 in
  Alcotest.(check int) "live at 10" 1 (Network.live_count net)

let test_net_delay_preserves_fifo () =
  (* a delayed head blocks the whole channel: delays stage readiness,
     they never reorder *)
  let net = Network.create ~n:2 in
  let net = Network.send net ~delay:5 ~src:0 ~dst:1 "slow" in
  let net = Network.send net ~src:0 ~dst:1 "fast" in
  Alcotest.(check bool) "later send cannot overtake" true
    (Network.deliver net ~src:0 ~dst:1 = None);
  let net = Network.advance net ~now:5 in
  match Network.deliver net ~src:0 ~dst:1 with
  | Some ("slow", net') ->
    Alcotest.(check (list string)) "order intact" [ "fast" ]
      (Network.contents net' ~src:0 ~dst:1)
  | _ -> Alcotest.fail "expected the delayed head first"

let test_net_apply_split_lossy () =
  let net = Network.create ~n:2 in
  let net = Network.send net ~src:0 ~dst:1 "a" in
  let net = Network.send net ~src:1 ~dst:0 "b" in
  let net, dropped =
    Network.apply_split net ~pairs:[ (0, 1) ] ~until:10 ~mode:`Lossy
  in
  Alcotest.(check int) "in-flight flushed" 1 dropped;
  Alcotest.(check (list string)) "channel emptied" []
    (Network.contents net ~src:0 ~dst:1);
  Alcotest.(check (list string)) "other direction untouched" [ "b" ]
    (Network.contents net ~src:1 ~dst:0);
  (match Network.link_status net ~src:0 ~dst:1 with
   | `Lossy 10 -> ()
   | _ -> Alcotest.fail "expected `Lossy 10");
  (match Network.link_status net ~src:1 ~dst:0 with
   | `Open -> ()
   | _ -> Alcotest.fail "expected `Open");
  (* the mask expires with the clock *)
  let net = Network.advance net ~now:10 in
  match Network.link_status net ~src:0 ~dst:1 with
  | `Open -> ()
  | _ -> Alcotest.fail "mask must expire at the heal step"

let test_net_apply_split_buffered () =
  let net = Network.send (Network.create ~n:2) ~src:0 ~dst:1 "a" in
  let net, dropped =
    Network.apply_split net ~pairs:[ (0, 1) ] ~until:10 ~mode:`Buffered
  in
  Alcotest.(check int) "nothing lost" 0 dropped;
  Alcotest.(check int) "restamped to the heal" 1 (Network.waiting_count net);
  Alcotest.(check bool) "held through the window" true
    (Network.deliver net ~src:0 ~dst:1 = None);
  (* sends into the masked window are accepted but deferred too *)
  let net = Network.send net ~src:0 ~dst:1 "b" in
  let net = Network.advance net ~now:10 in
  Alcotest.(check (list string)) "flood arrives in order after heal"
    [ "a"; "b" ]
    (Network.contents net ~src:0 ~dst:1);
  Alcotest.(check int) "all ready" 1 (Network.live_count net)

let test_net_split_overlap_and_past () =
  let net = Network.create ~n:2 in
  let net, _ =
    Network.apply_split net ~pairs:[ (0, 1) ] ~until:10 ~mode:`Buffered
  in
  (* overlapping window: latest heal step wins, newest mode wins *)
  let net, _ =
    Network.apply_split net ~pairs:[ (0, 1) ] ~until:5 ~mode:`Lossy
  in
  (match Network.link_status net ~src:0 ~dst:1 with
   | `Lossy 10 -> ()
   | _ -> Alcotest.fail "expected `Lossy 10 (max heal, newest mode)");
  (* a window already in the past is a no-op *)
  let net = Network.advance net ~now:20 in
  let net, dropped =
    Network.apply_split net ~pairs:[ (0, 1) ] ~until:20 ~mode:`Lossy
  in
  Alcotest.(check int) "past window drops nothing" 0 dropped;
  match Network.link_status net ~src:0 ~dst:1 with
  | `Open -> ()
  | _ -> Alcotest.fail "past window must not mask"

let test_net_staged_visible_to_snapshot () =
  let net = Network.send (Network.create ~n:2) ~delay:4 ~src:0 ~dst:1 "a" in
  Alcotest.(check (list (triple int int (list string)))) "snapshot sees staged"
    [ (0, 1, [ "a" ]) ]
    (Network.snapshot net);
  Alcotest.(check int) "fold sees staged" 1
    (Network.fold_messages (fun acc ~src:_ ~dst:_ _ -> acc + 1) 0 net);
  Alcotest.(check int) "corrupt keeps the stamp staged" 1
    (Network.waiting_count
       (Network.corrupt_at net ~src:0 ~dst:1 ~pos:0 ~f:String.uppercase_ascii))

let prop_net_fifo_random_ops =
  qtest "sends then delivers preserve order" QCheck2.Gen.(list small_int)
    (fun xs ->
      let net =
        List.fold_left (fun net x -> Network.send net ~src:0 ~dst:1 x)
          (Network.create ~n:2) xs
      in
      let rec drain net acc =
        match Network.deliver net ~src:0 ~dst:1 with
        | None -> List.rev acc
        | Some (x, net') -> drain net' (x :: acc)
      in
      drain net [] = xs)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let test_faults_selectors () =
  Alcotest.(check (list (pair int int))) "chan" [ (1, 2) ]
    (Faults.select_chans ~n:3 (Faults.Chan (1, 2)));
  Alcotest.(check int) "any excludes self-loops" 6
    (List.length (Faults.select_chans ~n:3 Faults.Any_chan));
  Alcotest.(check (list (pair int int))) "any over two procs"
    [ (0, 1); (1, 0) ]
    (Faults.select_chans ~n:2 Faults.Any_chan);
  Alcotest.(check (list (pair int int))) "from" [ (1, 0); (1, 2) ]
    (Faults.select_chans ~n:3 (Faults.From 1));
  Alcotest.(check (list (pair int int))) "into" [ (0, 1); (2, 1) ]
    (Faults.select_chans ~n:3 (Faults.Into 1));
  Alcotest.(check (list int)) "procs any" [ 0; 1; 2 ]
    (Faults.select_procs ~n:3 Faults.Any_proc);
  Alcotest.(check (list int)) "proc one" [ 2 ]
    (Faults.select_procs ~n:3 (Faults.Proc 2))

let test_faults_due () =
  let plan =
    [ Faults.at 5 (Faults.Flush Faults.Any_chan);
      Faults.at 2 (Faults.Flush Faults.Any_chan);
      Faults.at 9 (Faults.Flush Faults.Any_chan) ]
  in
  let fired, rest = Faults.due plan 5 in
  Alcotest.(check int) "two due" 2 (List.length fired);
  Alcotest.(check int) "one left" 1 (List.length rest);
  Alcotest.(check int) "last time" 9 (Faults.last_time rest);
  Alcotest.(check int) "empty plan" (-1) (Faults.last_time [])

let test_faults_due_same_time_order () =
  (* same-time events must fire in schedule (list) order *)
  let plan : (unit, unit) Faults.plan =
    [ Faults.at 5 (Faults.Flush Faults.Any_chan);
      Faults.at 5 (Faults.Drop { chan = Faults.Any_chan; count = 1; only = None });
      Faults.at 2 (Faults.Reorder { chan = Faults.Any_chan; count = 1 }) ]
  in
  let fired, rest = Faults.due plan 5 in
  Alcotest.(check (list string)) "schedule order"
    [ "flush"; "drop"; "reorder" ]
    (List.map Faults.label fired);
  Alcotest.(check int) "none left" 0 (List.length rest)

let test_faults_labels () =
  Alcotest.(check string) "flush" "flush" (Faults.label (Faults.Flush Faults.Any_chan));
  Alcotest.(check string) "drop" "drop"
    (Faults.label (Faults.Drop { chan = Faults.Any_chan; count = 1; only = None }));
  Alcotest.(check string) "split" "split"
    (Faults.label
       (Faults.Split { groups = [ [ 0 ] ]; from_t = 0; until_t = 1; mode = Faults.Lossy }));
  Alcotest.(check string) "delay" "delay"
    (Faults.label (Faults.Delay { chan = Faults.Any_chan; dist = Faults.Fixed 1 }));
  Alcotest.(check string) "heal" "heal" (Faults.label Faults.Heal)

let test_faults_split_groups () =
  (* unnamed pids form one implicit remainder group *)
  Alcotest.(check (list (list int))) "remainder group" [ [ 0; 1 ]; [ 2; 3 ] ]
    (Faults.split_groups ~n:4 [ [ 0; 1 ] ]);
  Alcotest.(check (list (list int))) "out-of-range pids filtered"
    [ [ 0 ]; [ 1 ]; [ 2; 3 ] ]
    (Faults.split_groups ~n:4 [ [ 0; 9 ]; [ 1 ] ]);
  Alcotest.(check (list (list int))) "empty groups dropped" [ [ 1 ]; [ 0; 2 ] ]
    (Faults.split_groups ~n:3 [ []; [ 1 ] ])

let test_faults_cross_pairs () =
  let sorted ps = List.sort compare ps in
  Alcotest.(check (list (pair int int))) "singleton vs rest"
    [ (0, 1); (0, 2); (1, 0); (2, 0) ]
    (sorted (Faults.cross_pairs ~n:3 [ [ 0 ] ]));
  Alcotest.(check (list (pair int int))) "two singletons"
    [ (0, 1); (1, 0) ]
    (sorted (Faults.cross_pairs ~n:2 [ [ 0 ]; [ 1 ] ]));
  Alcotest.(check (list (pair int int))) "one group = no cut" []
    (Faults.cross_pairs ~n:3 [ [ 0; 1; 2 ] ])

let test_faults_draw_delay () =
  let rng = Stdext.Rng.create 42 in
  Alcotest.(check int) "fixed" 5 (Faults.draw_delay (Faults.Fixed 5) rng);
  Alcotest.(check int) "fixed clamps negative" 0
    (Faults.draw_delay (Faults.Fixed (-3)) rng);
  for _ = 1 to 200 do
    let d = Faults.draw_delay (Faults.Uniform (2, 4)) rng in
    Alcotest.(check bool) "uniform in bounds" true (d >= 2 && d <= 4);
    let h = Faults.draw_delay (Faults.Heavy_tail { mean = 5; cap = 10 }) rng in
    Alcotest.(check bool) "heavy tail capped" true (h >= 0 && h <= 10)
  done;
  (* same seed, same draws *)
  let draws seed =
    let rng = Stdext.Rng.create seed in
    List.init 20 (fun _ ->
        Faults.draw_delay (Faults.Heavy_tail { mean = 30; cap = 120 }) rng)
  in
  Alcotest.(check (list int)) "deterministic" (draws 9) (draws 9)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let snap time event states : (int, string) Trace.snapshot =
  { Trace.time; event; states; channels = lazy [] }

let test_trace_helpers () =
  let tr =
    [ snap 0 Trace.Init [| 1 |];
      snap 1 (Trace.Fault { label = "drop" }) [| 2 |];
      snap 2 Trace.Stutter [| 3 |] ]
  in
  Alcotest.(check int) "length" 3 (Trace.length tr);
  Alcotest.(check (option int)) "last fault" (Some 1) (Trace.last_fault_index tr);
  Alcotest.(check int) "suffix" 2 (Trace.length (Trace.suffix_from tr 1));
  let mapped = Trace.map_states string_of_int tr in
  Alcotest.(check string) "map_states" "2" (List.nth mapped 1).Trace.states.(0)

let test_trace_no_fault () =
  let tr = [ snap 0 Trace.Init [| 0 |] ] in
  Alcotest.(check (option int)) "none" None (Trace.last_fault_index tr)

let test_trace_map_msgs () =
  let tr =
    [ { Trace.time = 0;
        event = Trace.Deliver { src = 0; dst = 1; msg = 41 };
        states = [| () |];
        channels = lazy [ (0, 1, [ 1; 2 ]) ] } ]
  in
  match Trace.map_msgs (fun x -> x + 1) tr with
  | [ ({ Trace.event = Trace.Deliver { msg = 42; _ }; _ } as s) ]
    when Trace.channels s = [ (0, 1, [ 2; 3 ]) ] ->
    ()
  | _ -> Alcotest.fail "map_msgs did not transform event and channels"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_counts () =
  let m = Metrics.create () in
  Metrics.note_send m ~label:"a";
  Metrics.note_send m ~label:"a";
  Metrics.note_send m ~label:"b";
  Metrics.note_delivery m;
  Metrics.note_dropped m 3;
  Alcotest.(check int) "sent" 3 (Metrics.sent m);
  Alcotest.(check int) "delivered" 1 (Metrics.delivered m);
  Alcotest.(check int) "dropped" 3 (Metrics.dropped m);
  Alcotest.(check int) "by label" 2 (Metrics.sends_with_label m "a");
  Alcotest.(check int) "missing label" 0 (Metrics.sends_with_label m "zzz");
  Alcotest.(check int) "matching" 3 (Metrics.sends_matching m (fun _ -> true));
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.sent m)

(* ------------------------------------------------------------------ *)
(* Engine: a tiny token-passing node for testing                       *)

module Token_node = struct
  type state = { self : Pid.t; n : int; has_token : bool; passes : int }
  type msg = Token

  let receive ~self:_ ~from:_ Token s = ({ s with has_token = true }, [])

  let actions ~self:_ s =
    if s.has_token then
      [ ( "pass",
          fun s ->
            ( { s with has_token = false; passes = s.passes + 1 },
              [ ((s.self + 1) mod s.n, Token) ] ) ) ]
    else []
end

module E = Engine.Make (Token_node)

let token_engine ?(record = true) ~n ~seed () =
  E.create (E.config ~record ~n ~seed ()) ~init:(fun self ->
      { Token_node.self; n; has_token = self = 0; passes = 0 })

let total_passes e =
  Array.fold_left (fun acc s -> acc + s.Token_node.passes) 0 (E.states e)

let test_engine_token_circulates () =
  let e = token_engine ~n:3 ~seed:1 () in
  E.run ~steps:300 e;
  (* exactly one token: total passes equals deliveries plus in flight *)
  Alcotest.(check bool) "token alive" true (total_passes e > 10);
  let holders =
    Array.to_list (E.states e)
    |> List.filter (fun s -> s.Token_node.has_token)
    |> List.length
  in
  let in_flight = Network.in_flight (E.network e) in
  Alcotest.(check int) "exactly one token" 1 (holders + in_flight)

let test_engine_determinism () =
  let run seed =
    let e = token_engine ~n:4 ~seed () in
    E.run ~steps:200 e;
    (total_passes e, Metrics.sent (E.metrics e))
  in
  Alcotest.(check (pair int int)) "same seed same run" (run 7) (run 7);
  Alcotest.(check bool) "different seed differs somewhere" true
    (run 7 <> run 8 || run 7 = run 8 (* tolerated: tiny state space *))

let test_engine_trace_records () =
  let e = token_engine ~n:2 ~seed:3 () in
  E.run ~steps:10 e;
  let tr = E.trace e in
  Alcotest.(check int) "init + 10 steps" 11 (Trace.length tr);
  match tr with
  | { Trace.event = Trace.Init; time = 0; _ } :: _ -> ()
  | _ -> Alcotest.fail "first snapshot must be Init at time 0"

let test_engine_no_record () =
  let e = token_engine ~record:false ~n:2 ~seed:3 () in
  E.run ~steps:10 e;
  Alcotest.(check int) "empty trace" 0 (Trace.length (E.trace e))

let test_engine_stutter_when_disabled () =
  (* no process holds the token and channels are empty: only stutters *)
  let e = token_engine ~n:2 ~seed:1 () in
  E.set_state e 0 { Token_node.self = 0; n = 2; has_token = false; passes = 0 };
  E.run ~steps:5 e;
  Alcotest.(check int) "all stutters" 5 (Metrics.stutters (E.metrics e))

let test_engine_fault_drop () =
  let e = token_engine ~n:2 ~seed:2 () in
  (* force a message into flight, then drop everything *)
  let rec until_in_flight budget =
    if budget = 0 then Alcotest.fail "token never sent"
    else if Network.in_flight (E.network e) = 0 then begin
      ignore (E.step e);
      until_in_flight (budget - 1)
    end
  in
  until_in_flight 100;
  E.apply_fault e (Faults.Drop { chan = Faults.Any_chan; count = 99; only = None });
  Alcotest.(check int) "net empty" 0 (Network.in_flight (E.network e));
  Alcotest.(check int) "fault counted" 1 (Metrics.faults (E.metrics e));
  E.run ~steps:20 e;
  Alcotest.(check int) "token lost: system dead" 20
    (Metrics.stutters (E.metrics e))

let test_engine_fault_duplicate_token () =
  let e = token_engine ~n:2 ~seed:2 () in
  let rec until_in_flight budget =
    if budget = 0 then Alcotest.fail "token never sent"
    else if Network.in_flight (E.network e) = 0 then begin
      ignore (E.step e);
      until_in_flight (budget - 1)
    end
  in
  until_in_flight 100;
  E.apply_fault e (Faults.Duplicate { chan = Faults.Any_chan; count = 1 });
  Alcotest.(check int) "two tokens in flight" 2 (Network.in_flight (E.network e))

let test_engine_mutate_state_fault () =
  let e = token_engine ~n:2 ~seed:5 () in
  E.apply_fault e
    (Faults.Mutate_state
       { proc = Faults.Proc 1;
         f = (fun _rng s -> { s with Token_node.has_token = true }) });
  let holders =
    Array.to_list (E.states e)
    |> List.filter (fun s -> s.Token_node.has_token)
    |> List.length
  in
  Alcotest.(check int) "second token injected" 2 holders

let test_engine_reset_state_fault () =
  let e = token_engine ~n:2 ~seed:5 () in
  E.apply_fault e
    (Faults.Reset_state
       { proc = Faults.Any_proc;
         f = (fun p -> { Token_node.self = p; n = 2; has_token = false; passes = 0 }) });
  Alcotest.(check int) "all reset" 0 (total_passes e)

(* step until the token is in flight (here: 0 -> 1 in a 2-ring) *)
let force_in_flight e =
  let rec go budget =
    if budget = 0 then Alcotest.fail "token never sent"
    else if Network.in_flight (E.network e) = 0 then begin
      ignore (E.step e);
      go (budget - 1)
    end
  in
  go 100

let test_engine_crash_pauses_internal_actions () =
  let e = token_engine ~n:2 ~seed:3 () in
  (* p0 holds the token; crash it and nothing can happen *)
  E.apply_fault e
    (Faults.Crash { proc = Faults.Proc 0; until_t = 8; lose_deliveries = false });
  Alcotest.(check bool) "crashed" true (E.crashed e 0);
  Alcotest.(check bool) "peer alive" false (E.crashed e 1);
  Alcotest.(check int) "crash counted" 1 (Metrics.crashes (E.metrics e));
  E.run ~steps:8 e;
  Alcotest.(check int) "stutters through the window" 8
    (Metrics.stutters (E.metrics e));
  Alcotest.(check bool) "recovered at until_t" false (E.crashed e 0);
  E.run ~steps:100 e;
  Alcotest.(check bool) "token circulates after recovery" true
    (total_passes e > 5)

let test_engine_crash_buffers_deliveries () =
  let e = token_engine ~n:2 ~seed:2 () in
  force_in_flight e;
  let until_t = E.time e + 10 in
  E.apply_fault e
    (Faults.Crash { proc = Faults.Proc 1; until_t; lose_deliveries = false });
  E.run ~steps:5 e;
  (* the token is addressed to the crashed process: delivery stalls,
     nothing else is enabled, the message survives *)
  Alcotest.(check int) "message buffered" 1 (Network.in_flight (E.network e));
  Alcotest.(check int) "no deliveries" 0 (Metrics.delivered (E.metrics e));
  E.run ~steps:100 e;
  Alcotest.(check bool) "delivered after recovery" true
    (Metrics.delivered (E.metrics e) > 0);
  Alcotest.(check bool) "token alive" true (total_passes e > 1)

let test_engine_crash_loses_deliveries () =
  let e = token_engine ~n:2 ~seed:2 () in
  force_in_flight e;
  let until_t = E.time e + 10 in
  E.apply_fault e
    (Faults.Crash { proc = Faults.Proc 1; until_t; lose_deliveries = true });
  E.run ~steps:1 e;
  (* the in-flight token is addressed to the dead process: lost *)
  Alcotest.(check int) "message lost" 0 (Network.in_flight (E.network e));
  Alcotest.(check bool) "loss counted" true (Metrics.dropped (E.metrics e) > 0);
  E.run ~steps:50 e;
  Alcotest.(check int) "token gone: system dead" 0
    (Metrics.delivered (E.metrics e))

let test_engine_crash_expired_window_noop () =
  let e = token_engine ~n:2 ~seed:1 () in
  E.run ~steps:5 e;
  E.apply_fault e
    (Faults.Crash { proc = Faults.Any_proc; until_t = 3; lose_deliveries = true });
  Alcotest.(check bool) "not crashed" false (E.crashed e 0 || E.crashed e 1);
  Alcotest.(check int) "no crash counted" 0 (Metrics.crashes (E.metrics e))

let test_engine_crash_label_and_determinism () =
  Alcotest.(check string) "label" "crash"
    (Faults.label
       (Faults.Crash
          { proc = Faults.Any_proc; until_t = 1; lose_deliveries = false }));
  let run () =
    let e = token_engine ~n:3 ~seed:11 () in
    let plan =
      [ Faults.at 20
          (Faults.Crash
             { proc = Faults.Proc 1; until_t = 60; lose_deliveries = true }) ]
    in
    E.run ~plan ~steps:300 e;
    (total_passes e, Metrics.sent (E.metrics e), Metrics.dropped (E.metrics e))
  in
  Alcotest.(check (triple int int int)) "same seed same run" (run ()) (run ())

let test_engine_split_lossy_loses_inflight_and_sends () =
  let e = token_engine ~n:2 ~seed:2 () in
  force_in_flight e;
  let until_t = E.time e + 10 in
  E.apply_fault e
    (Faults.Split
       { groups = [ [ 0 ] ]; from_t = E.time e; until_t; mode = Faults.Lossy });
  Alcotest.(check int) "in-flight token flushed" 0
    (Network.in_flight (E.network e));
  Alcotest.(check bool) "loss counted" true (Metrics.dropped (E.metrics e) > 0);
  E.run ~steps:50 e;
  Alcotest.(check int) "token gone: system dead" 0
    (Metrics.delivered (E.metrics e))

let test_engine_split_buffered_delivers_after_heal () =
  let e = token_engine ~n:2 ~seed:2 () in
  force_in_flight e;
  let until_t = E.time e + 10 in
  E.apply_fault e
    (Faults.Split
       { groups = [ [ 0 ] ];
         from_t = E.time e;
         until_t;
         mode = Faults.Buffered });
  E.run ~steps:5 e;
  Alcotest.(check int) "token held, not lost" 1
    (Network.in_flight (E.network e));
  Alcotest.(check int) "no deliveries in the window" 0
    (Metrics.delivered (E.metrics e));
  (* nothing is enabled and the only message is staged: without the
     staged-message check this would read as quiescent *)
  Alcotest.(check bool) "staged message blocks quiescence" false
    (E.quiescent e);
  E.run ~steps:100 e;
  Alcotest.(check bool) "flood delivered after heal" true
    (Metrics.delivered (E.metrics e) > 0);
  Alcotest.(check bool) "token alive" true (total_passes e > 1)

let test_engine_delay_slows_but_preserves () =
  let run ~delayed =
    let e = token_engine ~n:2 ~seed:6 () in
    if delayed then
      E.apply_fault e
        (Faults.Delay { chan = Faults.Any_chan; dist = Faults.Fixed 4 });
    E.run ~steps:200 e;
    (total_passes e, Metrics.delivered (E.metrics e))
  in
  let passes_plain, _ = run ~delayed:false in
  let passes_delayed, delivered_delayed = run ~delayed:true in
  Alcotest.(check bool) "token survives delays" true (passes_delayed > 5);
  Alcotest.(check bool) "nothing lost, only late" true (delivered_delayed > 5);
  Alcotest.(check bool) "delays slow the ring" true
    (passes_delayed < passes_plain)

let test_engine_split_delay_plan_deterministic () =
  let run () =
    let e = token_engine ~n:3 ~seed:13 () in
    let plan =
      [ Faults.at 10
          (Faults.Split
             { groups = [ [ 1 ] ]; from_t = 10; until_t = 40;
               mode = Faults.Buffered });
        Faults.at 40 Faults.Heal;
        Faults.at 50
          (Faults.Delay
             { chan = Faults.Any_chan;
               dist = Faults.Heavy_tail { mean = 3; cap = 12 } }) ]
    in
    E.run ~plan ~steps:300 e;
    (total_passes e, Metrics.sent (E.metrics e), Metrics.dropped (E.metrics e))
  in
  Alcotest.(check (triple int int int)) "same seed same run" (run ()) (run ())

let test_engine_split_expired_window_noop () =
  let e = token_engine ~n:2 ~seed:1 () in
  E.run ~steps:20 e;
  let before = Network.in_flight (E.network e) in
  E.apply_fault e
    (Faults.Split
       { groups = [ [ 0 ] ]; from_t = 0; until_t = 5; mode = Faults.Lossy });
  Alcotest.(check int) "nothing flushed" before
    (Network.in_flight (E.network e));
  E.run ~steps:100 e;
  Alcotest.(check bool) "ring unaffected" true (total_passes e > 5)

let test_engine_run_until () =
  let e = token_engine ~n:3 ~seed:9 () in
  let stop engine = total_passes engine >= 5 in
  match E.run_until ~max_steps:1000 ~stop e with
  | Some t ->
    Alcotest.(check bool) "stopped in time" true (t <= 1000);
    Alcotest.(check bool) "condition holds" true (stop e)
  | None -> Alcotest.fail "never reached 5 passes"

let test_engine_run_until_timeout () =
  let e = token_engine ~n:3 ~seed:9 () in
  Alcotest.(check (option int)) "unreachable condition" None
    (E.run_until ~max_steps:50 ~stop:(fun _ -> false) e)

let test_engine_planned_faults_fire () =
  let e = token_engine ~n:2 ~seed:4 () in
  let plan =
    [ Faults.at 3 (Faults.Flush Faults.Any_chan);
      Faults.at 7 (Faults.Flush Faults.Any_chan) ]
  in
  E.run ~plan ~steps:20 e;
  Alcotest.(check int) "both fired" 2 (Metrics.faults (E.metrics e));
  let fault_times =
    List.filter_map
      (fun (s : (Token_node.state, Token_node.msg) Trace.snapshot) ->
        match s.Trace.event with
        | Trace.Fault _ -> Some s.Trace.time
        | _ -> None)
      (E.trace e)
  in
  Alcotest.(check (list int)) "at the right times" [ 3; 7 ] fault_times

let test_engine_round_robin () =
  let e =
    E.create
      (E.config ~policy:E.Round_robin ~n:3 ~seed:1 ())
      ~init:(fun self ->
        { Token_node.self; n = 3; has_token = self = 0; passes = 0 })
  in
  E.run ~steps:300 e;
  Alcotest.(check bool) "token circulates" true (total_passes e > 10);
  (* deterministic: replaying gives the identical execution *)
  let e2 =
    E.create
      (E.config ~policy:E.Round_robin ~n:3 ~seed:1 ())
      ~init:(fun self ->
        { Token_node.self; n = 3; has_token = self = 0; passes = 0 })
  in
  E.run ~steps:300 e2;
  Alcotest.(check int) "replay identical" (total_passes e) (total_passes e2)

let prop_engine_deterministic =
  qtest "equal seeds give equal executions" ~count:25 QCheck2.Gen.small_int
    (fun seed ->
      let run () =
        let e = token_engine ~n:3 ~seed () in
        E.run ~steps:100 e;
        (total_passes e, Metrics.sent (E.metrics e), Metrics.delivered (E.metrics e))
      in
      run () = run ())

let () =
  Alcotest.run "sim"
    [ ("pid", [ Alcotest.test_case "range/others" `Quick test_pid_range_others ]);
      ( "network",
        [ Alcotest.test_case "send/deliver fifo" `Quick test_net_send_deliver_fifo;
          Alcotest.test_case "deliver empty" `Quick test_net_deliver_empty;
          Alcotest.test_case "persistence" `Quick test_net_persistence;
          Alcotest.test_case "nonempty" `Quick test_net_nonempty;
          Alcotest.test_case "drop_at" `Quick test_net_drop_at;
          Alcotest.test_case "duplicate_at" `Quick test_net_duplicate_at;
          Alcotest.test_case "corrupt_at" `Quick test_net_corrupt_at;
          Alcotest.test_case "reorder_at" `Quick test_net_reorder_at;
          Alcotest.test_case "flush" `Quick test_net_flush;
          Alcotest.test_case "snapshot/fold" `Quick test_net_snapshot_and_fold;
          Alcotest.test_case "pid bounds" `Quick test_net_pid_bounds;
          Alcotest.test_case "delay staging" `Quick test_net_send_delay_staged;
          Alcotest.test_case "advance monotone" `Quick test_net_advance_monotone;
          Alcotest.test_case "delay preserves fifo" `Quick
            test_net_delay_preserves_fifo;
          Alcotest.test_case "split lossy" `Quick test_net_apply_split_lossy;
          Alcotest.test_case "split buffered" `Quick
            test_net_apply_split_buffered;
          Alcotest.test_case "split overlap/past" `Quick
            test_net_split_overlap_and_past;
          Alcotest.test_case "staged in snapshot" `Quick
            test_net_staged_visible_to_snapshot;
          prop_net_fifo_random_ops ] );
      ( "faults",
        [ Alcotest.test_case "selectors" `Quick test_faults_selectors;
          Alcotest.test_case "due" `Quick test_faults_due;
          Alcotest.test_case "due same-time order" `Quick
            test_faults_due_same_time_order;
          Alcotest.test_case "labels" `Quick test_faults_labels;
          Alcotest.test_case "split groups" `Quick test_faults_split_groups;
          Alcotest.test_case "cross pairs" `Quick test_faults_cross_pairs;
          Alcotest.test_case "draw delay" `Quick test_faults_draw_delay ] );
      ( "trace",
        [ Alcotest.test_case "helpers" `Quick test_trace_helpers;
          Alcotest.test_case "no fault" `Quick test_trace_no_fault;
          Alcotest.test_case "map_msgs" `Quick test_trace_map_msgs ] );
      ("metrics", [ Alcotest.test_case "counts" `Quick test_metrics_counts ]);
      ( "engine",
        [ Alcotest.test_case "token circulates" `Quick test_engine_token_circulates;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "trace records" `Quick test_engine_trace_records;
          Alcotest.test_case "no record" `Quick test_engine_no_record;
          Alcotest.test_case "stutter" `Quick test_engine_stutter_when_disabled;
          Alcotest.test_case "drop fault" `Quick test_engine_fault_drop;
          Alcotest.test_case "duplicate fault" `Quick
            test_engine_fault_duplicate_token;
          Alcotest.test_case "mutate fault" `Quick test_engine_mutate_state_fault;
          Alcotest.test_case "reset fault" `Quick test_engine_reset_state_fault;
          Alcotest.test_case "crash pauses actions" `Quick
            test_engine_crash_pauses_internal_actions;
          Alcotest.test_case "crash buffers deliveries" `Quick
            test_engine_crash_buffers_deliveries;
          Alcotest.test_case "crash loses deliveries" `Quick
            test_engine_crash_loses_deliveries;
          Alcotest.test_case "crash expired window" `Quick
            test_engine_crash_expired_window_noop;
          Alcotest.test_case "crash label/determinism" `Quick
            test_engine_crash_label_and_determinism;
          Alcotest.test_case "split lossy" `Quick
            test_engine_split_lossy_loses_inflight_and_sends;
          Alcotest.test_case "split buffered" `Quick
            test_engine_split_buffered_delivers_after_heal;
          Alcotest.test_case "delay" `Quick test_engine_delay_slows_but_preserves;
          Alcotest.test_case "split/delay determinism" `Quick
            test_engine_split_delay_plan_deterministic;
          Alcotest.test_case "split expired window" `Quick
            test_engine_split_expired_window_noop;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "run_until timeout" `Quick
            test_engine_run_until_timeout;
          Alcotest.test_case "planned faults" `Quick
            test_engine_planned_faults_fire;
          Alcotest.test_case "round robin" `Quick test_engine_round_robin;
          prop_engine_deterministic ] ) ]
