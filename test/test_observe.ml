(* Tests for the streaming observation layer: observer combinators,
   the engine's step stream, and — the load-bearing property — exact
   equivalence between the online analyses and the offline
   trace-then-analyse path, across protocols, wrapper modes, and
   seeded fault plans (crashes included). *)

module H = Graybox.Harness
module S = Tme.Scenarios
module Stz = Graybox.Stabilize
module Ob = Sim.Observer

(* ------------------------------------------------------------------ *)
(* Observer combinators                                                *)

let dummy_step time : (int, unit) Ob.step =
  { Ob.time; event = Sim.Trace.Stutter; states = [||] }

let steps k = List.init k dummy_step

let counter () = Ob.fold ~init:0 ~f:(fun acc _ -> acc + 1)

let test_fold () =
  Alcotest.(check int) "counts steps" 5 (Ob.run (counter ()) (steps 5));
  Alcotest.(check int) "initial value" 0 (Ob.value (counter ()))

let test_map () =
  let o = Ob.map string_of_int (counter ()) in
  Alcotest.(check string) "mapped" "3" (Ob.run o (steps 3))

let test_pair () =
  let latest = Ob.fold ~init:(-1) ~f:(fun _ s -> s.Ob.time) in
  let c, t = Ob.run (Ob.pair (counter ()) latest) (steps 4) in
  Alcotest.(check (pair int int)) "both components" (4, 3) (c, t)

let test_premap () =
  (* shift times before they reach the inner observer *)
  let shifted = Ob.premap (fun s -> { s with Ob.time = s.Ob.time + 10 }) in
  let latest = Ob.fold ~init:(-1) ~f:(fun _ s -> s.Ob.time) in
  Alcotest.(check int) "premapped" 12 (Ob.run (shifted latest) (steps 3))

let test_sink () =
  let feed, peek = Ob.sink (counter ()) in
  Alcotest.(check int) "empty" 0 (peek ());
  List.iter feed (steps 3);
  Alcotest.(check int) "mid-stream" 3 (peek ());
  List.iter feed (steps 2);
  Alcotest.(check int) "after more" 5 (peek ())

(* ------------------------------------------------------------------ *)
(* Engine step stream                                                  *)

module R = H.Make (Tme.Ra_me)

let project (states : R.node array) = Array.map R.view states

let event_of = function
  | Sim.Trace.Init -> "init"
  | Sim.Trace.Deliver { src; dst; _ } -> Printf.sprintf "deliver(%d->%d)" src dst
  | Sim.Trace.Internal { pid; label } -> Printf.sprintf "%s(%d)" label pid
  | Sim.Trace.Fault { label } -> Printf.sprintf "fault(%s)" label
  | Sim.Trace.Stutter -> "stutter"

let test_stream_equals_trace () =
  let params = H.params ~n:3 () in
  let engine = R.make_engine ~record:true params ~seed:42 in
  let seen = ref [] in
  R.Run.add_observer engine (fun (s : (R.node, R.envelope) Ob.step) ->
      (* the states array is live: project (= copy) before retaining *)
      seen := (s.Ob.time, event_of s.Ob.event, project s.Ob.states) :: !seen);
  let plan =
    [ Sim.Faults.at 40 (R.fault_drop_any Sim.Faults.Any_chan ~count:2);
      Sim.Faults.at 90 (R.fault_corrupt_process Sim.Faults.Any_proc) ]
  in
  R.Run.run ~plan ~steps:200 engine;
  let observed = List.rev !seen in
  let recorded =
    List.map
      (fun (snap : (R.node, R.envelope) Sim.Trace.snapshot) ->
        (snap.Sim.Trace.time, event_of snap.Sim.Trace.event,
         project snap.Sim.Trace.states))
      (R.Run.trace engine)
  in
  Alcotest.(check int)
    "one step per snapshot" (List.length recorded) (List.length observed);
  List.iter2
    (fun (rt, re, rv) (ot, oe, ov) ->
      Alcotest.(check int) "same time" rt ot;
      Alcotest.(check string) "same event" re oe;
      Alcotest.(check bool) "same views" true (rv = ov))
    recorded observed

let test_observe_thunk () =
  let params = H.params ~n:3 () in
  let engine = R.make_engine ~record:false params ~seed:7 in
  let peek = R.Run.observe engine (counter ()) in
  Alcotest.(check int) "init replayed on attach" 1 (peek ());
  R.Run.run ~steps:50 engine;
  Alcotest.(check int) "one step per move" 51 (peek ())

(* ------------------------------------------------------------------ *)
(* Online analysis == offline analysis                                 *)

(* every registered protocol, the safety mutant included *)
let protocols_under_test =
  List.map
    (fun (e : Graybox.Registry.entry) ->
      (e.Graybox.Registry.name, e.Graybox.Registry.proto))
    (Graybox.Registry.all ())

let wrappers = [ ("off", H.Off); ("W'(8)", S.wrapped ~delta:8 ()) ]

let n = 4
let horizon = 1500

let plan_for seed =
  let cfg = Chaos.Plan_gen.config ~n ~horizon ~budget:4 () in
  Chaos.Plan_gen.generate (Stdext.Rng.create ((seed * 1_000_003) + 7919)) cfg

(* a plan with a lossy crash window, in case the generator draws none *)
let crash_plan =
  [ S.Corrupt_state { at = 120; procs = Sim.Faults.Any_proc };
    S.Crash
      { procs = Sim.Faults.Proc 1; from_t = 200; until_t = 260; lose = true } ]

let seeds = List.init 10 (fun i -> i + 1)

let test_online_fold_equals_offline () =
  (* Stabilize.Online over a recorded trace reproduces analyse and
     service_round_latency exactly, on every grid cell *)
  List.iter
    (fun (pname, proto) ->
      List.iter
        (fun (wname, wrapper) ->
          List.iter
            (fun seed ->
              let faults =
                if seed = List.hd seeds then crash_plan else plan_for seed
              in
              let r = S.run proto ~wrapper ~faults ~n ~seed ~steps:horizon in
              let cell = Printf.sprintf "%s/%s/seed %d" pname wname seed in
              let ol = Stz.Online.of_trace r.S.vtrace in
              Alcotest.(check bool)
                (cell ^ ": same analysis") true
                (Stz.Online.analysis ol = r.S.analysis);
              Alcotest.(check (option int))
                (cell ^ ": same latency")
                r.S.recovery_latency (Stz.Online.latency ol))
            seeds)
        wrappers)
    protocols_under_test

let test_streaming_run_equals_recorded () =
  (* the full streaming path: observer-fed analysis, entry log, and
     metrics equal the recorded run's, field for field *)
  List.iter
    (fun (pname, proto) ->
      List.iter
        (fun (wname, wrapper) ->
          List.iter
            (fun seed ->
              let faults =
                if seed = 1 then crash_plan else plan_for seed
              in
              let go streaming =
                S.run proto ~wrapper ~faults ~streaming ~n ~seed ~steps:horizon
              in
              let rec_ = go false and str = go true in
              let cell = Printf.sprintf "%s/%s/seed %d" pname wname seed in
              Alcotest.(check bool)
                (cell ^ ": analysis") true
                (str.S.analysis = rec_.S.analysis);
              Alcotest.(check (option int))
                (cell ^ ": latency")
                rec_.S.recovery_latency str.S.recovery_latency;
              Alcotest.(check bool)
                (cell ^ ": entry log") true
                (str.S.entry_log = rec_.S.entry_log);
              Alcotest.(check int)
                (cell ^ ": entries")
                rec_.S.total_entries str.S.total_entries;
              Alcotest.(check int)
                (cell ^ ": sent") rec_.S.sent_total str.S.sent_total;
              Alcotest.(check int)
                (cell ^ ": wrapper sends")
                rec_.S.wrapper_sends str.S.wrapper_sends;
              Alcotest.(check int)
                (cell ^ ": delivered") rec_.S.delivered str.S.delivered;
              Alcotest.(check bool) (cell ^ ": no trace kept") true
                (str.S.vtrace = []))
            [ 1; 2; 3 ])
        wrappers)
    (List.filter
       (fun (name, _) ->
         List.mem name [ "ra"; "lamport"; "lamport-unmod"; "central" ])
       protocols_under_test)

let test_streaming_deadlock_early_exit () =
  (* the §4 deadlock: streaming stops once permanently quiescent, yet
     reports the same analysis as the full recorded horizon *)
  let proto = List.assoc "ra" protocols_under_test in
  let faults = [ S.Drop_requests_window { from_t = 150; until_t = 210 } ] in
  let go streaming = S.run proto ~faults ~streaming ~n ~seed:1 ~steps:horizon in
  let rec_ = go false and str = go true in
  Alcotest.(check bool) "same analysis" true (str.S.analysis = rec_.S.analysis);
  Alcotest.(check bool) "deadlocked" false str.S.analysis.Stz.recovered;
  Alcotest.(check bool)
    (Printf.sprintf "early exit (%d < %d)" str.S.sim_steps horizon)
    true
    (str.S.sim_steps < horizon);
  Alcotest.(check int) "recorded runs the full horizon" horizon rec_.S.sim_steps

let test_live_monitors_equal_offline_report () =
  List.iter
    (fun (pname, proto) ->
      List.iter
        (fun seed ->
          let faults = plan_for seed in
          let rec_ = S.run proto ~faults ~n ~seed ~steps:horizon in
          let str =
            S.run proto ~faults ~streaming:true ~live_monitors:true ~n ~seed
              ~steps:horizon
          in
          let cell = Printf.sprintf "%s/seed %d" pname seed in
          match str.S.live_spec with
          | None -> Alcotest.fail (cell ^ ": live_spec missing")
          | Some live ->
            Alcotest.(check string)
              (cell ^ ": same TME_Spec report")
              (Unityspec.Report.to_string (S.tme_report rec_))
              (Unityspec.Report.to_string live))
        [ 1; 2; 3 ])
    (List.filter
       (fun (name, _) -> List.mem name [ "ra"; "lamport" ])
       protocols_under_test)

let test_stateful_monitor_latches () =
  let open Unityspec in
  let m =
    Online.stateful ~init:0 ~step:(fun sum x ->
        let sum = sum + x in
        ( sum,
          if sum > 10 then Temporal.Violated { at = sum; reason = "overflow" }
          else Temporal.Holds ))
  in
  Alcotest.(check bool) "holds initially" true
    (Online.verdict m = Temporal.Holds);
  let m = Online.feed_all m [ 4; 8 ] in
  (match Online.verdict m with
   | Temporal.Violated { at; _ } -> Alcotest.(check int) "at" 12 at
   | _ -> Alcotest.fail "must be violated");
  (* further input cannot repair a violated safety monitor *)
  let m = Online.feed_all m [ -100 ] in
  Alcotest.(check bool) "latched" true
    (match Online.verdict m with Temporal.Violated _ -> true | _ -> false)

let () =
  Alcotest.run "observe"
    [ ( "combinators",
        [ Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "pair" `Quick test_pair;
          Alcotest.test_case "premap" `Quick test_premap;
          Alcotest.test_case "sink" `Quick test_sink;
          Alcotest.test_case "stateful latches" `Quick
            test_stateful_monitor_latches ] );
      ( "engine",
        [ Alcotest.test_case "step stream == recorded trace" `Quick
            test_stream_equals_trace;
          Alcotest.test_case "observe thunk" `Quick test_observe_thunk ] );
      ( "equivalence",
        [ Alcotest.test_case "online fold == offline analyse (full grid)"
            `Quick test_online_fold_equals_offline;
          Alcotest.test_case "streaming run == recorded run" `Quick
            test_streaming_run_equals_recorded;
          Alcotest.test_case "deadlock early exit" `Quick
            test_streaming_deadlock_early_exit;
          Alcotest.test_case "live monitors == offline report" `Quick
            test_live_monitors_equal_offline_report ] ) ]
