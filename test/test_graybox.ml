(* Tests for the graybox core: the view abstraction, the wire
   vocabulary, the wrapper (checked against the paper's W definition),
   and the Lspec / TME-Spec monitors and stabilization analysis over
   hand-built traces. *)

open Graybox
open Clocks

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ts c p = Timestamp.make ~clock:c ~pid:p

let mk_view ?(clock = 0) ~self ~mode ~req locals =
  let local_req =
    List.fold_left
      (fun m (k, t) -> Sim.Pid.Map.add k t m)
      Sim.Pid.Map.empty locals
  in
  View.make ~self ~mode ~req ~local_req ~clock

(* ------------------------------------------------------------------ *)
(* Msg                                                                 *)

let test_msg_accessors () =
  let m = Msg.Request (ts 3 1) in
  Alcotest.(check bool) "is_request" true (Msg.is_request m);
  Alcotest.(check bool) "not reply" false (Msg.is_reply m);
  Alcotest.(check bool) "ts" true (Timestamp.equal (Msg.timestamp m) (ts 3 1));
  Alcotest.(check string) "pp" "req(3.1)" (Msg.to_string m);
  Alcotest.(check string) "rel" "rel(0.2)" (Msg.to_string (Msg.Release (ts 0 2)))

let test_msg_compare () =
  Alcotest.(check bool) "request before reply" true
    (Msg.compare (Msg.Request (ts 9 9)) (Msg.Reply (ts 0 0)) < 0);
  Alcotest.(check bool) "equal" true
    (Msg.equal (Msg.Reply (ts 1 2)) (Msg.Reply (ts 1 2)))

let prop_msg_corrupt_in_domain =
  qtest "corrupt stays in the message domain"
    QCheck2.Gen.(pair small_int (0 -- 20))
    (fun (seed, clock) ->
      let rng = Stdext.Rng.create seed in
      let m = Msg.corrupt ~n:4 rng (Msg.Request (ts clock 0)) in
      let t = Msg.timestamp m in
      t.Timestamp.clock >= 0 && t.Timestamp.pid >= 0 && t.Timestamp.pid < 4)

(* ------------------------------------------------------------------ *)
(* View                                                                 *)

let test_view_predicates () =
  let v = mk_view ~self:0 ~mode:View.Hungry ~req:(ts 2 0) [] in
  Alcotest.(check bool) "hungry" true (View.hungry v);
  Alcotest.(check bool) "not thinking" false (View.thinking v);
  Alcotest.(check string) "mode string" "h" (View.mode_to_string v.View.mode)

let test_view_local_req_default () =
  let v = mk_view ~self:0 ~mode:View.Thinking ~req:(ts 0 0) [] in
  Alcotest.(check bool) "defaults to zero" true
    (Timestamp.equal (View.local_req v 3) (Timestamp.zero ~pid:3))

let test_view_earliest () =
  let v =
    mk_view ~self:0 ~mode:View.Hungry ~req:(ts 1 0)
      [ (1, ts 5 1); (2, ts 9 2) ]
  in
  Alcotest.(check bool) "earliest" true (View.earliest v ~peers:[ 1; 2 ]);
  let v2 =
    mk_view ~self:0 ~mode:View.Hungry ~req:(ts 10 0)
      [ (1, ts 5 1); (2, ts 9 2) ]
  in
  Alcotest.(check bool) "not earliest" false (View.earliest v2 ~peers:[ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Wrapper: the paper's W                                               *)

let test_wrapper_not_hungry_silent () =
  let v = mk_view ~self:0 ~mode:View.Thinking ~req:(ts 5 0) [ (1, ts 0 1) ] in
  Alcotest.(check (list int)) "thinking: no targets" []
    (Wrapper.targets Wrapper.Refined v ~n:3);
  let v = { v with View.mode = View.Eating } in
  Alcotest.(check (list int)) "eating: no targets" []
    (Wrapper.targets Wrapper.Refined v ~n:3)

let test_wrapper_refined_targets () =
  (* j.REQ_1 lt REQ_j: resend to 1; j.REQ_2 is newer: skip *)
  let v =
    mk_view ~self:0 ~mode:View.Hungry ~req:(ts 5 0)
      [ (1, ts 2 1); (2, ts 8 2) ]
  in
  Alcotest.(check (list int)) "only stale peer" [ 1 ]
    (Wrapper.targets Wrapper.Refined v ~n:3);
  match Wrapper.fire Wrapper.Refined v ~n:3 with
  | [ (1, Msg.Request r) ] ->
    Alcotest.(check bool) "sends REQ_j" true (Timestamp.equal r (ts 5 0))
  | _ -> Alcotest.fail "expected a single request to 1"

let test_wrapper_unrefined_targets () =
  let v =
    mk_view ~self:0 ~mode:View.Hungry ~req:(ts 5 0)
      [ (1, ts 2 1); (2, ts 8 2) ]
  in
  Alcotest.(check (list int)) "all peers" [ 1; 2 ]
    (Wrapper.targets Wrapper.Unrefined v ~n:3)

let test_wrapper_consistent_state_silent () =
  (* everyone's copy is past REQ_j: the refined wrapper is quiet *)
  let v =
    mk_view ~self:1 ~mode:View.Hungry ~req:(ts 3 1)
      [ (0, ts 7 0); (2, ts 4 2) ]
  in
  Alcotest.(check (list int)) "no stale copies" []
    (Wrapper.targets Wrapper.Refined v ~n:3)

let prop_wrapper_refined_subset_unrefined =
  qtest "refined targets are a subset of unrefined"
    QCheck2.Gen.(
      let* req_c = 0 -- 10 in
      let* l1 = 0 -- 10 in
      let* l2 = 0 -- 10 in
      return (req_c, l1, l2))
    (fun (req_c, l1, l2) ->
      let v =
        mk_view ~self:0 ~mode:View.Hungry ~req:(ts req_c 0)
          [ (1, ts l1 1); (2, ts l2 2) ]
      in
      let r = Wrapper.targets Wrapper.Refined v ~n:3 in
      let u = Wrapper.targets Wrapper.Unrefined v ~n:3 in
      List.for_all (fun k -> List.mem k u) r)

let prop_wrapper_sends_own_request =
  qtest "wrapper messages carry REQ_j verbatim"
    QCheck2.Gen.(pair (0 -- 10) (0 -- 10))
    (fun (req_c, l1) ->
      let v =
        mk_view ~self:0 ~mode:View.Hungry ~req:(ts req_c 0) [ (1, ts l1 1) ]
      in
      List.for_all
        (fun (_, m) ->
          match m with
          | Msg.Request r -> Timestamp.equal r (ts req_c 0)
          | Msg.Reply _ | Msg.Release _ -> false)
        (Wrapper.fire Wrapper.Refined v ~n:2))

(* ------------------------------------------------------------------ *)
(* Monitors over hand-built traces                                      *)

let snap ?(event = Sim.Trace.Stutter) time states channels :
    (View.t, Msg.t) Sim.Trace.snapshot =
  { Sim.Trace.time; event; states; channels = lazy channels }

let two_views m0 m1 =
  [| mk_view ~self:0 ~mode:m0 ~req:(ts 1 0) [ (1, ts 2 1) ];
     mk_view ~self:1 ~mode:m1 ~req:(ts 2 1) [ (0, ts 1 0) ] |]

let test_me1_detects_double_eating () =
  let tr =
    [ snap 0 (two_views View.Thinking View.Thinking) [];
      snap 1 (two_views View.Eating View.Eating) [] ]
  in
  (match Tme_spec.me1 tr with
   | Unityspec.Temporal.Violated { at = 1; _ } -> ()
   | _ -> Alcotest.fail "expected ME1 violation at 1");
  Alcotest.(check int) "violation count" 1 (Tme_spec.me1_violations tr)

let test_me2_pending_and_discharged () =
  let tr =
    [ snap 0 (two_views View.Hungry View.Thinking) [];
      snap 1 (two_views View.Eating View.Thinking) [] ]
  in
  Alcotest.(check bool) "discharged" true
    (Unityspec.Temporal.is_ok (Tme_spec.me2 ~n:2 tr));
  let stuck =
    [ snap 0 (two_views View.Hungry View.Thinking) [];
      snap 1 (two_views View.Hungry View.Thinking) [] ]
  in
  match Tme_spec.me2 ~n:2 stuck with
  | Unityspec.Temporal.Pending _ -> ()
  | _ -> Alcotest.fail "expected pending starvation"

let test_me3_causal_violation () =
  let vc0 = Vector_clock.of_list [ 1; 0 ] in
  let vc1 = Vector_clock.of_list [ 1; 1 ] in
  (* entry by 1 (request vc1) then entry by 0 whose request vc0 hb vc1:
     order respects causality only if vc0's entry came first *)
  let entries_ok : Harness.entry_record list =
    [ { entry_time = 1; entry_pid = 0; entry_req = ts 1 0; entry_req_vc = vc0 };
      { entry_time = 2; entry_pid = 1; entry_req = ts 2 1; entry_req_vc = vc1 } ]
  in
  Alcotest.(check bool) "causal order ok" true
    (Unityspec.Temporal.is_ok (Tme_spec.me3 entries_ok));
  let entries_bad =
    [ { Harness.entry_time = 1; entry_pid = 1; entry_req = ts 2 1; entry_req_vc = vc1 };
      { Harness.entry_time = 2; entry_pid = 0; entry_req = ts 1 0; entry_req_vc = vc0 } ]
  in
  match Tme_spec.me3 entries_bad with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "expected FCFS violation"

let test_me3_concurrent_requests_any_order () =
  let vc_a = Vector_clock.of_list [ 1; 0 ] in
  let vc_b = Vector_clock.of_list [ 0; 1 ] in
  let entries : Harness.entry_record list =
    [ { entry_time = 1; entry_pid = 1; entry_req = ts 2 1; entry_req_vc = vc_b };
      { entry_time = 2; entry_pid = 0; entry_req = ts 1 0; entry_req_vc = vc_a } ]
  in
  Alcotest.(check bool) "concurrent: any order fine" true
    (Unityspec.Temporal.is_ok (Tme_spec.me3 entries))

let test_lspec_flow_catches_illegal_transition () =
  let tr =
    [ snap 0 (two_views View.Thinking View.Thinking) [];
      snap 1 (two_views View.Eating View.Thinking) [] ]
  in
  match Lspec.flow ~n:2 tr with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "thinking -> eating must violate Flow Spec"

let test_lspec_flow_exempts_faults () =
  let tr =
    [ snap 0 (two_views View.Thinking View.Thinking) [];
      snap ~event:(Sim.Trace.Fault { label = "mutate" }) 1
        (two_views View.Eating View.Thinking) [] ]
  in
  Alcotest.(check bool) "fault step exempt" true
    (Unityspec.Temporal.is_ok (Lspec.flow ~n:2 tr))

let test_lspec_request_safety () =
  let v req = [| mk_view ~self:0 ~mode:View.Hungry ~req [];
                 mk_view ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [] |] in
  let ok_tr = [ snap 0 (v (ts 1 0)) []; snap 1 (v (ts 1 0)) [] ] in
  Alcotest.(check bool) "frozen req ok" true
    (Unityspec.Temporal.is_ok (Lspec.request_safety ~n:2 ok_tr));
  let bad_tr = [ snap 0 (v (ts 1 0)) []; snap 1 (v (ts 5 0)) [] ] in
  match Lspec.request_safety ~n:2 bad_tr with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "changing REQ while hungry must violate"

let test_lspec_cs_entry_safety () =
  let hungry_stale =
    [| mk_view ~self:0 ~mode:View.Hungry ~req:(ts 5 0) [ (1, ts 1 1) ];
       mk_view ~self:1 ~mode:View.Thinking ~req:(ts 1 1) [ (0, ts 5 0) ] |]
  in
  let entered =
    [| mk_view ~self:0 ~mode:View.Eating ~req:(ts 5 0) [ (1, ts 1 1) ];
       mk_view ~self:1 ~mode:View.Thinking ~req:(ts 1 1) [ (0, ts 5 0) ] |]
  in
  let tr = [ snap 0 hungry_stale []; snap 1 entered [] ] in
  match Lspec.cs_entry_safety ~n:2 tr with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "entering while not earliest must violate"

let test_lspec_cs_release () =
  let good =
    [| mk_view ~clock:4 ~self:0 ~mode:View.Thinking ~req:(ts 4 0) [];
       mk_view ~clock:0 ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [] |]
  in
  Alcotest.(check bool) "req tracks clock" true
    (Unityspec.Temporal.is_ok (Lspec.cs_release ~n:2 [ snap 0 good [] ]));
  let bad =
    [| mk_view ~clock:4 ~self:0 ~mode:View.Thinking ~req:(ts 1 0) [];
       mk_view ~clock:0 ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [] |]
  in
  match Lspec.cs_release ~n:2 [ snap 0 bad [] ] with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "stale REQ while thinking must violate"

let test_lspec_fifo_catches_head_insertion () =
  let states = two_views View.Thinking View.Thinking in
  let tr =
    [ snap 0 states [ (0, 1, [ Msg.Reply (ts 1 0) ]) ];
      snap 1 states [ (0, 1, [ Msg.Reply (ts 9 0); Msg.Reply (ts 1 0) ]) ] ]
  in
  match Lspec.communication_fifo ~n:2 tr with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "front insertion must violate FIFO"

let test_lspec_fifo_allows_appends_and_delivery () =
  let states = two_views View.Thinking View.Thinking in
  let tr =
    [ snap 0 states [ (0, 1, [ Msg.Reply (ts 1 0) ]) ];
      snap 1 states [ (0, 1, [ Msg.Reply (ts 1 0); Msg.Reply (ts 2 0) ]) ];
      snap 2
        ~event:(Sim.Trace.Deliver { src = 0; dst = 1; msg = Msg.Reply (ts 1 0) })
        states
        [ (0, 1, [ Msg.Reply (ts 2 0) ]) ] ]
  in
  Alcotest.(check bool) "fifo ok" true
    (Unityspec.Temporal.is_ok (Lspec.communication_fifo ~n:2 tr))

let test_lspec_init_spec () =
  let init_views =
    [| mk_view ~clock:0 ~self:0 ~mode:View.Thinking ~req:(ts 0 0)
         [ (1, ts 0 1) ];
       mk_view ~clock:0 ~self:1 ~mode:View.Thinking ~req:(ts 0 1)
         [ (0, ts 0 0) ] |]
  in
  Alcotest.(check bool) "proper init" true
    (Unityspec.Temporal.is_ok (Lspec.init_spec ~n:2 [ snap 0 init_views [] ]));
  let bad = two_views View.Hungry View.Thinking in
  match Lspec.init_spec ~n:2 [ snap 0 bad [] ] with
  | Unityspec.Temporal.Violated { at = 0; _ } -> ()
  | _ -> Alcotest.fail "hungry start must violate Init"

(* ------------------------------------------------------------------ *)
(* Stabilize                                                            *)

let test_stabilize_clean_trace () =
  let states = two_views View.Thinking View.Thinking in
  let tr = List.init 10 (fun i -> snap i states []) in
  let a = Stabilize.analyse tr in
  Alcotest.(check bool) "recovered" true a.Stabilize.recovered;
  Alcotest.(check (option int)) "no fault" None a.Stabilize.last_fault_index;
  Alcotest.(check int) "no violations" 0 a.Stabilize.me1_violations

let test_stabilize_detects_starvation () =
  let stuck = two_views View.Hungry View.Thinking in
  let tr = List.init 50 (fun i -> snap i stuck []) in
  let a = Stabilize.analyse ~tail_margin:10 tr in
  Alcotest.(check bool) "not recovered" false a.Stabilize.recovered;
  Alcotest.(check (list int)) "process 0 starves" [ 0 ] a.Stabilize.starving

let test_stabilize_recovery_after_fault () =
  let thinking = two_views View.Thinking View.Thinking in
  let double = two_views View.Eating View.Eating in
  let tr =
    [ snap 0 thinking [];
      snap ~event:(Sim.Trace.Fault { label = "mutate" }) 1 double [];
      snap 2 double []; (* still violating *)
      snap 3 thinking [];
      snap 4 thinking [];
      snap 5 thinking [] ]
  in
  let a = Stabilize.analyse ~tail_margin:2 tr in
  Alcotest.(check bool) "recovered" true a.Stabilize.recovered;
  Alcotest.(check (option int)) "fault at 1" (Some 1) a.Stabilize.last_fault_index;
  Alcotest.(check int) "violations counted" 2 a.Stabilize.me1_violations;
  match a.Stabilize.recovery_steps with
  | Some s -> Alcotest.(check bool) "positive recovery" true (s >= 2)
  | None -> Alcotest.fail "expected recovery steps"

let test_stabilize_empty_trace () =
  let a = Stabilize.analyse [] in
  Alcotest.(check bool) "not recovered" false a.Stabilize.recovered;
  Alcotest.(check int) "len" 0 a.Stabilize.trace_len

let test_service_round_latency () =
  let e0 = two_views View.Eating View.Thinking in
  let e1 = two_views View.Thinking View.Eating in
  let t = two_views View.Thinking View.Thinking in
  let tr = [ snap 0 t []; snap 1 e0 []; snap 2 t []; snap 3 e1 []; snap 4 t [] ] in
  Alcotest.(check (option int)) "both served by t=3" (Some 3)
    (Stabilize.service_round_latency tr ~after:0);
  Alcotest.(check (option int)) "never after 3" None
    (Stabilize.service_round_latency tr ~after:3)

let test_lspec_timestamp_monotone_violation () =
  (* a clock going backwards must violate Timestamp Spec *)
  let v clock =
    [| mk_view ~clock ~self:0 ~mode:View.Hungry ~req:(ts 1 0) [];
       mk_view ~clock:0 ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [] |]
  in
  let tr = [ snap 0 (v 5) []; snap 1 (v 3) [] ] in
  (match Lspec.timestamp_spec ~n:2 tr with
   | Unityspec.Temporal.Violated _ -> ()
   | _ -> Alcotest.fail "clock regression must violate");
  Alcotest.(check bool) "monotone ok" true
    (Unityspec.Temporal.is_ok
       (Lspec.timestamp_spec ~n:2 [ snap 0 (v 3) []; snap 1 (v 5) [] ]))

let test_lspec_timestamp_receive_rule () =
  (* a delivery whose receiver's clock stays below the message stamp *)
  let v clock =
    [| mk_view ~clock ~self:0 ~mode:View.Thinking ~req:(ts clock 0) [];
       mk_view ~clock:0 ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [] |]
  in
  let deliver =
    Sim.Trace.Deliver { src = 1; dst = 0; msg = Msg.Request (ts 9 1) }
  in
  let tr = [ snap 0 (v 0) []; snap ~event:deliver 1 (v 2) [] ] in
  match Lspec.timestamp_spec ~n:2 tr with
  | Unityspec.Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "receive rule must pull the clock forward"

let test_lspec_request_liveness_detects_and_discharges () =
  (* j hungry, k unaware, no request in flight: pending; then k hears *)
  let unaware =
    [| mk_view ~self:0 ~mode:View.Hungry ~req:(ts 5 0) [ (1, ts 9 1) ];
       mk_view ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [ (0, ts 1 0) ] |]
  in
  let heard =
    [| unaware.(0);
       mk_view ~self:1 ~mode:View.Thinking ~req:(ts 0 1) [ (0, ts 5 0) ] |]
  in
  (match Lspec.request_liveness ~n:2 [ snap 0 unaware [] ] with
   | Unityspec.Temporal.Pending _ -> ()
   | _ -> Alcotest.fail "expected an open obligation");
  Alcotest.(check bool) "discharged once heard" true
    (Unityspec.Temporal.is_ok
       (Lspec.request_liveness ~n:2 [ snap 0 unaware []; snap 1 heard [] ]));
  (* a request in flight also silences the clause *)
  let in_flight =
    [ snap 0 unaware [ (0, 1, [ Msg.Request (ts 5 0) ]) ] ]
  in
  Alcotest.(check bool) "in-flight request counts" true
    (Unityspec.Temporal.is_ok (Lspec.request_liveness ~n:2 in_flight))

let test_service_times () =
  let h = two_views View.Hungry View.Thinking in
  let e = two_views View.Eating View.Thinking in
  let t = two_views View.Thinking View.Thinking in
  (* hungry at 1-2, eats at 3; hungry again at 5, aborted to thinking *)
  let tr =
    [ snap 0 t []; snap 1 h []; snap 2 h []; snap 3 e []; snap 4 t [];
      snap 5 h []; snap 6 t [] ]
  in
  Alcotest.(check (list int)) "one completed service of 2 steps" [ 2 ]
    (Stabilize.service_times tr);
  Alcotest.(check (list int)) "after cutoff excludes it" []
    (Stabilize.service_times ~after:4 tr)

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)

let test_harness_params_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Harness.params: need at least two processes")
    (fun () -> ignore (Harness.params ~n:1 ()));
  Alcotest.check_raises "bad ranges"
    (Invalid_argument "Harness.params: bad client ranges") (fun () ->
      ignore (Harness.params ~think_min:5 ~think_max:2 ~n:3 ()));
  Alcotest.check_raises "bad passive"
    (Invalid_argument "Harness.params: passive pid out of range") (fun () ->
      ignore (Harness.params ~passive:[ 7 ] ~n:3 ()))

module HR = Harness.Make (Tme.Ra_me)

let test_harness_entry_log_matches_counter () =
  let params = Harness.params ~n:3 () in
  let engine = HR.make_engine params ~seed:5 in
  HR.Run.run ~steps:2500 engine;
  Alcotest.(check int) "entry log length = oracle counter"
    (HR.total_entries engine)
    (List.length (HR.entry_log engine));
  (* every logged entry carries the request active just before it *)
  List.iter
    (fun (e : Harness.entry_record) ->
      Alcotest.(check bool) "entry pid in range" true
        (e.entry_pid >= 0 && e.entry_pid < 3))
    (HR.entry_log engine)

let test_harness_view_trace_shape () =
  let params = Harness.params ~n:3 () in
  let engine = HR.make_engine params ~seed:5 in
  HR.Run.run ~steps:500 engine;
  let tr = HR.view_trace engine in
  Alcotest.(check int) "init + steps snapshots" 501 (List.length tr);
  List.iter
    (fun (snapshot : (View.t, Msg.t) Sim.Trace.snapshot) ->
      Alcotest.(check int) "3 views" 3 (Array.length snapshot.states))
    tr

let () =
  Alcotest.run "graybox"
    [ ( "msg",
        [ Alcotest.test_case "accessors" `Quick test_msg_accessors;
          Alcotest.test_case "compare" `Quick test_msg_compare;
          prop_msg_corrupt_in_domain ] );
      ( "view",
        [ Alcotest.test_case "predicates" `Quick test_view_predicates;
          Alcotest.test_case "local_req default" `Quick test_view_local_req_default;
          Alcotest.test_case "earliest" `Quick test_view_earliest ] );
      ( "wrapper",
        [ Alcotest.test_case "silent unless hungry" `Quick
            test_wrapper_not_hungry_silent;
          Alcotest.test_case "refined targets" `Quick test_wrapper_refined_targets;
          Alcotest.test_case "unrefined targets" `Quick
            test_wrapper_unrefined_targets;
          Alcotest.test_case "consistent: silent" `Quick
            test_wrapper_consistent_state_silent;
          prop_wrapper_refined_subset_unrefined;
          prop_wrapper_sends_own_request ] );
      ( "tme_spec",
        [ Alcotest.test_case "ME1 violation" `Quick test_me1_detects_double_eating;
          Alcotest.test_case "ME2" `Quick test_me2_pending_and_discharged;
          Alcotest.test_case "ME3 causal" `Quick test_me3_causal_violation;
          Alcotest.test_case "ME3 concurrent" `Quick
            test_me3_concurrent_requests_any_order ] );
      ( "lspec",
        [ Alcotest.test_case "flow violation" `Quick
            test_lspec_flow_catches_illegal_transition;
          Alcotest.test_case "flow fault-exempt" `Quick test_lspec_flow_exempts_faults;
          Alcotest.test_case "request safety" `Quick test_lspec_request_safety;
          Alcotest.test_case "entry safety" `Quick test_lspec_cs_entry_safety;
          Alcotest.test_case "cs release" `Quick test_lspec_cs_release;
          Alcotest.test_case "fifo violation" `Quick
            test_lspec_fifo_catches_head_insertion;
          Alcotest.test_case "fifo ok" `Quick
            test_lspec_fifo_allows_appends_and_delivery;
          Alcotest.test_case "init spec" `Quick test_lspec_init_spec;
          Alcotest.test_case "timestamp monotone" `Quick
            test_lspec_timestamp_monotone_violation;
          Alcotest.test_case "timestamp receive rule" `Quick
            test_lspec_timestamp_receive_rule;
          Alcotest.test_case "request liveness" `Quick
            test_lspec_request_liveness_detects_and_discharges ] );
      ( "stabilize",
        [ Alcotest.test_case "clean trace" `Quick test_stabilize_clean_trace;
          Alcotest.test_case "starvation" `Quick test_stabilize_detects_starvation;
          Alcotest.test_case "recovery" `Quick test_stabilize_recovery_after_fault;
          Alcotest.test_case "empty" `Quick test_stabilize_empty_trace;
          Alcotest.test_case "service round" `Quick test_service_round_latency;
          Alcotest.test_case "service times" `Quick test_service_times ] );
      ( "harness",
        [ Alcotest.test_case "params validation" `Quick
            test_harness_params_validation;
          Alcotest.test_case "entry log" `Quick
            test_harness_entry_log_matches_counter;
          Alcotest.test_case "view trace shape" `Quick
            test_harness_view_trace_shape ] ) ]
