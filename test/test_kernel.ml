(* Tests for the Section-2 kernel: transition-system semantics, the
   implements / everywhere-implements / stabilizing-to relations, box
   composition, the Figure 1 counterexample, and property tests of
   Lemma 0 and Theorem 1 over random finite systems. *)

open Kernel

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Tsys basics                                                         *)

let ring3 =
  Tsys.create ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] ~init:[ 0 ] ()

let test_create_and_accessors () =
  Alcotest.(check int) "n" 3 (Tsys.n_states ring3);
  Alcotest.(check bool) "edge" true (Tsys.has_edge ring3 0 1);
  Alcotest.(check bool) "no edge" false (Tsys.has_edge ring3 1 0);
  Alcotest.(check (list int)) "init" [ 0 ] (Tsys.init_states ring3);
  Alcotest.(check (list int)) "succ" [ 1 ] (Tsys.successors ring3 0);
  Alcotest.(check string) "default name" "s2" (Tsys.name ring3 2)

let test_create_validates () =
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Tsys.create(edge dst): state 5 out of range [0,3)")
    (fun () -> ignore (Tsys.create ~n:3 ~edges:[ (0, 5) ] ~init:[] ()));
  Alcotest.check_raises "bad init"
    (Invalid_argument "Tsys.create(init): state 9 out of range [0,3)")
    (fun () -> ignore (Tsys.create ~n:3 ~edges:[] ~init:[ 9 ] ()))

let test_deadlock_detection () =
  let t = Tsys.create ~n:2 ~edges:[ (0, 1) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "0 live" false (Tsys.is_deadlock t 0);
  Alcotest.(check bool) "1 dead" true (Tsys.is_deadlock t 1)

let test_reachable () =
  let t = Tsys.create ~n:4 ~edges:[ (0, 1); (1, 2) ] ~init:[ 0 ] () in
  let r = Tsys.reachable t ~from:[ 0 ] in
  Alcotest.(check (array bool)) "reach" [| true; true; true; false |] r

let test_box_unions_edges_intersects_init () =
  let a = Tsys.create ~n:3 ~edges:[ (0, 1) ] ~init:[ 0; 1 ] () in
  let b = Tsys.create ~n:3 ~edges:[ (1, 2) ] ~init:[ 1; 2 ] () in
  let ab = Tsys.box a b in
  Alcotest.(check bool) "edge from a" true (Tsys.has_edge ab 0 1);
  Alcotest.(check bool) "edge from b" true (Tsys.has_edge ab 1 2);
  Alcotest.(check (list int)) "common init" [ 1 ] (Tsys.init_states ab)

let test_box_size_mismatch () =
  let a = Tsys.create ~n:2 ~edges:[] ~init:[ 0 ] () in
  let b = Tsys.create ~n:3 ~edges:[] ~init:[ 0 ] () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Tsys.box: state-space mismatch") (fun () ->
      ignore (Tsys.box a b))

let test_everywhere_implements_edge_subset () =
  let a = Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  let c = Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "equal systems" true (Tsys.everywhere_implements c a);
  let c_extra =
    Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0); (0, 0) ] ~init:[ 0 ] ()
  in
  Alcotest.(check bool) "extra edge" false (Tsys.everywhere_implements c_extra a)

let test_everywhere_implements_deadlock_condition () =
  (* c's deadlock at 1 is not a deadlock of a: c's finite computation
     (0,1) is not maximal in a, hence not a computation of a *)
  let a = Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  let c = Tsys.create ~n:2 ~edges:[ (0, 1) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "deadlock mismatch" false
    (Tsys.everywhere_implements c a)

let test_implements_from_init_ignores_unreachable () =
  (* c has a rogue edge 2->0, but state 2 is unreachable from init *)
  let a = Tsys.create ~n:3 ~edges:[ (0, 1); (1, 0); (2, 2) ] ~init:[ 0 ] () in
  let c = Tsys.create ~n:3 ~edges:[ (0, 1); (1, 0); (2, 0) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "init ok" true (Tsys.implements_from_init c a);
  Alcotest.(check bool) "everywhere not ok" false
    (Tsys.everywhere_implements c a)

let test_implements_from_init_requires_init_subset () =
  let a = Tsys.create ~n:2 ~edges:[ (0, 0); (1, 1) ] ~init:[ 0 ] () in
  let c = Tsys.create ~n:2 ~edges:[ (0, 0); (1, 1) ] ~init:[ 1 ] () in
  Alcotest.(check bool) "init not subset" false (Tsys.implements_from_init c a)

let test_stabilizing_self () =
  Alcotest.(check bool) "ring stabilizes to itself" true
    (Tsys.is_stabilizing_to ring3 ring3)

let test_stabilizing_bad_cycle () =
  (* a cycle outside the initialized part prevents stabilization *)
  let c =
    Tsys.create ~n:4 ~edges:[ (0, 1); (1, 0); (2, 3); (3, 2) ] ~init:[ 0 ] ()
  in
  Alcotest.(check bool) "bad cycle" false (Tsys.is_stabilizing_to c c);
  match Tsys.stabilization_counterexample c c with
  | Some witness ->
    Alcotest.(check bool) "witness is a path" true
      (Tsys.is_computation c witness);
    Alcotest.(check bool) "witness visits bad states" true
      (List.exists (fun s -> s = 2 || s = 3) witness)
  | None -> Alcotest.fail "expected counterexample"

let test_stabilizing_transient_escape () =
  (* same bad states but with an escape edge and no bad cycle *)
  let c =
    Tsys.create ~n:4 ~edges:[ (0, 1); (1, 0); (2, 3); (3, 0) ] ~init:[ 0 ] ()
  in
  Alcotest.(check bool) "escapes" true (Tsys.is_stabilizing_to c c);
  Alcotest.(check bool) "no counterexample" true
    (Tsys.stabilization_counterexample c c = None)

let test_stabilizing_dead_end () =
  let a = Tsys.create ~n:2 ~edges:[ (0, 0) ] ~init:[ 0 ] () in
  let c = Tsys.create ~n:2 ~edges:[ (0, 0) ] ~init:[ 0 ] () in
  (* state 1 is a dead end in c and a deadlock of a, but it is not
     reachable from a's initial states, so the suffix (1) is not a
     suffix of any initialized computation *)
  Alcotest.(check bool) "dead end blocks" false (Tsys.is_stabilizing_to c a)

let test_computations_upto () =
  let paths = Tsys.computations_upto ring3 ~from:0 4 in
  Alcotest.(check (list (list int))) "single path" [ [ 0; 1; 2; 0; 1 ] ] paths;
  let t = Tsys.create ~n:3 ~edges:[ (0, 1); (0, 2) ] ~init:[ 0 ] () in
  let paths = Tsys.computations_upto t ~from:0 2 in
  Alcotest.(check (list (list int))) "branches" [ [ 0; 1 ]; [ 0; 2 ] ] paths

let test_sample_computation () =
  let rng = Stdext.Rng.create 3 in
  let path = Tsys.sample_computation rng ring3 ~from:0 10 in
  Alcotest.(check bool) "valid path" true (Tsys.is_computation ring3 path);
  Alcotest.(check int) "length" 11 (List.length path)

let test_is_computation () =
  Alcotest.(check bool) "valid" true (Tsys.is_computation ring3 [ 0; 1; 2; 0 ]);
  Alcotest.(check bool) "invalid" false (Tsys.is_computation ring3 [ 0; 2 ]);
  Alcotest.(check bool) "empty" false (Tsys.is_computation ring3 []);
  Alcotest.(check bool) "out of range" false (Tsys.is_computation ring3 [ 7 ])

let test_restrict_edges () =
  let t = Tsys.restrict_edges ring3 ~keep:(fun u _ -> u <> 2) in
  Alcotest.(check bool) "kept" true (Tsys.has_edge t 0 1);
  Alcotest.(check bool) "removed" false (Tsys.has_edge t 2 0)

let test_equal () =
  Alcotest.(check bool) "reflexive" true (Tsys.equal ring3 ring3);
  let other = Tsys.create ~n:3 ~edges:[ (0, 1) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "different" false (Tsys.equal ring3 other)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let test_fig1_implements_from_init () =
  Alcotest.(check bool) "[C => A]init" true
    (Tsys.implements_from_init Fig1.c Fig1.a)

let test_fig1_not_everywhere () =
  Alcotest.(check bool) "not [C => A]" false
    (Tsys.everywhere_implements Fig1.c Fig1.a)

let test_fig1_a_stabilizes () =
  Alcotest.(check bool) "A stabilizing to A" true
    (Tsys.is_stabilizing_to Fig1.a Fig1.a)

let test_fig1_c_does_not_stabilize () =
  Alcotest.(check bool) "C not stabilizing to A" false
    (Tsys.is_stabilizing_to Fig1.c Fig1.a)

let test_fig1_fault_and_witness () =
  Alcotest.(check int) "fault throws s0 to s*" Fig1.s_star (Fig1.fault Fig1.s0);
  Alcotest.(check int) "fault fixes others" Fig1.s2 (Fig1.fault Fig1.s2);
  match Tsys.stabilization_counterexample Fig1.c Fig1.a with
  | Some [ s ] -> Alcotest.(check int) "dead-end witness is s*" Fig1.s_star s
  | Some other ->
    Alcotest.failf "unexpected witness of length %d" (List.length other)
  | None -> Alcotest.fail "expected a counterexample"

let test_fig1_a_recovers_after_fault () =
  let faulted = Fig1.fault Fig1.s0 in
  let paths = Tsys.computations_upto Fig1.a ~from:faulted 3 in
  Alcotest.(check (list (list int))) "a's recovery path"
    [ [ Fig1.s_star; Fig1.s2; Fig1.s3; Fig1.s3 ] ]
    paths;
  let c_paths = Tsys.computations_upto Fig1.c ~from:faulted 3 in
  Alcotest.(check (list (list int))) "c is stuck" [ [ Fig1.s_star ] ] c_paths

(* ------------------------------------------------------------------ *)
(* Theorem 1 instance                                                  *)

let test_theorem1_hypotheses () =
  Alcotest.(check bool) "hypotheses hold" true
    (Theorem1.hypotheses_hold ~c:Theorem1.c ~a:Theorem1.a ~w:Theorem1.w
       ~w':Theorem1.w')

let test_theorem1_conclusion () =
  Alcotest.(check bool) "C box W' stabilizes to A" true
    (Tsys.is_stabilizing_to (Tsys.box Theorem1.c Theorem1.w') Theorem1.a);
  Alcotest.(check bool) "check" true
    (Theorem1.check ~c:Theorem1.c ~a:Theorem1.a ~w:Theorem1.w ~w':Theorem1.w')

let test_theorem1_needs_wrapper () =
  Alcotest.(check bool) "C alone does not stabilize" false
    (Tsys.is_stabilizing_to Theorem1.c Theorem1.a)

(* ------------------------------------------------------------------ *)
(* Random-system properties                                            *)

let gen_system =
  let open QCheck2.Gen in
  let* n = 2 -- 5 in
  let* edges =
    list_size (0 -- (n * n)) (pair (0 -- (n - 1)) (0 -- (n - 1)))
  in
  let* init_candidates = list_size (1 -- n) (0 -- (n - 1)) in
  return (Tsys.create ~n ~edges ~init:init_candidates ())

let gen_subsystem_of t =
  (* a random everywhere implementation: keep a random edge subset,
     then give any state that would spuriously deadlock its original
     edges back *)
  let open QCheck2.Gen in
  let edges = Tsys.edges t in
  let* keep = list_repeat (List.length edges) bool in
  let kept = List.filteri (fun i _ -> List.nth keep i) edges in
  let candidate =
    Tsys.create ~n:(Tsys.n_states t) ~edges:kept ~init:(Tsys.init_states t) ()
  in
  let repaired =
    List.fold_left
      (fun acc s ->
        if Tsys.is_deadlock candidate s && not (Tsys.is_deadlock t s) then
          acc @ List.map (fun v -> (s, v)) (Tsys.successors t s)
        else acc)
      kept
      (List.init (Tsys.n_states t) Fun.id)
  in
  return
    (Tsys.create ~n:(Tsys.n_states t) ~edges:repaired
       ~init:(Tsys.init_states t) ())

let gen_pair_sub =
  let open QCheck2.Gen in
  let* a = gen_system in
  let* c = gen_subsystem_of a in
  return (a, c)

let gen_lemma0_inputs =
  let open QCheck2.Gen in
  let* n = 2 -- 5 in
  let sys =
    let* edges =
      list_size (0 -- (n * n)) (pair (0 -- (n - 1)) (0 -- (n - 1)))
    in
    let* init_candidates = list_size (1 -- n) (0 -- (n - 1)) in
    return (Tsys.create ~n ~edges ~init:init_candidates ())
  in
  let* a = sys in
  let* w = sys in
  let* c = gen_subsystem_of a in
  let* w' = gen_subsystem_of w in
  return (a, w, c, w')

let prop_everywhere_implements_reflexive =
  qtest "[A => A] always" gen_system (fun a -> Tsys.everywhere_implements a a)

let prop_everywhere_implies_from_init =
  qtest "[C => A] implies [C => A]init (same inits)" gen_pair_sub
    (fun (a, c) ->
      (not (Tsys.everywhere_implements c a)) || Tsys.implements_from_init c a)

let prop_subsystem_everywhere_implements =
  qtest "deadlock-repaired subsystems everywhere implement" gen_pair_sub
    (fun (a, c) -> Tsys.everywhere_implements c a)

let prop_box_monotone_lemma0 =
  (* Lemma 0: [C => A] and [W' => W] imply [(C box W') => (A box W)] *)
  qtest "Lemma 0" ~count:200 gen_lemma0_inputs (fun (a, w, c, w') ->
      (not
         (Tsys.everywhere_implements c a && Tsys.everywhere_implements w' w))
      || Tsys.everywhere_implements (Tsys.box c w') (Tsys.box a w))

let prop_theorem1_random =
  qtest "Theorem 1 (random search for violations)" ~count:500
    gen_lemma0_inputs
    (fun (a, w, c, w') -> Theorem1.check ~c ~a ~w ~w')

let gen_two_systems =
  let open QCheck2.Gen in
  let* n = 2 -- 5 in
  let sys =
    let* edges =
      list_size (0 -- (n * n)) (pair (0 -- (n - 1)) (0 -- (n - 1)))
    in
    let* init_candidates = list_size (1 -- n) (0 -- (n - 1)) in
    return (Tsys.create ~n ~edges ~init:init_candidates ())
  in
  let* a = sys in
  let* c = sys in
  return (a, c)

let prop_stabilizing_counterexample_agrees =
  qtest "counterexample iff not stabilizing" gen_two_systems (fun (a, c) ->
      let stab = Tsys.is_stabilizing_to c a in
      let cex = Tsys.stabilization_counterexample c a in
      stab = (cex = None))

let prop_counterexample_is_a_path =
  qtest "counterexamples are real computations of C" gen_two_systems
    (fun (a, c) ->
      match Tsys.stabilization_counterexample c a with
      | None -> true
      | Some path -> Tsys.is_computation c path)

let prop_box_commutative_edges =
  qtest "box is commutative" gen_two_systems (fun (a, b) ->
      Tsys.equal (Tsys.box a b) (Tsys.box b a))

let prop_box_idempotent =
  qtest "box is idempotent" gen_system (fun a -> Tsys.equal (Tsys.box a a) a)


(* ------------------------------------------------------------------ *)
(* Actsys: weak fairness                                               *)

let g0 = 0
let g1 = 1
let b = 2

(* the motivating case: an idling fault state.  Under the plain path
   semantics the wrapper cannot stabilize it (the idle self-loop is a
   bad cycle); under UNITY weak fairness the continuously enabled
   correction must eventually fire. *)
let idle_sys =
  Actsys.create ~n:3
    ~actions:[ ("prog", [ (g0, g1); (g1, g0) ]); ("idle", [ (b, b) ]) ]
    ~init:[ g0 ] ()

let correction = Actsys.create ~n:3 ~actions:[ ("correct", [ (b, g0) ]) ] ~init:[ g0 ] ()

let spec_gg = Tsys.create ~n:3 ~edges:[ (g0, g1); (g1, g0) ] ~init:[ g0 ] ()

let test_actsys_accessors () =
  Alcotest.(check int) "n" 3 (Actsys.n_states idle_sys);
  Alcotest.(check (list string)) "actions" [ "prog"; "idle" ]
    (Actsys.action_names idle_sys);
  Alcotest.(check bool) "enabled" true (Actsys.enabled idle_sys "idle" b);
  Alcotest.(check bool) "not enabled" false (Actsys.enabled idle_sys "idle" g0);
  Alcotest.(check (list (pair int int))) "transitions" [ (b, b) ]
    (Actsys.transitions idle_sys "idle")

let test_actsys_create_validates () =
  Alcotest.check_raises "duplicate action"
    (Invalid_argument "Actsys.create: duplicate action a") (fun () ->
      ignore (Actsys.create ~n:2 ~actions:[ ("a", []); ("a", []) ] ~init:[] ()))

let test_actsys_box_renames () =
  let x = Actsys.create ~n:2 ~actions:[ ("a", [ (0, 1) ]) ] ~init:[ 0 ] () in
  let y = Actsys.create ~n:2 ~actions:[ ("a", [ (1, 0) ]) ] ~init:[ 0 ] () in
  let xy = Actsys.box x y in
  Alcotest.(check (list string)) "renamed" [ "a"; "a'" ] (Actsys.action_names xy)

let test_fairness_rescues_the_wrapper () =
  let wrapped = Actsys.box idle_sys correction in
  (* path semantics: NOT stabilizing (the idle loop is a bad cycle) *)
  Alcotest.(check bool) "path semantics says no" false
    (Tsys.is_stabilizing_to (Actsys.to_tsys wrapped) spec_gg);
  (* fair semantics: stabilizing *)
  Alcotest.(check bool) "weak fairness says yes" true
    (Actsys.is_fairly_stabilizing_to wrapped spec_gg)

let test_fairness_does_not_invent_stabilization () =
  (* without the correction action, fairness cannot help: the idle
     settlement {b} satisfies the fairness condition and is
     illegitimate *)
  Alcotest.(check bool) "unwrapped still stuck" false
    (Actsys.is_fairly_stabilizing_to idle_sys spec_gg);
  match Actsys.fair_violation_witness idle_sys spec_gg with
  | Some [ s ] -> Alcotest.(check int) "settles at b" b s
  | _ -> Alcotest.fail "expected the singleton settlement {b}"

let test_fair_deadlock_detected () =
  let dead =
    Actsys.create ~n:3 ~actions:[ ("prog", [ (g0, g1); (g1, g0) ]) ]
      ~init:[ g0 ] ()
  in
  (* b has no enabled action: a fair finite computation ends there *)
  Alcotest.(check bool) "illegitimate dead end" false
    (Actsys.is_fairly_stabilizing_to dead spec_gg);
  Alcotest.(check bool) "witness is the dead end" true
    (Actsys.fair_violation_witness dead spec_gg = Some [ b ])

let test_fair_witness_none_when_stabilizing () =
  let wrapped = Actsys.box idle_sys correction in
  Alcotest.(check bool) "no witness" true
    (Actsys.fair_violation_witness wrapped spec_gg = None)

let test_fair_two_state_bad_cycle () =
  (* two illegitimate states cycling between each other with a single
     always-enabled escape from only one of them: fairness does not
     force the escape (it is not enabled at both states), so the
     system is not fairly stabilizing *)
  let sys =
    Actsys.create ~n:4
      ~actions:
        [ ("prog", [ (0, 1); (1, 0) ]);
          ("bad", [ (2, 3); (3, 2) ]);
          ("escape", [ (2, 0) ]) ]
      ~init:[ 0 ] ()
  in
  let spec = Tsys.create ~n:4 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "can dodge the escape" false
    (Actsys.is_fairly_stabilizing_to sys spec);
  (* the witness must avoid state 2 (where escape is enabled) -- no:
     escape is enabled only at 2, and {2,3} visits 2 infinitely often,
     but escape is not enabled at 3, so it is not continuously enabled
     and fairness does not force it *)
  match Actsys.fair_violation_witness sys spec with
  | Some members ->
    Alcotest.(check (list int)) "settles in the bad cycle" [ 2; 3 ]
      (List.sort compare members)
  | None -> Alcotest.fail "expected a witness"

let test_fair_escape_enabled_everywhere_forces_exit () =
  (* same but the escape action is enabled at both bad states: now
     weak fairness forces it and the system stabilizes *)
  let sys =
    Actsys.create ~n:4
      ~actions:
        [ ("prog", [ (0, 1); (1, 0) ]);
          ("bad", [ (2, 3); (3, 2) ]);
          ("escape", [ (2, 0); (3, 0) ]) ]
      ~init:[ 0 ] ()
  in
  let spec = Tsys.create ~n:4 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  Alcotest.(check bool) "forced out" true
    (Actsys.is_fairly_stabilizing_to sys spec)

(* ------------------------------------------------------------------ *)
(* Tolerance: masking / fail-safe / nonmasking (paper 6)               *)

let spec_tol = spec_gg
let faults_tol = [ (g0, b); (g1, b) ]

(* program that recovers from b: nonmasking, and masking w.r.t. the
   safety "program steps never enter b" *)
let recovering =
  Tsys.create ~n:3 ~edges:[ (g0, g1); (g1, g0); (b, g0) ] ~init:[ g0 ] ()

(* program that ignores b entirely: fail-safe (its own steps are all
   inside the legitimate part) but not nonmasking (b is a dead end) *)
let ignoring = Tsys.create ~n:3 ~edges:[ (g0, g1); (g1, g0) ] ~init:[ g0 ] ()

let safe_no_enter_b _ v = v <> b

let test_fault_span () =
  let span = Tolerance.fault_span recovering ~faults:faults_tol in
  Alcotest.(check (array bool)) "all states reachable under faults"
    [| true; true; true |] span;
  let span0 = Tolerance.fault_span recovering ~faults:[] in
  Alcotest.(check (array bool)) "no faults: program reach only"
    [| true; true; false |] span0

let test_with_faults_box () =
  let cf = Tolerance.with_faults ignoring ~faults:faults_tol in
  Alcotest.(check bool) "fault edge present" true (Tsys.has_edge cf g0 b);
  Alcotest.(check bool) "program edges kept" true (Tsys.has_edge cf g0 g1)

let test_masking_example () =
  Alcotest.(check bool) "fail-safe" true
    (Tolerance.is_fail_safe ~c:recovering ~faults:faults_tol
       ~safe:safe_no_enter_b);
  Alcotest.(check bool) "nonmasking" true
    (Tolerance.is_nonmasking ~c:recovering ~a:spec_tol ~faults:faults_tol);
  Alcotest.(check bool) "masking" true
    (Tolerance.is_masking ~c:recovering ~a:spec_tol ~faults:faults_tol
       ~safe:safe_no_enter_b)

let test_failsafe_only_example () =
  Alcotest.(check bool) "fail-safe" true
    (Tolerance.is_fail_safe ~c:ignoring ~faults:faults_tol
       ~safe:safe_no_enter_b);
  Alcotest.(check bool) "not nonmasking (dead end at b)" false
    (Tolerance.is_nonmasking ~c:ignoring ~a:spec_tol ~faults:faults_tol);
  Alcotest.(check bool) "hence not masking" false
    (Tolerance.is_masking ~c:ignoring ~a:spec_tol ~faults:faults_tol
       ~safe:safe_no_enter_b)

let test_nonmasking_only_example () =
  (* safety forbids the recovery edge itself: nonmasking holds but
     fail-safe does not *)
  let safe_strict u v = u <> b && v <> b in
  Alcotest.(check bool) "not fail-safe" false
    (Tolerance.is_fail_safe ~c:recovering ~faults:faults_tol ~safe:safe_strict);
  Alcotest.(check bool) "still nonmasking" true
    (Tolerance.is_nonmasking ~c:recovering ~a:spec_tol ~faults:faults_tol)

let test_tolerance_ignores_unreachable_faults () =
  (* faults that cannot occur (source unreachable) do not matter *)
  let c = Tsys.create ~n:3 ~edges:[ (g0, g1); (g1, g0); (b, b) ] ~init:[ g0 ] () in
  Alcotest.(check bool) "bad loop outside span is fine" true
    (Tolerance.is_nonmasking ~c ~a:spec_tol ~faults:[])

let test_tolerance_bad_cycle_in_span () =
  let c = Tsys.create ~n:3 ~edges:[ (g0, g1); (g1, g0); (b, b) ] ~init:[ g0 ] () in
  Alcotest.(check bool) "bad loop inside span breaks nonmasking" false
    (Tolerance.is_nonmasking ~c ~a:spec_tol ~faults:faults_tol)


(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)

let test_synthesis_idle_case () =
  (* synthesize the correction for the idling fault state: exactly the
     wrapper we wrote by hand *)
  match Synthesis.synthesize idle_sys ~spec:spec_gg with
  | None -> Alcotest.fail "expected a wrapper"
  | Some w ->
    Alcotest.(check (list int)) "corrects exactly b" [ b ]
      (Synthesis.needs_correction idle_sys ~spec:spec_gg);
    Alcotest.(check bool) "verified stabilizing" true
      (Actsys.is_fairly_stabilizing_to (Actsys.box idle_sys w) spec_gg);
    Alcotest.(check bool) "minimal" true
      (Synthesis.is_minimal idle_sys ~spec:spec_gg ~wrapper:w)

let test_synthesis_nothing_to_do () =
  (* an already-stabilizing system needs an empty correction *)
  let healthy =
    Actsys.create ~n:2 ~actions:[ ("prog", [ (0, 1); (1, 0) ]) ] ~init:[ 0 ] ()
  in
  let spec = Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  Alcotest.(check (list int)) "no corrections" []
    (Synthesis.needs_correction healthy ~spec);
  match Synthesis.synthesize healthy ~spec with
  | Some w ->
    Alcotest.(check (list (pair int int))) "empty action" []
      (Actsys.transitions w "correct")
  | None -> Alcotest.fail "expected the empty wrapper"

let test_synthesis_deadlock_case () =
  let dead =
    Actsys.create ~n:3 ~actions:[ ("prog", [ (g0, g1); (g1, g0) ]) ]
      ~init:[ g0 ] ()
  in
  match Synthesis.synthesize dead ~spec:spec_gg with
  | None -> Alcotest.fail "expected a wrapper"
  | Some w ->
    Alcotest.(check (list (pair int int))) "corrects the dead end"
      [ (b, g0) ]
      (Actsys.transitions w "correct")

let test_synthesis_no_target () =
  (* a spec with no initialized reachable state cannot be escaped to *)
  let empty_spec = Tsys.create ~n:2 ~edges:[ (0, 0) ] ~init:[] () in
  let sys = Actsys.create ~n:2 ~actions:[ ("idle", [ (1, 1) ]) ] ~init:[] () in
  Alcotest.(check bool) "no wrapper" true
    (Synthesis.synthesize sys ~spec:empty_spec = None)

let test_synthesis_respects_target () =
  match Synthesis.synthesize ~target:g1 idle_sys ~spec:spec_gg with
  | Some w ->
    Alcotest.(check (list (pair int int))) "targets g1" [ (b, g1) ]
      (Actsys.transitions w "correct")
  | None -> Alcotest.fail "expected a wrapper"

let test_is_minimal_multi_action () =
  (* regression: is_minimal used to invalid_arg on wrappers with more
     than one action; minimality is edge-wise, per action, with the
     other actions kept intact *)
  let b2 = 3 in
  let sys =
    Actsys.create ~n:4
      ~actions:
        [ ("prog", [ (g0, g1); (g1, g0) ]); ("idle", [ (b, b); (b2, b2) ]) ]
      ~init:[ g0 ] ()
  in
  let spec = Tsys.create ~n:4 ~edges:[ (g0, g1); (g1, g0) ] ~init:[ g0 ] () in
  let wrapper actions = Actsys.create ~n:4 ~actions ~init:[ g0 ] () in
  let split = wrapper [ ("fix-b", [ (b, g0) ]); ("fix-b2", [ (b2, g0) ]) ] in
  Alcotest.(check bool) "two-action wrapper stabilizes" true
    (Actsys.is_fairly_stabilizing_to (Actsys.box sys split) spec);
  Alcotest.(check bool) "two-action wrapper is minimal" true
    (Synthesis.is_minimal sys ~spec ~wrapper:split);
  let padded =
    wrapper [ ("fix-b", [ (b, g0); (b, g1) ]); ("fix-b2", [ (b2, g0) ]) ]
  in
  Alcotest.(check bool) "redundant edge caught in its own action" false
    (Synthesis.is_minimal sys ~spec ~wrapper:padded);
  let edgeless = wrapper [ ("fix-b", []); ("fix-b2", []) ] in
  Alcotest.(check bool) "edgeless wrapper corrects nothing" false
    (Synthesis.is_minimal sys ~spec ~wrapper:edgeless)

(* Random closed systems: legitimate core (a cycle over the first
   [k] states) plus arbitrary junk actions among the remaining states
   and junk->core escape edges; synthesis must always succeed and
   verify. *)
let gen_closed_system =
  let open QCheck2.Gen in
  let* core = 2 -- 3 in
  let* extra = 1 -- 3 in
  let n = core + extra in
  let core_cycle = List.init core (fun i -> (i, (i + 1) mod core)) in
  let* junk =
    list_size (0 -- 6) (pair (core -- (n - 1)) (core -- (n - 1)))
  in
  let* escapes = list_size (0 -- 2) (pair (core -- (n - 1)) (0 -- (core - 1))) in
  let spec = Tsys.create ~n ~edges:core_cycle ~init:[ 0 ] () in
  let sys =
    Actsys.create ~n
      ~actions:
        [ ("prog", core_cycle); ("junk", junk); ("escape", escapes) ]
      ~init:[ 0 ] ()
  in
  return (sys, spec)

let prop_synthesis_always_works =
  qtest "synthesized wrappers verify" ~count:200 gen_closed_system
    (fun (sys, spec) ->
      match Synthesis.synthesize sys ~spec with
      | Some w -> Actsys.is_fairly_stabilizing_to (Actsys.box sys w) spec
      | None -> false)

let prop_synthesis_empty_iff_stabilizing =
  qtest "empty correction iff already fairly stabilizing" ~count:200
    gen_closed_system
    (fun (sys, spec) ->
      let needs = Synthesis.needs_correction sys ~spec in
      (needs = []) = Actsys.is_fairly_stabilizing_to sys spec)


(* ------------------------------------------------------------------ *)
(* Product: local specifications composed (Lemmas 2-3, Theorem 4)      *)

let test_encode_decode_roundtrip () =
  let dims = [ 3; 4; 2 ] in
  List.iter
    (fun locals ->
      Alcotest.(check (list int)) "roundtrip" locals
        (Product.decode ~dims (Product.encode ~dims locals)))
    [ [ 0; 0; 0 ]; [ 2; 3; 1 ]; [ 1; 2; 0 ] ];
  Alcotest.(check int) "component view" 3
    (Product.component_view ~dims (Product.encode ~dims [ 1; 3; 0 ]) ~i:1)

let test_encode_validates () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Product: component state out of range") (fun () ->
      ignore (Product.encode ~dims:[ 2; 2 ] [ 0; 5 ]));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Product: dimension mismatch") (fun () ->
      ignore (Product.encode ~dims:[ 2 ] [ 0; 0 ]))

let two_rings =
  let ring = Tsys.create ~n:2 ~edges:[ (0, 1); (1, 0) ] ~init:[ 0 ] () in
  Product.compose [ ring; ring ]

let test_compose_basic () =
  Alcotest.(check int) "4 global states" 4 (Tsys.n_states two_rings);
  let dims = [ 2; 2 ] in
  let s00 = Product.encode ~dims [ 0; 0 ] in
  let s10 = Product.encode ~dims [ 1; 0 ] in
  let s01 = Product.encode ~dims [ 0; 1 ] in
  let s11 = Product.encode ~dims [ 1; 1 ] in
  Alcotest.(check (list int)) "init" [ s00 ] (Tsys.init_states two_rings);
  Alcotest.(check bool) "comp0 move" true (Tsys.has_edge two_rings s00 s10);
  Alcotest.(check bool) "comp1 move" true (Tsys.has_edge two_rings s00 s01);
  Alcotest.(check bool) "no joint move" false (Tsys.has_edge two_rings s00 s11);
  Alcotest.(check string) "name" "(s0,s0)" (Tsys.name two_rings s00)

(* Lemma 2 on random components: local everywhere implementations
   compose to a global everywhere implementation. *)
let gen_component =
  let open QCheck2.Gen in
  let* n = 2 -- 3 in
  let* edges = list_size (1 -- (n * n)) (pair (0 -- (n - 1)) (0 -- (n - 1))) in
  let* init_candidates = list_size (1 -- n) (0 -- (n - 1)) in
  return (Tsys.create ~n ~edges ~init:init_candidates ())

let gen_lemma2_inputs =
  let open QCheck2.Gen in
  let* a0 = gen_component in
  let* a1 = gen_component in
  let* c0 = gen_subsystem_of a0 in
  let* c1 = gen_subsystem_of a1 in
  return ((a0, a1), (c0, c1))

let prop_lemma2 =
  qtest "Lemma 2: local [C_i => A_i] gives global [C => A]" ~count:200
    gen_lemma2_inputs
    (fun ((a0, a1), (c0, c1)) ->
      (not
         (Tsys.everywhere_implements c0 a0 && Tsys.everywhere_implements c1 a1))
      || Tsys.everywhere_implements
           (Product.compose [ c0; c1 ])
           (Product.compose [ a0; a1 ]))

let prop_box_distributes_over_product =
  qtest "box distributes over the product" ~count:200 gen_lemma2_inputs
    (fun ((c0, c1), (w0, w1)) ->
      Tsys.equal
        (Product.compose [ Tsys.box c0 w0; Tsys.box c1 w1 ])
        (Tsys.box (Product.compose [ c0; c1 ]) (Product.compose [ w0; w1 ])))

(* Theorem 4, end to end: synthesize per-process wrappers against the
   LOCAL specifications only, compose them, and verify the global
   product stabilizes. *)
let test_theorem4_local_wrappers_compose () =
  let local_spec = spec_gg in
  let local_sys = idle_sys in
  let w =
    match Synthesis.synthesize local_sys ~spec:local_spec with
    | Some w -> w
    | None -> Alcotest.fail "local synthesis failed"
  in
  let global_sys = Product.compose_act [ local_sys; local_sys ] in
  let global_wrapper = Product.compose_act [ w; w ] in
  let global_spec = Product.compose [ local_spec; local_spec ] in
  Alcotest.(check bool) "unwrapped product does not stabilize" false
    (Actsys.is_fairly_stabilizing_to global_sys global_spec);
  Alcotest.(check bool) "wrapped product stabilizes (Theorem 4)" true
    (Actsys.is_fairly_stabilizing_to
       (Actsys.box global_sys global_wrapper)
       global_spec)

let () =
  Alcotest.run "kernel"
    [ ( "tsys",
        [ Alcotest.test_case "create/accessors" `Quick test_create_and_accessors;
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "box" `Quick test_box_unions_edges_intersects_init;
          Alcotest.test_case "box mismatch" `Quick test_box_size_mismatch;
          Alcotest.test_case "everywhere: edges" `Quick
            test_everywhere_implements_edge_subset;
          Alcotest.test_case "everywhere: deadlocks" `Quick
            test_everywhere_implements_deadlock_condition;
          Alcotest.test_case "from-init ignores unreachable" `Quick
            test_implements_from_init_ignores_unreachable;
          Alcotest.test_case "from-init init subset" `Quick
            test_implements_from_init_requires_init_subset;
          Alcotest.test_case "stabilizing: self" `Quick test_stabilizing_self;
          Alcotest.test_case "stabilizing: bad cycle" `Quick
            test_stabilizing_bad_cycle;
          Alcotest.test_case "stabilizing: escape" `Quick
            test_stabilizing_transient_escape;
          Alcotest.test_case "stabilizing: dead end" `Quick
            test_stabilizing_dead_end;
          Alcotest.test_case "computations_upto" `Quick test_computations_upto;
          Alcotest.test_case "sample_computation" `Quick test_sample_computation;
          Alcotest.test_case "is_computation" `Quick test_is_computation;
          Alcotest.test_case "restrict_edges" `Quick test_restrict_edges;
          Alcotest.test_case "equal" `Quick test_equal ] );
      ( "fig1",
        [ Alcotest.test_case "[C => A]init" `Quick test_fig1_implements_from_init;
          Alcotest.test_case "not [C => A]" `Quick test_fig1_not_everywhere;
          Alcotest.test_case "A stabilizing" `Quick test_fig1_a_stabilizes;
          Alcotest.test_case "C not stabilizing" `Quick
            test_fig1_c_does_not_stabilize;
          Alcotest.test_case "fault and witness" `Quick
            test_fig1_fault_and_witness;
          Alcotest.test_case "recovery paths" `Quick
            test_fig1_a_recovers_after_fault ] );
      ( "theorem1",
        [ Alcotest.test_case "hypotheses" `Quick test_theorem1_hypotheses;
          Alcotest.test_case "conclusion" `Quick test_theorem1_conclusion;
          Alcotest.test_case "wrapper necessary" `Quick
            test_theorem1_needs_wrapper ] );
      ( "actsys-fairness",
        [ Alcotest.test_case "accessors" `Quick test_actsys_accessors;
          Alcotest.test_case "create validates" `Quick test_actsys_create_validates;
          Alcotest.test_case "box renames" `Quick test_actsys_box_renames;
          Alcotest.test_case "fairness rescues wrapper" `Quick
            test_fairness_rescues_the_wrapper;
          Alcotest.test_case "fairness is not magic" `Quick
            test_fairness_does_not_invent_stabilization;
          Alcotest.test_case "fair deadlock" `Quick test_fair_deadlock_detected;
          Alcotest.test_case "no witness when stabilizing" `Quick
            test_fair_witness_none_when_stabilizing;
          Alcotest.test_case "dodgeable escape" `Quick test_fair_two_state_bad_cycle;
          Alcotest.test_case "forced escape" `Quick
            test_fair_escape_enabled_everywhere_forces_exit ] );
      ( "tolerance",
        [ Alcotest.test_case "fault span" `Quick test_fault_span;
          Alcotest.test_case "with_faults" `Quick test_with_faults_box;
          Alcotest.test_case "masking" `Quick test_masking_example;
          Alcotest.test_case "fail-safe only" `Quick test_failsafe_only_example;
          Alcotest.test_case "nonmasking only" `Quick test_nonmasking_only_example;
          Alcotest.test_case "unreachable faults" `Quick
            test_tolerance_ignores_unreachable_faults;
          Alcotest.test_case "bad cycle in span" `Quick
            test_tolerance_bad_cycle_in_span ] );
      ( "synthesis",
        [ Alcotest.test_case "idle case" `Quick test_synthesis_idle_case;
          Alcotest.test_case "nothing to do" `Quick test_synthesis_nothing_to_do;
          Alcotest.test_case "deadlock case" `Quick test_synthesis_deadlock_case;
          Alcotest.test_case "no target" `Quick test_synthesis_no_target;
          Alcotest.test_case "explicit target" `Quick test_synthesis_respects_target;
          Alcotest.test_case "multi-action minimality" `Quick
            test_is_minimal_multi_action;
          prop_synthesis_always_works;
          prop_synthesis_empty_iff_stabilizing ] );
      ( "product",
        [ Alcotest.test_case "encode/decode" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "encode validates" `Quick test_encode_validates;
          Alcotest.test_case "compose basic" `Quick test_compose_basic;
          prop_lemma2;
          prop_box_distributes_over_product;
          Alcotest.test_case "Theorem 4 end-to-end" `Quick
            test_theorem4_local_wrappers_compose ] );
      ( "properties",
        [ prop_everywhere_implements_reflexive;
          prop_everywhere_implies_from_init;
          prop_subsystem_everywhere_implements;
          prop_box_monotone_lemma0;
          prop_theorem1_random;
          prop_stabilizing_counterexample_agrees;
          prop_counterexample_is_a_path;
          prop_box_commutative_edges;
          prop_box_idempotent ] ) ]
