(* Doc-audit gate: README.md, EXPERIMENTS.md and DESIGN.md are
   cross-checked against the live protocol registry, so a rename, a
   re-roling, or a changed recovery expectation fails CI instead of
   silently drifting the prose.  The dune stanza declares the three
   documents as deps; dune stages them one directory up in the build
   tree, which is where the test's cwd sees them. *)

module R = Graybox.Registry

(* referencing Scenarios forces tme's registration side effect *)
let _force_registration = Tme.Scenarios.run

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let readme = lazy (read_file "../README.md")
let experiments = lazy (read_file "../EXPERIMENTS.md")
let design = lazy (read_file "../DESIGN.md")
let lines s = String.split_on_char '\n' s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_mentions doc text needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S" doc needle)
        true
        (contains text needle))
    needles

(* "| `ra` | reference | ... |" -> ["ra"; "reference"; ...] *)
let cells line =
  let untick c =
    let n = String.length c in
    if n >= 2 && c.[0] = '`' && c.[n - 1] = '`' then String.sub c 1 (n - 2)
    else c
  in
  String.split_on_char '|' line
  |> List.map String.trim
  |> List.filter (fun c -> c <> "")
  |> List.map untick

(* rows of the markdown table whose header line is [header]: the
   contiguous run of "| `..." lines after the |---| separator *)
let table_rows ~doc ~header text =
  let rec find = function
    | [] -> Alcotest.fail (Printf.sprintf "%s: table %S not found" doc header)
    | l :: rest when String.trim l = header -> rest
    | _ :: rest -> find rest
  in
  let rest = find (lines text) in
  let rest =
    match rest with
    | sep :: r when String.length sep >= 2 && sep.[0] = '|' && sep.[1] = '-' ->
      r
    | r -> r
  in
  let is_row l = String.length l >= 3 && l.[0] = '|' && l.[1] = ' ' && l.[2] = '`' in
  let rec take acc = function
    | l :: rest when is_row l -> take (cells l :: acc) rest
    | _ -> List.rev acc
  in
  take [] rest

(* ------------------------------------------------------------------ *)
(* README: the protocols table is the registry, column for column      *)

let test_readme_protocol_table () =
  let rows =
    table_rows ~doc:"README.md"
      ~header:
        "| name | role | expect | partition | during | por | synth | what \
         it is |"
      (Lazy.force readme)
  in
  let entries = R.all () in
  Alcotest.(check int)
    "one row per registry entry"
    (List.length entries) (List.length rows);
  List.iter2
    (fun (e : R.entry) row ->
      match row with
      | name :: role :: expect :: partition :: during :: por :: synth :: _ ->
        Alcotest.(check string) "name, in registration order" e.R.name name;
        Alcotest.(check string)
          (e.R.name ^ ": role column")
          (R.role_label e.R.role) role;
        Alcotest.(check string)
          (e.R.name ^ ": expect column")
          (R.expectation_label e.R.expectation) expect;
        Alcotest.(check string)
          (e.R.name ^ ": partition column")
          (R.partition_expectation_label e.R.partition_expectation)
          partition;
        Alcotest.(check string)
          (e.R.name ^ ": during column")
          (R.during_partition_label e.R.during_partition)
          during;
        Alcotest.(check string)
          (e.R.name ^ ": por column")
          (if e.R.por_safe then "yes" else "no")
          por;
        Alcotest.(check string)
          (e.R.name ^ ": synth column")
          (if e.R.synthesizable then "yes" else "no")
          synth
      | _ -> Alcotest.fail (e.R.name ^ ": row has too few columns"))
    entries rows

(* every fault_spec constructor has a row in the README fault-model
   table.  The list below is gated for completeness by test_chaos's
   exhaustive spec_tag match: a new constructor breaks that compile,
   whose fix adds a tag there and (via this test) a doc row here. *)
let fault_spec_names =
  [ "Drop_requests"; "Drop_requests_window"; "Drop_any"; "Duplicate";
    "Corrupt_messages"; "Reorder"; "Flush"; "Partition"; "Corrupt_state";
    "Reset_state"; "Crash"; "Split"; "Delay" ]

let test_readme_fault_model_table () =
  let rows =
    table_rows ~doc:"README.md"
      ~header:"| spec | label | window | what it does |"
      (Lazy.force readme)
  in
  Alcotest.(check (list string))
    "one row per fault_spec constructor, declaration order"
    fault_spec_names
    (List.map
       (function
         | name :: _ -> name
         | [] -> Alcotest.fail "empty fault-model row")
       rows);
  (* the isolation-vs-group-partition distinction must stay documented *)
  check_mentions "README.md" (Lazy.force readme)
    [ "isolation"; "split-lossy"; "split-buf"; "--partitions" ]

(* ------------------------------------------------------------------ *)
(* EXPERIMENTS.md: the PARTITION section exists and names the sweep    *)

let test_experiments_partition_section () =
  let text = Lazy.force experiments in
  check_mentions "EXPERIMENTS.md" text
    ([ "## Partitions, heal, and delay (PARTITION, `BENCH_partition.json`)";
       "lossy"; "buffered"; "--partitions" ]
     @ R.default_sweep ()
     @ List.map R.partition_expectation_label
         [ R.Recovers_after_heal; R.Deadlocks ]
     (* the during-split story: every non-wedge entry (the ones with
        something to prove or disprove while the partition is up) must
        be named, and the gate vocabulary must be present *)
     @ List.filter_map
         (fun (e : R.entry) ->
           if e.R.during_partition <> R.Wedge then Some e.R.name else None)
         (R.all ())
     @ [ "(PARTITION-SPEC)"; "regime epoch"; "epoch-safe";
         R.during_partition_label R.Weak_me1;
         R.during_partition_label R.Unsafe ])

(* ------------------------------------------------------------------ *)
(* EXPERIMENTS.md: the LOAD section exists, names the schema, the      *)
(* methodology caveat, and every reference protocol it sweeps          *)

let test_experiments_load_section () =
  let text = Lazy.force experiments in
  check_mentions "EXPERIMENTS.md" text
    ([ "## Open-loop load (LOAD, `BENCH_load.json`)";
       "graybox-bench-load/1"; "coordinated omission"; "open-loop";
       "p50/p99/p999"; "--scan" ]
     @ List.map
         (fun (e : R.entry) -> e.R.name)
         (R.all ~role:R.Reference ()))

(* ------------------------------------------------------------------ *)
(* EXPERIMENTS.md: the MCHECK section names the out-of-core and POR    *)
(* machinery, its schema, and every por-safe protocol                  *)

let test_experiments_mcheck_section () =
  let text = Lazy.force experiments in
  check_mentions "EXPERIMENTS.md" text
    ([ "graybox-bench-mcheck/2"; "--mem-budget"; "--spill-dir"; "--shards";
       "--por"; "--jobs"; "out-of-core"; "partial-order reduction";
       "quiet receiver"; "peak_mem_words"; "spill_bytes"; "por_safe" ]
     @ R.por_safe_names ())

(* ------------------------------------------------------------------ *)
(* DESIGN.md: the inventory covers the partition fault model           *)

let test_design_inventory () =
  check_mentions "DESIGN.md" (Lazy.force design)
    [ "`Split`"; "`Delay`"; "`Heal`"; "partition_expectation";
      "`Lossy`/`Buffered`"; "BENCH_partition.json"; "delivery-ready staging" ]

let test_design_move_indexes () =
  check_mentions "DESIGN.md" (Lazy.force design)
    [ "move indexes"; "Fenwick"; "rank/select"; "bit-identical";
      "~indexed:false"; "dense_threshold"; "Tme.Load" ];
  (* the README must tell the same scale story *)
  check_mentions "README.md" (Lazy.force readme)
    [ "BENCH_load.json"; "p50/p99/p999"; "--scan"; "coordinated omission" ]

let test_design_regime_section () =
  check_mentions "DESIGN.md" (Lazy.force design)
    [ "## 8. Regime epochs and weakened specs"; "`Regime.of_plan`";
      "cross-epoch obligation"; "`during_partition`"; "golden-tested" ];
  (* the README must surface the during column and its gate reading *)
  check_mentions "README.md" (Lazy.force readme)
    [ "during"; R.during_partition_label R.Weak_me1;
      R.during_partition_label R.Wedge; R.during_partition_label R.Unsafe ]

(* ------------------------------------------------------------------ *)
(* EXPERIMENTS.md: the SYNTH section exists, names the schema, the     *)
(* synthesized term, and every synthesis target                        *)

let test_experiments_synth_section () =
  let text = Lazy.force experiments in
  check_mentions "EXPERIMENTS.md" text
    ([ "## Wrapper synthesis (SYNTH, `BENCH_synth.json`)";
       "graybox-bench-synth/1"; "graybox-synth/1"; "CEGIS"; "ra-synth";
       Graybox.Wrapper.to_string Graybox.Wrapper.w_refined ]
     @ R.synthesizable_names ())

let test_design_synth_section () =
  check_mentions "DESIGN.md" (Lazy.force design)
    [ "## 9. Guard DSL and CEGIS wrapper synthesis"; "`Mcheck.Oracle`";
      "Timer_zero"; "pid-symmetric"; "blame"; "`ra-synth`";
      "graybox-synth/1"; "BENCH_synth.json" ];
  (* the README must surface the synthesis entry points *)
  check_mentions "README.md" (Lazy.force readme)
    [ "graybox-cli synth"; "BENCH_synth.json"; "ra-synth";
      R.role_label R.Synthesized ]

let test_design_checker_section () =
  check_mentions "DESIGN.md" (Lazy.force design)
    [ "sharded"; "Stdext.Blockfile"; "--mem-budget"; "fingerprint";
      "(tag, seq)"; "quiet receiver"; "por_safe"; "Pool.shard_of" ];
  (* the README must surface the out-of-core and POR knobs *)
  check_mentions "README.md" (Lazy.force readme)
    [ "--mem-budget"; "--por"; "--shards"; "BENCH_mcheck.json" ]

let () =
  Alcotest.run "docs"
    [ ( "readme",
        [ Alcotest.test_case "protocols table mirrors the registry" `Quick
            test_readme_protocol_table;
          Alcotest.test_case "fault-model table covers every spec" `Quick
            test_readme_fault_model_table ] );
      ( "experiments",
        [ Alcotest.test_case "partition section present and named" `Quick
            test_experiments_partition_section;
          Alcotest.test_case "load section present and named" `Quick
            test_experiments_load_section;
          Alcotest.test_case "mcheck section present and named" `Quick
            test_experiments_mcheck_section;
          Alcotest.test_case "synth section present and named" `Quick
            test_experiments_synth_section ] );
      ( "design",
        [ Alcotest.test_case "inventory covers the partition model" `Quick
            test_design_inventory;
          Alcotest.test_case "move-index architecture documented" `Quick
            test_design_move_indexes;
          Alcotest.test_case "regime-epoch architecture documented" `Quick
            test_design_regime_section;
          Alcotest.test_case "checker architecture documented" `Quick
            test_design_checker_section;
          Alcotest.test_case "synthesis architecture documented" `Quick
            test_design_synth_section ] ) ]
