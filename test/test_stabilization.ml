(* Integration tests: whole-system simulations checking the paper's
   claims end to end.

   - Theorem 5: fault-free runs of Lspec implementations satisfy
     TME_Spec (and the Lspec clause monitors themselves).
   - Theorem 8 / Corollary 11: the *same* wrapper stabilizes both
     Ricart-Agrawala and modified Lamport after every fault class,
     including the paper's §4 deadlock scenario.
   - Negative control: the unmodified Lamport program (which only
     implements Lspec from initial states) is not stabilized by the
     wrapper.
   - W'(δ) is a valid wrapper for every δ and trades messages for
     recovery latency. *)

open Tme
module T = Unityspec.Temporal

let ra = Option.get (Graybox.Registry.find_protocol "ra")
let lamport = Option.get (Graybox.Registry.find_protocol "lamport")
let unmod = Option.get (Graybox.Registry.find_protocol "lamport-unmod")
let central = Option.get (Graybox.Registry.find_protocol "central")

let liveness_ok (r : Scenarios.result) v =
  T.ok_with_tail ~trace_len:(List.length r.vtrace) ~margin:120 v

let deadlock_faults =
  [ Scenarios.Drop_requests_window { from_t = 500; until_t = 560 } ]

(* ------------------------------------------------------------------ *)
(* Theorem 5: fault-free conformance                                    *)

let check_fault_free_conformance proto name () =
  let r = Scenarios.run proto ~n:4 ~seed:11 ~steps:5000 in
  let lspec = Scenarios.lspec_report r in
  List.iter
    (fun (e : Unityspec.Report.entry) ->
      match e.verdict with
      | T.Violated _ ->
        Alcotest.failf "%s: Lspec clause %s violated: %s" name e.clause
          (Format.asprintf "%a" T.pp_verdict e.verdict)
      | T.Holds -> ()
      | T.Pending _ as v ->
        if not (liveness_ok r v) then
          Alcotest.failf "%s: Lspec clause %s has early pending obligations"
            name e.clause)
    lspec;
  let tme = Scenarios.tme_report r in
  List.iter
    (fun (e : Unityspec.Report.entry) ->
      match e.verdict with
      | T.Violated _ -> Alcotest.failf "%s: %s violated" name e.clause
      | v ->
        if not (liveness_ok r v) then
          Alcotest.failf "%s: %s pending too early" name e.clause)
    tme;
  Alcotest.(check bool) "made progress" true (r.total_entries > 50)

let test_central_fault_free_me1 () =
  let r = Scenarios.run central ~n:4 ~seed:11 ~steps:5000 in
  Alcotest.(check bool) "ME1" true (T.is_ok (Graybox.Tme_spec.me1 r.Scenarios.vtrace))
[@@warning "-33"]

(* Lemma 6 (interference freedom): Lspec box W everywhere implements
   Lspec — empirically, a *wrapped* fault-free run still satisfies
   every Lspec clause and TME_Spec: the wrapper's redundant requests
   disturb nothing. *)
let test_interference_freedom proto name () =
  let r =
    Scenarios.run proto ~n:4 ~seed:19 ~steps:5000
      ~wrapper:(Scenarios.wrapped ~delta:0 ())
  in
  (* the eager wrapper floods the network, so service latency (and
     hence open liveness obligations at the trace tail) stretches to a
     few hundred steps; safety must be untouched and liveness must
     still discharge outside that window *)
  let tail_ok v =
    T.ok_with_tail ~trace_len:(List.length r.vtrace) ~margin:700 v
  in
  List.iter
    (fun (e : Unityspec.Report.entry) ->
      match e.verdict with
      | T.Violated _ ->
        Alcotest.failf "%s+W: Lspec clause %s violated" name e.clause
      | v ->
        if not (tail_ok v) then
          Alcotest.failf "%s+W: clause %s pending too early" name e.clause)
    (Scenarios.lspec_report r);
  Alcotest.(check bool) "ME1 under wrapper" true
    (T.is_ok (Graybox.Tme_spec.me1 r.vtrace));
  Alcotest.(check bool) "ME3 under wrapper" true
    (T.is_ok (Graybox.Tme_spec.me3 r.entry_log));
  Alcotest.(check bool) "wrapper did send" true (r.wrapper_sends > 0)

(* ------------------------------------------------------------------ *)
(* §4 deadlock scenario                                                 *)

let test_deadlock_strands_unwrapped_ra () =
  let r = Scenarios.run ra ~n:4 ~seed:2 ~steps:6000 ~faults:deadlock_faults in
  Alcotest.(check bool) "not recovered" false r.analysis.recovered;
  Alcotest.(check bool) "someone starves" true (r.analysis.starving <> [])

let recovers proto ~wrapper ~faults ~seed () =
  let r = Scenarios.run proto ~n:4 ~seed ~steps:8000 ~faults ~wrapper in
  Alcotest.(check bool)
    (Printf.sprintf "recovered (%s)" r.protocol)
    true r.analysis.recovered;
  Alcotest.(check (list int)) "nobody starves" [] r.analysis.starving

let test_wrapper_recovers_ra_deadlock () =
  recovers ra ~wrapper:(Scenarios.wrapped ~delta:0 ()) ~faults:deadlock_faults
    ~seed:2 ()

let test_wrapper_recovers_ra_deadlock_with_timeout () =
  recovers ra ~wrapper:(Scenarios.wrapped ~delta:16 ()) ~faults:deadlock_faults
    ~seed:2 ()

let test_wrapper_recovers_lamport_deadlock () =
  recovers lamport ~wrapper:(Scenarios.wrapped ~delta:8 ())
    ~faults:deadlock_faults ~seed:2 ()

let test_unrefined_wrapper_also_recovers () =
  recovers ra
    ~wrapper:(Scenarios.wrapped ~variant:Graybox.Wrapper.Unrefined ~delta:8 ())
    ~faults:deadlock_faults ~seed:2 ()

(* ------------------------------------------------------------------ *)
(* Fault-class coverage (Theorem 8)                                     *)

let fault_classes =
  [ ("drop-requests", deadlock_faults);
    ("drop-any", [ Scenarios.Drop_any { at = 500; per_chan = 5 } ]);
    ("duplicate", [ Scenarios.Duplicate { at = 500; per_chan = 3 } ]);
    ("corrupt-msgs", [ Scenarios.Corrupt_messages { at = 500; per_chan = 3 } ]);
    ("reorder", [ Scenarios.Reorder { at = 500; per_chan = 3 } ]);
    ("flush", [ Scenarios.Flush { at = 500 } ]);
    ("corrupt-state",
     [ Scenarios.Corrupt_state { at = 500; procs = Sim.Faults.Any_proc } ]);
    ("improper-init",
     [ Scenarios.Reset_state { at = 500; procs = Sim.Faults.Proc 1 } ]);
    ("burst", Scenarios.burst ~at:500) ]

let coverage_case proto pname (fname, faults) =
  Alcotest.test_case (Printf.sprintf "%s recovers from %s" pname fname) `Quick
    (fun () ->
      recovers proto ~wrapper:(Scenarios.wrapped ~delta:4 ()) ~faults ~seed:5 ())

(* ------------------------------------------------------------------ *)
(* Reusability (Corollary 11): the SAME wrapper value                   *)

let test_reusability_same_wrapper () =
  let wrapper = Scenarios.wrapped ~delta:4 () in
  List.iter
    (fun proto ->
      let r =
        Scenarios.run proto ~n:4 ~seed:3 ~steps:8000 ~wrapper
          ~faults:(Scenarios.burst ~at:1000)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s recovered with the shared wrapper" r.protocol)
        true r.analysis.recovered)
    [ ra; lamport ]

(* ------------------------------------------------------------------ *)
(* Negative control                                                     *)

let test_negative_control_fault_free_ok () =
  let r = Scenarios.run unmod ~n:4 ~seed:11 ~steps:5000 in
  Alcotest.(check bool) "ME1 fault-free" true (T.is_ok (Graybox.Tme_spec.me1 r.vtrace));
  Alcotest.(check bool) "recovered (trivially)" true r.analysis.recovered

let test_negative_control_not_stabilized () =
  (* the wrapper must fail to rescue the unmodified program for at
     least one corruption draw, while rescuing the modified one for
     every draw tried *)
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let outcome proto seed =
    (Scenarios.run proto ~n:4 ~seed ~steps:8000
       ~wrapper:(Scenarios.wrapped ~delta:8 ())
       ~faults:(Scenarios.burst ~at:1000))
      .analysis.recovered
  in
  let unmod_failures =
    List.filter (fun seed -> not (outcome unmod seed)) seeds
  in
  Alcotest.(check bool) "unmodified program gets stuck for some fault" true
    (unmod_failures <> []);
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "modified recovers (seed %d)" seed)
        true (outcome lamport seed))
    seeds

(* ------------------------------------------------------------------ *)
(* W'(δ): overhead/latency trade-off                                    *)

let test_timeout_reduces_wrapper_traffic () =
  let wrapper_sends delta =
    (Scenarios.run ra ~n:4 ~seed:7 ~steps:5000
       ~wrapper:(Scenarios.wrapped ~delta ()))
      .wrapper_sends
  in
  let eager = wrapper_sends 0 in
  let lazy_ = wrapper_sends 32 in
  Alcotest.(check bool)
    (Printf.sprintf "delta=32 (%d) well below delta=0 (%d)" lazy_ eager)
    true
    (lazy_ * 4 < eager)

let test_refined_cheaper_than_unrefined () =
  let sends variant =
    (Scenarios.run ra ~n:4 ~seed:7 ~steps:5000
       ~wrapper:(Scenarios.wrapped ~variant ~delta:4 ()))
      .wrapper_sends
  in
  Alcotest.(check bool) "refined <= unrefined" true
    (sends Graybox.Wrapper.Refined <= sends Graybox.Wrapper.Unrefined)

(* ------------------------------------------------------------------ *)
(* Message complexity sanity                                            *)

let msgs_per_entry proto ~n =
  let r = Scenarios.run proto ~n ~seed:13 ~steps:8000 in
  float_of_int r.protocol_sends /. float_of_int (max 1 r.total_entries)

let test_message_complexity_shape () =
  let n = 5 in
  let ra_m = msgs_per_entry ra ~n in
  let lam_m = msgs_per_entry lamport ~n in
  let cen_m = msgs_per_entry central ~n in
  (* RA: 2(n-1) .. 3(n-1); Lamport: about 3(n-1); central: about 3 *)
  Alcotest.(check bool)
    (Printf.sprintf "ra %.1f in band" ra_m)
    true
    (ra_m >= 1.5 *. float_of_int (n - 1) && ra_m <= 3.2 *. float_of_int (n - 1));
  Alcotest.(check bool)
    (Printf.sprintf "lamport %.1f > ra %.1f" lam_m ra_m)
    true (lam_m > ra_m);
  Alcotest.(check bool)
    (Printf.sprintf "central %.1f < ra %.1f" cen_m ra_m)
    true (cen_m < ra_m);
  Alcotest.(check bool) (Printf.sprintf "central %.1f ~ 3" cen_m) true
    (cen_m >= 2.0 && cen_m <= 4.5)

(* ------------------------------------------------------------------ *)
(* Determinism and misc                                                 *)

let test_scenarios_deterministic () =
  let run () =
    let r =
      Scenarios.run ra ~n:4 ~seed:21 ~steps:3000
        ~wrapper:(Scenarios.wrapped ~delta:4 ())
        ~faults:(Scenarios.burst ~at:500)
    in
    (r.total_entries, r.sent_total, r.wrapper_sends, r.analysis.recovered)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical replay" true (a = b)

let test_no_record_mode () =
  let r = Scenarios.run ra ~n:3 ~seed:1 ~steps:2000 ~record:false in
  Alcotest.(check int) "no trace" 0 (List.length r.vtrace);
  Alcotest.(check bool) "still counts messages" true (r.sent_total > 0)

let test_find_protocol () =
  Alcotest.(check bool) "ra found" true (Scenarios.find_protocol "ra" <> None);
  Alcotest.(check bool) "unknown" true (Scenarios.find_protocol "nope" = None)

let test_me3_holds_fault_free_runs () =
  List.iter
    (fun proto ->
      let r = Scenarios.run proto ~n:4 ~seed:17 ~steps:5000 in
      Alcotest.(check bool)
        (Printf.sprintf "ME3 (%s)" r.protocol)
        true
        (T.is_ok (Graybox.Tme_spec.me3 r.entry_log)))
    [ ra; lamport ]

let test_post_convergence_suffix_satisfies_safety () =
  let r =
    Scenarios.run ra ~n:4 ~seed:3 ~steps:8000
      ~wrapper:(Scenarios.wrapped ~delta:4 ())
      ~faults:(Scenarios.burst ~at:1000)
  in
  match r.analysis.converged_index with
  | None -> Alcotest.fail "expected convergence"
  | Some i ->
    let suffix = Sim.Trace.suffix_from r.vtrace i in
    Alcotest.(check bool) "ME1 on suffix" true (T.is_ok (Graybox.Tme_spec.me1 suffix));
    (match Graybox.Lspec.flow ~n:4 suffix with
     | T.Violated _ -> Alcotest.fail "Flow Spec must hold after convergence"
     | _ -> ());
    (match Graybox.Lspec.cs_entry_safety ~n:4 suffix with
     | T.Violated _ ->
       Alcotest.fail "CS Entry safety must hold after convergence"
     | _ -> ())

(* Modification ablation: m1+2 loses to phantom entries naming a
   passive (never-requesting) process; the release echo (m3) is what
   recovers those, and the full variant recovers every draw. *)
let test_release_echo_needed_with_passive_peer () =
  let m12 = Option.get (Scenarios.find_protocol "lamport-m12") in
  let outcome proto seed =
    (Scenarios.run proto ~n:4 ~seed ~steps:9000 ~passive:[ 3 ]
       ~wrapper:(Scenarios.wrapped ~delta:4 ())
       ~faults:
         [ Scenarios.Corrupt_state { at = 800; procs = Sim.Faults.Any_proc } ])
      .analysis.recovered
  in
  let seeds = List.init 12 (fun i -> i + 1) in
  Alcotest.(check bool) "m1+2 gets stuck for some draw" true
    (List.exists (fun seed -> not (outcome m12 seed)) seeds);
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "m1+2+3 recovers (seed %d)" seed)
        true (outcome lamport seed))
    seeds

let test_passive_process_never_requests () =
  let r = Scenarios.run ra ~n:3 ~seed:4 ~steps:4000 ~passive:[ 2 ] in
  let always_thinking =
    List.for_all
      (fun (snap : (Graybox.View.t, Graybox.Msg.t) Sim.Trace.snapshot) ->
        Graybox.View.thinking snap.states.(2))
      r.vtrace
  in
  Alcotest.(check bool) "process 2 never leaves thinking" true always_thinking;
  Alcotest.(check bool) "others still served" true (r.total_entries > 30)

let test_partition_recovery () =
  let faults =
    [ Scenarios.Partition { pid = 1; from_t = 500; until_t = 600 } ]
  in
  List.iter
    (fun proto ->
      let r =
        Scenarios.run proto ~n:4 ~seed:6 ~steps:9000 ~faults
          ~wrapper:(Scenarios.wrapped ~delta:4 ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s recovers from partition" r.protocol)
        true r.analysis.recovered)
    [ ra; lamport ]

(* Random fault storms: the wrapped protocols always come back. *)
let prop_random_storms proto pname =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8
       ~name:(Printf.sprintf "%s + W recovers from random storms" pname)
       QCheck2.Gen.(pair (1 -- 1000) (300 -- 900))
       (fun (seed, at) ->
         let r =
           Scenarios.run proto ~n:3 ~seed ~steps:9000
             ~wrapper:(Scenarios.wrapped ~delta:4 ())
             ~faults:(Scenarios.burst ~at)
         in
         r.analysis.recovered))

let () =
  Alcotest.run "stabilization"
    [ ( "theorem5",
        [ Alcotest.test_case "ra fault-free conformance" `Quick
            (check_fault_free_conformance ra "ra");
          Alcotest.test_case "lamport fault-free conformance" `Quick
            (check_fault_free_conformance lamport "lamport");
          Alcotest.test_case "central ME1" `Quick test_central_fault_free_me1;
          Alcotest.test_case "ME3 fault-free" `Quick test_me3_holds_fault_free_runs;
          Alcotest.test_case "Lemma 6: ra+W interference-free" `Quick
            (test_interference_freedom ra "ra");
          Alcotest.test_case "Lemma 6: lamport+W interference-free" `Quick
            (test_interference_freedom lamport "lamport") ] );
      ( "deadlock",
        [ Alcotest.test_case "unwrapped ra strands" `Quick
            test_deadlock_strands_unwrapped_ra;
          Alcotest.test_case "W recovers ra" `Quick test_wrapper_recovers_ra_deadlock;
          Alcotest.test_case "W'(16) recovers ra" `Quick
            test_wrapper_recovers_ra_deadlock_with_timeout;
          Alcotest.test_case "W recovers lamport" `Quick
            test_wrapper_recovers_lamport_deadlock;
          Alcotest.test_case "unrefined W recovers" `Quick
            test_unrefined_wrapper_also_recovers ] );
      ( "fault-coverage-ra",
        List.map (coverage_case ra "ra") fault_classes );
      ( "fault-coverage-lamport",
        List.map (coverage_case lamport "lamport") fault_classes );
      ( "reusability",
        [ Alcotest.test_case "same wrapper, both protocols" `Quick
            test_reusability_same_wrapper ] );
      ( "negative-control",
        [ Alcotest.test_case "fault-free ok" `Quick
            test_negative_control_fault_free_ok;
          Alcotest.test_case "wrapper insufficient" `Quick
            test_negative_control_not_stabilized ] );
      ( "timeout",
        [ Alcotest.test_case "traffic falls with delta" `Quick
            test_timeout_reduces_wrapper_traffic;
          Alcotest.test_case "refined cheaper" `Quick
            test_refined_cheaper_than_unrefined ] );
      ( "complexity",
        [ Alcotest.test_case "message complexity shape" `Quick
            test_message_complexity_shape ] );
      ( "infra",
        [ Alcotest.test_case "deterministic" `Quick test_scenarios_deterministic;
          Alcotest.test_case "no-record mode" `Quick test_no_record_mode;
          Alcotest.test_case "find_protocol" `Quick test_find_protocol;
          Alcotest.test_case "post-convergence safety" `Quick
            test_post_convergence_suffix_satisfies_safety ] );
      ( "ablation",
        [ Alcotest.test_case "release echo needed" `Quick
            test_release_echo_needed_with_passive_peer;
          Alcotest.test_case "passive stays thinking" `Quick
            test_passive_process_never_requests;
          Alcotest.test_case "partition recovery" `Quick test_partition_recovery ] );
      ( "storms",
        [ prop_random_storms ra "ra"; prop_random_storms lamport "lamport" ] ) ]
