(* Tests for the bounded exhaustive model checker: the shipped
   protocols are safe under every interleaving within the bounds; the
   deliberately faulty RA mutant (replies while eating) is caught with
   a concrete counterexample trace.  This validates both directions —
   the protocols and the checker. *)

let ra = (module Tme.Ra_me : Graybox.Protocol.S)
let ra_gcl = (module Gcl.Ra_gcl : Graybox.Protocol.S)
let lamport = (module Tme.Lamport_me : Graybox.Protocol.S)
let mutant = (module Tme.Ra_mutant : Graybox.Protocol.S)

let check_safe ?(n = 2) name proto ~max_depth () =
  match Mcheck.check_me1 proto ~n ~max_depth () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool)
      (Printf.sprintf "%s explored real states" name)
      true (stats.Mcheck.explored > 100)
  | Mcheck.Violation { trace; _ } ->
    Alcotest.failf "%s: unexpected ME1 violation: %s" name
      (String.concat " ; " trace)

let test_mutant_caught () =
  match Mcheck.check_me1 mutant ~n:2 ~max_depth:20 () with
  | Mcheck.Ok _ -> Alcotest.fail "the mutant must violate ME1"
  | Mcheck.Violation { trace; witness; stats; _ } ->
    Alcotest.(check bool) "short counterexample" true (List.length trace <= 20);
    Alcotest.(check bool) "found quickly" true (stats.Mcheck.explored < 200_000);
    let eaters =
      Array.fold_left
        (fun acc v -> if Graybox.View.eating v then acc + 1 else acc)
        0 witness
    in
    Alcotest.(check int) "two eaters in the witness state" 2 eaters;
    (* the trace is a genuine interleaving: it must mention a delivery
       and an entry by each process *)
    let mentions p =
      List.exists
        (fun l -> l = Printf.sprintf "enter(%d)" p)
        trace
    in
    Alcotest.(check bool) "both processes enter" true (mentions 0 && mentions 1)

let test_mutant_ok_at_n1_depths () =
  (* with insufficient depth the bug is not reachable: bounds matter *)
  match Mcheck.check_me1 mutant ~n:2 ~max_depth:4 () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool) "truncated" true stats.Mcheck.truncated
  | Mcheck.Violation _ ->
    Alcotest.fail "depth 4 cannot reach a double entry"

let test_custom_invariant () =
  (* a deliberately false invariant is reported with a witness *)
  match
    Mcheck.check_invariant ra ~n:2 ~max_depth:6 ~name:"nobody-hungry"
      (fun views -> not (Array.exists Graybox.View.hungry views))
  with
  | Mcheck.Violation { trace; _ } ->
    Alcotest.(check bool) "trace starts with a request" true
      (match trace with
       | l :: _ -> String.length l >= 7 && String.sub l 0 7 = "request"
       | [] -> false)
  | Mcheck.Ok _ -> Alcotest.fail "someone must get hungry"

let test_stats_sane () =
  match Mcheck.check_me1 ra ~n:2 ~max_depth:10 () with
  | Mcheck.Ok stats ->
    Alcotest.(check string) "invariant name" "ME1" stats.Mcheck.name;
    Alcotest.(check bool) "depth reached" true (stats.Mcheck.depth_reached <= 10);
    Alcotest.(check bool) "peak >= 1" true (stats.Mcheck.frontier_peak >= 1)
  | Mcheck.Violation _ -> Alcotest.fail "ra is safe"

(* -- parallel frontier expansion ----------------------------------- *)

let test_parallel_equals_serial () =
  (* same violation, same trace, same stats, for every jobs value --
     on a workload that actually finds a counterexample *)
  let run jobs = Mcheck.check_me1 mutant ~n:2 ~jobs ~max_depth:20 () in
  match (run 1, run 3) with
  | ( Mcheck.Violation { trace = t1; witness = w1; stats = s1; _ },
      Mcheck.Violation { trace = t3; witness = w3; stats = s3; _ } ) ->
    Alcotest.(check (list string)) "same trace" t1 t3;
    Alcotest.(check bool) "same stats" true (s1 = s3);
    Alcotest.(check bool) "same witness" true (w1 = w3)
  | _ -> Alcotest.fail "the mutant must violate ME1 at every jobs value"

let test_parallel_equals_serial_safe () =
  (* and identical stats on a safe exploration *)
  let run jobs = Mcheck.check_me1 ra ~n:3 ~jobs ~max_depth:10 () in
  Alcotest.(check bool) "identical results" true (run 1 = run 3)

(* -- counterexample replay ----------------------------------------- *)

let test_replay_witness () =
  match Mcheck.check_me1 mutant ~n:2 ~max_depth:20 () with
  | Mcheck.Ok _ -> Alcotest.fail "the mutant must violate ME1"
  | Mcheck.Violation { trace; witness; _ } ->
    (match Mcheck.replay mutant ~n:2 trace with
     | None -> Alcotest.fail "the reported trace must be executable"
     | Some views ->
       Alcotest.(check bool) "replay reaches the witness views" true
         (views = witness))

let test_replay_rejects_garbage () =
  Alcotest.(check bool) "bogus trace rejected" true
    (Mcheck.replay mutant ~n:2 [ "enter(0)" ] = None)

(* -- everywhere mode ------------------------------------------------ *)

let m1 = (module Tme.Lamport_ablation.M1 : Graybox.Protocol.S)
let m12 = (module Tme.Lamport_ablation.M12 : Graybox.Protocol.S)
let unmod = (module Tme.Lamport_unmodified : Graybox.Protocol.S)

(* Shared shape of every negative-control everywhere test: correct
   from Init at the given depth, caught from a perturbed state at the
   very same depth -- the discrimination the wrapper exists for. *)
let check_discriminated name proto ~depth () =
  (match Mcheck.check_me1 proto ~n:2 ~max_depth:depth () with
   | Mcheck.Ok _ -> ()
   | Mcheck.Violation { trace; _ } ->
     Alcotest.failf "%s violated from Init at depth %d: %s" name depth
       (String.concat " ; " trace));
  match Mcheck.check_me1_everywhere proto ~n:2 ~max_depth:depth () with
  | Mcheck.Ok _ ->
    Alcotest.failf "everywhere mode must catch %s at depth %d" name depth
  | Mcheck.Violation { trace; _ } ->
    Alcotest.(check bool) "seed named" true
      (match trace with
       | l :: _ ->
         String.starts_with ~prefix:"corrupt(" l
         || String.starts_with ~prefix:"inflight(" l
       | [] -> false)

let test_everywhere_discriminates () =
  (* at depth 4 the mutant looks safe from Init... *)
  (match Mcheck.check_me1 mutant ~n:2 ~max_depth:4 () with
   | Mcheck.Ok _ -> ()
   | Mcheck.Violation _ -> Alcotest.fail "depth 4 from Init cannot double-enter");
  (* ...but not from a perturbed state *)
  match Mcheck.check_me1_everywhere mutant ~n:2 ~max_depth:4 () with
  | Mcheck.Ok _ ->
    Alcotest.fail "everywhere mode must catch the mutant at depth 4"
  | Mcheck.Violation { trace; _ } ->
    (* the trace names the seeding perturbation *)
    Alcotest.(check bool) "seed named" true
      (match trace with
       | l :: _ ->
         String.starts_with ~prefix:"corrupt(" l
         || String.starts_with ~prefix:"inflight(" l
       | [] -> false)

let test_everywhere_lamport_unmodified_program () =
  (* Lamport's program without the modifications is correct from Init
     but not self-stabilizing: everywhere mode exposes it shallowly *)
  match Mcheck.check_me1_everywhere m1 ~n:2 ~max_depth:4 () with
  | Mcheck.Ok _ -> Alcotest.fail "lamport-m1 must fail from a perturbed state"
  | Mcheck.Violation _ -> ()

let test_everywhere_ra_shallow_safe () =
  (* RA recovers from the same shallow perturbations: no violation at
     depth 4 (it is not everywhere-safe at larger depth, which is the
     point of the wrapper -- see EXPERIMENTS.md) *)
  match Mcheck.check_me1_everywhere ra ~n:2 ~max_depth:4 () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool) "explored seeds" true (stats.Mcheck.explored > 50)
  | Mcheck.Violation { trace; _ } ->
    Alcotest.failf "ra violated at depth 4 from: %s" (String.concat " ; " trace)

(* -- bounds --------------------------------------------------------- *)

let test_max_states_hard_bound () =
  match Mcheck.check_me1 ra ~n:3 ~max_depth:30 ~max_states:500 () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool) "visited bounded" true (stats.Mcheck.visited <= 500);
    Alcotest.(check bool) "truncated reported" true stats.Mcheck.truncated;
    Alcotest.(check bool) "explored <= visited" true
      (stats.Mcheck.explored <= stats.Mcheck.visited)
  | Mcheck.Violation _ -> Alcotest.fail "ra is safe"

(* -- sharded / out-of-core differential suite ----------------------- *)

(* Every (jobs, shards, mem_budget) configuration must return the same
   result — traces byte-identical, stats field-for-field equal except
   the two memory figures, which depend on mem_budget (but on nothing
   else).  The reference is the fully serial in-RAM run. *)

let scrub_mem = function
  | Mcheck.Ok s -> Mcheck.Ok { s with Mcheck.peak_mem_words = 0; spill_bytes = 0 }
  | Mcheck.Violation { trace; witness; path; stats = s } ->
    Mcheck.Violation
      { trace;
        witness;
        path;
        stats = { s with Mcheck.peak_mem_words = 0; spill_bytes = 0 } }

let check_differential name run () =
  let reference = run ~jobs:1 ~shards:1 ~mem_budget:max_int in
  (* fixed budget => full equality including memory stats, across a
     seeded-random draw of (jobs, shards) configurations *)
  let rng = Random.State.make [| 0xd1f; 0x5eed |] in
  for _ = 1 to 4 do
    let jobs = 1 + Random.State.int rng 4 in
    let shards = 1 + Random.State.int rng 8 in
    Alcotest.(check bool)
      (Printf.sprintf "%s: jobs=%d shards=%d == serial" name jobs shards)
      true
      (run ~jobs ~shards ~mem_budget:max_int = reference)
  done;
  (* tiny budget forces the spill path; everything but the memory
     figures must be unchanged, and spilling must actually happen *)
  let spilled = run ~jobs:3 ~shards:4 ~mem_budget:64 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: spill-forced == in-RAM (modulo memory stats)" name)
    true
    (scrub_mem spilled = scrub_mem reference);
  let stats_of = function
    | Mcheck.Ok s -> s
    | Mcheck.Violation { stats; _ } -> stats
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: spill engaged" name)
    true
    ((stats_of spilled).Mcheck.spill_bytes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s: in-RAM run never spills" name)
    true
    ((stats_of reference).Mcheck.spill_bytes = 0);
  (* memory stats themselves are jobs- and shards-invariant at a
     fixed budget *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: spilled stats jobs/shards-invariant" name)
    true
    (run ~jobs:1 ~shards:7 ~mem_budget:64 = spilled)

let diff_safe ~jobs ~shards ~mem_budget =
  Mcheck.check_me1 ra ~n:3 ~jobs ~shards ~mem_budget ~max_depth:8 ()

let diff_violation ~jobs ~shards ~mem_budget =
  Mcheck.check_me1 mutant ~n:2 ~jobs ~shards ~mem_budget ~max_depth:20 ()

let diff_everywhere ~jobs ~shards ~mem_budget =
  Mcheck.check_me1_everywhere m1 ~n:2 ~jobs ~shards ~mem_budget ~max_depth:4 ()

let diff_bounded ~jobs ~shards ~mem_budget =
  (* exercises the near-max_states serial admission path *)
  Mcheck.check_me1 ra ~n:3 ~jobs ~shards ~mem_budget ~max_depth:30
    ~max_states:500 ()

(* -- partial-order reduction ---------------------------------------- *)

let test_por_reduces_and_agrees () =
  (* on a por_safe reference protocol the reduction must prove the
     same result with strictly fewer states *)
  let run por = Mcheck.check_me1 ra ~n:3 ~por ~max_depth:10 () in
  match (run false, run true) with
  | Mcheck.Ok full, Mcheck.Ok reduced ->
    Alcotest.(check bool) "strictly fewer states visited" true
      (reduced.Mcheck.visited < full.Mcheck.visited);
    Alcotest.(check bool) "strictly fewer states explored" true
      (reduced.Mcheck.explored < full.Mcheck.explored)
  | _ -> Alcotest.fail "ra is safe with and without POR"

let test_por_still_catches_violations () =
  (* the ample conditions are dynamic, so the reduction is sound even
     on the buggy mutant: the violation must still be found, and its
     trace must replay *)
  match Mcheck.check_me1 mutant ~n:2 ~por:true ~max_depth:20 () with
  | Mcheck.Ok _ -> Alcotest.fail "POR must not mask the mutant's violation"
  | Mcheck.Violation { trace; witness; _ } ->
    (match Mcheck.replay mutant ~n:2 trace with
    | None -> Alcotest.fail "POR trace must be executable"
    | Some views ->
      Alcotest.(check bool) "replay reaches the witness" true (views = witness))

let test_por_deterministic () =
  let run jobs shards =
    Mcheck.check_me1 ra ~n:3 ~jobs ~shards ~por:true ~max_depth:10 ()
  in
  Alcotest.(check bool) "POR invariant under jobs and shards" true
    (run 1 1 = run 3 4)

(* -- memory accounting ---------------------------------------------- *)

let test_peak_mem_reported () =
  match Mcheck.check_me1 ra ~n:2 ~max_depth:10 () with
  | Mcheck.Ok stats ->
    (* 3 index words per state plus at least one key word each *)
    Alcotest.(check bool) "peak covers the index" true
      (stats.Mcheck.peak_mem_words >= 4 * stats.Mcheck.visited);
    Alcotest.(check int) "no spill without pressure" 0 stats.Mcheck.spill_bytes
  | Mcheck.Violation _ -> Alcotest.fail "ra is safe"

let () =
  Alcotest.run "mcheck"
    [ ( "safety",
        [ Alcotest.test_case "ra safe (exhaustive, n=2 depth 30)" `Quick
            (check_safe "ra" ra ~max_depth:30);
          Alcotest.test_case "ra safe (exhaustive, n=3 depth 14)" `Quick
            (check_safe ~n:3 "ra" ra ~max_depth:14);
          Alcotest.test_case "ra-gcl safe (exhaustive, n=2 depth 24)" `Quick
            (check_safe "ra-gcl" ra_gcl ~max_depth:24);
          Alcotest.test_case "lamport safe (exhaustive, n=2 depth 24)" `Quick
            (check_safe "lamport" lamport ~max_depth:24);
          Alcotest.test_case "lamport safe (exhaustive, n=3 depth 12)" `Quick
            (check_safe ~n:3 "lamport" lamport ~max_depth:12) ] );
      ( "discrimination",
        [ Alcotest.test_case "mutant caught" `Quick test_mutant_caught;
          Alcotest.test_case "depth bound respected" `Quick
            test_mutant_ok_at_n1_depths;
          Alcotest.test_case "custom invariant" `Quick test_custom_invariant;
          Alcotest.test_case "stats" `Quick test_stats_sane ] );
      ( "parallel",
        [ Alcotest.test_case "jobs 1 = jobs 3 (violation)" `Quick
            test_parallel_equals_serial;
          Alcotest.test_case "jobs 1 = jobs 3 (safe)" `Quick
            test_parallel_equals_serial_safe ] );
      ( "replay",
        [ Alcotest.test_case "witness reproduced" `Quick test_replay_witness;
          Alcotest.test_case "garbage rejected" `Quick
            test_replay_rejects_garbage ] );
      ( "everywhere",
        [ Alcotest.test_case "mutant caught at depth 4" `Quick
            test_everywhere_discriminates;
          Alcotest.test_case "lamport-m1 caught at depth 4" `Quick
            test_everywhere_lamport_unmodified_program;
          Alcotest.test_case "lamport-unmod discriminated at depth 4" `Quick
            (check_discriminated "lamport-unmod" unmod ~depth:4);
          Alcotest.test_case "lamport-m12 discriminated at depth 4" `Quick
            (check_discriminated "lamport-m12" m12 ~depth:4);
          Alcotest.test_case "ra-mutant discriminated at depth 4" `Quick
            (check_discriminated "ra-mutant" mutant ~depth:4);
          Alcotest.test_case "ra safe at depth 4" `Quick
            test_everywhere_ra_shallow_safe ] );
      ( "bounds",
        [ Alcotest.test_case "max_states is hard" `Quick
            test_max_states_hard_bound ] );
      ( "differential",
        [ Alcotest.test_case "safe run" `Quick
            (check_differential "ra n=3" diff_safe);
          Alcotest.test_case "violating run" `Quick
            (check_differential "mutant n=2" diff_violation);
          Alcotest.test_case "everywhere run" `Quick
            (check_differential "lamport-m1 everywhere" diff_everywhere);
          Alcotest.test_case "bounded run" `Quick
            (check_differential "ra n=3 max_states=500" diff_bounded) ] );
      ( "por",
        [ Alcotest.test_case "fewer states, same verdict" `Quick
            test_por_reduces_and_agrees;
          Alcotest.test_case "violations not masked" `Quick
            test_por_still_catches_violations;
          Alcotest.test_case "deterministic" `Quick test_por_deterministic ] );
      ( "memory",
        [ Alcotest.test_case "peak and spill reported" `Quick
            test_peak_mem_reported ] ) ]
