(* Command-line driver for the graybox stabilization library.

     graybox-cli run   --protocol ra --n 4 --wrapper 8 --fault burst:1000
     graybox-cli load  --protocol ra --n 1000
     graybox-cli check --protocol lamport
     graybox-cli fig1
     graybox-cli rvc   --corrupt-at 500
     graybox-cli chaos --seeds 50 --budget 6 --json report.json
     graybox-cli protocols --json

   `run` simulates a scenario and prints the stabilization analysis
   (exit 1 when the run does not recover, so it works as a CI gate);
   `check` runs fault-free and prints the Lspec / TME_Spec monitor
   reports; `fig1` model-checks the paper's counterexample; `rvc`
   exercises the resettable-vector-clock case study; `chaos` sweeps
   randomized fault plans across protocols and wrapper modes, shrinks
   any failure to a minimal reproducer, and exits 1 when a wrapped run
   fails or an expected-failure baseline recovers; `protocols` lists
   the registry every subcommand resolves names against. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Fault-spec parsing: KIND:ARGS, e.g. burst:1000, drop-requests:500-560 *)

let parse_fault s =
  let fail msg = Error (`Msg msg) in
  let parse_groups spec =
    (* "0,1|2,3" — pids grouped by '|'; unlisted pids form the
       implicit remainder group (Sim.Faults.split_groups) *)
    let group g =
      List.filter_map int_of_string_opt (String.split_on_char ',' g)
    in
    match List.map group (String.split_on_char '|' spec) with
    | groups when List.for_all (fun g -> g <> []) groups && groups <> [] ->
      Some groups
    | _ -> None
  in
  let parse_split ~mode range groups =
    match String.split_on_char '-' range with
    | [ a; b ] ->
      (match int_of_string_opt a, int_of_string_opt b, parse_groups groups with
       | Some from_t, Some until_t, Some groups ->
         Ok [ Tme.Scenarios.Split { groups; from_t; until_t; mode } ]
       | _ -> fail "split: expected split:FROM-TO:0,1|2,3")
    | _ -> fail "split: expected split:FROM-TO:0,1|2,3"
  in
  match String.split_on_char ':' s with
  | [ "split"; range; groups ] -> parse_split ~mode:Sim.Faults.Lossy range groups
  | [ "split-buf"; range; groups ] ->
    parse_split ~mode:Sim.Faults.Buffered range groups
  | [ "burst"; at ] ->
    (match int_of_string_opt at with
     | Some at -> Ok (Tme.Scenarios.burst ~at)
     | None -> fail "burst: expected burst:TIME")
  | [ "drop-requests"; range ] ->
    (match String.split_on_char '-' range with
     | [ a; b ] ->
       (match int_of_string_opt a, int_of_string_opt b with
        | Some from_t, Some until_t ->
          Ok [ Tme.Scenarios.Drop_requests_window { from_t; until_t } ]
        | _ -> fail "drop-requests: expected drop-requests:FROM-TO")
     | _ -> fail "drop-requests: expected drop-requests:FROM-TO")
  | [ kind; at ] ->
    (match int_of_string_opt at with
     | None -> fail (kind ^ ": expected " ^ kind ^ ":TIME")
     | Some at ->
       (match kind with
        | "drop" -> Ok [ Tme.Scenarios.Drop_any { at; per_chan = 3 } ]
        | "duplicate" -> Ok [ Tme.Scenarios.Duplicate { at; per_chan = 3 } ]
        | "corrupt-msgs" ->
          Ok [ Tme.Scenarios.Corrupt_messages { at; per_chan = 3 } ]
        | "reorder" -> Ok [ Tme.Scenarios.Reorder { at; per_chan = 3 } ]
        | "flush" -> Ok [ Tme.Scenarios.Flush { at } ]
        | "corrupt-state" ->
          Ok [ Tme.Scenarios.Corrupt_state { at; procs = Sim.Faults.Any_proc } ]
        | "reset" ->
          Ok [ Tme.Scenarios.Reset_state { at; procs = Sim.Faults.Any_proc } ]
        | _ -> fail ("unknown fault kind: " ^ kind)))
  | _ ->
    fail
      "expected KIND:TIME (burst, drop, duplicate, corrupt-msgs, reorder, \
       flush, corrupt-state, reset), drop-requests:FROM-TO, or \
       split[-buf]:FROM-TO:0,1|2,3"

let fault_conv =
  Arg.conv
    ( parse_fault,
      fun ppf _ -> Format.pp_print_string ppf "<fault>" )

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

(* Every protocol-naming subcommand resolves through the registry, so
   the accepted names, the default, and the error listing are all one
   table (see `graybox-cli protocols`).  Tme.Scenarios — linked into
   this binary — registers the implementations before main runs. *)
let default_protocol () =
  match Graybox.Registry.default_reference () with
  | Some e -> e.Graybox.Registry.name
  | None -> invalid_arg "no reference protocol registered"

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol: %s."
      (String.concat ", " (Graybox.Registry.names ()))
  in
  Arg.(
    value
    & opt string (default_protocol ())
    & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (equal seeds replay identical executions)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let steps_arg =
  let doc = "Scheduler steps to simulate." in
  Arg.(value & opt int 8000 & info [ "steps" ] ~docv:"STEPS" ~doc)

let wrapper_arg =
  let doc =
    "Wrapper timeout delta; 0 is the paper's W, omit the flag to run \
     unwrapped."
  in
  Arg.(value & opt (some int) None & info [ "w"; "wrapper" ] ~docv:"DELTA" ~doc)

let unrefined_arg =
  let doc = "Use the unrefined wrapper (send to all peers)." in
  Arg.(value & flag & info [ "unrefined" ] ~doc)

let faults_arg =
  let doc =
    "Fault to inject (repeatable), e.g. burst:1000, drop-requests:500-560, \
     corrupt-state:700."
  in
  Arg.(value & opt_all fault_conv [] & info [ "f"; "fault" ] ~docv:"SPEC" ~doc)

let resolve_entry name =
  match Graybox.Registry.find name with
  | Some e -> Ok e
  | None -> Error (Graybox.Registry.unknown_protocol_message name)

let resolve_protocol name =
  Result.map (fun e -> e.Graybox.Registry.proto) (resolve_entry name)

let streaming_arg =
  let doc =
    "Analyse the run online with engine observers instead of recording a \
     trace (same results, less memory, early exit on permanent deadlock); \
     $(docv)=false restores the record-then-analyse path."
  in
  Arg.(value & opt bool true & info [ "streaming" ] ~docv:"BOOL" ~doc)

let wrapper_mode delta unrefined =
  match delta with
  | None -> Graybox.Harness.Off
  | Some delta ->
    let variant =
      if unrefined then Graybox.Wrapper.Unrefined else Graybox.Wrapper.Refined
    in
    Tme.Scenarios.wrapped ~variant ~delta ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let action protocol n seed steps delta unrefined faults streaming =
    match resolve_protocol protocol with
    | Error e -> `Error (false, e)
    | Ok proto ->
      let r =
        Tme.Scenarios.run proto ~n ~seed ~steps ~streaming
          ~live_monitors:streaming
          ~wrapper:(wrapper_mode delta unrefined)
          ~faults:(List.concat faults)
      in
      Printf.printf "protocol          : %s\n" r.protocol;
      Format.printf "%a@." Graybox.Stabilize.pp r.analysis;
      Printf.printf "CS entries        : %d\n" r.total_entries;
      Printf.printf "messages sent     : %d (wrapper: %d)\n" r.sent_total
        r.wrapper_sends;
      (match r.recovery_latency with
       | Some l -> Printf.printf "service round     : %d steps\n" l
       | None -> print_endline "service round     : incomplete");
      if r.sim_steps < r.steps then
        Printf.printf "early exit        : permanently quiescent at step %d/%d\n"
          r.sim_steps r.steps;
      (match r.live_spec with
       | None -> ()
       | Some report ->
         print_endline "-- TME_Spec online monitors --";
         print_endline (Unityspec.Report.to_string report));
      (match r.epoch_spec with
       | None -> ()
       | Some ep ->
         print_endline "-- Regime-epoch monitors --";
         Format.printf "%a@." Graybox.Tme_spec.Epoch.pp ep);
      (* exit nonzero on a non-recovering run so `run` can gate CI *)
      `Ok (if r.analysis.Graybox.Stabilize.recovered then 0 else 1)
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ n_arg $ seed_arg $ steps_arg
       $ wrapper_arg $ unrefined_arg $ faults_arg $ streaming_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a scenario and report stabilization")
    term

(* ------------------------------------------------------------------ *)
(* load                                                                *)

let load_cmd =
  let action protocol n seed rate requests max_steps scan =
    match resolve_protocol protocol with
    | Error e -> `Error (false, e)
    | Ok proto ->
      let rate =
        match rate with Some r -> r | None -> 0.2 /. float_of_int n
      in
      let max_steps =
        (* the default horizon scales with the request target: ~5*R*n
           steps to inject R requests at the default 0.2/n rate, plus
           a 400*n drain tail *)
        match max_steps with Some s -> s | None -> ((5 * requests) + 400) * n
      in
      let t0 = Unix.gettimeofday () in
      let r =
        Tme.Load.run ~indexed:(not scan) proto ~n ~seed ~rate
          ~max_requests:requests ~max_steps ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      let ps = Tme.Load.percentiles r [ 50.; 99.; 99.9 ] in
      Printf.printf "protocol       : %s (n=%d, seed %d)\n" r.Tme.Load.protocol
        r.Tme.Load.n r.Tme.Load.seed;
      Printf.printf "arrival rate   : %g requests/step (open loop)\n"
        r.Tme.Load.rate;
      Printf.printf "steps          : %d (%.0f steps/sec)\n"
        r.Tme.Load.steps_run
        (float_of_int r.Tme.Load.steps_run /. dt);
      Printf.printf "requests       : %d injected, %d granted\n"
        r.Tme.Load.requests r.Tme.Load.grants;
      (match ps with
       | [ p50; p99; p999 ] when r.Tme.Load.grants > 0 ->
         Printf.printf
           "grant latency  : p50=%.0f p99=%.0f p99.9=%.0f steps (from \
            intended arrival)\n"
           p50 p99 p999
       | _ -> print_endline "grant latency  : no grants");
      (* exit nonzero when injected requests went ungranted within the
         horizon — the smoke gate for CI *)
      `Ok (if r.Tme.Load.grants = r.Tme.Load.requests then 0 else 1)
  in
  let n_arg =
    let doc = "Number of processes." in
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Arrival rate in requests per step across the system (default 0.2/n)."
    in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"RATE" ~doc)
  in
  let requests_arg =
    let doc =
      "Stop injecting after this many requests.  The default is sized \
       so the p99.9 latency figure rests on real tail mass: at 80 \
       requests (the old default) p99 and p99.9 were the same order \
       statistic."
    in
    Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"R" ~doc)
  in
  let max_steps_arg =
    let doc = "Step horizon (default (5*R+400)*n)." in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"STEPS" ~doc)
  in
  let scan_arg =
    let doc =
      "Use the scanning scheduler instead of the indexed one (results are \
       identical; only speed differs)."
    in
    Arg.(value & flag & info [ "scan" ] ~doc)
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ n_arg $ seed_arg $ rate_arg
       $ requests_arg $ max_steps_arg $ scan_arg))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive an open-loop Poisson workload and report throughput and \
          grant-latency percentiles")
    term

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_cmd =
  let action protocol n seed steps =
    match resolve_protocol protocol with
    | Error e -> `Error (false, e)
    | Ok proto ->
      let r = Tme.Scenarios.run proto ~n ~seed ~steps in
      print_endline "-- Lspec clause monitors (fault-free run) --";
      print_endline (Unityspec.Report.to_string (Tme.Scenarios.lspec_report r));
      print_endline "";
      print_endline "-- TME_Spec monitors --";
      print_endline (Unityspec.Report.to_string (Tme.Scenarios.tme_report r));
      print_endline "";
      Printf.printf
        "(liveness clauses may be 'pending' at the trace tail: the run \
         simply ended mid-obligation)\n";
      `Ok 0
  in
  let term =
    Term.(ret (const action $ protocol_arg $ n_arg $ seed_arg $ steps_arg))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run fault-free and print specification-monitor reports")
    term

(* ------------------------------------------------------------------ *)
(* fig1                                                                *)

let fig1_cmd =
  let action () =
    let open Kernel in
    let yn b = if b then "yes" else "NO" in
    Printf.printf "[C => A]init            : %s\n"
      (yn (Tsys.implements_from_init Fig1.c Fig1.a));
    Printf.printf "[C => A]                : %s\n"
      (yn (Tsys.everywhere_implements Fig1.c Fig1.a));
    Printf.printf "A stabilizing to A      : %s\n"
      (yn (Tsys.is_stabilizing_to Fig1.a Fig1.a));
    Printf.printf "C stabilizing to A      : %s\n"
      (yn (Tsys.is_stabilizing_to Fig1.c Fig1.a));
    Printf.printf "Theorem 1 instance      : %s\n"
      (yn
         (Theorem1.check ~c:Theorem1.c ~a:Theorem1.a ~w:Theorem1.w
            ~w':Theorem1.w'));
    `Ok 0
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Model-check the paper's Figure 1 counterexample")
    Term.(ret (const action $ const ()))

(* ------------------------------------------------------------------ *)
(* rvc                                                                 *)

let rvc_cmd =
  let corrupt_at_arg =
    Arg.(
      value
      & opt (some int) (Some 500)
      & info [ "corrupt-at" ] ~docv:"TIME"
          ~doc:"Corrupt every clock at this time (omit value for none).")
  in
  let bound_arg =
    Arg.(value & opt int 60 & info [ "bound" ] ~docv:"B" ~doc:"Component bound.")
  in
  let no_wrapper_arg =
    Arg.(value & flag & info [ "no-wrapper" ] ~doc:"Disable the reset wrapper.")
  in
  let action n seed steps corrupt_at bound no_wrapper =
    let o =
      Rvc.System.run ?corrupt_at
        { Rvc.System.n; bound; wrapper = not no_wrapper }
        ~seed ~steps
    in
    Printf.printf "recovered       : %b\n" o.Rvc.System.recovered;
    (match o.Rvc.System.recovery_steps with
     | Some s -> Printf.printf "recovery steps  : %d\n" s
     | None -> print_endline "recovery steps  : -");
    Printf.printf "wrapper resets  : %d\n" o.Rvc.System.resets;
    Printf.printf "ill-formed at end: %d\n" o.Rvc.System.ill_at_end;
    Printf.printf "final epoch     : %d\n" o.Rvc.System.final_epoch;
    Printf.printf "hb sound        : %b\n" o.Rvc.System.hb_sound;
    `Ok 0
  in
  let term =
    Term.(
      ret
        (const action $ n_arg $ seed_arg $ steps_arg $ corrupt_at_arg
       $ bound_arg $ no_wrapper_arg))
  in
  Cmd.v
    (Cmd.info "rvc" ~doc:"Run the resettable-vector-clock case study")
    term

(* ------------------------------------------------------------------ *)
(* kstate                                                              *)

let kstate_cmd =
  let k_arg =
    Arg.(value & opt int 6 & info [ "k" ] ~docv:"K" ~doc:"Counter domain size.")
  in
  let corrupt_at_arg =
    Arg.(
      value
      & opt (some int) (Some 500)
      & info [ "corrupt-at" ] ~docv:"TIME" ~doc:"Scramble all counters here.")
  in
  let action n seed steps k corrupt_at =
    if k < n + 1 then `Error (false, "need k >= n + 1")
    else begin
      let o = Kstate.run ?corrupt_at ~n ~k ~seed ~steps () in
      Printf.printf "stabilized        : %b
" (o.Kstate.stabilized_at <> None);
      (match o.Kstate.recovery_steps with
       | Some s -> Printf.printf "recovery steps    : %d
" s
       | None -> print_endline "recovery steps    : -");
      Printf.printf "privileges at end : %d
" o.Kstate.privileges_at_end;
      Printf.printf "privilege passes  : %d
" o.Kstate.moves;
      `Ok 0
    end
  in
  let term =
    Term.(
      ret (const action $ n_arg $ seed_arg $ steps_arg $ k_arg $ corrupt_at_arg))
  in
  Cmd.v
    (Cmd.info "kstate"
       ~doc:"Run Dijkstra's K-state ring (the whitebox contrast)")
    term

(* ------------------------------------------------------------------ *)
(* synth                                                               *)

let synth_cmd =
  let sy_n_arg =
    Arg.(value & opt int 2
         & info [ "n" ] ~docv:"N"
             ~doc:
               "Ring size the oracle certifies candidates at (keep small: \
                each check is an exhaustive exploration).")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"JOBS"
             ~doc:
               "Pool width for fanning candidate checks.  The transcript \
                and the synthesized term are identical for every value.")
  in
  let max_size_arg =
    Arg.(value & opt int 5
         & info [ "max-size" ] ~docv:"S"
             ~doc:"Largest wrapper-term AST size enumerated.")
  in
  let max_checks_arg =
    Arg.(value & opt int 64
         & info [ "max-checks" ] ~docv:"K" ~doc:"Oracle-call budget.")
  in
  let safety_depth_arg =
    Arg.(value & opt int 8
         & info [ "safety-depth" ] ~docv:"D"
             ~doc:"BFS depth of the everywhere-mode safety leg.")
  in
  let recovery_depth_arg =
    Arg.(value & opt int 14
         & info [ "recovery-depth" ] ~docv:"D"
             ~doc:"BFS depth of the wedge recovery/progress legs.")
  in
  let max_states_arg =
    Arg.(value & opt int 200_000
         & info [ "max-states" ] ~docv:"K"
             ~doc:"Visited-state bound per oracle run.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:
               "Write the synthesis transcript as JSON (schema \
                graybox-synth/1); \"-\" for stdout.  Deterministic: no \
                timings, identical for every --jobs.")
  in
  let action protocol n jobs max_size max_checks safety_depth recovery_depth
      max_states json =
    match resolve_entry protocol with
    | Error e -> `Error (false, e)
    | Result.Ok entry when not entry.Graybox.Registry.synthesizable ->
      (* same shape as mcheck's --everywhere/--por gates: the
         capability lives in the registry, the error names who has it *)
      `Error
        ( false,
          Printf.sprintf
            "synth: %S is not a synthesis target (synthesizable: %s)"
            protocol
            (String.concat ", " (Graybox.Registry.synthesizable_names ())) )
    | Result.Ok entry ->
      let cfg =
        Synth.config ~n ~jobs ~max_size ~max_checks ~safety_depth
          ~recovery_depth ~max_states ()
      in
      let t0 = Unix.gettimeofday () in
      let r = Synth.synthesize entry.Graybox.Registry.proto cfg in
      let dt = Unix.gettimeofday () -. t0 in
      let term_size w = Graybox.Wrapper.size w in
      let matches =
        match r.Synth.synthesized with
        | Some w -> Graybox.Wrapper.equal w Graybox.Wrapper.w_refined
        | None -> false
      in
      (match json with
       | None -> ()
       | Some path ->
         let attempt_json (a : Synth.attempt) =
           Chaos.Jsonx.Obj
             [ ("index", Chaos.Jsonx.Int a.Synth.index);
               ( "term",
                 Chaos.Jsonx.String (Graybox.Wrapper.to_string a.Synth.term) );
               ("size", Chaos.Jsonx.Int (term_size a.Synth.term));
               ( "outcome",
                 Chaos.Jsonx.String (Synth.outcome_label a.Synth.outcome) ) ]
         in
         let doc =
           Chaos.Jsonx.Obj
             (* --jobs is deliberately not echoed: the document must be
                byte-identical for every pool width *)
             [ ("schema", Chaos.Jsonx.String "graybox-synth/1");
               ("protocol", Chaos.Jsonx.String protocol);
               ("n", Chaos.Jsonx.Int n);
               ( "budget",
                 Chaos.Jsonx.Obj
                   [ ("max_size", Chaos.Jsonx.Int max_size);
                     ("max_checks", Chaos.Jsonx.Int max_checks);
                     ("safety_depth", Chaos.Jsonx.Int safety_depth);
                     ("recovery_depth", Chaos.Jsonx.Int recovery_depth);
                     ("max_states", Chaos.Jsonx.Int max_states) ] );
               ( "synthesized",
                 match r.Synth.synthesized with
                 | Some w ->
                   Chaos.Jsonx.String (Graybox.Wrapper.to_string w)
                 | None -> Chaos.Jsonx.Null );
               ( "synthesized_size",
                 match r.Synth.synthesized with
                 | Some w -> Chaos.Jsonx.Int (term_size w)
                 | None -> Chaos.Jsonx.Null );
               ("matches_handwritten", Chaos.Jsonx.Bool matches);
               ("enumerated", Chaos.Jsonx.Int r.Synth.enumerated);
               ("checked", Chaos.Jsonx.Int r.Synth.checked);
               ("pruned", Chaos.Jsonx.Int r.Synth.pruned);
               ("oracle_runs", Chaos.Jsonx.Int r.Synth.oracle_runs);
               ("oracle_states", Chaos.Jsonx.Int r.Synth.oracle_states);
               ( "attempts",
                 Chaos.Jsonx.List (List.map attempt_json r.Synth.attempts) )
             ]
         in
         let s = Chaos.Jsonx.to_string doc in
         if path = "-" then print_endline s
         else begin
           let oc = open_out path in
           output_string oc s;
           output_char oc '\n';
           close_out oc;
           Printf.eprintf "wrote %s\n%!" path
         end);
      let t =
        Stdext.Tabular.create [ "#"; "size"; "outcome"; "candidate" ]
      in
      List.iter
        (fun (a : Synth.attempt) ->
          Stdext.Tabular.add_row t
            [ Stdext.Tabular.cell_int a.Synth.index;
              Stdext.Tabular.cell_int (term_size a.Synth.term);
              Synth.outcome_label a.Synth.outcome;
              Graybox.Wrapper.to_string a.Synth.term ])
        r.Synth.attempts;
      Stdext.Tabular.print
        ~title:
          (Printf.sprintf
             "CEGIS transcript: %s, n=%d (%d candidates in space, %d \
              oracle checks, %d pruned, %d oracle runs, %d states, %.2fs)"
             protocol n r.Synth.enumerated r.Synth.checked r.Synth.pruned
             r.Synth.oracle_runs r.Synth.oracle_states dt)
        t;
      (match r.Synth.synthesized with
       | Some w ->
         Printf.printf
           "synthesized (size %d): %s\n\
            matches the hand-written refined W: %b\n"
           (term_size w)
           (Graybox.Wrapper.to_string w)
           matches;
         `Ok 0
       | None ->
         print_endline
           "no candidate certified within the budget (raise --max-size or \
            --max-checks)";
         `Ok 1)
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ sy_n_arg $ jobs_arg $ max_size_arg
       $ max_checks_arg $ safety_depth_arg $ recovery_depth_arg
       $ max_states_arg $ json_arg))
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Synthesize a level-2 wrapper by CEGIS: enumerate guard terms in \
          size order, prune with counterexamples, certify against the \
          model-checking oracle")
    term

(* ------------------------------------------------------------------ *)
(* mcheck                                                              *)

let mcheck_cmd =
  let depth_arg =
    Arg.(value & opt int 20 & info [ "depth" ] ~docv:"D" ~doc:"BFS depth bound.")
  in
  let mc_n_arg =
    Arg.(value & opt int 2 & info [ "n" ] ~docv:"N"
           ~doc:"Number of processes (keep small: exhaustive search).")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"JOBS"
             ~doc:
               "Worker domains for frontier expansion.  Every value \
                returns identical results.")
  in
  let max_states_arg =
    Arg.(value & opt int 200_000
         & info [ "max-states" ] ~docv:"K"
             ~doc:"Hard bound on the visited-state set.")
  in
  let shards_arg =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"S"
             ~doc:
               "Visited-set shards, 1-64 (default: min(JOBS, 64)).  Every \
                value returns identical results.")
  in
  let mem_budget_arg =
    Arg.(value & opt (some int) None
         & info [ "mem-budget" ] ~docv:"WORDS"
             ~doc:
               "Resident visited-key budget in words; beyond it, key \
                arenas spill to temp files and the search keeps going \
                out-of-core.  Default: unlimited (never spill).")
  in
  let spill_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "spill-dir" ] ~docv:"DIR"
             ~doc:
               "Directory for spill files (default: the system temp \
                dir).  Files are removed when the search finishes.")
  in
  let por_arg =
    Arg.(value & flag
         & info [ "por" ]
             ~doc:
               "Partial-order reduction: at states with a quiet receiver, \
                explore only its deliveries.  Same verdict, fewer states; \
                only por-safe protocols accept it (see `graybox-cli \
                protocols`).")
  in
  let everywhere_arg =
    Arg.(value & flag
         & info [ "everywhere" ]
             ~doc:
               "Also seed the frontier with perturbed states (corrupted \
                processes, arbitrary in-flight messages): check the \
                invariant from everywhere, not just from Init.")
  in
  let action protocol n depth jobs shards max_states mem_budget spill_dir por
      everywhere =
    match resolve_entry protocol with
    | Error e -> `Error (false, e)
    | Result.Ok entry
      when everywhere && not entry.Graybox.Registry.everywhere_checkable ->
      (* fail here, with the capability listing, rather than deep in
         Mcheck on a protocol whose perturb has nothing to enumerate *)
      `Error
        ( false,
          Printf.sprintf
            "--everywhere: %S does not enumerate perturbations (supported: %s)"
            protocol
            (String.concat ", " (Graybox.Registry.everywhere_checkable_names ()))
        )
    | Result.Ok entry when por && not entry.Graybox.Registry.por_safe ->
      (* same shape as the --everywhere gate: the capability lives in
         the registry, the error names who has it *)
      `Error
        ( false,
          Printf.sprintf
            "--por: %S keeps exhaustive semantics (por-safe: %s)" protocol
            (String.concat ", " (Graybox.Registry.por_safe_names ())) )
    | Result.Ok entry ->
      let proto = entry.Graybox.Registry.proto in
      let t0 = Unix.gettimeofday () in
      let mem_budget = Option.value mem_budget ~default:max_int in
      let result =
        if everywhere then
          Mcheck.check_me1_everywhere proto ~n ~jobs ?shards ~max_depth:depth
            ~max_states ~mem_budget ?spill_dir ~por ()
        else
          Mcheck.check_me1 proto ~n ~jobs ?shards ~max_depth:depth ~max_states
            ~mem_budget ?spill_dir ~por ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      let print_stats (s : Mcheck.stats) =
        Printf.printf
          "  invariant       : %s (%s mode%s)\n\
          \  states explored : %d\n\
          \  states visited  : %d\n\
          \  depth reached   : %d (truncated: %b)\n\
          \  peak memory     : %d words resident, %d bytes spilled\n\
          \  throughput      : %.0f states/s (%.3fs, %d job%s)\n"
          s.Mcheck.name
          (if everywhere then "everywhere" else "init")
          (if por then ", por" else "")
          s.Mcheck.explored s.Mcheck.visited s.Mcheck.depth_reached
          s.Mcheck.truncated s.Mcheck.peak_mem_words s.Mcheck.spill_bytes
          (float_of_int s.Mcheck.explored /. dt)
          dt jobs
          (if jobs = 1 then "" else "s")
      in
      (match result with
       | Mcheck.Ok stats ->
         Printf.printf "safe: no %s violation under any schedule within depth %d\n"
           stats.Mcheck.name depth;
         print_stats stats;
         `Ok 0
       | Mcheck.Violation { trace; stats; _ } ->
         Printf.printf "VIOLATION (%s) after exploring %d states:\n  %s\n"
           stats.Mcheck.name stats.Mcheck.explored
           (String.concat "\n  " trace);
         print_stats stats;
         `Ok 1)
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ mc_n_arg $ depth_arg $ jobs_arg
       $ shards_arg $ max_states_arg $ mem_budget_arg $ spill_dir_arg
       $ por_arg $ everywhere_arg))
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Exhaustively model-check mutual exclusion under every schedule \
          (try --protocol ra-mutant, and --everywhere to start from \
          perturbed states)")
    term

(* ------------------------------------------------------------------ *)
(* protocols                                                           *)

let protocols_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the registry as machine-readable JSON on stdout.")
  in
  let action json =
    let open Graybox.Registry in
    let entries = all () in
    if json then begin
      let entry_json e =
        Chaos.Jsonx.Obj
          [ ("name", Chaos.Jsonx.String e.name);
            ("role", Chaos.Jsonx.String (role_label e.role));
            ("expect", Chaos.Jsonx.String (expectation_label e.expectation));
            ( "partition_expect",
              Chaos.Jsonx.String
                (partition_expectation_label e.partition_expectation) );
            ( "during_partition",
              Chaos.Jsonx.String (during_partition_label e.during_partition) );
            ("default_delta", Chaos.Jsonx.Int e.default_delta);
            ("everywhere_checkable", Chaos.Jsonx.Bool e.everywhere_checkable);
            ("lspec_monitorable", Chaos.Jsonx.Bool e.lspec_monitorable);
            ("por_safe", Chaos.Jsonx.Bool e.por_safe);
            ("synthesizable", Chaos.Jsonx.Bool e.synthesizable);
            ( "wrapper_term",
              match e.wrapper_term with
              | Some w -> Chaos.Jsonx.String (Graybox.Wrapper.to_string w)
              | None -> Chaos.Jsonx.Null );
            ("sweep_rank", Chaos.Jsonx.of_int_option e.sweep_rank);
            ("doc", Chaos.Jsonx.String e.doc) ]
      in
      print_endline
        (Chaos.Jsonx.to_string
           (Chaos.Jsonx.Obj
              [ ("schema", Chaos.Jsonx.String "graybox-protocols/4");
                ( "protocols",
                  Chaos.Jsonx.List (List.map entry_json entries) ) ]))
    end
    else begin
      let t =
        Stdext.Tabular.create
          [ "name"; "role"; "expect"; "partition"; "during"; "delta";
            "everywhere"; "lspec"; "por"; "synth"; "sweep"; "description" ]
      in
      List.iter
        (fun e ->
          Stdext.Tabular.add_row t
            [ e.name;
              role_label e.role;
              expectation_label e.expectation;
              partition_expectation_label e.partition_expectation;
              during_partition_label e.during_partition;
              Stdext.Tabular.cell_int e.default_delta;
              Stdext.Tabular.cell_bool e.everywhere_checkable;
              Stdext.Tabular.cell_bool e.lspec_monitorable;
              Stdext.Tabular.cell_bool e.por_safe;
              Stdext.Tabular.cell_bool e.synthesizable;
              (match e.sweep_rank with
               | Some r -> Stdext.Tabular.cell_int r
               | None -> "-");
              e.doc ])
        entries;
      Stdext.Tabular.print
        ~title:
          "protocol registry (expect gates wrapped chaos cells; partition \
           gates the --partitions heal cells; during gates the during-split \
           cells; sweep = default campaign order)"
        t
    end;
    `Ok 0
  in
  Cmd.v
    (Cmd.info "protocols"
       ~doc:
         "List the protocol registry: roles, chaos expectations, wrapper \
          defaults, and capabilities")
    Term.(ret (const action $ json_arg))

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)

let chaos_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"K" ~doc:"Random fault plans per cell.")
  in
  let budget_arg =
    Arg.(
      value & opt int 6
      & info [ "budget" ] ~docv:"B" ~doc:"Fault events per plan.")
  in
  let chaos_steps_arg =
    Arg.(
      value & opt int 4000
      & info [ "steps" ] ~docv:"STEPS" ~doc:"Scheduler steps per run.")
  in
  let delta_arg =
    Arg.(
      value & opt int 8
      & info [ "w"; "wrapper" ] ~docv:"DELTA"
          ~doc:"Wrapper timeout delta for the wrapped cells.")
  in
  let protocols_arg =
    Arg.(
      value
      & opt (list string) Chaos.Campaign.default_protocols
      & info [ "protocols" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated protocols to sweep (any registered name, see \
             `graybox-cli protocols`); each gets a wrapped and an \
             unwrapped cell.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable report to $(docv).")
  in
  let no_unwrapped_arg =
    Arg.(
      value & flag
      & info [ "no-unwrapped" ] ~doc:"Skip the unwrapped baseline cells.")
  in
  let no_canary_arg =
    Arg.(
      value & flag
      & info [ "no-canary" ]
          ~doc:"Skip the deterministic unwrapped \u{00a7}4 deadlock canary.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Report failures without shrinking them.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sweep (default: the number of cores). \
             The report is identical for every value; $(docv) = 1 runs \
             serially.")
  in
  let partitions_arg =
    Arg.(
      value & flag
      & info [ "partitions" ]
          ~doc:
            "Sweep the partition fault family too: plans may contain \
             healing group partitions and link delays, and every protocol \
             gains split-lossy / split-buf cells gated by its registry \
             partition expectation.")
  in
  let action seed seeds budget n steps delta protocols json no_unwrapped
      no_canary no_shrink jobs streaming partitions =
    let jobs = Option.value jobs ~default:(Stdext.Pool.default_jobs ()) in
    if jobs < 1 then
      `Error (false, Printf.sprintf "--jobs: need at least 1 worker, got %d" jobs)
    else begin try
      let cfg =
        Chaos.Campaign.config ~base_seed:seed ~seeds ~budget ~n ~steps ~delta
          ~protocols ~include_unwrapped:(not no_unwrapped)
          ~deadlock_canary:(not no_canary) ~shrink:(not no_shrink) ~jobs
          ~streaming ~partitions ()
      in
      let report = Chaos.Campaign.run cfg in
      Stdext.Tabular.print
        ~title:
          (Printf.sprintf
             "chaos campaign: %d plans/cell x %d events/plan (seed %d, n=%d, \
              %d steps)"
             seeds budget seed n steps)
        (Chaos.Campaign.summary_table report);
      print_newline ();
      if Chaos.Campaign.has_during_cells report then begin
        Stdext.Tabular.print ~title:"during-partition availability"
          (Chaos.Campaign.during_table report);
        print_newline ()
      end;
      List.iter
        (fun cx ->
          Format.printf "%a@.@." Chaos.Campaign.pp_counterexample cx)
        report.Chaos.Campaign.counterexamples;
      (match json with
       | None -> ()
       | Some file ->
         let oc = open_out file in
         output_string oc (Chaos.Jsonx.to_string (Chaos.Campaign.to_json report));
         output_char oc '\n';
         close_out oc;
         Printf.printf "json report       : %s\n" file);
      Printf.printf "campaign gate     : %s\n"
        (if report.Chaos.Campaign.gate_ok then "ok" else "FAILED");
      `Ok (if report.Chaos.Campaign.gate_ok then 0 else 1)
    with
    | Chaos.Campaign.Unknown_protocol name ->
      `Error (false, Graybox.Registry.unknown_protocol_message name)
    | Invalid_argument msg | Sys_error msg -> `Error (false, msg)
    end
  in
  let term =
    Term.(
      ret
        (const action $ seed_arg $ seeds_arg $ budget_arg $ n_arg
       $ chaos_steps_arg $ delta_arg $ protocols_arg $ json_arg
       $ no_unwrapped_arg $ no_canary_arg $ no_shrink_arg $ jobs_arg
       $ streaming_arg $ partitions_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a randomized fault campaign across protocols and wrapper \
          modes, shrink failures to minimal reproducers, and gate on the \
          stabilization property")
    term

let () =
  let doc = "graybox stabilization wrappers for distributed mutual exclusion" in
  let info = Cmd.info "graybox-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; load_cmd; check_cmd; fig1_cmd; rvc_cmd; kstate_cmd;
            synth_cmd; mcheck_cmd; chaos_cmd; protocols_cmd ]))
