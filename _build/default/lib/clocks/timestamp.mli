(** Lamport timestamps with the paper's total order [lt].

    The Environment Spec (Timestamp Spec) requires timestamps drawn
    from a totally ordered domain such that [e hb f ⇒ ts e < ts f].
    Logical clocks realise this with pairs [(clock, pid)] ordered
    lexicographically — the paper's
    [lc.e lt lc.f ≡ lc.e < lc.f ∨ (lc.e = lc.f ∧ j < k)]. *)

type t = { clock : int; pid : int }

val make : clock:int -> pid:int -> t

val zero : pid:int -> t
(** [zero ~pid] is the timestamp [(0, pid)], the paper's initial
    [REQ_j = 0]. *)

val lt : t -> t -> bool
(** [lt a b] is the paper's total order: clock first, process id as
    tiebreaker. *)

val leq : t -> t -> bool
(** [leq a b ≡ lt a b ∨ a = b]. *)

val compare : t -> t -> int
(** [compare] is consistent with {!lt} and usable with [Map]/[Set]. *)

val equal : t -> t -> bool

val max : t -> t -> t
(** [max a b] is the later of the two under {!lt}. *)

val min : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
