type t = { clock : int; pid : int }

let make ~clock ~pid = { clock; pid }

let zero ~pid = { clock = 0; pid }

let compare a b =
  match Int.compare a.clock b.clock with
  | 0 -> Int.compare a.pid b.pid
  | c -> c

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let equal a b = compare a b = 0

let max a b = if lt a b then b else a
let min a b = if lt a b then a else b

let pp ppf t = Format.fprintf ppf "%d.%d" t.clock t.pid

let to_string t = Printf.sprintf "%d.%d" t.clock t.pid
