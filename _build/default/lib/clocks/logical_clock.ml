type t = { pid : int; now : int }

let create ~pid = { pid; now = 0 }

let pid c = c.pid
let now c = c.now

let read c = Timestamp.make ~clock:c.now ~pid:c.pid

let tick c =
  let c = { c with now = c.now + 1 } in
  (c, read c)

let witness c (ts : Timestamp.t) = { c with now = max c.now ts.clock }

let receive_event c ts = tick (witness c ts)

let with_now c now = { c with now }

let pp ppf c = Format.fprintf ppf "lc(%d)=%d" c.pid c.now
