(** Vector clocks: exact happened-before tracking.

    Used by the test oracles — Lamport timestamps only need to
    {e respect} happened-before ([e hb f ⇒ ts e < ts f]); vector
    clocks {e characterise} it, so recording a vector clock alongside
    every simulated event lets the Timestamp Spec monitor check the
    implication precisely.  Also the substrate for the resettable
    vector clock extension (paper refs [1, 4]). *)

type t

val create : n:int -> t
(** [create ~n] is the zero vector for [n] processes. *)

val dim : t -> int

val get : t -> int -> int

val tick : t -> int -> t
(** [tick v i] increments component [i] (a local event at process
    [i]). *)

val merge : t -> t -> t
(** [merge a b] is the componentwise maximum (the receive rule,
    before ticking the receiver). *)

val leq : t -> t -> bool
(** [leq a b] is the componentwise order; [leq a b && a <> b]
    witnesses [a hb b] when [a], [b] stamp distinct events. *)

val lt : t -> t -> bool
(** [lt a b ≡ leq a b ∧ a ≠ b]: the happened-before order on
    vector-clock stamps. *)

val concurrent : t -> t -> bool
(** [concurrent a b] holds when neither [leq a b] nor [leq b a]. *)

val equal : t -> t -> bool

val set : t -> int -> int -> t
(** [set v i x] replaces component [i] — fault injection only. *)

val to_list : t -> int list

val of_list : int list -> t

val pp : Format.formatter -> t -> unit
