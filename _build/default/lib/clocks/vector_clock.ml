type t = int array

let create ~n =
  if n <= 0 then invalid_arg "Vector_clock.create: need n > 0";
  Array.make n 0

let dim = Array.length

let check v i =
  if i < 0 || i >= Array.length v then
    invalid_arg "Vector_clock: component out of range"

let get v i =
  check v i;
  v.(i)

let tick v i =
  check v i;
  let v' = Array.copy v in
  v'.(i) <- v'.(i) + 1;
  v'

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.merge: dimension mismatch";
  Array.mapi (fun i x -> max x b.(i)) a

let leq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let set v i x =
  check v i;
  let v' = Array.copy v in
  v'.(i) <- x;
  v'

let to_list = Array.to_list

let of_list = Array.of_list

let pp ppf v =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_list v)
