lib/clocks/vector_clock.ml: Array Format
