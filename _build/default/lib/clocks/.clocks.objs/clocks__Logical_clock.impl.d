lib/clocks/logical_clock.ml: Format Timestamp
