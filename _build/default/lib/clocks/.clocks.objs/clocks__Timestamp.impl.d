lib/clocks/timestamp.ml: Format Int Printf
