lib/clocks/logical_clock.mli: Format Timestamp
