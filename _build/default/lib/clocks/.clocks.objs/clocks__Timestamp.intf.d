lib/clocks/timestamp.mli: Format
