(** Lamport logical clocks ([10] in the paper).

    A clock is a per-process counter advanced on every local event and
    pulled forward past the clock value carried on every received
    message, so timestamps respect happened-before.  The clock is a
    persistent value: operations return the advanced clock, which keeps
    simulator snapshots cheap and makes state corruption (a transient
    fault) a pure function. *)

type t

val create : pid:int -> t
(** [create ~pid] is a clock at 0 owned by process [pid]. *)

val pid : t -> int

val now : t -> int
(** [now c] is the current counter value. *)

val read : t -> Timestamp.t
(** [read c] is the timestamp [(now c, pid c)] without advancing. *)

val tick : t -> t * Timestamp.t
(** [tick c] advances the clock by one local event and returns the new
    clock with the event's timestamp. *)

val witness : t -> Timestamp.t -> t
(** [witness c ts] incorporates a received timestamp:
    [now] becomes [max (now c) ts.clock] — call {!tick} afterwards to
    stamp the receive event itself. *)

val receive_event : t -> Timestamp.t -> t * Timestamp.t
(** [receive_event c ts] is [tick (witness c ts)]: the usual receive
    rule [now := max(now, ts.clock) + 1]. *)

val with_now : t -> int -> t
(** [with_now c n] forces the counter — used only by fault injection to
    model transient clock corruption. *)

val pp : Format.formatter -> t -> unit
