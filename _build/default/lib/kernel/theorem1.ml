let g0 = 0
let g1 = 1
let b = 2

let names = [| "g0"; "g1"; "b" |]

let a =
  Tsys.create ~n:3 ~names ~edges:[ (g0, g1); (g1, g0) ] ~init:[ g0 ] ()

let w = Tsys.create ~n:3 ~names ~edges:[ (b, g0) ] ~init:[ g0 ] ()

let c = Tsys.create ~n:3 ~names ~edges:[ (g0, g1); (g1, g0) ] ~init:[ g0 ] ()

let w' = w

let hypotheses_hold ~c ~a ~w ~w' =
  Tsys.everywhere_implements c a
  && Tsys.is_stabilizing_to (Tsys.box a w) a
  && Tsys.everywhere_implements w' w

let check ~c ~a ~w ~w' =
  (not (hypotheses_hold ~c ~a ~w ~w'))
  || Tsys.is_stabilizing_to (Tsys.box c w') a
