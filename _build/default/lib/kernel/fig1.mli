(** The paper's Figure 1 counterexample, executable.

    States [s0; s1; s2; s3; s*].  Both the specification [a] and the
    implementation [c] have the single initialized computation
    [s0, s1, s2, s3, s3, …]; additionally [a] has the computation
    [s*, s2, s3, …] while in [c] the state [s*] is a dead end.  A
    transient fault [F] throws [s0] to [s*]: afterwards [a] recovers
    (its [s* → s2] edge rejoins the legitimate chain) but [c] cannot.

    Consequences checked in the test suite and printed by experiment
    T1: [\[c ⇒ a\]init] holds, [\[c ⇒ a\]] does not, [a] is stabilizing
    to [a], and [c] is {e not} stabilizing to [a] — implementing a
    specification only from initial states does not transfer
    stabilization. *)

val s0 : int
val s1 : int
val s2 : int
val s3 : int
val s_star : int
(** State indices in {!a} and {!c}. *)

val a : Tsys.t
(** The specification system of Figure 1. *)

val c : Tsys.t
(** The implementation system of Figure 1. *)

val fault : int -> int
(** [fault s] models the transient corruption [F]: [s0] is thrown to
    [s*]; other states are unaffected. *)
