(** A machine-checked instance of Theorem 1.

    Theorem 1 (stabilization via everywhere specifications): if
    [\[C ⇒ A\]], [A □ W] is stabilizing to [A], and [\[W' ⇒ W\]], then
    [C □ W'] is stabilizing to [A].

    This module provides a small family of concrete systems on which
    the hypotheses hold, so the conclusion can be (and is, in the test
    suite) verified with {!Tsys.is_stabilizing_to}; and a generic
    [check] that tests the implication on arbitrary systems — used by
    the property-based tests to search for violations (none exist). *)

val a : Tsys.t
(** A two-state legitimate cycle [g0 ↔ g1] plus a dead-end fault state
    [b]; initial state [g0]. *)

val w : Tsys.t
(** The wrapper: a single correction edge [b → g0] (every other state
    is a dead end of [w]); same initial state. *)

val c : Tsys.t
(** An everywhere implementation of {!a}: the legitimate cycle without
    the spurious edges, [b] still a dead end. *)

val w' : Tsys.t
(** An everywhere implementation of {!w} (here: [w] itself). *)

val check : c:Tsys.t -> a:Tsys.t -> w:Tsys.t -> w':Tsys.t -> bool
(** [check ~c ~a ~w ~w'] returns [true] when the Theorem 1 implication
    holds on the given systems: if all three hypotheses hold then so
    must the conclusion.  (Vacuously [true] when a hypothesis fails.) *)

val hypotheses_hold : c:Tsys.t -> a:Tsys.t -> w:Tsys.t -> w':Tsys.t -> bool
(** [hypotheses_hold ~c ~a ~w ~w'] tests the three hypotheses of
    Theorem 1 — useful to report vacuity separately. *)
