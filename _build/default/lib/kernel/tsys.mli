(** Finite transition systems: the paper's Section 2 made executable.

    The paper defines a system as a fusion-closed set of (possibly
    infinite) state sequences with at least one sequence from every
    state, plus a set of initial states.  Over a finite state space a
    fusion-closed, suffix-rich sequence set is exactly the set of
    maximal paths of a directed graph, so we represent systems as
    graphs: states [0 .. n-1], an edge relation, and initial states.
    A {e computation} is a maximal path — infinite, or finite ending in
    a state with no successor.

    On this representation the paper's relations are decidable exactly:

    - [C] {e everywhere implements} [A] ([\[C ⇒ A\]]) iff every edge of
      [C] is an edge of [A] and every deadlock of [C] is a deadlock of
      [A] (so finite maximal paths stay maximal).
    - [C] {e implements} [A] ([\[C ⇒ A\]init]) iff the same holds
      restricted to the part of [C] reachable from [C]'s initial
      states, and every initial state of [C] is initial in [A].
    - [C □ W] (box) is the union graph with the common initial states:
      the smallest fusion-closed system containing both computation
      sets.
    - [C] {e is stabilizing to} [A] iff every computation of [C] has a
      suffix that is a suffix of an initialized computation of [A];
      over finite graphs this holds iff no cycle of [C] contains a
      "non-legitimate" edge (an edge outside [A]'s initialized
      reachable part) and every deadlock of [C] is an initialized
      reachable deadlock of [A]. *)

type t

val create :
  n:int -> ?names:string array -> edges:(int * int) list -> init:int list ->
  unit -> t
(** [create ~n ?names ~edges ~init ()] builds a system over states
    [0 .. n-1].  [names] defaults to ["s0" .. "s<n-1>"].
    @raise Invalid_argument if an edge, initial state, or the [names]
    length is out of range. *)

val n_states : t -> int
val name : t -> int -> string
val names : t -> string array

val has_edge : t -> int -> int -> bool
val edges : t -> (int * int) list
val init_states : t -> int list
val is_init : t -> int -> bool

val successors : t -> int -> int list
val is_deadlock : t -> int -> bool
(** [is_deadlock t s] holds when [s] has no outgoing edge, so the only
    computation from [s] is the finite sequence [(s)]. *)

val reachable : t -> from:int list -> bool array
(** [reachable t ~from] marks states reachable from [from] (inclusive)
    along edges of [t]. *)

val box : t -> t -> t
(** [box c w] is [C □ W]: same state space, union of edges,
    intersection of initial states.
    @raise Invalid_argument if state counts differ. *)

val everywhere_implements : t -> t -> bool
(** [everywhere_implements c a] decides [\[C ⇒ A\]]. *)

val implements_from_init : t -> t -> bool
(** [implements_from_init c a] decides [\[C ⇒ A\]init]. *)

val is_stabilizing_to : t -> t -> bool
(** [is_stabilizing_to c a] decides "[C] is stabilizing to [A]". *)

val stabilization_counterexample : t -> t -> int list option
(** [stabilization_counterexample c a] returns a witness path of [C]
    that has no legitimate suffix: either a path ending in a deadlock
    that is not an initialized [A]-deadlock, or a path reaching a cycle
    through a non-legitimate edge (returned as path followed by one
    traversal of the cycle).  [None] iff {!is_stabilizing_to}. *)

val computations_upto : t -> from:int -> int -> int list list
(** [computations_upto t ~from len] enumerates all paths of length at
    most [len] steps starting at [from], truncating infinite ones;
    maximal-but-shorter paths appear in full.  Intended for tests on
    small systems. *)

val sample_computation : Stdext.Rng.t -> t -> from:int -> int -> int list
(** [sample_computation rng t ~from len] follows uniformly random edges
    for up to [len] steps, stopping early at deadlocks. *)

val is_computation : t -> int list -> bool
(** [is_computation t path] checks [path] is a (prefix of a) path of
    [t]: consecutive states joined by edges, all in range.  A finite
    path counts whether or not it is maximal; use {!is_deadlock} on the
    last state to check maximality. *)

val restrict_edges : t -> keep:(int -> int -> bool) -> t
(** [restrict_edges t ~keep] removes edges for which [keep u v] is
    false.  Initial states and names are preserved. *)

val equal : t -> t -> bool
(** Structural equality: same size, edges, and initial states. *)

val pp : Format.formatter -> t -> unit
