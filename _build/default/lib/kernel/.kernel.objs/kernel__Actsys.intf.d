lib/kernel/actsys.mli: Tsys
