lib/kernel/fig1.mli: Tsys
