lib/kernel/tsys.mli: Format Stdext
