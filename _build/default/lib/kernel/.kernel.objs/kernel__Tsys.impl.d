lib/kernel/tsys.ml: Array Format Fun List Printf Queue Stdext
