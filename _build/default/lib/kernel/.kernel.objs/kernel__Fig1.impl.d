lib/kernel/fig1.ml: Tsys
