lib/kernel/tolerance.mli: Tsys
