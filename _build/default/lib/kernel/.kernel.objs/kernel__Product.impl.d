lib/kernel/product.ml: Actsys Array Fun List Printf String Tsys
