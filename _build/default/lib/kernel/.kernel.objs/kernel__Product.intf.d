lib/kernel/product.mli: Actsys Tsys
