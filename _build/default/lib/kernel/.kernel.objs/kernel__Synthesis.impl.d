lib/kernel/synthesis.ml: Actsys Array Fun List Option Tsys
