lib/kernel/theorem1.mli: Tsys
