lib/kernel/theorem1.ml: Tsys
