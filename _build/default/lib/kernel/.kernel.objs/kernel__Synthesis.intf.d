lib/kernel/synthesis.mli: Actsys Tsys
