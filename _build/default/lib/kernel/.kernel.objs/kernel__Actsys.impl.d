lib/kernel/actsys.ml: Array Fun Hashtbl List Printf Tsys
