lib/kernel/tolerance.ml: Array Fun List Tsys
