(** Asynchronous parallel composition: local specifications made
    global (paper §2.1, Lemmas 2–3 and Theorem 4).

    A local everywhere specification is [A = (∥ i :: A_i)]: each
    process has its own specification over its own local state, and
    the global system interleaves component moves.  This module builds
    that product for {!Tsys} (path semantics) and {!Actsys} (fair
    semantics): global states are tuples of component states (encoded
    mixed-radix into a single integer), and each global transition
    moves exactly one component.

    With this construction the paper's locality results become
    property-checkable:
    - Lemma 2: if every [C_i] everywhere implements [A_i] then
      [∥ C] everywhere implements [∥ A];
    - box distributes over the product
      ([∥ (C_i □ W_i) = (∥ C) □ (∥ W)] up to action names), which is
      the bridge from Lemma 3 to Theorem 4;
    - Theorem 4: composing per-process wrappers synthesized against
      the local specifications stabilizes the global product.
    The test suite checks all three on random component systems. *)

val encode : dims:int list -> int list -> int
(** [encode ~dims locals] packs per-component states (component 0
    varying fastest) into a global state index.
    @raise Invalid_argument on dimension mismatch or out-of-range
    component states. *)

val decode : dims:int list -> int -> int list
(** [decode ~dims g] unpacks a global state. *)

val compose : Tsys.t list -> Tsys.t
(** [compose comps] is the asynchronous product: global initial states
    are tuples of component initial states; a global edge changes one
    component along one of its edges.  Global state names are
    ["(n0,n1,…)"].
    @raise Invalid_argument on the empty list. *)

val compose_act : Actsys.t list -> Actsys.t
(** [compose_act comps] is the product of action systems; the lifted
    actions are named ["<i>:<name>"], so per-component fairness is
    preserved (each component action remains its own fairness
    obligation). *)

val component_view : dims:int list -> int -> i:int -> int
(** [component_view ~dims g ~i] is component [i]'s local state within
    global state [g]. *)
