type t = {
  n : int;
  names : string array;
  adj : bool array array;
  init : bool array;
}

let check_state t s ctx =
  if s < 0 || s >= t.n then
    invalid_arg (Printf.sprintf "Tsys.%s: state %d out of range [0,%d)" ctx s t.n)

let create ~n ?names ~edges ~init () =
  if n <= 0 then invalid_arg "Tsys.create: need at least one state";
  let names =
    match names with
    | None -> Array.init n (fun i -> Printf.sprintf "s%d" i)
    | Some a ->
      if Array.length a <> n then
        invalid_arg "Tsys.create: names length mismatch";
      Array.copy a
  in
  let t = { n; names; adj = Array.make_matrix n n false; init = Array.make n false } in
  List.iter
    (fun (u, v) ->
      check_state t u "create(edge src)";
      check_state t v "create(edge dst)";
      t.adj.(u).(v) <- true)
    edges;
  List.iter
    (fun s ->
      check_state t s "create(init)";
      t.init.(s) <- true)
    init;
  t

let n_states t = t.n

let name t s =
  check_state t s "name";
  t.names.(s)

let names t = Array.copy t.names

let has_edge t u v =
  check_state t u "has_edge";
  check_state t v "has_edge";
  t.adj.(u).(v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for v = t.n - 1 downto 0 do
      if t.adj.(u).(v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let init_states t =
  List.filter (fun s -> t.init.(s)) (List.init t.n Fun.id)

let is_init t s =
  check_state t s "is_init";
  t.init.(s)

let successors t s =
  check_state t s "successors";
  List.filter (fun v -> t.adj.(s).(v)) (List.init t.n Fun.id)

let is_deadlock t s = successors t s = []

let reachable t ~from =
  let seen = Array.make t.n false in
  let rec visit s =
    check_state t s "reachable";
    if not seen.(s) then begin
      seen.(s) <- true;
      for v = 0 to t.n - 1 do
        if t.adj.(s).(v) then visit v
      done
    end
  in
  List.iter visit from;
  seen

let box c w =
  if c.n <> w.n then invalid_arg "Tsys.box: state-space mismatch";
  let adj =
    Array.init c.n (fun u ->
        Array.init c.n (fun v -> c.adj.(u).(v) || w.adj.(u).(v)))
  in
  let init = Array.init c.n (fun s -> c.init.(s) && w.init.(s)) in
  { n = c.n; names = Array.copy c.names; adj; init }

(* [C => A]: C's edges within A's, C's deadlocks also deadlocked in A,
   so every maximal C-path is a maximal A-path. *)
let everywhere_implements c a =
  c.n = a.n
  && (let ok = ref true in
      for u = 0 to c.n - 1 do
        for v = 0 to c.n - 1 do
          if c.adj.(u).(v) && not a.adj.(u).(v) then ok := false
        done;
        if is_deadlock c u && not (is_deadlock a u) then ok := false
      done;
      !ok)

let implements_from_init c a =
  c.n = a.n
  &&
  let reach = reachable c ~from:(init_states c) in
  let ok = ref true in
  for u = 0 to c.n - 1 do
    if c.init.(u) && not a.init.(u) then ok := false;
    if reach.(u) then begin
      for v = 0 to c.n - 1 do
        if c.adj.(u).(v) && not a.adj.(u).(v) then ok := false
      done;
      if is_deadlock c u && not (is_deadlock a u) then ok := false
    end
  done;
  !ok

(* Legitimacy for stabilization to A: the suffix must be a suffix of an
   initialized computation of A, i.e. a maximal A-path inside A's
   initialized reachable part. *)
let legit_parts a =
  let reach_a = reachable a ~from:(init_states a) in
  let legit_edge u v = reach_a.(u) && reach_a.(v) && a.adj.(u).(v) in
  let legit_deadlock s = reach_a.(s) && is_deadlock a s in
  (legit_edge, legit_deadlock)

(* v reaches u in c? *)
let reaches c ~src ~dst = (reachable c ~from:[ src ]).(dst)

let is_stabilizing_to c a =
  c.n = a.n
  &&
  let legit_edge, legit_deadlock = legit_parts a in
  let ok = ref true in
  for u = 0 to c.n - 1 do
    if is_deadlock c u && not (legit_deadlock u) then ok := false;
    for v = 0 to c.n - 1 do
      if c.adj.(u).(v) && not (legit_edge u v) && reaches c ~src:v ~dst:u then
        (* a cycle through a non-legitimate edge: some computation
           traverses it forever, so no suffix is legitimate *)
        ok := false
    done
  done;
  !ok

let find_path c ~src ~dst =
  (* BFS for a shortest path src -> dst (inclusive); None if unreachable *)
  let prev = Array.make c.n (-1) in
  let seen = Array.make c.n false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    for v = 0 to c.n - 1 do
      if c.adj.(u).(v) && not seen.(v) then begin
        seen.(v) <- true;
        prev.(v) <- u;
        if v = dst then found := true else Queue.add v q
      end
    done
  done;
  if not !found then None
  else begin
    let rec build acc s = if s = src then src :: acc else build (s :: acc) prev.(s) in
    Some (build [] dst)
  end

let stabilization_counterexample c a =
  if c.n <> a.n then Some []
  else
    let legit_edge, legit_deadlock = legit_parts a in
    let witness = ref None in
    for u = 0 to c.n - 1 do
      if !witness = None && is_deadlock c u && not (legit_deadlock u) then
        witness := Some [ u ];
      for v = 0 to c.n - 1 do
        if !witness = None && c.adj.(u).(v) && not (legit_edge u v) then
          match find_path c ~src:v ~dst:u with
          | Some back -> witness := Some ((u :: back) @ [ v ])
          | None -> ()
      done
    done;
    !witness

let computations_upto t ~from len =
  check_state t from "computations_upto";
  let rec extend path s remaining =
    if remaining = 0 then [ List.rev path ]
    else
      match successors t s with
      | [] -> [ List.rev path ]
      | succs ->
        List.concat_map (fun v -> extend (v :: path) v (remaining - 1)) succs
  in
  extend [ from ] from len

let sample_computation rng t ~from len =
  check_state t from "sample_computation";
  let rec go path s remaining =
    if remaining = 0 then List.rev path
    else
      match successors t s with
      | [] -> List.rev path
      | succs ->
        let v = Stdext.Rng.pick rng succs in
        go (v :: path) v (remaining - 1)
  in
  go [ from ] from len

let is_computation t = function
  | [] -> false
  | s :: rest ->
    s >= 0 && s < t.n
    &&
    let rec go u = function
      | [] -> true
      | v :: rest -> v >= 0 && v < t.n && t.adj.(u).(v) && go v rest
    in
    go s rest

let restrict_edges t ~keep =
  let adj =
    Array.init t.n (fun u -> Array.init t.n (fun v -> t.adj.(u).(v) && keep u v))
  in
  { t with adj; names = Array.copy t.names; init = Array.copy t.init }

let equal a b =
  a.n = b.n
  && (let same = ref true in
      for u = 0 to a.n - 1 do
        if a.init.(u) <> b.init.(u) then same := false;
        for v = 0 to a.n - 1 do
          if a.adj.(u).(v) <> b.adj.(u).(v) then same := false
        done
      done;
      !same)

let pp ppf t =
  Format.fprintf ppf "@[<v>states: %d@,init: %a@,edges:@,%a@]" t.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_string)
    (List.map (fun s -> t.names.(s)) (init_states t))
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (u, v) ->
         Format.fprintf ppf "  %s -> %s" t.names.(u) t.names.(v)))
    (edges t)
