let check_dims ~dims locals =
  if List.length dims <> List.length locals then
    invalid_arg "Product: dimension mismatch";
  List.iter2
    (fun d s ->
      if s < 0 || s >= d then invalid_arg "Product: component state out of range")
    dims locals

let encode ~dims locals =
  check_dims ~dims locals;
  List.fold_right2 (fun d s acc -> (acc * d) + s) dims locals 0

let decode ~dims g =
  let rec go g = function
    | [] -> []
    | d :: rest -> (g mod d) :: go (g / d) rest
  in
  go g dims

let component_view ~dims g ~i = List.nth (decode ~dims g) i

let all_states dims = List.init (List.fold_left ( * ) 1 dims) Fun.id

(* Lift component [i]'s edge (u, v) to every global state whose i-th
   coordinate is [u]. *)
let lift_edges ~dims ~i edges =
  List.concat_map
    (fun g ->
      let locals = decode ~dims g in
      let here = List.nth locals i in
      List.filter_map
        (fun (u, v) ->
          if u = here then
            Some (g, encode ~dims (List.mapi (fun j s -> if j = i then v else s) locals))
          else None)
        edges)
    (all_states dims)

let product_inits ~dims per_component =
  let rec go = function
    | [] -> [ [] ]
    | inits :: rest ->
      let tails = go rest in
      List.concat_map (fun s -> List.map (fun t -> s :: t) tails) inits
  in
  List.map (encode ~dims) (go per_component)

let product_names ~dims name_of =
  Array.init
    (List.fold_left ( * ) 1 dims)
    (fun g ->
      let locals = decode ~dims g in
      "("
      ^ String.concat "," (List.mapi (fun i s -> name_of i s) locals)
      ^ ")")

let compose = function
  | [] -> invalid_arg "Product.compose: empty component list"
  | comps ->
    let dims = List.map Tsys.n_states comps in
    let edges =
      List.concat
        (List.mapi (fun i c -> lift_edges ~dims ~i (Tsys.edges c)) comps)
    in
    let init = product_inits ~dims (List.map Tsys.init_states comps) in
    let names =
      product_names ~dims (fun i s -> Tsys.name (List.nth comps i) s)
    in
    Tsys.create
      ~n:(List.fold_left ( * ) 1 dims)
      ~names ~edges ~init ()

let compose_act = function
  | [] -> invalid_arg "Product.compose_act: empty component list"
  | comps ->
    let dims = List.map Actsys.n_states comps in
    let actions =
      List.concat
        (List.mapi
           (fun i c ->
             List.map
               (fun name ->
                 ( Printf.sprintf "%d:%s" i name,
                   lift_edges ~dims ~i (Actsys.transitions c name) ))
               (Actsys.action_names c))
           comps)
    in
    let init = product_inits ~dims (List.map Actsys.init_states comps) in
    Actsys.create
      ~n:(List.fold_left ( * ) 1 dims)
      ~actions ~init ()
