(** Graybox tolerance properties beyond stabilization (paper §6).

    "A system is masking fault-tolerant iff its computations in the
    presence of the faults implement the specification.  A component
    is fail-safe fault-tolerant iff its computations in the presence
    of faults implement the safety part (but not necessarily the
    liveness part) of its specification."  Stabilization is the
    nonmasking member of the family: after faults stop, behaviour
    converges, but safety may be violated meanwhile.

    Faults are modelled as a transition set [F] composed with the
    program by □, exactly like a wrapper — the other direction of the
    same operator.  On finite systems the three tolerances are
    decidable:

    - {e fail-safe}: no program transition taken from a fault-reachable
      state violates the safety predicate;
    - {e nonmasking}: from every fault-reachable state, the program
      alone converges to the specification's initialized behaviour
      (stabilization quantified over the fault span rather than over
      every state);
    - {e masking} = fail-safe ∧ nonmasking.

    Fault transitions themselves are exempt from the safety predicate
    (they are environment steps); what is judged is the program's
    behaviour from the states faults produce. *)

val with_faults : Tsys.t -> faults:(int * int) list -> Tsys.t
(** [with_faults c ~faults] is [C □ F]: the program with fault
    transitions added (same initial states).
    @raise Invalid_argument on out-of-range states. *)

val fault_span : Tsys.t -> faults:(int * int) list -> bool array
(** [fault_span c ~faults] marks the states reachable from [c]'s
    initial states by any interleaving of program and fault steps —
    the states from which tolerance is judged. *)

val is_fail_safe :
  c:Tsys.t -> faults:(int * int) list -> safe:(int -> int -> bool) -> bool
(** [is_fail_safe ~c ~faults ~safe]: every program transition
    [(u, v)] with [u] in the fault span satisfies [safe u v]. *)

val is_nonmasking : c:Tsys.t -> a:Tsys.t -> faults:(int * int) list -> bool
(** [is_nonmasking ~c ~a ~faults]: every computation of [c] starting
    anywhere in the fault span has a suffix that is a suffix of an
    initialized computation of [a]. *)

val is_masking :
  c:Tsys.t -> a:Tsys.t -> faults:(int * int) list ->
  safe:(int -> int -> bool) -> bool
(** Conjunction of {!is_fail_safe} and {!is_nonmasking}. *)
