let with_faults c ~faults =
  Tsys.create ~n:(Tsys.n_states c) ~names:(Tsys.names c)
    ~edges:(Tsys.edges c @ faults)
    ~init:(Tsys.init_states c) ()

let fault_span c ~faults =
  Tsys.reachable (with_faults c ~faults) ~from:(Tsys.init_states c)

let is_fail_safe ~c ~faults ~safe =
  let span = fault_span c ~faults in
  List.for_all
    (fun (u, v) -> (not span.(u)) || safe u v)
    (Tsys.edges c)

(* Stabilization of [c] to [a], quantified over computations starting
   in the fault span: a violation is a span-reachable non-legitimate
   cycle or a span-reachable illegitimate dead end. *)
let is_nonmasking ~c ~a ~faults =
  let span = fault_span c ~faults in
  let reach_a = Tsys.reachable a ~from:(Tsys.init_states a) in
  let legit_edge u v = reach_a.(u) && reach_a.(v) && Tsys.has_edge a u v in
  let legit_deadlock s = reach_a.(s) && Tsys.is_deadlock a s in
  let span_states =
    List.filter (fun s -> span.(s)) (List.init (Tsys.n_states c) Fun.id)
  in
  let c_reach_from_span = Tsys.reachable c ~from:span_states in
  let states = List.init (Tsys.n_states c) Fun.id in
  List.for_all
    (fun u ->
      (not c_reach_from_span.(u))
      || ((not (Tsys.is_deadlock c u)) || legit_deadlock u))
    states
  && List.for_all
       (fun (u, v) ->
         (not c_reach_from_span.(u))
         || legit_edge u v
         || not (Tsys.reachable c ~from:[ v ]).(u)
         (* a non-legit edge is tolerable only if it lies on no cycle *))
       (Tsys.edges c)

let is_masking ~c ~a ~faults ~safe =
  is_fail_safe ~c ~faults ~safe && is_nonmasking ~c ~a ~faults
