(** Labeled action systems with weak fairness: the UNITY semantics.

    The paper writes specifications in UNITY, whose execution model is
    a set of named actions with (weak) fairness: an action that is
    continuously enabled is eventually executed.  {!Tsys} deliberately
    ignores fairness (its computations are arbitrary maximal paths),
    which is the right semantics for the paper's Section 2 definitions
    but cannot express wrappers added to systems that may idle: in

    {v   A: g0 ↔ g1, b → b (idle)      W: b → g0   v}

    the plain path semantics lets a computation sit at [b] forever,
    so [A □ W] is {e not} path-stabilizing — yet under UNITY fairness
    the wrapper action, continuously enabled at [b], must eventually
    fire, and [A □ W] {e is} stabilizing.  This module decides
    stabilization under weak fairness exactly, for small systems, by
    enumerating the strongly connected state sets a fair computation
    can settle in.

    A {e fair computation} is a maximal path such that every action
    enabled at every state of the path's settlement set has a
    transition taken within it (the lasso reading of weak fairness on
    finite graphs). *)

type t

val create :
  n:int -> ?names:string array ->
  actions:(string * (int * int) list) list ->
  init:int list -> unit -> t
(** [create ~n ~actions ~init ()] builds an action system over states
    [0 .. n-1]; each action is a named transition set.
    @raise Invalid_argument on out-of-range states or duplicate action
    names. *)

val n_states : t -> int
val action_names : t -> string list
val init_states : t -> int list

val enabled : t -> string -> int -> bool
(** [enabled t a s]: action [a] has a transition from [s].
    @raise Not_found for unknown action names. *)

val transitions : t -> string -> (int * int) list

val to_tsys : t -> Tsys.t
(** [to_tsys t] forgets labels and fairness: the union graph. *)

val box : t -> t -> t
(** [box c w] unions the action sets (renaming clashes by suffixing
    the right system's names with ["'"]), intersecting initial
    states — the □ of Section 2 at the action level. *)

val is_fairly_stabilizing_to : t -> Tsys.t -> bool
(** [is_fairly_stabilizing_to c a] decides: every {e fair} computation
    of [c] has a suffix that is a suffix of an initialized computation
    of [a].  Exact for systems of up to ~20 states (it enumerates
    strongly connected state subsets). *)

val bad_settlements : t -> spec:Tsys.t -> int list list
(** [bad_settlements t ~spec] enumerates every state set in which a
    fair computation of [t] can settle while traversing a transition
    that is not part of [spec]'s initialized behaviour: strongly
    connected under [t]'s internal edges, closed under weak fairness
    (every action enabled at all members has an internal transition),
    and containing a non-legitimate edge.  Empty iff no fair infinite
    computation violates stabilization. *)

val illegitimate_deadlocks : t -> spec:Tsys.t -> int list
(** [illegitimate_deadlocks t ~spec] lists states where no action of
    [t] is enabled but which are not initialized-reachable deadlocks
    of [spec] — fair finite computations ending there have no
    legitimate suffix. *)

val fair_violation_witness : t -> Tsys.t -> int list option
(** [fair_violation_witness c a] returns the settlement set of states
    of some fair computation with no legitimate suffix ([None] iff
    {!is_fairly_stabilizing_to}).  Deadlock witnesses are singleton
    sets. *)
