let s0 = 0
let s1 = 1
let s2 = 2
let s3 = 3
let s_star = 4

let names = [| "s0"; "s1"; "s2"; "s3"; "s*" |]

let chain = [ (s0, s1); (s1, s2); (s2, s3); (s3, s3) ]

let a =
  Tsys.create ~n:5 ~names
    ~edges:((s_star, s2) :: chain)
    ~init:[ s0 ] ()

let c = Tsys.create ~n:5 ~names ~edges:chain ~init:[ s0 ] ()

let fault s = if s = s0 then s_star else s
