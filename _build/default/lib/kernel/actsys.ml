type t = {
  n : int;
  names : string array;
  actions : (string * (int * int) list) list;
  init : int list;
}

let create ~n ?names ~actions ~init () =
  if n <= 0 then invalid_arg "Actsys.create: need at least one state";
  let names =
    match names with
    | None -> Array.init n (fun i -> Printf.sprintf "s%d" i)
    | Some a ->
      if Array.length a <> n then invalid_arg "Actsys.create: names length";
      Array.copy a
  in
  let check s =
    if s < 0 || s >= n then invalid_arg "Actsys.create: state out of range"
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, edges) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Actsys.create: duplicate action " ^ name);
      Hashtbl.add seen name ();
      List.iter
        (fun (u, v) ->
          check u;
          check v)
        edges)
    actions;
  List.iter check init;
  { n; names; actions; init = List.sort_uniq compare init }

let n_states t = t.n
let action_names t = List.map fst t.actions
let init_states t = t.init

let transitions t a =
  match List.assoc_opt a t.actions with
  | Some edges -> edges
  | None -> raise Not_found

let enabled t a s = List.exists (fun (u, _) -> u = s) (transitions t a)

let union_edges t =
  List.sort_uniq compare (List.concat_map snd t.actions)

let to_tsys t =
  Tsys.create ~n:t.n ~names:t.names ~edges:(union_edges t) ~init:t.init ()

let box c w =
  if c.n <> w.n then invalid_arg "Actsys.box: state-space mismatch";
  let c_names = List.map fst c.actions in
  let renamed =
    List.map
      (fun (name, edges) ->
        if List.mem name c_names then (name ^ "'", edges) else (name, edges))
      w.actions
  in
  { n = c.n;
    names = Array.copy c.names;
    actions = c.actions @ renamed;
    init = List.filter (fun s -> List.mem s w.init) c.init }

(* ------------------------------------------------------------------ *)
(* Fair stabilization                                                  *)

let legit_parts a =
  let reach_a = Tsys.reachable a ~from:(Tsys.init_states a) in
  let legit_edge (u, v) = reach_a.(u) && reach_a.(v) && Tsys.has_edge a u v in
  let legit_deadlock s = reach_a.(s) && Tsys.is_deadlock a s in
  (legit_edge, legit_deadlock)

let no_enabled_action t s =
  List.for_all (fun (_, edges) -> not (List.exists (fun (u, _) -> u = s) edges))
    t.actions

(* Is the subset S (given as a bitmask) strongly connected with at
   least one internal edge, using only edges inside S? *)
let strongly_connected_within t mask =
  let in_set s = mask land (1 lsl s) <> 0 in
  let members = List.filter in_set (List.init t.n Fun.id) in
  match members with
  | [] -> false
  | first :: _ ->
    let edges =
      List.filter (fun (u, v) -> in_set u && in_set v) (union_edges t)
    in
    edges <> []
    &&
    let reach_from src =
      let seen = Array.make t.n false in
      let rec go s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter (fun (u, v) -> if u = s then go v) edges
        end
      in
      go src;
      seen
    in
    let fwd = reach_from first in
    List.for_all (fun s -> fwd.(s)) members
    && List.for_all
         (fun s -> (reach_from s).(first))
         members

(* Weak fairness admits settlement in S iff every action enabled at
   every state of S has a transition staying inside S. *)
let fairness_allows t mask =
  let in_set s = mask land (1 lsl s) <> 0 in
  let members = List.filter in_set (List.init t.n Fun.id) in
  List.for_all
    (fun (_, edges) ->
      let enabled_at s = List.exists (fun (u, _) -> u = s) edges in
      (not (List.for_all enabled_at members))
      || List.exists (fun (u, v) -> in_set u && in_set v) edges)
    t.actions

let check_small t a =
  if t.n > 20 then
    invalid_arg "Actsys: fair stabilization limited to 20 states";
  if t.n <> Tsys.n_states a then
    invalid_arg "Actsys: state-space mismatch with the specification"

let illegitimate_deadlocks t ~spec =
  check_small t spec;
  let _, legit_deadlock = legit_parts spec in
  List.filter
    (fun s -> no_enabled_action t s && not (legit_deadlock s))
    (List.init t.n Fun.id)

let bad_settlements t ~spec =
  check_small t spec;
  let legit_edge, _ = legit_parts spec in
  let members_of mask =
    List.filter (fun s -> mask land (1 lsl s) <> 0) (List.init t.n Fun.id)
  in
  let edges = union_edges t in
  let viable mask =
    strongly_connected_within t mask
    && fairness_allows t mask
    && List.exists
         (fun (u, v) ->
           mask land (1 lsl u) <> 0
           && mask land (1 lsl v) <> 0
           && not (legit_edge (u, v)))
         edges
  in
  let rec scan mask acc =
    if mask >= 1 lsl t.n then List.rev acc
    else scan (mask + 1) (if viable mask then members_of mask :: acc else acc)
  in
  scan 1 []

let fair_violation_witness t a =
  match illegitimate_deadlocks t ~spec:a with
  | s :: _ -> Some [ s ]
  | [] ->
    (match bad_settlements t ~spec:a with
     | members :: _ -> Some members
     | [] -> None)

let is_fairly_stabilizing_to t a = fair_violation_witness t a = None
