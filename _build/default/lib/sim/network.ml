open Stdext

type 'm t = { n : int; chans : 'm Fqueue.t array (* index src * n + dst *) }

let idx t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Network: pid out of range";
  (src * t.n) + dst

let create ~n =
  if n <= 0 then invalid_arg "Network.create: need n > 0";
  { n; chans = Array.make (n * n) Fqueue.empty }

let size t = t.n

let update t i q =
  let chans = Array.copy t.chans in
  chans.(i) <- q;
  { t with chans }

let send t ~src ~dst m =
  let i = idx t ~src ~dst in
  update t i (Fqueue.push m t.chans.(i))

let deliver t ~src ~dst =
  let i = idx t ~src ~dst in
  match Fqueue.pop t.chans.(i) with
  | None -> None
  | Some (m, q) -> Some (m, update t i q)

let peek t ~src ~dst = Fqueue.peek t.chans.(idx t ~src ~dst)

let contents t ~src ~dst = Fqueue.to_list t.chans.(idx t ~src ~dst)

let channel_length t ~src ~dst = Fqueue.length t.chans.(idx t ~src ~dst)

let nonempty t =
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      if not (Fqueue.is_empty t.chans.((src * t.n) + dst)) then
        acc := (src, dst) :: !acc
    done
  done;
  !acc

let in_flight t = Array.fold_left (fun acc q -> acc + Fqueue.length q) 0 t.chans

let is_empty t = in_flight t = 0

let drop_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos t.chans.(i) with
  | None -> t
  | Some (_, q) -> update t i q

let duplicate_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos t.chans.(i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos m (Fqueue.insert_at pos m q))

let corrupt_at t ~src ~dst ~pos ~f =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos t.chans.(i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos (f m) q)

let reorder_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos t.chans.(i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.push m q)

let flush_channel t ~src ~dst = update t (idx t ~src ~dst) Fqueue.empty

let flush_all t = { t with chans = Array.make (t.n * t.n) Fqueue.empty }

let map f t = { t with chans = Array.map (Fqueue.map f) t.chans }

let fold_messages f acc t =
  let acc = ref acc in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      List.iter
        (fun m -> acc := f !acc ~src ~dst m)
        (Fqueue.to_list t.chans.((src * t.n) + dst))
    done
  done;
  !acc

let snapshot t =
  List.map
    (fun (src, dst) -> (src, dst, contents t ~src ~dst))
    (nonempty t)
