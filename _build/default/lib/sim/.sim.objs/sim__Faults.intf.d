lib/sim/faults.mli: Pid Stdext
