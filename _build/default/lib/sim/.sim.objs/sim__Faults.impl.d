lib/sim/faults.ml: List Pid Stdext
