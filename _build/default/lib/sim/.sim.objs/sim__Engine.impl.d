lib/sim/engine.ml: Array Faults List Metrics Network Pid Rng Stdext Trace
