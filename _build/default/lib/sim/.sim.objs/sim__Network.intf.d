lib/sim/network.mli: Pid
