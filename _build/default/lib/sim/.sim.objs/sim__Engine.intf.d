lib/sim/engine.mli: Faults Metrics Network Pid Trace
