lib/sim/network.ml: Array Fqueue List Stdext
