lib/sim/metrics.ml: Format Hashtbl List Option
