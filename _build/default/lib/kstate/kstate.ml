open Stdext

type node = {
  self : Sim.Pid.t;
  n : int;
  k : int;
  x : int;
  pred_x : int option;  (** last counter heard from the predecessor *)
  moves : int;
}

type outcome = {
  stabilized_at : int option;
  recovery_steps : int option;
  privileges_at_end : int;
  moves : int;
}

let privileges ~counters ~k =
  ignore k;
  let n = Array.length counters in
  let count = ref 0 in
  if counters.(0) = counters.(n - 1) then incr count;
  for i = 1 to n - 1 do
    if counters.(i) <> counters.(i - 1) then incr count
  done;
  !count

module Node = struct
  type state = node
  type msg = Counter of int

  (* Dijkstra's rules, applied when the predecessor's value arrives:
     bottom increments on equality, others copy on difference. *)
  let receive ~self ~from:_ (Counter v) node =
    let node = { node with pred_x = Some v } in
    if self = 0 then
      if v = node.x then
        { node with x = (node.x + 1) mod node.k; moves = node.moves + 1 }
      else node
    else if v <> node.x then { node with x = v; moves = node.moves + 1 }
    else node

  let receive ~self ~from msg node = (receive ~self ~from msg node, [])

  let actions ~self _node =
    [ ( "circulate",
        fun node -> (node, [ ((self + 1) mod node.n, Counter node.x) ]) ) ]
end

module Run = Sim.Engine.Make (Node)

let run ?corrupt_at ~n ~k ~seed ~steps () =
  if n < 2 then invalid_arg "Kstate.run: need n >= 2";
  if k < n + 1 then invalid_arg "Kstate.run: need k >= n + 1";
  let engine =
    Run.create
      (Run.config ~record:true ~n ~seed ())
      ~init:(fun self -> { self; n; k; x = 0; pred_x = None; moves = 0 })
  in
  let plan =
    match corrupt_at with
    | None -> []
    | Some at ->
      [ Sim.Faults.at at
          (Sim.Faults.Mutate_state
             { proc = Sim.Faults.Any_proc;
               f = (fun rng node -> { node with x = Rng.int rng node.k }) }) ]
  in
  Run.run ~plan ~steps engine;
  let trace = Run.trace engine in
  let snaps = Array.of_list trace in
  let len = Array.length snaps in
  let privileges_of i =
    privileges
      ~counters:(Array.map (fun node -> node.x) snaps.(i).Sim.Trace.states)
      ~k
  in
  let fault_index =
    Option.value ~default:0 (Sim.Trace.last_fault_index trace)
  in
  let stabilized_at =
    let idx = ref None in
    (try
       for i = len - 1 downto fault_index do
         if privileges_of i = 1 then idx := Some i else raise Exit
       done
     with Exit -> ());
    !idx
  in
  let recovery_steps =
    match stabilized_at with
    | Some s ->
      Some (snaps.(s).Sim.Trace.time - snaps.(fault_index).Sim.Trace.time)
    | None -> None
  in
  { stabilized_at;
    recovery_steps;
    privileges_at_end = (if len = 0 then 0 else privileges_of (len - 1));
    moves =
      Array.fold_left (fun acc (node : node) -> acc + node.moves) 0
        (Run.states engine) }
