(** Dijkstra's K-state token ring: the {e whitebox} contrast case.

    The paper's opening concern is that classical stabilization is
    designed {e into} an implementation using full knowledge of its
    variables — the tradition started by Dijkstra's K-state machine
    (the first self-stabilizing algorithm).  This module implements it
    over the message-passing simulator so the repository contains both
    design styles side by side:

    - K-state: stabilization is intrinsic; no wrapper exists, and the
      recovery argument depends on every implementation detail (the
      counter domain [K >= n], the bottom machine's special rule);
    - graybox TME: the implementation is an ordinary protocol and
      stabilization is added by a wrapper derived from the
      specification alone.

    The algorithm, on a unidirectional ring of [n] machines with
    counters in [0..K-1]: the bottom machine (pid 0) is privileged
    when its counter equals its predecessor's and then increments
    modulo K; every other machine is privileged when its counter
    differs from its predecessor's and then copies it.  Machines learn
    the predecessor's counter from messages circulating clockwise.
    From {e any} counter assignment, exactly one privilege eventually
    circulates. *)

type outcome = {
  stabilized_at : int option;
      (** first trace index after the fault from which the
          privilege count is exactly 1 through the end of the run *)
  recovery_steps : int option;
      (** steps from the fault to {!stabilized_at} *)
  privileges_at_end : int;
  moves : int;  (** rule firings (privilege passes) over the run *)
}

val privileges : counters:int array -> k:int -> int
(** [privileges ~counters ~k] counts privileged machines under the
    shared-state reading of the rules — the legitimacy measure
    (legitimate iff 1; Dijkstra's lemma guarantees it is never 0). *)

val run :
  ?corrupt_at:int -> n:int -> k:int -> seed:int -> steps:int -> unit -> outcome
(** [run ?corrupt_at ~n ~k ~seed ~steps ()] simulates the ring,
    scrambling every counter at [corrupt_at] if given.
    @raise Invalid_argument if [k < n + 1] (Dijkstra's bound, with one
    spare state for the message-passing setting) or [n < 2]. *)
