(** Purely functional priority queue (pairing heap).

    Used by the simulator's event calendar: events are ordered by
    (time, sequence number) so delivery is deterministic given a seed. *)

type ('prio, 'a) t

val empty : leq:('prio -> 'prio -> bool) -> ('prio, 'a) t
(** [empty ~leq] is the empty queue ordered by [leq] (a total
    preorder; ties are broken by insertion order only if the caller
    encodes a tiebreaker into ['prio]). *)

val is_empty : ('prio, 'a) t -> bool

val size : ('prio, 'a) t -> int

val insert : 'prio -> 'a -> ('prio, 'a) t -> ('prio, 'a) t

val pop_min : ('prio, 'a) t -> ('prio * 'a * ('prio, 'a) t) option
(** [pop_min q] removes a minimal-priority element. *)

val peek_min : ('prio, 'a) t -> ('prio * 'a) option

val to_list : ('prio, 'a) t -> ('prio * 'a) list
(** [to_list q] lists entries in ascending priority order. *)

val of_list : leq:('prio -> 'prio -> bool) -> ('prio * 'a) list -> ('prio, 'a) t
