(** Purely functional FIFO queue (paired-list representation).

    Used for interprocess channels, where the FIFO discipline is part of
    the paper's Communication Spec, and where a persistent structure
    lets the simulator snapshot channel contents into traces for free. *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a -> 'a t -> 'a t
(** [push x q] enqueues [x] at the back. *)

val pop : 'a t -> ('a * 'a t) option
(** [pop q] dequeues from the front, or [None] if empty. *)

val peek : 'a t -> 'a option
(** [peek q] returns the front element without removing it. *)

val of_list : 'a list -> 'a t
(** [of_list xs] builds a queue whose front is the head of [xs]. *)

val to_list : 'a t -> 'a list
(** [to_list q] lists elements front-first. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** [map f q] applies [f] to every element, preserving order. *)

val filter : ('a -> bool) -> 'a t -> 'a t
(** [filter p q] keeps elements satisfying [p], preserving order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold f init q] folds front-first. *)

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
(** [mapi f q] like {!map}, passing the front-first position. *)

val remove_at : int -> 'a t -> ('a * 'a t) option
(** [remove_at i q] removes the element at front-first position [i],
    returning it and the remaining queue; [None] if out of range. *)

val insert_at : int -> 'a -> 'a t -> 'a t
(** [insert_at i x q] inserts [x] so it occupies front-first position
    [i]; appends when [i] exceeds the length. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
