type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }

let is_empty q = q.length = 0
let length q = q.length

let push x q = { q with back = x :: q.back; length = q.length + 1 }

let pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; length = q.length - 1 })
  | [] ->
    (match List.rev q.back with
     | [] -> None
     | x :: front -> Some (x, { front; back = []; length = q.length - 1 }))

let peek q =
  match q.front with
  | x :: _ -> Some x
  | [] ->
    (match List.rev q.back with
     | [] -> None
     | x :: _ -> Some x)

let of_list xs = { front = xs; back = []; length = List.length xs }

let to_list q = q.front @ List.rev q.back

let map f q =
  { front = List.map f q.front;
    back = List.map f q.back;
    length = q.length }

let filter p q =
  let front = List.filter p q.front and back = List.filter p q.back in
  { front; back; length = List.length front + List.length back }

let fold f init q = List.fold_left f init (to_list q)

let exists p q = List.exists p q.front || List.exists p q.back

let for_all p q = List.for_all p q.front && List.for_all p q.back

let mapi f q = of_list (List.mapi f (to_list q))

let remove_at i q =
  if i < 0 || i >= q.length then None
  else
    let rec go k acc = function
      | [] -> None
      | x :: rest ->
        if k = i then Some (x, of_list (List.rev_append acc rest))
        else go (k + 1) (x :: acc) rest
    in
    go 0 [] (to_list q)

let insert_at i x q =
  let rec go k acc = function
    | rest when k = i -> List.rev_append acc (x :: rest)
    | [] -> List.rev (x :: acc)
    | y :: rest -> go (k + 1) (y :: acc) rest
  in
  of_list (go 0 [] (to_list q))

let equal eq a b =
  a.length = b.length && List.for_all2 eq (to_list a) (to_list b)

let pp pp_elt ppf q =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_elt)
    (to_list q)
