(** Plain-text table rendering for experiment reports.

    The bench harness regenerates each experiment as an aligned ASCII
    table; this module owns the formatting so every table in
    [bench/main.exe]'s output reads uniformly. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create ?aligns headers] starts a table.  [aligns] defaults to
    [Left] for the first column and [Right] for the rest, the usual
    layout for a label column followed by measurements. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Rows shorter than the header are
    padded with empty cells; longer rows are truncated. *)

val add_sep : t -> unit
(** [add_sep t] appends a horizontal separator row. *)

val render : t -> string
(** [render t] lays the table out with one space of padding, a header
    rule, and the configured alignments. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the rendered table (preceded by an
    underlined title if given) to standard output. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** Cell constructors with uniform formatting ([yes]/[no] for bools,
    fixed decimals for floats). *)
