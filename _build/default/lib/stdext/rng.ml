type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift/multiply mix of the advancing
   counter; passes BigCrush and is trivially seedable. *)
let mix64 z =
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let positive_int t =
  (* 62 usable bits keeps the result a nonnegative OCaml [int]. *)
  Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  positive_int t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_arr: empty array";
  xs.(int t (Array.length xs))

let pick_weighted t choices =
  let total =
    List.fold_left (fun acc (_, w) -> if w > 0 then acc + w else acc) 0 choices
  in
  if total <= 0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let stop = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: internal error"
    | (x, w) :: rest ->
      if w <= 0 then go acc rest
      else if stop < acc + w then x
      else go (acc + w) rest
  in
  go 0 choices

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let shuffle_list t xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list arr
