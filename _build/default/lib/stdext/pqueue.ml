type ('prio, 'a) heap =
  | Leaf
  | Node of 'prio * 'a * ('prio, 'a) heap list

type ('prio, 'a) t = {
  leq : 'prio -> 'prio -> bool;
  heap : ('prio, 'a) heap;
  size : int;
}

let empty ~leq = { leq; heap = Leaf; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let merge leq a b =
  match a, b with
  | Leaf, h | h, Leaf -> h
  | Node (pa, xa, ca), Node (pb, xb, cb) ->
    if leq pa pb then Node (pa, xa, b :: ca) else Node (pb, xb, a :: cb)

let insert prio x t =
  { t with
    heap = merge t.leq (Node (prio, x, [])) t.heap;
    size = t.size + 1 }

(* Two-pass pairing merge keeps pop amortized O(log n). *)
let rec merge_pairs leq = function
  | [] -> Leaf
  | [ h ] -> h
  | a :: b :: rest -> merge leq (merge leq a b) (merge_pairs leq rest)

let pop_min t =
  match t.heap with
  | Leaf -> None
  | Node (prio, x, children) ->
    let heap = merge_pairs t.leq children in
    Some (prio, x, { t with heap; size = t.size - 1 })

let peek_min t =
  match t.heap with
  | Leaf -> None
  | Node (prio, x, _) -> Some (prio, x)

let to_list t =
  let rec go acc t =
    match pop_min t with
    | None -> List.rev acc
    | Some (prio, x, t) -> go ((prio, x) :: acc) t
  in
  go [] t

let of_list ~leq entries =
  List.fold_left (fun t (prio, x) -> insert prio x t) (empty ~leq) entries
