lib/stdext/tabular.ml: Array Buffer List Printf String
