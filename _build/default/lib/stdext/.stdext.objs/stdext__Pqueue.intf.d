lib/stdext/pqueue.mli:
