lib/stdext/stats.ml: List
