lib/stdext/fqueue.mli: Format
