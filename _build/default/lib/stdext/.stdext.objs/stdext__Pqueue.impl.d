lib/stdext/pqueue.ml: List
