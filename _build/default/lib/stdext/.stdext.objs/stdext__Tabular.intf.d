lib/stdext/tabular.mli:
