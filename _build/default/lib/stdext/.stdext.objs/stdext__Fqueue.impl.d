lib/stdext/fqueue.ml: Format List
