lib/stdext/stats.mli:
