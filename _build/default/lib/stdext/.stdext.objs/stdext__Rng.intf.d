lib/stdext/rng.mli:
