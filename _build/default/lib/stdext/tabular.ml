type align = Left | Right

type row = Cells of string list | Sep

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let default_aligns n =
  List.init n (fun i -> if i = 0 then Left else Right)

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> default_aligns (List.length headers)
  in
  { headers; aligns; rows = [] }

let pad_to n filler cells =
  let len = List.length cells in
  if len >= n then List.filteri (fun i _ -> i < n) cells
  else cells @ List.init (n - len) (fun _ -> filler)

let add_row t cells =
  let cells = pad_to (List.length t.headers) "" cells in
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev t.rows in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Sep -> ()) rows;
  let buf = Buffer.create 1024 in
  let aligns = pad_to ncols Right t.aligns in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        let w = widths.(i) in
        let pad = String.make (w - String.length c) ' ' in
        if i > 0 then Buffer.add_string buf "  ";
        (match List.nth aligns i with
         | Left -> Buffer.add_string buf (c ^ pad)
         | Right -> Buffer.add_string buf (pad ^ c)))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Sep -> rule ()) rows;
  Buffer.contents buf

let print ?title t =
  (match title with
   | Some s ->
     print_newline ();
     print_endline s;
     print_endline (String.make (String.length s) '=')
   | None -> ());
  print_string (render t);
  flush stdout

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_bool b = if b then "yes" else "no"
