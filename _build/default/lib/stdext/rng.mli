(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from a value of
    type {!t} so that entire executions — schedules, fault injections,
    workloads — are reproducible from a single integer seed.  The
    generator is splittable: {!split} derives an independent stream,
    which lets concurrent components consume randomness without
    perturbing each other's sequences. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently afterwards. *)

val split : t -> t
(** [split t] advances [t] and returns a generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** [bits64 t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val chance : t -> float -> bool
(** [chance t p] returns [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] returns a uniform element of [xs].
    @raise Invalid_argument on the empty list. *)

val pick_arr : t -> 'a array -> 'a
(** [pick_arr t xs] returns a uniform element of [xs].
    @raise Invalid_argument on the empty array. *)

val pick_weighted : t -> ('a * int) list -> 'a
(** [pick_weighted t choices] picks proportionally to the (positive)
    integer weights.  Entries with weight [<= 0] are never picked.
    @raise Invalid_argument if no entry has positive weight. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t xs] permutes [xs] in place, uniformly. *)

val shuffle_list : t -> 'a list -> 'a list
(** [shuffle_list t xs] returns a uniform permutation of [xs]. *)
