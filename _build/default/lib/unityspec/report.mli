(** Named collections of verdicts.

    A specification is a conjunction of named clauses (the paper's
    Structural Spec, Flow Spec, …); a report pairs each clause name
    with its verdict so failures identify the clause, not just the
    trace index. *)

type entry = { clause : string; verdict : Temporal.verdict }

type t = entry list

val entry : string -> Temporal.verdict -> entry

val of_list : (string * Temporal.verdict) list -> t

val all_hold : t -> bool
(** [all_hold r]: every clause [Holds]. *)

val safe : t -> bool
(** [safe r]: no clause is [Violated] (pending liveness allowed). *)

val failures : t -> entry list
(** [failures r] lists clauses that are not [Holds]. *)

val violations : t -> entry list
(** [violations r] lists only [Violated] clauses. *)

val pending : t -> entry list

val merge : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
