lib/unityspec/report.mli: Format Temporal
