lib/unityspec/online.ml: List Temporal
