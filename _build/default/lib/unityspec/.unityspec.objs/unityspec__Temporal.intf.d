lib/unityspec/temporal.mli: Format
