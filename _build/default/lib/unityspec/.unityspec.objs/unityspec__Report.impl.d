lib/unityspec/report.ml: Format List Temporal
