lib/unityspec/temporal.ml: Array Format Fun List
