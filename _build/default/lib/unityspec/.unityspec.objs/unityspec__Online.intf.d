lib/unityspec/online.mli: Temporal
