type entry = { clause : string; verdict : Temporal.verdict }

type t = entry list

let entry clause verdict = { clause; verdict }

let of_list l = List.map (fun (clause, verdict) -> { clause; verdict }) l

let all_hold r = List.for_all (fun e -> Temporal.is_ok e.verdict) r

let safe r =
  List.for_all
    (fun e -> match e.verdict with Temporal.Violated _ -> false | _ -> true)
    r

let failures r = List.filter (fun e -> not (Temporal.is_ok e.verdict)) r

let violations r =
  List.filter
    (fun e -> match e.verdict with Temporal.Violated _ -> true | _ -> false)
    r

let pending r =
  List.filter
    (fun e -> match e.verdict with Temporal.Pending _ -> true | _ -> false)
    r

let merge = ( @ )

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf e ->
         Format.fprintf ppf "%-28s %a" e.clause Temporal.pp_verdict e.verdict))
    r

let to_string r = Format.asprintf "%a" pp r
