(** UNITY temporal operators, checked over finite recorded traces.

    The paper states its specifications in UNITY (Chandy–Misra):
    [p unless q], [stable p], [p is invariant], [p ↝ q] (leads-to) and
    [p ↪ q] (leads-to-always).  A simulator produces finite prefixes of
    computations, so the checkers come in two flavours:

    - {e safety} ([invariant], [unless], [stable], [step_invariant])
      is decided definitively on a prefix — a violation is a violation;
    - {e liveness} ([leads_to], [leads_to_always]) can only be
      {e discharged} or left {e pending} on a prefix; the pending count
      at the end of a long run (with the system quiescent) is the
      empirical verdict.

    All checkers work on ['a list] traces for any snapshot type; the
    graybox layer instantiates ['a] with arrays of spec-level views. *)

type verdict =
  | Holds
  | Violated of { at : int; reason : string }
      (** safety violation at trace index [at] *)
  | Pending of { obligations : int list }
      (** liveness obligations opened at these indices and never
          discharged before the trace ended *)

val is_ok : verdict -> bool
(** [is_ok v] is [true] only for [Holds]. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {2 Safety} *)

val invariant : ?name:string -> ('a -> bool) -> 'a list -> verdict
(** [invariant p tr]: [p] holds in every snapshot. *)

val unless : ?name:string -> p:('a -> bool) -> q:('a -> bool) -> 'a list -> verdict
(** [unless ~p ~q tr]: whenever [p ∧ ¬q] holds in a snapshot, [p ∨ q]
    holds in the next one. *)

val stable : ?name:string -> ('a -> bool) -> 'a list -> verdict
(** [stable p tr] is [unless ~p ~q:(fun _ -> false)]: once [p], always
    [p]. *)

val step_invariant :
  ?name:string -> ('a -> 'a -> bool) -> 'a list -> verdict
(** [step_invariant r tr]: the relation [r previous next] holds for
    every consecutive snapshot pair — the form of the paper's
    primed-variable clauses such as [h.j ⇒ REQ'_j = REQ_j]. *)

(** {2 Liveness} *)

val leads_to : ?name:string -> p:('a -> bool) -> q:('a -> bool) -> 'a list -> verdict
(** [leads_to ~p ~q tr]: every snapshot satisfying [p] is followed
    (inclusively) by one satisfying [q].  Undischarged obligations are
    reported as [Pending]. *)

val leads_to_always :
  ?name:string -> p:('a -> bool) -> q:('a -> bool) -> 'a list -> verdict
(** [leads_to_always ~p ~q tr] is the paper's [p ↪ q]:
    [leads_to p q] and, additionally, [q] never turns false once true
    ([stable q]).  A [q]-point that later fails [q] is a safety
    violation; an open [p]-obligation is [Pending]. *)

val ok_with_tail : trace_len:int -> margin:int -> verdict -> bool
(** [ok_with_tail ~trace_len ~margin v] accepts [Holds] and accepts
    [Pending] when every open obligation was opened within the final
    [margin] snapshots — the standard allowance when checking liveness
    on a finite prefix (the run simply ended mid-obligation).
    [Violated] is never accepted. *)

(** {2 Combinators} *)

val forall : (int -> verdict) -> int -> verdict
(** [forall f n] conjoins [f 0 … f (n-1)], returning the first
    non-[Holds] verdict — the paper's [(∀j :: …)] over process ids. *)

val forall_pairs : (int -> int -> verdict) -> int -> verdict
(** [forall_pairs f n] conjoins [f j k] over all ordered pairs
    [j ≠ k]. *)

val both : verdict -> verdict -> verdict
(** [both a b] conjoins two verdicts, preferring to report a violation
    over a pending obligation. *)

val all : verdict list -> verdict
