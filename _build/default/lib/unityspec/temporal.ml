type verdict =
  | Holds
  | Violated of { at : int; reason : string }
  | Pending of { obligations : int list }

let is_ok = function Holds -> true | Violated _ | Pending _ -> false

let pp_verdict ppf = function
  | Holds -> Format.fprintf ppf "holds"
  | Violated { at; reason } ->
    Format.fprintf ppf "violated at %d: %s" at reason
  | Pending { obligations } ->
    Format.fprintf ppf "pending obligations at %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      obligations

let describe name fallback =
  match name with Some n -> n | None -> fallback

let invariant ?name p tr =
  let rec go i = function
    | [] -> Holds
    | s :: rest ->
      if p s then go (i + 1) rest
      else
        Violated { at = i; reason = describe name "invariant" ^ " fails" }
  in
  go 0 tr

let step_invariant ?name r tr =
  let rec go i = function
    | a :: (b :: _ as rest) ->
      if r a b then go (i + 1) rest
      else
        Violated
          { at = i + 1; reason = describe name "step-invariant" ^ " fails" }
    | [] | [ _ ] -> Holds
  in
  go 0 tr

let unless ?name ~p ~q tr =
  let label = describe name "unless" in
  let r a b = (not (p a && not (q a))) || p b || q b in
  match step_invariant r tr with
  | Violated { at; _ } -> Violated { at; reason = label ^ " fails" }
  | v -> v

let stable ?name p tr =
  let label = describe name "stable" in
  match unless ~p ~q:(fun _ -> false) tr with
  | Violated { at; _ } -> Violated { at; reason = label ^ " fails" }
  | v -> v

let leads_to ?name ~p ~q tr =
  ignore name;
  (* Walk backwards: remember the nearest later-or-equal q-point. *)
  let arr = Array.of_list tr in
  let n = Array.length arr in
  let pending = ref [] in
  let q_ahead = ref false in
  for i = n - 1 downto 0 do
    if q arr.(i) then q_ahead := true;
    if p arr.(i) && not !q_ahead then pending := i :: !pending
  done;
  if !pending = [] then Holds else Pending { obligations = !pending }

let leads_to_always ?name ~p ~q tr =
  let label = describe name "leads-to-always" in
  match stable ~name:(label ^ " (stability of target)") q tr with
  | Violated _ as v -> v
  | _ -> leads_to ?name ~p ~q tr

let ok_with_tail ~trace_len ~margin = function
  | Holds -> true
  | Violated _ -> false
  | Pending { obligations } ->
    List.for_all (fun i -> i >= trace_len - margin) obligations

let both a b =
  match a, b with
  | Violated _, _ -> a
  | _, Violated _ -> b
  | Pending { obligations = xs }, Pending { obligations = ys } ->
    Pending { obligations = List.sort_uniq compare (xs @ ys) }
  | Pending _, Holds -> a
  | Holds, _ -> b

let all vs = List.fold_left both Holds vs

let forall f n = all (List.init n f)

let forall_pairs f n =
  let pairs =
    List.concat_map
      (fun j -> List.filter_map (fun k -> if j <> k then Some (j, k) else None)
                  (List.init n Fun.id))
      (List.init n Fun.id)
  in
  all (List.map (fun (j, k) -> f j k) pairs)
