include Lamport_core.Make (struct
  let name = "lamport"
  let purge_on_insert = true
  let entry_rule = Lamport_core.Leq_head
  let release_echo = true
end)
