(** Ricart–Agrawala mutual exclusion (paper §5.1).

    A process that wants the critical section sends a timestamped
    request to everyone; a receiver replies immediately when it is not
    requesting or its own request is later, and defers the reply
    otherwise, releasing all deferred replies on exit.  In the paper's
    Lspec vocabulary the per-peer knowledge [j.REQ_k] is a concrete
    variable updated by request receipt (assignment — this is the
    correction path the wrapper relies on) and by replies (guarded:
    only information newer than the own request counts as a grant).

    Conformance notes (each required by a clause of Lspec):
    - any event handled while thinking refreshes [REQ_j] to the current
      event timestamp (CS Release Spec);
    - receiving a request {e overwrites} [j.REQ_k], even downward, so
      corrupted copies are repaired as soon as the owner (or its
      wrapper) resends (Reply Spec's correction semantics);
    - message handling is total: stale, duplicated, or corrupted
      messages are absorbed from any state (everywhere
      implementation). *)

include Graybox.Protocol.S
