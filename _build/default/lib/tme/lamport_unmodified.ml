include Lamport_core.Make (struct
  let name = "lamport-unmod"
  let purge_on_insert = false
  let entry_rule = Lamport_core.Exact_head
  let release_echo = false
end)
