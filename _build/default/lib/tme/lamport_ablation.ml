(** Partially modified Lamport variants, for the modification-ablation
    experiment (bench table T9).

    The paper's modifications, cumulatively:
    - m0 ({!Lamport_unmodified}): the original program;
    - m1: Insert keeps one request per process;
    - m1+2: additionally, the entry rule is "own request ≤ head";
    - m1+2+3 ({!Lamport_me}): additionally, thinking receivers answer
      requests with reply + release (prunes phantom queue entries).

    Each variant still implements Lspec from initial states; the
    ablation shows which fault classes each missing modification
    leaves unrecoverable even under the wrapper. *)

module M1 = Lamport_core.Make (struct
  let name = "lamport-m1"
  let purge_on_insert = true
  let entry_rule = Lamport_core.Exact_head
  let release_echo = false
end)

module M12 = Lamport_core.Make (struct
  let name = "lamport-m12"
  let purge_on_insert = true
  let entry_rule = Lamport_core.Leq_head
  let release_echo = false
end)
