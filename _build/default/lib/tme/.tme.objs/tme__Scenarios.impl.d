lib/tme/scenarios.ml: Central_me Gcl Graybox Lamport_ablation Lamport_me Lamport_unmodified List Ra_me Sim
