lib/tme/lamport_me.mli: Graybox
