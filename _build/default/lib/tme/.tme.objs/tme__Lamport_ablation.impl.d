lib/tme/lamport_ablation.ml: Lamport_core
