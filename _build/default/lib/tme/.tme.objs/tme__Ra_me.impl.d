lib/tme/ra_me.ml: Ra_core
