lib/tme/lamport_unmodified.mli: Graybox
