lib/tme/ra_mutant.ml: Ra_core
