lib/tme/central_me.ml: Clocks Format Graybox List Logical_clock Rng Sim Stdext Timestamp
