lib/tme/lamport_unmodified.ml: Lamport_core
