lib/tme/scenarios.mli: Graybox Sim Unityspec
