lib/tme/ra_me.mli: Graybox
