lib/tme/lamport_me.ml: Lamport_core
