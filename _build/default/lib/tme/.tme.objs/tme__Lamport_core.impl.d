lib/tme/lamport_core.ml: Clocks Format Graybox List Logical_clock Rng Sim Stdext Timestamp
