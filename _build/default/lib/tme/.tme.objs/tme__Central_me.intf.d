lib/tme/central_me.mli: Graybox
