(** Lamport's {e original} program, without the paper's modifications:
    the negative control.

    It implements Lspec from initial states (it is a correct mutual
    exclusion algorithm) but does {e not} everywhere implement it:
    from a corrupted state — a duplicated or phantom queue entry — its
    strict "own request = head" entry rule deadlocks, and the wrapper
    cannot help because no wrapper message dislodges a queue entry.
    This is the simulator-scale analogue of Figure 1: satisfying the
    specification from initial states only does not transfer
    stabilization. *)

include Graybox.Protocol.S
