(** Lamport's mutual-exclusion program with the paper's modifications
    (paper §5.2 and Appendix A1), so that it everywhere implements
    Lspec and the graybox wrapper stabilizes it.  See
    {!Lamport_core} for the modification list. *)

include Graybox.Protocol.S
