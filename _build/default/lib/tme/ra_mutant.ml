(** A deliberately faulty Ricart-Agrawala: replies to requests while
    eating (see {!Ra_core}).  It exists so the bounded model checker's
    ability to find real interleaving bugs is itself tested; it is not
    registered in {!Scenarios.protocols}. *)

include Ra_core.Make (struct
  let name = "ra-mutant"
  let defer_while_eating = false
end)
