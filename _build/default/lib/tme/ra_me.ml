include Ra_core.Make (struct
  let name = "ra"
  let defer_while_eating = true
end)
