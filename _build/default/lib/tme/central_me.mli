(** Centralized-coordinator mutual exclusion: the message-complexity
    baseline.

    Process 0 is the coordinator; requesters send it a timestamped
    request, it grants the critical section to the earliest pending
    request whenever the section is free, and holders send it a
    release.  Three messages per entry, versus [2(n-1)] for
    Ricart–Agrawala and [3(n-1)] for Lamport.

    This protocol does {e not} implement Lspec (its per-peer knowledge
    is not maintained; it is not a timestamp-exchange algorithm) and
    is not meant to be wrapped — it exists for the fault-free
    message-complexity table and as a contrast case showing what the
    graybox interface requires. *)

include Graybox.Protocol.S
