(** Executable monitors for Lspec (paper §3.2).

    Each function checks one clause of the local everywhere
    specification over a recorded view-level trace
    ([(View.t, Msg.t) Sim.Trace.t]).  Safety clauses are checked
    exactly; the [eventually send …] obligations are checked in their
    observable form — the inconsistency the send is meant to resolve
    must be transient.

    Everywhere implementations satisfy every clause from {e every}
    state, so these monitors must hold on fault-free traces {e and} on
    any trace suffix, including suffixes that start right after
    injected faults.  (Exception: a fault event itself may break the
    safety clauses at its own transition — monitors are therefore run
    on fault-free segments; see {!Stabilize} for the post-fault
    analysis.)

    A note on [j.REQ_k] for Lamport's program: the paper defines it
    through the relation [REQ_j lt j.REQ_k ≡ grant.j.k ∧ …], so the
    view's [local_req] is an encoding chosen to satisfy that relation;
    the invariant-I-style clauses are exact for Ricart–Agrawala (where
    [j.REQ_k] is a concrete variable) and encoding-faithful for
    Lamport. *)

type vtrace = (View.t, Msg.t) Sim.Trace.t

val structural : n:int -> vtrace -> Unityspec.Temporal.verdict
(** Exactly one of [t.j], [h.j], [e.j] — guaranteed by the [mode]
    variant type, checked for completeness. *)

val flow : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [(t.j unless h.j) ∧ (h.j unless e.j) ∧ (e.j unless t.j)]. *)

val cs : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [e.j ↝ ¬e.j]: the client leaves the critical section. *)

val request_safety : n:int -> vtrace -> Unityspec.Temporal.verdict
(** While [h.j] persists, [REQ_j] is unchanged. *)

val request_liveness : n:int -> vtrace -> Unityspec.Temporal.verdict
(** If [j] is hungry and some [k] has not heard [REQ_j] (nor is a
    request in flight to it), that situation is transient. *)

val reply_liveness : n:int -> vtrace -> Unityspec.Temporal.verdict
(** If [j] knows an earlier pending request of [k], then [k]'s request
    makes progress (Reply Spec's observable consequence). *)

val cs_entry_safety : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [j] enters the CS only from a state where
    [∀k ≠ j : REQ_j lt j.REQ_k]. *)

val cs_entry_liveness : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [(h.j ∧ (∀k : REQ_j lt j.REQ_k)) ↝ e.j]. *)

val cs_release : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [t.j ⇒ REQ_j = ts.j]: while thinking, the request variable tracks
    the most current event's timestamp. *)

val timestamp_spec : n:int -> vtrace -> Unityspec.Temporal.verdict
(** Logical clocks are monotone, and a delivery pulls the receiver's
    clock to at least the message timestamp's clock value. *)

val communication_fifo : n:int -> vtrace -> Unityspec.Temporal.verdict
(** Channels evolve only by head-removal on delivery and tail-appends
    on sends (checked structurally between consecutive snapshots;
    fault transitions are exempt). *)

val init_spec : n:int -> vtrace -> Unityspec.Temporal.verdict
(** The paper's Init: all thinking, [REQ_j = 0], [ts.j = 0], empty
    channels — checked at the first snapshot. *)

val check_all : n:int -> vtrace -> Unityspec.Report.t
(** All clauses, as a named report. *)

val clause_names : string list
