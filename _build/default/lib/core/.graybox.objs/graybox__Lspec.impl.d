lib/core/lspec.ml: Array Clocks List Msg Printf Report Sim Temporal Timestamp Unityspec View
