lib/core/wrapper.ml: List Msg Sim View
