lib/core/view.mli: Clocks Format Sim
