lib/core/harness.mli: Clocks Msg Protocol Sim Stdext View Wrapper
