lib/core/protocol.ml: Format Msg Sim Stdext View
