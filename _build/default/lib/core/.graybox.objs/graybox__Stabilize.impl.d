lib/core/stabilize.ml: Array Clocks Format List Msg Sim View
