lib/core/lspec.mli: Msg Sim Unityspec View
