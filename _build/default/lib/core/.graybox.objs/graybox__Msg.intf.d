lib/core/msg.mli: Clocks Format Stdext
