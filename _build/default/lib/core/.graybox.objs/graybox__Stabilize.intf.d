lib/core/stabilize.mli: Format Msg Sim View
