lib/core/tme_spec.ml: Array Clocks Harness List Msg Printf Report Sim Temporal Unityspec Vector_clock View
