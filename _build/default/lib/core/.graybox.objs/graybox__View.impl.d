lib/core/view.ml: Clocks Format List Sim Timestamp
