lib/core/harness.ml: Array Clocks List Msg Protocol Rng Sim Stdext Timestamp Vector_clock View Wrapper
