lib/core/msg.ml: Clocks Format Int Rng Stdext Timestamp
