lib/core/tme_spec.mli: Harness Msg Sim Unityspec View
