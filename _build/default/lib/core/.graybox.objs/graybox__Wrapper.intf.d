lib/core/wrapper.mli: Msg Sim View
