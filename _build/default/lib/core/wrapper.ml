type variant = Refined | Unrefined

let targets variant (v : View.t) ~n =
  if not (View.hungry v) then []
  else
    let peers = Sim.Pid.others ~self:v.self ~n in
    match variant with
    | Unrefined -> peers
    | Refined -> List.filter (View.earlier v ~than:v.req) peers

let fire variant v ~n =
  List.map (fun k -> (k, Msg.Request v.View.req)) (targets variant v ~n)

let action_label = "wrapper"
