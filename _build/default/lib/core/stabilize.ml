type vtrace = (View.t, Msg.t) Sim.Trace.t

type analysis = {
  trace_len : int;
  last_fault_index : int option;
  converged_index : int option;
  recovery_steps : int option;
  me1_violations : int;
  starving : Sim.Pid.t list;
  recovered : bool;
}

(* For process [j], mark every index [i] at which j's pending interval
   (hungry awaiting service, or eating awaiting release) is known to
   resolve correctly: hungry intervals must end in Eating, eating
   intervals in Thinking.  Intervals cut off by the end of the trace
   are acceptable only within [tail_margin]. *)
let resolution_ok modes ~len ~tail_margin j =
  let ok = Array.make len true in
  let interval_start = ref None in
  let mark a b value =
    for i = a to b do
      if not value then ok.(i) <- false
    done
  in
  let close_interval endpoint current_end =
    match !interval_start with
    | None -> ()
    | Some (start, kind) ->
      let resolved =
        match endpoint with
        | Some next_mode ->
          (match kind with
           | View.Hungry -> next_mode = View.Eating
           | View.Eating -> next_mode = View.Thinking
           | View.Thinking -> true)
        | None ->
          (* trace ended mid-interval *)
          current_end - start < tail_margin
      in
      mark start current_end resolved;
      interval_start := None
  in
  for i = 0 to len - 1 do
    let m = modes i j in
    (match !interval_start with
     | Some (_, kind) when kind = m -> ()
     | Some _ ->
       close_interval (Some m) (i - 1);
       if m = View.Hungry || m = View.Eating then interval_start := Some (i, m)
     | None ->
       if m = View.Hungry || m = View.Eating then interval_start := Some (i, m))
  done;
  close_interval None (len - 1);
  ok

let analyse ?(tail_margin = 300) (tr : vtrace) =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 then
    { trace_len = 0;
      last_fault_index = None;
      converged_index = None;
      recovery_steps = None;
      me1_violations = 0;
      starving = [];
      recovered = false }
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let modes i j = snaps.(i).Sim.Trace.states.(j).View.mode in
    let me1_ok i =
      let eaters = ref 0 in
      Array.iter
        (fun v -> if View.eating v then incr eaters)
        snaps.(i).Sim.Trace.states;
      !eaters <= 1
    in
    let last_fault_index =
      let found = ref None in
      Array.iteri
        (fun i snap ->
          match snap.Sim.Trace.event with
          | Sim.Trace.Fault _ -> found := Some i
          | _ -> ())
        snaps;
      !found
    in
    let per_proc =
      Array.init n (fun j -> resolution_ok modes ~len ~tail_margin j)
    in
    (* good.(i): the criteria hold at snapshot i *)
    let good i =
      me1_ok i
      &&
      let rec all j = j >= n || (per_proc.(j).(i) && all (j + 1)) in
      all 0
    in
    (* converged_index: earliest i with good holding on [i, len). *)
    let converged_index =
      let idx = ref None in
      (try
         for i = len - 1 downto 0 do
           if good i then idx := Some i else raise Exit
         done
       with Exit -> ());
      !idx
    in
    let base = match last_fault_index with Some f -> f | None -> 0 in
    let converged_index =
      match converged_index with
      | Some i -> Some (max i base)
      | None -> None
    in
    let recovery_steps =
      match converged_index with
      | None -> None
      | Some i ->
        Some (snaps.(i).Sim.Trace.time - snaps.(base).Sim.Trace.time)
    in
    let me1_violations =
      let count = ref 0 in
      for i = base to len - 1 do
        if not (me1_ok i) then incr count
      done;
      !count
    in
    let starving =
      List.filter
        (fun j ->
          let rec hungry_run i acc =
            if i < 0 || modes i j <> View.Hungry then acc
            else hungry_run (i - 1) (acc + 1)
          in
          hungry_run (len - 1) 0 >= tail_margin)
        (Sim.Pid.range n)
    in
    { trace_len = len;
      last_fault_index;
      converged_index;
      recovery_steps;
      me1_violations;
      starving;
      recovered = converged_index <> None }
  end

let service_round_latency (tr : vtrace) ~after =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 || after >= len then None
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let served = Array.make n false in
    let remaining = ref n in
    let answer = ref None in
    (try
       for i = max 1 (after + 1) to len - 1 do
         for j = 0 to n - 1 do
           if
             (not served.(j))
             && (not (View.eating snaps.(i - 1).Sim.Trace.states.(j)))
             && View.eating snaps.(i).Sim.Trace.states.(j)
           then begin
             served.(j) <- true;
             decr remaining;
             if !remaining = 0 then begin
               answer :=
                 Some
                   (snaps.(i).Sim.Trace.time - snaps.(after).Sim.Trace.time);
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    !answer
  end

let service_times ?(after = 0) (tr : vtrace) =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 then []
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let samples = ref [] in
    for j = 0 to n - 1 do
      let start = ref None in
      for i = 0 to len - 1 do
        let mode = snaps.(i).Sim.Trace.states.(j).View.mode in
        match !start, mode with
        | None, View.Hungry -> if i >= after then start := Some i
        | Some s, View.Eating ->
          samples :=
            (snaps.(i).Sim.Trace.time - snaps.(s).Sim.Trace.time) :: !samples;
          start := None
        | Some _, View.Thinking ->
          (* interval aborted (fault reset the mode): not a service *)
          start := None
        | Some _, View.Hungry | None, (View.Thinking | View.Eating) -> ()
      done
    done;
    List.rev !samples
  end

let time_to_quiescent_consistency (tr : vtrace) ~after =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 || after >= len then None
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let consistent (snap : (View.t, Msg.t) Sim.Trace.snapshot) =
      let eaters = ref 0 in
      Array.iter (fun v -> if View.eating v then incr eaters) snap.states;
      !eaters <= 1
      && List.for_all
           (fun j ->
             let vj = snap.states.(j) in
             (not (View.hungry vj))
             || List.for_all
                  (fun k ->
                    not
                      (Clocks.Timestamp.lt
                         (View.local_req snap.states.(k) j)
                         vj.View.req))
                  (Sim.Pid.others ~self:j ~n))
           (Sim.Pid.range n)
    in
    let answer = ref None in
    (try
       for i = after to len - 1 do
         if consistent snaps.(i) then begin
           answer := Some (snaps.(i).Sim.Trace.time - snaps.(after).Sim.Trace.time);
           raise Exit
         end
       done
     with Exit -> ());
    !answer
  end

let pp ppf a =
  Format.fprintf ppf
    "@[<v>trace length      : %d@,last fault        : %a@,\
     converged at      : %a@,recovery steps    : %a@,\
     ME1 violations    : %d@,starving          : %a@,recovered         : %b@]"
    a.trace_len
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "none")
       Format.pp_print_int)
    a.last_fault_index
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "never")
       Format.pp_print_int)
    a.converged_index
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "-")
       Format.pp_print_int)
    a.recovery_steps a.me1_violations
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    a.starving a.recovered
