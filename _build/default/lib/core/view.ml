open Clocks

type mode = Thinking | Hungry | Eating

type t = {
  self : Sim.Pid.t;
  mode : mode;
  req : Timestamp.t;
  local_req : Timestamp.t Sim.Pid.Map.t;
  clock : int;
}

let make ~self ~mode ~req ~local_req ~clock =
  { self; mode; req; local_req; clock }

let thinking v = v.mode = Thinking
let hungry v = v.mode = Hungry
let eating v = v.mode = Eating

let local_req v k =
  match Sim.Pid.Map.find_opt k v.local_req with
  | Some ts -> ts
  | None -> Timestamp.zero ~pid:k

let earlier v ~than k = Timestamp.lt (local_req v k) than

let earliest v ~peers =
  List.for_all (fun k -> Timestamp.lt v.req (local_req v k)) peers

let mode_to_string = function
  | Thinking -> "t"
  | Hungry -> "h"
  | Eating -> "e"

let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

let pp ppf v =
  Format.fprintf ppf "@[<h>%d:%a req=%a lc=%d [%a]@]" v.self pp_mode v.mode
    Timestamp.pp v.req v.clock
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (k, ts) -> Format.fprintf ppf "%d:%a" k Timestamp.pp ts))
    (Sim.Pid.Map.bindings v.local_req)
