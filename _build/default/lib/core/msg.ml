open Clocks

type t =
  | Request of Timestamp.t
  | Reply of Timestamp.t
  | Release of Timestamp.t

let timestamp = function Request ts | Reply ts | Release ts -> ts

let is_request = function Request _ -> true | Reply _ | Release _ -> false
let is_reply = function Reply _ -> true | Request _ | Release _ -> false
let is_release = function Release _ -> true | Request _ | Reply _ -> false

let kind_rank = function Request _ -> 0 | Reply _ -> 1 | Release _ -> 2

let compare a b =
  match Int.compare (kind_rank a) (kind_rank b) with
  | 0 -> Timestamp.compare (timestamp a) (timestamp b)
  | c -> c

let equal a b = compare a b = 0

let corrupt ~n rng m =
  let open Stdext in
  let ts = timestamp m in
  let clock =
    if Rng.bool rng then Rng.int rng (max 1 ((2 * ts.Timestamp.clock) + 10))
    else ts.Timestamp.clock
  in
  let pid = if Rng.bool rng then Rng.int rng n else ts.Timestamp.pid in
  let ts = Timestamp.make ~clock ~pid in
  match Rng.int rng 3 with
  | 0 -> Request ts
  | 1 -> Reply ts
  | _ -> Release ts

let pp ppf = function
  | Request ts -> Format.fprintf ppf "req(%a)" Timestamp.pp ts
  | Reply ts -> Format.fprintf ppf "rep(%a)" Timestamp.pp ts
  | Release ts -> Format.fprintf ppf "rel(%a)" Timestamp.pp ts

let to_string m = Format.asprintf "%a" pp m
