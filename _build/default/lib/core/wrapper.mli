(** The graybox stabilization wrapper for TME (paper §4).

    The level-2 wrapper reestablishes mutual consistency between
    processes.  Its entire interface to the wrapped system is the
    specification-level {!View.t}:

    {v W_j  ::  h.j → (∀k : k ≠ j ∧ j.REQ_k lt REQ_j : send(REQ_j, j, k)) v}

    and its timeout refinement (an everywhere implementation of [W_j],
    hence by Theorem 4 itself a valid wrapper):

    {v W'_j ::  timer.j = 0 ∧ h.j →
          (∀k : k ≠ j ∧ j.REQ_k lt REQ_j : send(REQ_j, j, k));
          timer.j := δ v}

    No level-1 wrapper is needed: Lspec already captures per-process
    internal consistency, so any everywhere implementation is
    internally consistent in every state (paper §4). *)

type variant =
  | Refined
      (** send only to processes [k] with [j.REQ_k lt REQ_j] — the
          paper's final [W_j] *)
  | Unrefined
      (** send to every [k ≠ j] — the paper's first, coarser [W_j];
          kept for the overhead ablation *)

val targets : variant -> View.t -> n:int -> Sim.Pid.t list
(** [targets variant v ~n] lists the processes the wrapper would
    correct, given only the view: all peers for [Unrefined], the
    [j.REQ_k lt REQ_j] peers for [Refined].  Empty unless [hungry v]. *)

val fire : variant -> View.t -> n:int -> (Sim.Pid.t * Msg.t) list
(** [fire variant v ~n] is the wrapper's send list:
    [Request REQ_j] to every target.  This function {e is} the wrapper
    — note its type mentions no implementation state. *)

val action_label : string
(** The engine action label under which wrapper sends are attributed
    in {!Sim.Metrics} (["wrapper"]). *)
