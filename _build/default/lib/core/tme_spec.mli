(** Executable monitors for TME_Spec (paper §3.1):
    ME1 mutual exclusion, ME2 starvation freedom, ME3 first-come
    first-serve.

    Theorem 5 states that every implementation of Lspec implements
    TME_Spec from initial states; these monitors are the empirical
    check — they must hold on every fault-free trace of a conforming
    implementation, and (by Theorem 8) on a suffix of every faulty
    trace of a wrapped one. *)

type vtrace = (View.t, Msg.t) Sim.Trace.t

val me1 : vtrace -> Unityspec.Temporal.verdict
(** [(∀j,k :: e.j ∧ e.k ⇒ j = k)]: at most one process eats. *)

val me1_violations : vtrace -> int
(** Number of snapshots with two or more eaters (for recovery
    accounting rather than a verdict). *)

val me2 : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [(∀j :: h.j ↝ e.j)]: every hungry process eventually eats. *)

val me3 : Harness.entry_record list -> Unityspec.Temporal.verdict
(** FCFS over the oracle entry log: if [a]'s request happened-before
    [b]'s request (exact, via oracle vector clocks), then [a]'s entry
    precedes [b]'s in the trace.  The log must be in trace order. *)

val check_all :
  n:int -> entries:Harness.entry_record list -> vtrace -> Unityspec.Report.t
