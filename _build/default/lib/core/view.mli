(** The graybox view: the specification-level state of one process.

    Lspec is written over exactly these variables — the mode
    ([t.j]/[h.j]/[e.j]), the own request timestamp [REQ_j], the local
    copies [j.REQ_k], and the logical-clock reading [ts.j].  Every
    implementation must expose a projection of its concrete state onto
    a view; the wrapper and every specification monitor consume
    {e only} views, never implementation state.  That projection
    boundary is the repository's embodiment of "graybox": replace the
    implementation and nothing on this side of the boundary changes. *)

type mode = Thinking | Hungry | Eating

type t = {
  self : Sim.Pid.t;
  mode : mode;
  req : Clocks.Timestamp.t;  (** [REQ_j] *)
  local_req : Clocks.Timestamp.t Sim.Pid.Map.t;
      (** [j.REQ_k] for every [k ≠ j] *)
  clock : int;  (** the logical-clock value behind [ts.j] *)
}

val make :
  self:Sim.Pid.t -> mode:mode -> req:Clocks.Timestamp.t ->
  local_req:Clocks.Timestamp.t Sim.Pid.Map.t -> clock:int -> t

val thinking : t -> bool
(** [thinking v] is the paper's [t.j]. *)

val hungry : t -> bool
(** [hungry v] is the paper's [h.j]. *)

val eating : t -> bool
(** [eating v] is the paper's [e.j]. *)

val local_req : t -> Sim.Pid.t -> Clocks.Timestamp.t
(** [local_req v k] is [j.REQ_k]; defaults to [Timestamp.zero ~pid:k]
    when the map has no binding (no information). *)

val earlier : t -> than:Clocks.Timestamp.t -> Sim.Pid.t -> bool
(** [earlier v ~than k] is [j.REQ_k lt than] — the wrapper's test. *)

val earliest : t -> peers:Sim.Pid.t list -> bool
(** [earliest v ~peers] is the paper's [earliest.j] computed from [j]'s
    local knowledge: [∀k ∈ peers : REQ_j lt j.REQ_k]. *)

val mode_to_string : mode -> string

val pp_mode : Format.formatter -> mode -> unit

val pp : Format.formatter -> t -> unit
