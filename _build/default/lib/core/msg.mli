(** The TME wire vocabulary.

    The message kinds are part of the {e specification}, not of any
    implementation: Request Spec and Reply Spec speak of request and
    reply messages carrying request timestamps, and Lamport's program
    additionally uses release messages (which the paper classifies
    under Reply Spec's "send").  Defining the type here is what lets
    the wrapper {!Wrapper} be written against the specification alone
    and reused across implementations. *)

type t =
  | Request of Clocks.Timestamp.t  (** [send(REQ_j, j, k)] of Request Spec *)
  | Reply of Clocks.Timestamp.t    (** the reply of Reply Spec *)
  | Release of Clocks.Timestamp.t  (** Lamport's release; Reply Spec's "send" *)

val timestamp : t -> Clocks.Timestamp.t

val is_request : t -> bool
val is_reply : t -> bool
val is_release : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val corrupt : n:int -> Stdext.Rng.t -> t -> t
(** [corrupt ~n rng m] models transient message corruption: the kind
    and/or timestamp is replaced with arbitrary values (timestamp pids
    drawn from [0 .. n-1]). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
