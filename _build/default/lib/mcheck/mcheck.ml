type stats = {
  explored : int;
  frontier_peak : int;
  depth_reached : int;
  truncated : bool;
}

type 'v result =
  | Ok of stats
  | Violation of { trace : string list; witness : 'v; stats : stats }

let explore (module P : Graybox.Protocol.S) ~n ~max_depth ~max_states ~name
    predicate =
  ignore name;
  let module M = struct
    type global = { procs : P.state array; chans : Graybox.Msg.t list array }
  end in
  let open M in
  let initial = { procs = Array.init n (P.init ~n); chans = Array.make (n * n) [] } in
  let digest g = Digest.string (Marshal.to_string (g.procs, g.chans) []) in
  let views g = Array.map P.view g.procs in
  let send g ~src sends =
    if sends = [] then g
    else begin
      let chans = Array.copy g.chans in
      List.iter
        (fun (dst, m) ->
          let i = (src * n) + dst in
          chans.(i) <- chans.(i) @ [ m ])
        sends;
      { g with chans }
    end
  in
  let with_proc g p state' =
    let procs = Array.copy g.procs in
    procs.(p) <- state';
    { g with procs }
  in
  let successors g =
    let client =
      List.concat_map
        (fun p ->
          let v = P.view g.procs.(p) in
          let request =
            if Graybox.View.thinking v then
              [ ( Printf.sprintf "request(%d)" p,
                  let s, sends = P.request_cs g.procs.(p) in
                  send (with_proc g p s) ~src:p sends ) ]
            else []
          in
          let enter =
            if Graybox.View.hungry v then
              match P.try_enter g.procs.(p) with
              | Some (s, sends) ->
                [ ( Printf.sprintf "enter(%d)" p,
                    send (with_proc g p s) ~src:p sends ) ]
              | None -> []
            else []
          in
          let release =
            if Graybox.View.eating v then
              [ ( Printf.sprintf "release(%d)" p,
                  let s, sends = P.release_cs g.procs.(p) in
                  send (with_proc g p s) ~src:p sends ) ]
            else []
          in
          request @ enter @ release)
        (List.init n Fun.id)
    in
    let deliveries =
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              match g.chans.((src * n) + dst) with
              | [] -> None
              | m :: rest ->
                let chans = Array.copy g.chans in
                chans.((src * n) + dst) <- rest;
                let g' = { g with chans } in
                let s, sends = P.on_message ~from:src m g'.procs.(dst) in
                Some
                  ( Printf.sprintf "deliver(%d->%d)" src dst,
                    send (with_proc g' dst s) ~src:dst sends ))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    client @ deliveries
  in
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  Hashtbl.replace visited (digest initial) ();
  Queue.add (initial, [], 0) queue;
  let explored = ref 0 in
  let frontier_peak = ref 1 in
  let depth_reached = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  while (not (Queue.is_empty queue)) && !violation = None do
    let g, rev_trace, depth = Queue.pop queue in
    incr explored;
    if depth > !depth_reached then depth_reached := depth;
    let vs = views g in
    if not (predicate vs) then
      violation := Some (List.rev rev_trace, vs)
    else if depth >= max_depth || !explored + Queue.length queue > max_states
    then truncated := true
    else
      List.iter
        (fun (label, g') ->
          let d = digest g' in
          if not (Hashtbl.mem visited d) then begin
            Hashtbl.replace visited d ();
            Queue.add (g', label :: rev_trace, depth + 1) queue;
            frontier_peak := max !frontier_peak (Queue.length queue)
          end)
        (successors g)
  done;
  let stats =
    { explored = !explored;
      frontier_peak = !frontier_peak;
      depth_reached = !depth_reached;
      truncated = !truncated }
  in
  match !violation with
  | None -> Ok stats
  | Some (trace, witness) -> Violation { trace; witness; stats }

let check_invariant proto ~n ?(max_depth = 30) ?(max_states = 200_000) ~name p =
  explore proto ~n ~max_depth ~max_states ~name p

let me1 views =
  Array.fold_left
    (fun acc v -> if Graybox.View.eating v then acc + 1 else acc)
    0 views
  <= 1

let check_me1 proto ~n ?max_depth ?max_states () =
  check_invariant proto ~n ?max_depth ?max_states ~name:"ME1" me1
