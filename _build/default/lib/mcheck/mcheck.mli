(** Bounded exhaustive exploration of a TME protocol: every
    interleaving, not a sampled schedule.

    The simulator runs one (seeded) schedule at a time; qcheck samples
    many; this module enumerates {e all} of them, breadth-first, up to
    a depth bound, with visited-state deduplication.  The client is
    maximally nondeterministic — a thinking process may request at any
    time, an eating process may release at any time — so the explored
    behaviours over-approximate every client the harness can express.

    At small scale (two or three processes, depth a few dozen) this is
    an exhaustive safety check: if mutual exclusion can be violated
    within the bound under {e any} schedule, the checker returns a
    counterexample trace.  The test suite demonstrates discrimination:
    the shipped protocols pass, while a mutant Ricart–Agrawala that
    replies while eating (a bug this repository actually had during
    development) is caught with a concrete interleaving. *)

type stats = {
  explored : int;  (** distinct global states visited *)
  frontier_peak : int;
  depth_reached : int;
  truncated : bool;  (** hit the depth or state bound before closure *)
}

type 'v result =
  | Ok of stats
      (** no reachable violation within the bounds *)
  | Violation of { trace : string list; witness : 'v; stats : stats }
      (** [trace] is the action-label path from the initial state *)

val check_me1 :
  (module Graybox.Protocol.S) -> n:int -> ?max_depth:int -> ?max_states:int ->
  unit -> Graybox.View.t array result
(** [check_me1 proto ~n ()] explores the protocol with [n] processes
    from its initial states under every interleaving of client steps
    and FIFO deliveries, checking mutual exclusion (at most one eater)
    in every reachable state.  Default bounds: [max_depth = 30],
    [max_states = 200_000]. *)

val check_invariant :
  (module Graybox.Protocol.S) -> n:int -> ?max_depth:int -> ?max_states:int ->
  name:string -> (Graybox.View.t array -> bool) ->
  Graybox.View.t array result
(** [check_invariant proto ~n ~name p] checks an arbitrary view-level
    state predicate the same way. *)
