(** A gossiping system of resettable vector clocks under fault
    injection — the runnable form of the RVC case study.

    Each process performs local events and gossips its stamp to
    random peers; the level-1 wrapper resets ill-formed clocks
    (bumping the epoch), and epoch adoption on receive is the level-2
    reconciliation.  Without the wrapper, a single corrupted component
    spreads through merges and the system never returns to well-formed
    states; with it, recovery is a reset plus one round of gossip. *)

type params = {
  n : int;
  bound : int;
  wrapper : bool;  (** enable the level-1 reset wrapper *)
}

type outcome = {
  recovered : bool;
      (** the system returned to an internally consistent state — all
          clocks well formed — after the fault.  Epoch skew between
          processes is not a failure: resets start reconciliations
          that ride on gossip, continuously *)
  recovery_steps : int option;
      (** steps from the fault to the first stable recovered state *)
  resets : int;  (** level-1 wrapper firings *)
  ill_at_end : int;
      (** processes whose clock is ill-formed in the final state —
          [0] whenever the wrapper is enabled and has had a chance to
          run, even between epoch reconciliations *)
  final_epoch : int;  (** maximum epoch reached *)
  hb_sound : bool;
      (** oracle check: same-epoch stamp comparisons never contradict
          the true delivery causality after recovery *)
}

val run :
  ?corrupt_at:int -> params -> seed:int -> steps:int -> outcome
(** [run ?corrupt_at params ~seed ~steps] simulates the system,
    corrupting every process's clock at time [corrupt_at] (if given),
    and reports the outcome. *)
