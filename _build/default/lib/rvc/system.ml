open Stdext

type params = { n : int; bound : int; wrapper : bool }

type outcome = {
  recovered : bool;
  recovery_steps : int option;
  resets : int;
  ill_at_end : int;
  final_epoch : int;
  hb_sound : bool;
}

type node = {
  params : params;
  clock : Clock.t;
  rng : Rng.t;
  seq : int;  (** oracle: ground-truth event counter (never corrupted) *)
}

(* Message: the stamp, plus the oracle's ground-truth send sequence
   used to validate hb soundness post hoc. *)
type gossip = { stamp : Clock.stamp; sent_seq : int; sender : Sim.Pid.t }

module Node = struct
  type state = node
  type msg = gossip

  let receive ~self:_ ~from:_ g node =
    ({ node with clock = Clock.receive node.clock g.stamp; seq = node.seq + 1 }, [])

  let actions ~self node =
    let gossip_action =
      ( "gossip",
        fun node ->
          let clock, stamp = Clock.send node.clock in
          let peer =
            Rng.pick node.rng (Sim.Pid.others ~self ~n:node.params.n)
          in
          let node = { node with clock; seq = node.seq + 1 } in
          (node, [ (peer, { stamp; sent_seq = node.seq; sender = self }) ]) )
    in
    let work_action =
      ( "work",
        fun node ->
          ({ node with clock = Clock.local_event node.clock; seq = node.seq + 1 },
           []) )
    in
    let wrapper_actions =
      if node.params.wrapper && Clock.needs_reset node.clock then
        [ ("rvc-reset",
           fun node -> ({ node with clock = Clock.reset node.clock }, [])) ]
      else []
    in
    [ gossip_action; work_action ] @ wrapper_actions
end

module Run = Sim.Engine.Make (Node)

let make_engine params ~seed =
  let cfg = Run.config ~record:true ~n:params.n ~seed () in
  Run.create cfg ~init:(fun self ->
      { params;
        clock = Clock.create ~n:params.n ~bound:params.bound ~self;
        rng = Rng.create ((seed * 131) + self);
        seq = 0 })

(* hb soundness: a claimed same-epoch ordering between two stamps of
   the same sender must follow that sender's true send order. *)
let hb_sound_over trace =
  let deliveries =
    List.filter_map
      (fun (snap : (node, gossip) Sim.Trace.snapshot) ->
        match snap.event with
        | Sim.Trace.Deliver { msg; _ } -> Some msg
        | _ -> None)
      trace
  in
  List.for_all
    (fun (a : gossip) ->
      List.for_all
        (fun (b : gossip) ->
          a.sender <> b.sender
          ||
          match Clock.hb a.stamp b.stamp with
          | Some true -> a.sent_seq < b.sent_seq
          | Some false | None -> true)
        deliveries)
    deliveries

let run ?corrupt_at params ~seed ~steps =
  let engine = make_engine params ~seed in
  let plan =
    match corrupt_at with
    | None -> []
    | Some at ->
      [ Sim.Faults.at at
          (Sim.Faults.Mutate_state
             { proc = Sim.Faults.Any_proc;
               f = (fun rng node -> { node with clock = Clock.corrupt rng node.clock }) }) ]
  in
  Run.run ~plan ~steps engine;
  let trace = Run.trace engine in
  let fault_index = Sim.Trace.last_fault_index trace in
  let snaps = Array.of_list trace in
  let stable_at =
    (* first index at or after the fault where every clock is well
       formed again.  That is what the level-1 wrapper restores; epoch
       skew between processes is normal operation (each reset starts a
       reconciliation that rides on gossip), so demanding a common
       epoch at an instant would reject healthy executions. *)
    let len = Array.length snaps in
    let ok i =
      Array.for_all
        (fun node -> Clock.well_formed node.clock)
        snaps.(i).Sim.Trace.states
    in
    let base = match fault_index with Some f -> f + 1 | None -> 0 in
    let idx = ref None in
    (try
       for i = base to len - 1 do
         if ok i then begin
           idx := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    !idx
  in
  let recovery_steps =
    match stable_at, fault_index with
    | Some s, Some f when s >= f ->
      Some (snaps.(s).Sim.Trace.time - snaps.(f).Sim.Trace.time)
    | Some _, Some _ -> Some 0
    | Some _, None -> Some 0
    | None, _ -> None
  in
  let resets =
    List.length
      (List.filter
         (fun (snap : (node, gossip) Sim.Trace.snapshot) ->
           match snap.event with
           | Sim.Trace.Internal { label = "rvc-reset"; _ } -> true
           | _ -> false)
         trace)
  in
  let final_epoch =
    Array.fold_left
      (fun acc node -> max acc (Clock.epoch node.clock))
      0 (Run.states engine)
  in
  let hb_sound =
    match stable_at with
    | None -> true  (* nothing claimed *)
    | Some s -> hb_sound_over (Sim.Trace.suffix_from trace s)
  in
  let ill_at_end =
    Array.fold_left
      (fun acc node -> if Clock.well_formed node.clock then acc else acc + 1)
      0 (Run.states engine)
  in
  { recovered = stable_at <> None;
    recovery_steps;
    resets;
    ill_at_end;
    final_epoch;
    hb_sound }
