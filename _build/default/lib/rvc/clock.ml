open Clocks

type stamp = { epoch : int; vec : Vector_clock.t }

type t = {
  self : int;
  n : int;
  bound : int;
  epoch : int;
  vec : Vector_clock.t;
}

let create ~n ~bound ~self =
  if bound < 1 then invalid_arg "Rvc.create: bound must be >= 1";
  if self < 0 || self >= n then invalid_arg "Rvc.create: self out of range";
  { self; n; bound; epoch = 0; vec = Vector_clock.create ~n }

let self t = t.self
let epoch t = t.epoch
let bound t = t.bound
let vector t = t.vec

let read t = { epoch = t.epoch; vec = t.vec }

let local_event t = { t with vec = Vector_clock.tick t.vec t.self }

let send t =
  let t = local_event t in
  (t, read t)

let receive t (s : stamp) =
  if s.epoch > t.epoch then
    local_event { t with epoch = s.epoch; vec = s.vec }
  else if s.epoch = t.epoch then
    local_event { t with vec = Vector_clock.merge t.vec s.vec }
  else local_event t

let well_formed t =
  List.for_all
    (fun x -> x >= 0 && x <= t.bound)
    (Vector_clock.to_list t.vec)

let needs_reset t = not (well_formed t)

let reset t =
  { t with epoch = t.epoch + 1; vec = Vector_clock.create ~n:t.n }

let hb (a : stamp) (b : stamp) =
  if a.epoch <> b.epoch then None else Some (Vector_clock.lt a.vec b.vec)

let corrupt rng t =
  let open Stdext in
  let vec =
    List.fold_left
      (fun vec i ->
        if Rng.chance rng 0.4 then
          Vector_clock.set vec i (Rng.int_in rng (-2) (2 * t.bound))
        else vec)
      t.vec
      (List.init t.n Fun.id)
  in
  let epoch = if Rng.chance rng 0.2 then Rng.int rng (t.epoch + 2) else t.epoch in
  { t with vec; epoch }

let pp ppf t =
  Format.fprintf ppf "rvc[%d e=%d %a%s]" t.self t.epoch Vector_clock.pp t.vec
    (if well_formed t then "" else " ILL")

let pp_stamp ppf (s : stamp) =
  Format.fprintf ppf "(e=%d,%a)" s.epoch Vector_clock.pp s.vec
