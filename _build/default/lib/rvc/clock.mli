(** Resettable vector clocks: the second graybox case study.

    The paper's references [1, 4] (Arora–Kulkarni–Demirbas, PODC 2000)
    design {e resettable vector clocks} as a case study in graybox
    fault tolerance, and §2.2 describes the design method they
    exercise: a {e level-1} wrapper restores a process to an
    internally consistent state and may {e raise an exception} to
    notify other processes' wrappers.  TME needed no level-1 wrapper;
    this module shows one.

    A resettable vector clock is a vector clock whose components live
    in the bounded domain [\[0, bound\]].  The local everywhere
    specification asks each process to keep its vector well formed
    (all components in range) and to advance it by the usual
    tick/merge rules.  Overflow — or arbitrary transient corruption —
    makes the vector ill-formed; the level-1 wrapper {e resets} it to
    zero and bumps an {e epoch} number, which rides on every
    subsequent stamp.  The epoch is the exception notification: a
    receiver whose epoch is behind adopts the newer epoch and resets
    its own vector (its level-2 reconciliation), so causality tracking
    resumes consistently.  Stamps are causally comparable only within
    an epoch. *)

type stamp = { epoch : int; vec : Clocks.Vector_clock.t }

type t

val create : n:int -> bound:int -> self:int -> t
(** [create ~n ~bound ~self] is a fresh clock for process [self] of
    [n], with component domain [\[0, bound\]].
    @raise Invalid_argument if [bound < 1] or [self] out of range. *)

val self : t -> int
val epoch : t -> int
val bound : t -> int
val vector : t -> Clocks.Vector_clock.t

val read : t -> stamp
(** [read t] is the current stamp (no advance). *)

val local_event : t -> t
(** [local_event t] ticks the own component.  The result may overflow
    past [bound]; overflow makes the state ill-formed and it is the
    {e wrapper's} job (not this function's) to reset — that division
    of labour is the graybox point. *)

val send : t -> t * stamp
(** [send t] ticks and returns the stamp to attach to the message. *)

val receive : t -> stamp -> t
(** [receive t s] reconciles epochs and merges:
    - [s.epoch > epoch t]: adopt [s.epoch] and restart from [s.vec]
      (the level-2 reaction to another process's reset exception);
    - equal epochs: componentwise max, then tick;
    - [s.epoch < epoch t]: the stamp is stale — tick only. *)

val well_formed : t -> bool
(** All components within [\[0, bound\]] — the internal-consistency
    predicate of the local everywhere specification. *)

val needs_reset : t -> bool
(** The level-1 wrapper's guard: [not (well_formed t)]. *)

val reset : t -> t
(** The level-1 wrapper's action: zero the vector and advance the
    epoch.  Always yields a well-formed state with a strictly larger
    epoch. *)

val hb : stamp -> stamp -> bool option
(** [hb a b] is [Some true]/[Some false] when both stamps belong to
    the same epoch (ordinary vector-clock comparison), [None] when the
    epochs differ (a reset intervened; causality is not claimed). *)

val corrupt : Stdext.Rng.t -> t -> t
(** Transient arbitrary corruption of vector components and/or epoch
    (fault injection hook). *)

val pp : Format.formatter -> t -> unit
val pp_stamp : Format.formatter -> stamp -> unit
