lib/rvc/system.mli:
