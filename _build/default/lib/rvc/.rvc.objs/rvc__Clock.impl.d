lib/rvc/clock.ml: Clocks Format Fun List Rng Stdext Vector_clock
