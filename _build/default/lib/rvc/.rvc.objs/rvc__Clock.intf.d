lib/rvc/clock.mli: Clocks Format Stdext
