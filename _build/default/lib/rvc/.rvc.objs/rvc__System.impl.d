lib/rvc/system.ml: Array Clock List Rng Sim Stdext
