(** Schema-typed variable stores: guarded-command process state.

    The paper writes implementations in Dijkstra's guarded-command
    style over named variables ([REQ_j], [j.REQ_k], [state.j], …).
    This module gives that style a runtime: a process's state is a
    {e store} mapping variable names to values, constrained by a
    declared {e schema} of per-variable domains.

    The payoff is principled fault injection.  "Transiently and
    arbitrarily corrupted state" means each variable takes an
    arbitrary value {e of its domain} — corrupting an [int] into a
    string is not a transient fault, it is a type error.  {!corrupt}
    derives exactly that from the schema, including the structural
    constraint that an own-request timestamp carries the owner's
    process id (domain {!Domain.D_own_ts}). *)

module Domain : sig
  type t =
    | D_bool
    | D_nat of int
        (** non-negative integers; the bound only caps corruption draws
            (legitimate values grow without bound, e.g. logical clocks) *)
    | D_mode  (** thinking / hungry / eating *)
    | D_own_ts  (** a timestamp stamped by the owner's clock *)
    | D_peer_ts_map  (** one timestamp per peer (any pid inside) *)
    | D_pid_set  (** a subset of the peers *)

  val pp : Format.formatter -> t -> unit
end

module Value : sig
  type t =
    | V_bool of bool
    | V_nat of int
    | V_mode of Graybox.View.mode
    | V_own_ts of Clocks.Timestamp.t
    | V_peer_ts_map of Clocks.Timestamp.t Sim.Pid.Map.t
    | V_pid_set of Sim.Pid.Set.t

  val in_domain : self:Sim.Pid.t -> n:int -> Domain.t -> t -> bool
  (** [in_domain ~self ~n d v] checks [v] inhabits [d] for a process
      [self] among [n] (own timestamps must carry pid [self]; map keys
      and set members must be peers). *)

  val random : Stdext.Rng.t -> self:Sim.Pid.t -> n:int -> Domain.t -> t
  (** [random rng ~self ~n d] draws an arbitrary inhabitant of [d] —
      the transient-corruption generator. *)

  val pp : Format.formatter -> t -> unit
end

type schema = (string * Domain.t) list

type t
(** A store: named values conforming to a schema. *)

val create : schema -> self:Sim.Pid.t -> n:int -> (string * Value.t) list -> t
(** [create schema ~self ~n bindings] validates that the bindings
    cover the schema exactly and every value inhabits its domain.
    @raise Invalid_argument otherwise. *)

val self : t -> Sim.Pid.t
val size : t -> int
(** [size t] is [n], the number of processes. *)

val schema : t -> schema

(** {2 Typed accessors} — each raises [Invalid_argument] on a missing
    variable or a domain mismatch, which in a guarded-command program
    is a programming error, not a runtime condition. *)

val get_bool : t -> string -> bool
val set_bool : t -> string -> bool -> t

val get_nat : t -> string -> int
val set_nat : t -> string -> int -> t

val get_mode : t -> string -> Graybox.View.mode
val set_mode : t -> string -> Graybox.View.mode -> t

val get_ts : t -> string -> Clocks.Timestamp.t
val set_ts : t -> string -> Clocks.Timestamp.t -> t
(** Own timestamps: [set_ts] enforces the owner-pid constraint. *)

val get_map : t -> string -> Clocks.Timestamp.t Sim.Pid.Map.t
val set_map : t -> string -> Clocks.Timestamp.t Sim.Pid.Map.t -> t
val map_entry : t -> string -> Sim.Pid.t -> Clocks.Timestamp.t
val set_map_entry : t -> string -> Sim.Pid.t -> Clocks.Timestamp.t -> t

val get_set : t -> string -> Sim.Pid.Set.t
val set_set : t -> string -> Sim.Pid.Set.t -> t
val add_to_set : t -> string -> Sim.Pid.t -> t
val remove_from_set : t -> string -> Sim.Pid.t -> t

val corrupt : Stdext.Rng.t -> t -> t
(** [corrupt rng t] replaces a random subset of the variables with
    arbitrary values of their domains — the schema-derived transient
    fault. *)

val well_formed : t -> bool
(** [well_formed t]: every value inhabits its domain (holds by
    construction; exposed for property tests). *)

val pp : Format.formatter -> t -> unit
