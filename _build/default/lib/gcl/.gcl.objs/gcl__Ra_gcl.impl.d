lib/gcl/ra_gcl.ml: Clocks Graybox List Sim Store Timestamp
