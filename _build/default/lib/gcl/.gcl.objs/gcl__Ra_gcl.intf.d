lib/gcl/ra_gcl.mli: Graybox Store
