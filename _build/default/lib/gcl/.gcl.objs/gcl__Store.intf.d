lib/gcl/store.mli: Clocks Format Graybox Sim Stdext
