lib/gcl/store.ml: Clocks Format Graybox List Map Printf Rng Sim Stdext String Timestamp
