(** The paper's RA_ME program text, transliterated over a
    guarded-command variable store.

    This is a third, structurally independent implementation of Lspec:
    its state is a schema-typed {!Store.t} with exactly the paper's
    variables —

    {v  state.j ∈ {t,h,e},  lc.j,  REQ_j,  j.REQ_k,  received(j.REQ_k)  v}

    — its fault hook is the {e generic} schema-derived corruption
    ({!Store.corrupt}; nothing protocol-specific), and the graybox
    wrapper stabilizes it unchanged (checked in the test suite and
    the reusability experiment).  Registered as ["ra-gcl"] in
    {!Tme.Scenarios}. *)

include Graybox.Protocol.S

val store : state -> Store.t
(** [store s] exposes the underlying variable store (for inspection
    and tests). *)

val schema : Store.schema
(** The declared variable schema. *)
