(* Tests for timestamps (the paper's lt total order), Lamport logical
   clocks (Timestamp Spec: hb implies lt), and vector clocks (the
   oracle that characterises hb exactly). *)

open Clocks

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_ts =
  QCheck2.Gen.(
    let* clock = 0 -- 50 in
    let* pid = 0 -- 7 in
    return (Timestamp.make ~clock ~pid))

(* ------------------------------------------------------------------ *)
(* Timestamp                                                           *)

let ts c p = Timestamp.make ~clock:c ~pid:p

let test_ts_lt_clock_order () =
  Alcotest.(check bool) "clock decides" true (Timestamp.lt (ts 1 5) (ts 2 0));
  Alcotest.(check bool) "clock decides rev" false
    (Timestamp.lt (ts 2 0) (ts 1 5))

let test_ts_lt_pid_tiebreak () =
  Alcotest.(check bool) "pid breaks ties" true (Timestamp.lt (ts 3 1) (ts 3 2));
  Alcotest.(check bool) "not reflexive" false (Timestamp.lt (ts 3 1) (ts 3 1))

let test_ts_zero () =
  let z = Timestamp.zero ~pid:4 in
  Alcotest.(check int) "clock" 0 z.Timestamp.clock;
  Alcotest.(check int) "pid" 4 z.Timestamp.pid

let test_ts_max_min () =
  Alcotest.(check bool) "max" true
    (Timestamp.equal (Timestamp.max (ts 1 0) (ts 2 0)) (ts 2 0));
  Alcotest.(check bool) "min" true
    (Timestamp.equal (Timestamp.min (ts 1 0) (ts 2 0)) (ts 1 0))

let test_ts_to_string () =
  Alcotest.(check string) "format" "7.2" (Timestamp.to_string (ts 7 2))

let prop_ts_total_order =
  qtest "lt is a total order (trichotomy)"
    QCheck2.Gen.(pair gen_ts gen_ts)
    (fun (a, b) ->
      let l = Timestamp.lt a b and g = Timestamp.lt b a in
      let e = Timestamp.equal a b in
      (l && (not g) && not e)
      || (g && (not l) && not e)
      || (e && (not l) && not g))

let prop_ts_transitive =
  qtest "lt is transitive" QCheck2.Gen.(triple gen_ts gen_ts gen_ts)
    (fun (a, b, c) ->
      (not (Timestamp.lt a b && Timestamp.lt b c)) || Timestamp.lt a c)

let prop_ts_compare_consistent =
  qtest "compare consistent with lt" QCheck2.Gen.(pair gen_ts gen_ts)
    (fun (a, b) -> Timestamp.lt a b = (Timestamp.compare a b < 0))

let prop_ts_leq =
  qtest "leq is lt or equal" QCheck2.Gen.(pair gen_ts gen_ts)
    (fun (a, b) -> Timestamp.leq a b = (Timestamp.lt a b || Timestamp.equal a b))

(* ------------------------------------------------------------------ *)
(* Logical clock                                                       *)

let test_lc_create () =
  let c = Logical_clock.create ~pid:3 in
  Alcotest.(check int) "pid" 3 (Logical_clock.pid c);
  Alcotest.(check int) "now" 0 (Logical_clock.now c);
  Alcotest.(check bool) "read" true
    (Timestamp.equal (Logical_clock.read c) (ts 0 3))

let test_lc_tick () =
  let c = Logical_clock.create ~pid:1 in
  let c, t1 = Logical_clock.tick c in
  let _, t2 = Logical_clock.tick c in
  Alcotest.(check bool) "strictly increasing" true (Timestamp.lt t1 t2);
  Alcotest.(check int) "first tick" 1 t1.Timestamp.clock

let test_lc_witness () =
  let c = Logical_clock.create ~pid:1 in
  let c = Logical_clock.witness c (ts 10 0) in
  Alcotest.(check int) "pulled forward" 10 (Logical_clock.now c);
  let c = Logical_clock.witness c (ts 4 0) in
  Alcotest.(check int) "never backward" 10 (Logical_clock.now c)

let test_lc_receive_event () =
  let c = Logical_clock.create ~pid:1 in
  let _, t = Logical_clock.receive_event c (ts 10 0) in
  Alcotest.(check int) "receive rule: max+1" 11 t.Timestamp.clock;
  Alcotest.(check int) "own pid stamped" 1 t.Timestamp.pid

let test_lc_with_now () =
  let c = Logical_clock.with_now (Logical_clock.create ~pid:2) 42 in
  Alcotest.(check int) "forced" 42 (Logical_clock.now c)

(* The Timestamp Spec: simulate two processes exchanging events and
   check every message's send stamp is lt its receive stamp. *)
let prop_lc_hb_respected =
  qtest "hb implies lt across a random exchange"
    QCheck2.Gen.(list_size (1 -- 40) (pair bool bool))
    (fun script ->
      let a = ref (Logical_clock.create ~pid:0) in
      let b = ref (Logical_clock.create ~pid:1) in
      List.for_all
        (fun (a_sends, do_local) ->
          let src, dst = if a_sends then (a, b) else (b, a) in
          if do_local then begin
            let c, _ = Logical_clock.tick !src in
            src := c
          end;
          let c, sent = Logical_clock.tick !src in
          src := c;
          let c, received = Logical_clock.receive_event !dst sent in
          dst := c;
          Timestamp.lt sent received)
        script)

(* ------------------------------------------------------------------ *)
(* Vector clock                                                        *)

let test_vc_create () =
  let v = Vector_clock.create ~n:3 in
  Alcotest.(check (list int)) "zero" [ 0; 0; 0 ] (Vector_clock.to_list v);
  Alcotest.(check int) "dim" 3 (Vector_clock.dim v)

let test_vc_tick_and_get () =
  let v = Vector_clock.tick (Vector_clock.create ~n:3) 1 in
  Alcotest.(check int) "ticked" 1 (Vector_clock.get v 1);
  Alcotest.(check int) "others" 0 (Vector_clock.get v 0)

let test_vc_merge () =
  let a = Vector_clock.of_list [ 1; 5; 0 ] in
  let b = Vector_clock.of_list [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "pointwise max" [ 2; 5; 4 ]
    (Vector_clock.to_list (Vector_clock.merge a b))

let test_vc_orders () =
  let a = Vector_clock.of_list [ 1; 2 ] in
  let b = Vector_clock.of_list [ 2; 2 ] in
  let c = Vector_clock.of_list [ 0; 3 ] in
  Alcotest.(check bool) "leq" true (Vector_clock.leq a b);
  Alcotest.(check bool) "lt" true (Vector_clock.lt a b);
  Alcotest.(check bool) "not lt self" false (Vector_clock.lt a a);
  Alcotest.(check bool) "concurrent" true (Vector_clock.concurrent a c)

let test_vc_set () =
  let v = Vector_clock.set (Vector_clock.create ~n:2) 0 9 in
  Alcotest.(check int) "set" 9 (Vector_clock.get v 0)

let test_vc_bad_dim () =
  Alcotest.check_raises "merge mismatch"
    (Invalid_argument "Vector_clock.merge: dimension mismatch") (fun () ->
      ignore
        (Vector_clock.merge (Vector_clock.create ~n:2) (Vector_clock.create ~n:3)))

let gen_vc =
  QCheck2.Gen.(
    let* xs = list_size (return 4) (0 -- 10) in
    return (Vector_clock.of_list xs))

let prop_vc_merge_commutative =
  qtest "merge commutative" QCheck2.Gen.(pair gen_vc gen_vc) (fun (a, b) ->
      Vector_clock.equal (Vector_clock.merge a b) (Vector_clock.merge b a))

let prop_vc_merge_idempotent =
  qtest "merge idempotent" gen_vc (fun a ->
      Vector_clock.equal (Vector_clock.merge a a) a)

let prop_vc_merge_upper_bound =
  qtest "merge is an upper bound" QCheck2.Gen.(pair gen_vc gen_vc)
    (fun (a, b) ->
      let m = Vector_clock.merge a b in
      Vector_clock.leq a m && Vector_clock.leq b m)

let prop_vc_tick_increases =
  qtest "tick strictly increases" QCheck2.Gen.(pair gen_vc (0 -- 3))
    (fun (v, i) -> Vector_clock.lt v (Vector_clock.tick v i))

let prop_vc_partial_order_antisym =
  qtest "leq antisymmetric" QCheck2.Gen.(pair gen_vc gen_vc) (fun (a, b) ->
      (not (Vector_clock.leq a b && Vector_clock.leq b a))
      || Vector_clock.equal a b)

let () =
  Alcotest.run "clocks"
    [ ( "timestamp",
        [ Alcotest.test_case "clock order" `Quick test_ts_lt_clock_order;
          Alcotest.test_case "pid tiebreak" `Quick test_ts_lt_pid_tiebreak;
          Alcotest.test_case "zero" `Quick test_ts_zero;
          Alcotest.test_case "max/min" `Quick test_ts_max_min;
          Alcotest.test_case "to_string" `Quick test_ts_to_string;
          prop_ts_total_order;
          prop_ts_transitive;
          prop_ts_compare_consistent;
          prop_ts_leq ] );
      ( "logical_clock",
        [ Alcotest.test_case "create" `Quick test_lc_create;
          Alcotest.test_case "tick" `Quick test_lc_tick;
          Alcotest.test_case "witness" `Quick test_lc_witness;
          Alcotest.test_case "receive rule" `Quick test_lc_receive_event;
          Alcotest.test_case "with_now" `Quick test_lc_with_now;
          prop_lc_hb_respected ] );
      ( "vector_clock",
        [ Alcotest.test_case "create" `Quick test_vc_create;
          Alcotest.test_case "tick/get" `Quick test_vc_tick_and_get;
          Alcotest.test_case "merge" `Quick test_vc_merge;
          Alcotest.test_case "orders" `Quick test_vc_orders;
          Alcotest.test_case "set" `Quick test_vc_set;
          Alcotest.test_case "bad dim" `Quick test_vc_bad_dim;
          prop_vc_merge_commutative;
          prop_vc_merge_idempotent;
          prop_vc_merge_upper_bound;
          prop_vc_tick_increases;
          prop_vc_partial_order_antisym ] ) ]
