(* Tests for the resettable-vector-clock extension: the clock algebra,
   the level-1 reset wrapper with its epoch "exception", and the
   gossiping system's stabilization under corruption. *)

open Clocks

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Clock algebra                                                       *)

let test_create_well_formed () =
  let c = Rvc.Clock.create ~n:3 ~bound:10 ~self:1 in
  Alcotest.(check bool) "well formed" true (Rvc.Clock.well_formed c);
  Alcotest.(check int) "epoch 0" 0 (Rvc.Clock.epoch c);
  Alcotest.(check int) "self" 1 (Rvc.Clock.self c);
  Alcotest.(check int) "bound" 10 (Rvc.Clock.bound c)

let test_create_validates () =
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rvc.create: bound must be >= 1") (fun () ->
      ignore (Rvc.Clock.create ~n:2 ~bound:0 ~self:0));
  Alcotest.check_raises "bad self"
    (Invalid_argument "Rvc.create: self out of range") (fun () ->
      ignore (Rvc.Clock.create ~n:2 ~bound:5 ~self:2))

let test_local_event_ticks_self () =
  let c = Rvc.Clock.create ~n:3 ~bound:10 ~self:1 in
  let c = Rvc.Clock.local_event c in
  Alcotest.(check int) "own component" 1 (Vector_clock.get (Rvc.Clock.vector c) 1);
  Alcotest.(check int) "others zero" 0 (Vector_clock.get (Rvc.Clock.vector c) 0)

let test_overflow_makes_ill_formed () =
  let c = ref (Rvc.Clock.create ~n:2 ~bound:3 ~self:0) in
  for _ = 1 to 3 do
    c := Rvc.Clock.local_event !c
  done;
  Alcotest.(check bool) "at bound still fine" true (Rvc.Clock.well_formed !c);
  c := Rvc.Clock.local_event !c;
  Alcotest.(check bool) "overflow ill-formed" false (Rvc.Clock.well_formed !c);
  Alcotest.(check bool) "wrapper guard fires" true (Rvc.Clock.needs_reset !c)

let test_reset_bumps_epoch_and_zeroes () =
  let c = Rvc.Clock.create ~n:2 ~bound:1 ~self:0 in
  let c = Rvc.Clock.local_event (Rvc.Clock.local_event c) in
  Alcotest.(check bool) "ill" true (Rvc.Clock.needs_reset c);
  let c' = Rvc.Clock.reset c in
  Alcotest.(check bool) "well formed" true (Rvc.Clock.well_formed c');
  Alcotest.(check int) "epoch bumped" 1 (Rvc.Clock.epoch c');
  Alcotest.(check (list int)) "zeroed" [ 0; 0 ]
    (Vector_clock.to_list (Rvc.Clock.vector c'))

let test_receive_same_epoch_merges () =
  let a = Rvc.Clock.create ~n:2 ~bound:10 ~self:0 in
  let b = Rvc.Clock.create ~n:2 ~bound:10 ~self:1 in
  let b = Rvc.Clock.local_event (Rvc.Clock.local_event b) in
  let a = Rvc.Clock.receive a (Rvc.Clock.read b) in
  Alcotest.(check int) "merged b's component" 2
    (Vector_clock.get (Rvc.Clock.vector a) 1);
  Alcotest.(check int) "own ticked" 1 (Vector_clock.get (Rvc.Clock.vector a) 0)

let test_receive_newer_epoch_adopts () =
  let a = Rvc.Clock.create ~n:2 ~bound:10 ~self:0 in
  let a = Rvc.Clock.local_event a in
  let b = Rvc.Clock.reset (Rvc.Clock.create ~n:2 ~bound:10 ~self:1) in
  let b, stamp = Rvc.Clock.send b in
  ignore b;
  let a = Rvc.Clock.receive a stamp in
  Alcotest.(check int) "epoch adopted" 1 (Rvc.Clock.epoch a);
  (* a restarted from the stamp: old component gone *)
  Alcotest.(check int) "restarted" 1 (Vector_clock.get (Rvc.Clock.vector a) 0)

let test_receive_stale_epoch_ignored () =
  let a = Rvc.Clock.reset (Rvc.Clock.create ~n:2 ~bound:10 ~self:0) in
  let stale : Rvc.Clock.stamp =
    { epoch = 0; vec = Vector_clock.of_list [ 9; 9 ] }
  in
  let a = Rvc.Clock.receive a stale in
  Alcotest.(check int) "content ignored" 0
    (Vector_clock.get (Rvc.Clock.vector a) 1)

let test_hb_same_epoch () =
  let a : Rvc.Clock.stamp = { epoch = 2; vec = Vector_clock.of_list [ 1; 0 ] } in
  let b : Rvc.Clock.stamp = { epoch = 2; vec = Vector_clock.of_list [ 1; 1 ] } in
  Alcotest.(check (option bool)) "ordered" (Some true) (Rvc.Clock.hb a b);
  Alcotest.(check (option bool)) "not reversed" (Some false) (Rvc.Clock.hb b a)

let test_hb_cross_epoch_incomparable () =
  let a : Rvc.Clock.stamp = { epoch = 1; vec = Vector_clock.of_list [ 9; 9 ] } in
  let b : Rvc.Clock.stamp = { epoch = 2; vec = Vector_clock.of_list [ 0; 0 ] } in
  Alcotest.(check (option bool)) "incomparable" None (Rvc.Clock.hb a b)

let prop_reset_always_recovers =
  qtest "reset always yields a well-formed clock with a newer epoch"
    QCheck2.Gen.small_int
    (fun seed ->
      let rng = Stdext.Rng.create seed in
      let c = Rvc.Clock.corrupt rng (Rvc.Clock.create ~n:4 ~bound:8 ~self:2) in
      let c' = Rvc.Clock.reset c in
      Rvc.Clock.well_formed c' && Rvc.Clock.epoch c' > Rvc.Clock.epoch c - 1)

let prop_receive_preserves_well_formedness_under_bound =
  qtest "same-epoch receive keeps components at the max of inputs"
    QCheck2.Gen.(list_size (1 -- 10) (0 -- 3))
    (fun ticks ->
      let a = ref (Rvc.Clock.create ~n:4 ~bound:100 ~self:0) in
      let b = ref (Rvc.Clock.create ~n:4 ~bound:100 ~self:1) in
      List.iter
        (fun k ->
          if k mod 2 = 0 then a := Rvc.Clock.local_event !a
          else b := Rvc.Clock.local_event !b)
        ticks;
      let merged = Rvc.Clock.receive !a (Rvc.Clock.read !b) in
      Vector_clock.leq (Rvc.Clock.vector !b) (Rvc.Clock.vector merged))

(* ------------------------------------------------------------------ *)
(* System stabilization                                                *)

let params ~wrapper = { Rvc.System.n = 4; bound = 40; wrapper }

let test_system_wrapped_recovers_from_corruption () =
  let o =
    Rvc.System.run ~corrupt_at:300 (params ~wrapper:true) ~seed:5 ~steps:4000
  in
  Alcotest.(check bool) "recovered" true o.Rvc.System.recovered;
  Alcotest.(check bool) "used resets" true (o.Rvc.System.resets > 0);
  Alcotest.(check bool) "hb sound after recovery" true o.Rvc.System.hb_sound

let test_system_unwrapped_stays_broken () =
  let o =
    Rvc.System.run ~corrupt_at:300 (params ~wrapper:false) ~seed:5 ~steps:4000
  in
  Alcotest.(check bool) "not recovered" false o.Rvc.System.recovered;
  Alcotest.(check int) "no resets available" 0 o.Rvc.System.resets;
  Alcotest.(check bool) "still ill-formed at end" true (o.Rvc.System.ill_at_end > 0)

let test_system_fault_free_overflow_recycles () =
  (* even without injected faults, ticks overflow the bound and the
     wrapper must keep recycling epochs *)
  let o = Rvc.System.run (params ~wrapper:true) ~seed:9 ~steps:6000 in
  Alcotest.(check int) "no ill-formed clocks at end" 0 o.Rvc.System.ill_at_end;
  Alcotest.(check bool) "epochs advanced" true (o.Rvc.System.final_epoch > 0);
  Alcotest.(check bool) "resets happened" true (o.Rvc.System.resets > 0)

let test_system_deterministic () =
  let run () =
    Rvc.System.run ~corrupt_at:200 (params ~wrapper:true) ~seed:7 ~steps:2000
  in
  Alcotest.(check bool) "same outcome" true (run () = run ())

let prop_system_storms_recover =
  qtest ~count:6 "wrapped RVC system recovers from random corruption"
    QCheck2.Gen.(pair (1 -- 500) (100 -- 800))
    (fun (seed, at) ->
      (Rvc.System.run ~corrupt_at:at (params ~wrapper:true) ~seed ~steps:6000)
        .Rvc.System.recovered)

let () =
  Alcotest.run "rvc"
    [ ( "clock",
        [ Alcotest.test_case "create" `Quick test_create_well_formed;
          Alcotest.test_case "validates" `Quick test_create_validates;
          Alcotest.test_case "local event" `Quick test_local_event_ticks_self;
          Alcotest.test_case "overflow" `Quick test_overflow_makes_ill_formed;
          Alcotest.test_case "reset" `Quick test_reset_bumps_epoch_and_zeroes;
          Alcotest.test_case "receive merge" `Quick test_receive_same_epoch_merges;
          Alcotest.test_case "receive adopt" `Quick test_receive_newer_epoch_adopts;
          Alcotest.test_case "receive stale" `Quick test_receive_stale_epoch_ignored;
          Alcotest.test_case "hb same epoch" `Quick test_hb_same_epoch;
          Alcotest.test_case "hb cross epoch" `Quick test_hb_cross_epoch_incomparable;
          prop_reset_always_recovers;
          prop_receive_preserves_well_formedness_under_bound ] );
      ( "system",
        [ Alcotest.test_case "wrapped recovers" `Quick
            test_system_wrapped_recovers_from_corruption;
          Alcotest.test_case "unwrapped broken" `Quick
            test_system_unwrapped_stays_broken;
          Alcotest.test_case "overflow recycling" `Quick
            test_system_fault_free_overflow_recycles;
          Alcotest.test_case "deterministic" `Quick test_system_deterministic;
          prop_system_storms_recover ] ) ]
