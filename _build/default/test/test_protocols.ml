(* Unit tests for the TME protocol implementations, exercised directly
   through the Protocol.S interface (no simulator): state-machine
   cycles, message handling from arbitrary states (the everywhere-
   implementation obligation), view projections, and the differences
   between the modified and unmodified Lamport variants. *)

open Graybox
open Clocks

let ts c p = Timestamp.make ~clock:c ~pid:p

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Drive a protocol through a full local cycle, faking the peers'
   answers, and return the trail of views. *)
module Drive (P : Protocol.S) = struct
  let init n self = P.init ~n self

  let mode s = (P.view s).View.mode

  let dsts sends = List.sort compare (List.map fst sends)

  let payloads sends = List.map snd sends
end

module DR = Drive (Tme.Ra_me)
module DL = Drive (Tme.Lamport_me)
module DU = Drive (Tme.Lamport_unmodified)
module DC = Drive (Tme.Central_me)

(* ------------------------------------------------------------------ *)
(* Ricart-Agrawala                                                      *)

let test_ra_init_view () =
  let s = DR.init 3 1 in
  let v = Tme.Ra_me.view s in
  Alcotest.(check bool) "thinking" true (View.thinking v);
  Alcotest.(check bool) "req zero" true
    (Timestamp.equal v.View.req (Timestamp.zero ~pid:1));
  Alcotest.(check int) "clock" 0 v.View.clock;
  Alcotest.(check bool) "local copies zero" true
    (Timestamp.equal (View.local_req v 0) (Timestamp.zero ~pid:0))

let test_ra_request_broadcasts () =
  let s = DR.init 3 0 in
  let s, sends = Tme.Ra_me.request_cs s in
  Alcotest.(check (list int)) "to both peers" [ 1; 2 ] (DR.dsts sends);
  Alcotest.(check bool) "all requests" true
    (List.for_all Msg.is_request (DR.payloads sends));
  Alcotest.(check string) "hungry" "h" (View.mode_to_string (DR.mode s));
  let v = Tme.Ra_me.view s in
  Alcotest.(check bool) "REQ stamped" true (v.View.req.Timestamp.clock > 0)

let test_ra_cannot_enter_without_grants () =
  let s = DR.init 3 0 in
  let s, _ = Tme.Ra_me.request_cs s in
  Alcotest.(check bool) "blocked" true (Tme.Ra_me.try_enter s = None)

let test_ra_full_cycle_with_replies () =
  let s = DR.init 3 0 in
  let s, sends = Tme.Ra_me.request_cs s in
  let req = (Tme.Ra_me.view s).View.req in
  Alcotest.(check int) "2 requests" 2 (List.length sends);
  (* peers reply with later timestamps *)
  let s, out1 = Tme.Ra_me.on_message ~from:1 (Msg.Reply (ts 5 1)) s in
  let s, out2 = Tme.Ra_me.on_message ~from:2 (Msg.Reply (ts 6 2)) s in
  Alcotest.(check int) "no sends on reply" 0 (List.length (out1 @ out2));
  (match Tme.Ra_me.try_enter s with
   | Some (s, sends) ->
     Alcotest.(check int) "entry sends nothing" 0 (List.length sends);
     Alcotest.(check string) "eating" "e" (View.mode_to_string (DR.mode s));
     let s, rel_sends = Tme.Ra_me.release_cs s in
     Alcotest.(check string) "thinking again" "t"
       (View.mode_to_string (DR.mode s));
     (* nobody was deferred *)
     Alcotest.(check int) "no deferred replies" 0 (List.length rel_sends)
   | None -> Alcotest.fail "expected entry after all replies");
  ignore req

let test_ra_defers_later_request_and_replies_on_release () =
  let s = DR.init 2 0 in
  let s, _ = Tme.Ra_me.request_cs s in
  let my_req = (Tme.Ra_me.view s).View.req in
  (* peer 1's request is later than mine: defer *)
  let later = ts (my_req.Timestamp.clock + 5) 1 in
  let s, sends = Tme.Ra_me.on_message ~from:1 (Msg.Request later) s in
  Alcotest.(check int) "deferred: no reply yet" 0 (List.length sends);
  (* ...but I can now enter: the later request is an implicit grant *)
  match Tme.Ra_me.try_enter s with
  | Some (s, _) ->
    let _, sends = Tme.Ra_me.release_cs s in
    (match sends with
     | [ (1, Msg.Reply _) ] -> ()
     | _ -> Alcotest.fail "release must send the deferred reply to 1")
  | None -> Alcotest.fail "later request should implicitly grant"

let test_ra_replies_immediately_when_thinking () =
  let s = DR.init 2 0 in
  let s, sends = Tme.Ra_me.on_message ~from:1 (Msg.Request (ts 3 1)) s in
  (match sends with
   | [ (1, Msg.Reply r) ] ->
     Alcotest.(check bool) "reply postdates request" true (Timestamp.lt (ts 3 1) r)
   | _ -> Alcotest.fail "thinking receiver must reply at once");
  (* CS Release Spec: REQ tracked the receive event *)
  let v = Tme.Ra_me.view s in
  Alcotest.(check bool) "REQ = ts.j while thinking" true
    (Timestamp.equal v.View.req (ts v.View.clock 0))

let test_ra_replies_immediately_to_earlier_request () =
  let s = DR.init 2 0 in
  let s, _ = Tme.Ra_me.request_cs s in
  let my_req = (Tme.Ra_me.view s).View.req in
  let earlier = ts 0 1 in
  Alcotest.(check bool) "earlier indeed" true (Timestamp.lt earlier my_req);
  let _, sends = Tme.Ra_me.on_message ~from:1 (Msg.Request earlier) s in
  match sends with
  | [ (1, Msg.Reply _) ] -> ()
  | _ -> Alcotest.fail "earlier request must be granted immediately"

let test_ra_defers_while_eating () =
  let s = DR.init 2 0 in
  let s, _ = Tme.Ra_me.request_cs s in
  let s, _ = Tme.Ra_me.on_message ~from:1 (Msg.Reply (ts 50 1)) s in
  match Tme.Ra_me.try_enter s with
  | None -> Alcotest.fail "expected entry"
  | Some (s, _) ->
    (* a later request while eating must NOT be answered *)
    let s, sends =
      Tme.Ra_me.on_message ~from:1 (Msg.Request (ts 60 1)) s
    in
    Alcotest.(check int) "deferred" 0 (List.length sends);
    let _, rel = Tme.Ra_me.release_cs s in
    (match rel with
     | [ (1, Msg.Reply _) ] -> ()
     | _ -> Alcotest.fail "release must answer the deferred request")

let test_ra_stale_reply_ignored () =
  let s = DR.init 2 0 in
  let s, _ = Tme.Ra_me.request_cs s in
  let my_req = (Tme.Ra_me.view s).View.req in
  (* a duplicated pre-fault reply with an old timestamp must not grant *)
  let s, _ = Tme.Ra_me.on_message ~from:1 (Msg.Reply (ts 0 1)) s in
  let v = Tme.Ra_me.view s in
  Alcotest.(check bool) "no spurious grant" true
    (Timestamp.lt (View.local_req v 1) my_req);
  Alcotest.(check bool) "still blocked" true (Tme.Ra_me.try_enter s = None)

let test_ra_request_overwrites_local_copy_downward () =
  (* Reply Spec's correction semantics: a fresh request from the owner
     replaces an arbitrarily corrupted copy, even downward *)
  let s = DR.init 2 0 in
  let s, _ = Tme.Ra_me.on_message ~from:1 (Msg.Reply (ts 90 1)) s in
  let s, _ = Tme.Ra_me.on_message ~from:1 (Msg.Request (ts 2 1)) s in
  let v = Tme.Ra_me.view s in
  Alcotest.(check bool) "copy corrected" true
    (Timestamp.equal (View.local_req v 1) (ts 2 1))

let test_ra_corrupt_reset_total () =
  let rng = Stdext.Rng.create 5 in
  let s = Tme.Ra_me.corrupt rng (DR.init 3 0) in
  (* whatever the corruption, the protocol still answers messages *)
  let _, _ = Tme.Ra_me.on_message ~from:1 (Msg.Request (ts 1 1)) s in
  let r = Tme.Ra_me.reset ~n:3 0 in
  Alcotest.(check string) "reset is improper (hungry)" "h"
    (View.mode_to_string (Tme.Ra_me.view r).View.mode)

(* ------------------------------------------------------------------ *)
(* Lamport (modified)                                                   *)

let test_lamport_request_and_grant_cycle () =
  let s = DL.init 2 0 in
  let s, sends = Tme.Lamport_me.request_cs s in
  Alcotest.(check (list int)) "broadcast" [ 1 ] (DL.dsts sends);
  Alcotest.(check bool) "blocked without grant" true
    (Tme.Lamport_me.try_enter s = None);
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Reply (ts 50 1)) s in
  match Tme.Lamport_me.try_enter s with
  | Some (s, _) ->
    let _, rel = Tme.Lamport_me.release_cs s in
    Alcotest.(check bool) "release broadcast" true
      (List.for_all (fun (_, m) -> Msg.is_release m) rel);
    Alcotest.(check (list int)) "to peers" [ 1 ] (DL.dsts rel)
  | None -> Alcotest.fail "grant + own head must allow entry"

let test_lamport_receiver_always_replies () =
  let s = DL.init 2 0 in
  let s, _ = Tme.Lamport_me.request_cs s in
  (* even a hungry receiver with an earlier request replies at once *)
  let _, sends =
    Tme.Lamport_me.on_message ~from:1 (Msg.Request (ts 100 1)) s
  in
  Alcotest.(check bool) "reply sent" true
    (List.exists (fun (k, m) -> k = 1 && Msg.is_reply m) sends)

let test_lamport_thinking_receiver_sends_release_echo () =
  let s = DL.init 2 0 in
  let _, sends = Tme.Lamport_me.on_message ~from:1 (Msg.Request (ts 3 1)) s in
  Alcotest.(check bool) "reply" true
    (List.exists (fun (_, m) -> Msg.is_reply m) sends);
  Alcotest.(check bool) "release echo" true
    (List.exists (fun (_, m) -> Msg.is_release m) sends)

let test_lamport_queue_blocks_later_requester () =
  let s = DL.init 2 0 in
  let s, _ = Tme.Lamport_me.request_cs s in
  (* an earlier request of peer 1 arrives: it heads the queue *)
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Request (ts 0 1)) s in
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Reply (ts 60 1)) s in
  Alcotest.(check bool) "blocked by queue head" true
    (Tme.Lamport_me.try_enter s = None);
  (* peer 1 releases: unblocked *)
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Release (ts 61 1)) s in
  Alcotest.(check bool) "enters after release" true
    (Tme.Lamport_me.try_enter s <> None)

let test_lamport_duplicate_insert_purged () =
  (* modification 1: re-requests replace old entries, so a stale entry
     cannot linger ahead of everyone *)
  let s = DL.init 2 0 in
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Request (ts 1 1)) s in
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Request (ts 30 1)) s in
  let s, _ = Tme.Lamport_me.request_cs s in
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Reply (ts 90 1)) s in
  (* peer 1's current request (30.1) is earlier than ours only if our
     clock is still below 30 — after witnessing 30 it is not, so the
     purge left the fresher entry and we are the head only if earlier.
     Either way, a *stale* 1.1 entry must not be what blocks us: *)
  let v = Tme.Lamport_me.view s in
  Alcotest.(check bool) "local copy reflects latest request" true
    (not (Timestamp.equal (View.local_req v 1) (ts 1 1)))

let test_lamport_view_encodes_relation () =
  let s = DL.init 3 0 in
  let s, _ = Tme.Lamport_me.request_cs s in
  let v = Tme.Lamport_me.view s in
  (* no grant, no entry: j.REQ_k must be lt REQ_j so the wrapper fires *)
  Alcotest.(check bool) "ungranted peer reads as stale" true
    (Timestamp.lt (View.local_req v 1) v.View.req);
  let s, _ = Tme.Lamport_me.on_message ~from:1 (Msg.Reply (ts 70 1)) s in
  let v = Tme.Lamport_me.view s in
  Alcotest.(check bool) "granted peer reads as past REQ_j" true
    (Timestamp.lt v.View.req (View.local_req v 1))

(* ------------------------------------------------------------------ *)
(* Lamport (unmodified, negative control)                               *)

let test_unmod_phantom_blocks_forever () =
  let s = DU.init 2 0 in
  (* phantom entry for peer 1 with a tiny timestamp *)
  let s, _ = Tme.Lamport_unmodified.on_message ~from:1 (Msg.Request (ts 0 1)) s in
  let s, _ = Tme.Lamport_unmodified.request_cs s in
  let s, _ = Tme.Lamport_unmodified.on_message ~from:1 (Msg.Reply (ts 80 1)) s in
  (* grants are all there, but the phantom heads the queue and the
     strict entry rule requires own request = head *)
  Alcotest.(check bool) "blocked by phantom" true
    (Tme.Lamport_unmodified.try_enter s = None)

let test_unmod_works_from_init () =
  let s = DU.init 2 0 in
  let s, _ = Tme.Lamport_unmodified.request_cs s in
  let s, _ = Tme.Lamport_unmodified.on_message ~from:1 (Msg.Reply (ts 40 1)) s in
  Alcotest.(check bool) "enters in legitimate run" true
    (Tme.Lamport_unmodified.try_enter s <> None)

let test_unmod_no_release_echo () =
  let s = DU.init 2 0 in
  let _, sends =
    Tme.Lamport_unmodified.on_message ~from:1 (Msg.Request (ts 3 1)) s
  in
  Alcotest.(check bool) "reply only" true
    (List.for_all (fun (_, m) -> Msg.is_reply m) sends)

(* ------------------------------------------------------------------ *)
(* Central coordinator                                                  *)

let test_central_grant_flow () =
  let requester = DC.init 3 1 in
  let coord = DC.init 3 0 in
  let requester, sends = Tme.Central_me.request_cs requester in
  (match sends with
   | [ (0, Msg.Request r) ] ->
     let coord, grants = Tme.Central_me.on_message ~from:1 (Msg.Request r) coord in
     (match grants with
      | [ (1, Msg.Reply g) ] ->
        let requester, _ =
          Tme.Central_me.on_message ~from:0 (Msg.Reply g) requester
        in
        (match Tme.Central_me.try_enter requester with
         | Some (requester, _) ->
           let _, rel = Tme.Central_me.release_cs requester in
           (match rel with
            | [ (0, Msg.Release _) ] -> ()
            | _ -> Alcotest.fail "release must go to the coordinator")
         | None -> Alcotest.fail "grant must allow entry")
      | _ -> Alcotest.fail "coordinator must grant the sole request");
     ignore coord
   | _ -> Alcotest.fail "request must go to the coordinator")

let test_central_queues_second_request () =
  let coord = DC.init 3 0 in
  let coord, g1 = Tme.Central_me.on_message ~from:1 (Msg.Request (ts 1 1)) coord in
  Alcotest.(check int) "first granted" 1 (List.length g1);
  let coord, g2 = Tme.Central_me.on_message ~from:2 (Msg.Request (ts 2 2)) coord in
  Alcotest.(check int) "second queued" 0 (List.length g2);
  let _, g3 = Tme.Central_me.on_message ~from:1 (Msg.Release (ts 9 1)) coord in
  match g3 with
  | [ (2, Msg.Reply _) ] -> ()
  | _ -> Alcotest.fail "release must grant the queued request"

let test_central_coordinator_self_entry () =
  let coord = DC.init 2 0 in
  let coord, sends = Tme.Central_me.request_cs coord in
  Alcotest.(check int) "no messages for self-grant" 0 (List.length sends);
  Alcotest.(check bool) "enters" true (Tme.Central_me.try_enter coord <> None)

(* ------------------------------------------------------------------ *)
(* Cross-protocol properties: totality from arbitrary states            *)

let protocols_under_test =
  [ ("ra", (module Tme.Ra_me : Protocol.S));
    ("lamport", (module Tme.Lamport_me : Protocol.S));
    ("lamport-unmod", (module Tme.Lamport_unmodified : Protocol.S));
    ("central", (module Tme.Central_me : Protocol.S)) ]

let gen_msg =
  QCheck2.Gen.(
    let* kind = 0 -- 2 in
    let* clock = 0 -- 40 in
    let* pid = 0 -- 3 in
    let t = Timestamp.make ~clock ~pid in
    return (match kind with 0 -> Msg.Request t | 1 -> Msg.Reply t | _ -> Msg.Release t))

let prop_total_message_handling (name, (module P : Protocol.S)) =
  qtest
    (Printf.sprintf "%s absorbs any message from any corrupted state" name)
    QCheck2.Gen.(triple small_int (list_size (1 -- 8) gen_msg) (0 -- 2))
    (fun (seed, msgs, from) ->
      let rng = Stdext.Rng.create seed in
      let s = P.corrupt rng (P.init ~n:4 1) in
      let from = if from = 1 then 0 else from in
      let s =
        List.fold_left (fun s m -> fst (P.on_message ~from m s)) s msgs
      in
      (* view projection never raises and yields this process *)
      (P.view s).View.self = 1)

let prop_view_self_stable (name, (module P : Protocol.S)) =
  qtest (Printf.sprintf "%s view is self-consistent after a cycle" name)
    QCheck2.Gen.small_int
    (fun seed ->
      let rng = Stdext.Rng.create seed in
      let s = P.init ~n:3 2 in
      let s, _ = P.request_cs s in
      let s = P.corrupt rng s in
      let v = P.view s in
      v.View.self = 2 && v.View.clock >= 0)

(* ------------------------------------------------------------------ *)
(* View-level invariants under fault-free operation                     *)

type driver_op = Op_request | Op_enter | Op_release | Op_deliver of int

let gen_ops =
  QCheck2.Gen.(
    list_size (1 -- 60)
      (frequency
         [ (2, return Op_request);
           (3, return Op_enter);
           (2, return Op_release);
           (6, map (fun k -> Op_deliver k) (0 -- 1)) ]))

(* Drive a 3-process system of P faithfully: FIFO queues, no loss.
   Returns the final states. *)
module Faithful (P : Protocol.S) = struct
  type world = {
    states : P.state array;
    (* chans.(src).(dst) is a FIFO list, front first *)
    chans : Msg.t list array array;
  }

  let init () =
    { states = Array.init 3 (P.init ~n:3);
      chans = Array.init 3 (fun _ -> Array.make 3 []) }

  let send w ~src sends =
    List.iter
      (fun (dst, m) -> w.chans.(src).(dst) <- w.chans.(src).(dst) @ [ m ])
      sends

  let deliver w ~src ~dst =
    match w.chans.(src).(dst) with
    | [] -> ()
    | m :: rest ->
      w.chans.(src).(dst) <- rest;
      let s, sends = P.on_message ~from:src m w.states.(dst) in
      w.states.(dst) <- s;
      send w ~src:dst sends

  let apply w pid op =
    let v = P.view w.states.(pid) in
    match op with
    | Op_request when View.thinking v ->
      let s, sends = P.request_cs w.states.(pid) in
      w.states.(pid) <- s;
      send w ~src:pid sends
    | Op_enter when View.hungry v ->
      (match P.try_enter w.states.(pid) with
       | Some (s, sends) ->
         w.states.(pid) <- s;
         send w ~src:pid sends
       | None -> ())
    | Op_release when View.eating v ->
      let s, sends = P.release_cs w.states.(pid) in
      w.states.(pid) <- s;
      send w ~src:pid sends
    | Op_deliver k ->
      (* deliver head of some channel chosen by k *)
      let src = (pid + 1 + k) mod 3 in
      deliver w ~src ~dst:pid
    | Op_request | Op_enter | Op_release -> ()

  let run ops =
    let w = init () in
    List.iteri (fun i op -> apply w (i mod 3) op) ops;
    w
end

let prop_faithful_invariants (name, (module P : Protocol.S)) =
  let module F = Faithful (P) in
  qtest (Printf.sprintf "%s: view invariants on faithful runs" name) gen_ops
    (fun ops ->
      let w = F.run ops in
      Array.for_all
        (fun s ->
          let v = P.view s in
          (* the own request is always stamped with the own identity,
             and while thinking it tracks the clock *)
          v.View.req.Timestamp.pid = v.View.self
          && ((not (View.thinking v)) || v.View.req.Timestamp.clock = v.View.clock))
        w.F.states)

let prop_faithful_mutex (name, (module P : Protocol.S)) =
  let module F = Faithful (P) in
  qtest (Printf.sprintf "%s: never two eaters on faithful runs" name)
    ~count:500 gen_ops
    (fun ops ->
      (* check after every prefix, not just at the end *)
      let w = F.init () in
      List.for_all
        (fun (i, op) ->
          F.apply w (i mod 3) op;
          let eaters =
            Array.fold_left
              (fun acc s -> if View.eating (P.view s) then acc + 1 else acc)
              0 w.F.states
          in
          eaters <= 1)
        (List.mapi (fun i op -> (i, op)) ops))

let lspec_protocols =
  [ ("ra", (module Tme.Ra_me : Protocol.S));
    ("lamport", (module Tme.Lamport_me : Protocol.S));
    ("lamport-unmod", (module Tme.Lamport_unmodified : Protocol.S)) ]

let () =
  Alcotest.run "protocols"
    [ ( "ra",
        [ Alcotest.test_case "init view" `Quick test_ra_init_view;
          Alcotest.test_case "request broadcasts" `Quick test_ra_request_broadcasts;
          Alcotest.test_case "no entry without grants" `Quick
            test_ra_cannot_enter_without_grants;
          Alcotest.test_case "full cycle" `Quick test_ra_full_cycle_with_replies;
          Alcotest.test_case "defer + release reply" `Quick
            test_ra_defers_later_request_and_replies_on_release;
          Alcotest.test_case "thinking replies" `Quick
            test_ra_replies_immediately_when_thinking;
          Alcotest.test_case "earlier request granted" `Quick
            test_ra_replies_immediately_to_earlier_request;
          Alcotest.test_case "defers while eating" `Quick test_ra_defers_while_eating;
          Alcotest.test_case "stale reply ignored" `Quick test_ra_stale_reply_ignored;
          Alcotest.test_case "request overwrites copy" `Quick
            test_ra_request_overwrites_local_copy_downward;
          Alcotest.test_case "corrupt/reset" `Quick test_ra_corrupt_reset_total ] );
      ( "lamport",
        [ Alcotest.test_case "request/grant cycle" `Quick
            test_lamport_request_and_grant_cycle;
          Alcotest.test_case "always replies" `Quick
            test_lamport_receiver_always_replies;
          Alcotest.test_case "release echo" `Quick
            test_lamport_thinking_receiver_sends_release_echo;
          Alcotest.test_case "queue blocks later" `Quick
            test_lamport_queue_blocks_later_requester;
          Alcotest.test_case "insert purges" `Quick test_lamport_duplicate_insert_purged;
          Alcotest.test_case "view encodes relation" `Quick
            test_lamport_view_encodes_relation ] );
      ( "lamport-unmod",
        [ Alcotest.test_case "phantom blocks" `Quick test_unmod_phantom_blocks_forever;
          Alcotest.test_case "works from init" `Quick test_unmod_works_from_init;
          Alcotest.test_case "no release echo" `Quick test_unmod_no_release_echo ] );
      ( "central",
        [ Alcotest.test_case "grant flow" `Quick test_central_grant_flow;
          Alcotest.test_case "queues requests" `Quick test_central_queues_second_request;
          Alcotest.test_case "self entry" `Quick test_central_coordinator_self_entry ] );
      ( "totality",
        List.map prop_total_message_handling protocols_under_test
        @ List.map prop_view_self_stable protocols_under_test );
      ( "faithful-runs",
        List.map prop_faithful_invariants lspec_protocols
        @ List.map prop_faithful_mutex lspec_protocols ) ]
