(* Tests for the UNITY temporal operators and the clause-report
   container, including cross-checks of the operators' laws on random
   boolean traces. *)

open Unityspec

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let ok = Temporal.is_ok

(* ------------------------------------------------------------------ *)
(* Safety operators                                                    *)

let test_invariant () =
  Alcotest.(check bool) "holds" true (ok (Temporal.invariant (fun x -> x > 0) [ 1; 2; 3 ]));
  (match Temporal.invariant ~name:"positive" (fun x -> x > 0) [ 1; 0; 3 ] with
   | Temporal.Violated { at = 1; reason } ->
     Alcotest.(check bool) "reason names clause" true
       (String.length reason > 0 && String.sub reason 0 8 = "positive")
   | _ -> Alcotest.fail "expected violation at 1");
  Alcotest.(check bool) "empty trace" true
    (ok (Temporal.invariant (fun _ -> false) []))

let test_unless () =
  (* p unless q: from p-and-not-q, next is p or q *)
  let p x = x = 1 and q x = x = 2 in
  Alcotest.(check bool) "p persists" true (ok (Temporal.unless ~p ~q [ 1; 1; 1 ]));
  Alcotest.(check bool) "p to q" true (ok (Temporal.unless ~p ~q [ 1; 2; 0 ]));
  Alcotest.(check bool) "p escapes" false (ok (Temporal.unless ~p ~q [ 1; 0 ]));
  Alcotest.(check bool) "no p no constraint" true
    (ok (Temporal.unless ~p ~q [ 0; 3; 0 ]))

let test_stable () =
  let p x = x >= 2 in
  Alcotest.(check bool) "stays" true (ok (Temporal.stable p [ 0; 2; 3; 4 ]));
  Alcotest.(check bool) "drops" false (ok (Temporal.stable p [ 2; 1 ]))

let test_step_invariant () =
  Alcotest.(check bool) "monotone" true
    (ok (Temporal.step_invariant (fun a b -> a <= b) [ 1; 2; 2; 5 ]));
  (match Temporal.step_invariant (fun a b -> a <= b) [ 1; 0 ] with
   | Temporal.Violated { at = 1; _ } -> ()
   | _ -> Alcotest.fail "expected violation at 1");
  Alcotest.(check bool) "singleton" true
    (ok (Temporal.step_invariant (fun _ _ -> false) [ 1 ]))

(* ------------------------------------------------------------------ *)
(* Liveness operators                                                  *)

let test_leads_to () =
  let p x = x = 1 and q x = x = 9 in
  Alcotest.(check bool) "discharged" true (ok (Temporal.leads_to ~p ~q [ 1; 0; 9 ]));
  Alcotest.(check bool) "p equals q point" true
    (ok (Temporal.leads_to ~p ~q:(fun x -> x = 1) [ 1 ]));
  (match Temporal.leads_to ~p ~q [ 0; 1; 0; 1 ] with
   | Temporal.Pending { obligations } ->
     Alcotest.(check (list int)) "both open" [ 1; 3 ] obligations
   | _ -> Alcotest.fail "expected pending");
  Alcotest.(check bool) "multiple discharged by one q" true
    (ok (Temporal.leads_to ~p ~q [ 1; 1; 1; 9 ]))

let test_leads_to_always () =
  let p x = x = 1 and q x = x >= 9 in
  Alcotest.(check bool) "holds" true
    (ok (Temporal.leads_to_always ~p ~q [ 1; 0; 9; 10 ]));
  Alcotest.(check bool) "q unstable" false
    (ok (Temporal.leads_to_always ~p ~q [ 1; 9; 0 ]));
  (match Temporal.leads_to_always ~p ~q [ 1; 0 ] with
   | Temporal.Pending _ -> ()
   | _ -> Alcotest.fail "expected pending")

let test_ok_with_tail () =
  let v = Temporal.Pending { obligations = [ 98; 99 ] } in
  Alcotest.(check bool) "tail allowed" true
    (Temporal.ok_with_tail ~trace_len:100 ~margin:5 v);
  Alcotest.(check bool) "early not allowed" false
    (Temporal.ok_with_tail ~trace_len:100 ~margin:1 v);
  Alcotest.(check bool) "violated never" false
    (Temporal.ok_with_tail ~trace_len:100 ~margin:100
       (Temporal.Violated { at = 0; reason = "x" }));
  Alcotest.(check bool) "holds always" true
    (Temporal.ok_with_tail ~trace_len:100 ~margin:0 Temporal.Holds)

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)

let test_both_and_all () =
  let viol = Temporal.Violated { at = 2; reason = "boom" } in
  let pend = Temporal.Pending { obligations = [ 1 ] } in
  Alcotest.(check bool) "holds both" true (ok (Temporal.both Temporal.Holds Temporal.Holds));
  (match Temporal.both pend viol with
   | Temporal.Violated _ -> ()
   | _ -> Alcotest.fail "violation dominates");
  (match Temporal.both pend (Temporal.Pending { obligations = [ 1; 4 ] }) with
   | Temporal.Pending { obligations } ->
     Alcotest.(check (list int)) "merged dedup" [ 1; 4 ] obligations
   | _ -> Alcotest.fail "expected pending");
  match Temporal.all [ Temporal.Holds; pend; Temporal.Holds ] with
  | Temporal.Pending _ -> ()
  | _ -> Alcotest.fail "pending survives all"

let test_forall () =
  let v = Temporal.forall (fun i -> if i = 2 then Temporal.Violated { at = 0; reason = "i2" } else Temporal.Holds) 4 in
  (match v with
   | Temporal.Violated { reason = "i2"; _ } -> ()
   | _ -> Alcotest.fail "expected i2 violation");
  Alcotest.(check bool) "all hold" true (ok (Temporal.forall (fun _ -> Temporal.Holds) 3))

let test_forall_pairs () =
  let seen = ref [] in
  let _ =
    Temporal.forall_pairs
      (fun j k ->
        seen := (j, k) :: !seen;
        Temporal.Holds)
      3
  in
  Alcotest.(check int) "6 ordered pairs" 6 (List.length !seen);
  Alcotest.(check bool) "no diagonal" true
    (List.for_all (fun (j, k) -> j <> k) !seen)

(* ------------------------------------------------------------------ *)
(* Law cross-checks on random traces                                   *)

let gen_trace = QCheck2.Gen.(list_size (1 -- 30) (0 -- 3))

let test_stable_is_unless_false =
  qtest "stable p = p unless false" gen_trace (fun tr ->
      let p x = x >= 2 in
      ok (Temporal.stable p tr)
      = ok (Temporal.unless ~p ~q:(fun _ -> false) tr))

let test_invariant_implies_stable =
  qtest "invariant p implies stable p" gen_trace (fun tr ->
      let p x = x >= 1 in
      (not (ok (Temporal.invariant p tr))) || ok (Temporal.stable p tr))

let test_leads_to_reflexive =
  qtest "p leads_to p" gen_trace (fun tr ->
      ok (Temporal.leads_to ~p:(fun x -> x = 2) ~q:(fun x -> x = 2) tr))

let test_leads_to_weakening =
  qtest "leads_to weakens target" gen_trace (fun tr ->
      let p x = x = 1 in
      let q x = x = 2 in
      let q' x = x >= 2 in
      (not (ok (Temporal.leads_to ~p ~q tr)))
      || ok (Temporal.leads_to ~p ~q:q' tr))

let test_unless_with_q_true =
  qtest "p unless true always holds" gen_trace (fun tr ->
      ok (Temporal.unless ~p:(fun x -> x = 1) ~q:(fun _ -> true) tr))

(* ------------------------------------------------------------------ *)
(* Online monitors: exact equivalence with the offline operators       *)

let same_verdict a b =
  match a, b with
  | Temporal.Holds, Temporal.Holds -> true
  | Temporal.Violated { at = i; _ }, Temporal.Violated { at = j; _ } -> i = j
  | Temporal.Pending { obligations = xs }, Temporal.Pending { obligations = ys }
    -> xs = ys
  | _ -> false

let p x = x = 1
let q x = x >= 2

let online_equiv name offline online =
  qtest ("online = offline: " ^ name) gen_trace (fun tr ->
      same_verdict (offline tr) (Online.run online tr))

let test_online_invariant =
  online_equiv "invariant" (Temporal.invariant p) (Online.invariant p)

let test_online_step_invariant =
  online_equiv "step_invariant"
    (Temporal.step_invariant ( <= ))
    (Online.step_invariant ( <= ))

let test_online_unless =
  online_equiv "unless" (Temporal.unless ~p ~q) (Online.unless p q)

let test_online_stable =
  online_equiv "stable" (Temporal.stable q) (Online.stable q)

let test_online_leads_to =
  online_equiv "leads_to" (Temporal.leads_to ~p ~q) (Online.leads_to p q)

let test_online_leads_to_always =
  online_equiv "leads_to_always"
    (Temporal.leads_to_always ~p ~q)
    (Online.leads_to_always p q)

let test_online_persistence () =
  (* feeding a monitor must not mutate the original *)
  let m = Online.invariant p in
  let m1 = Online.feed m 1 in
  let _bad = Online.feed m1 0 in
  Alcotest.(check bool) "original unaffected" true
    (Temporal.is_ok (Online.verdict m1))

let test_online_contramap () =
  let m = Online.contramap fst (Online.invariant p) in
  let m = Online.feed_all m [ (1, "a"); (1, "b") ] in
  Alcotest.(check bool) "adapted" true (Temporal.is_ok (Online.verdict m));
  let m = Online.feed m (9, "c") in
  Alcotest.(check bool) "violation seen" false
    (Temporal.is_ok (Online.verdict m))

let test_online_all () =
  let m = Online.all [ Online.invariant p; Online.leads_to p q ] in
  let m = Online.feed_all m [ 1; 1 ] in
  (match Online.verdict m with
   | Temporal.Pending _ -> ()
   | _ -> Alcotest.fail "expected pending obligations");
  let m = Online.feed m 0 in
  match Online.verdict m with
  | Temporal.Violated _ -> ()
  | _ -> Alcotest.fail "violation must dominate"

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let test_report () =
  let r =
    Report.of_list
      [ ("a", Temporal.Holds);
        ("b", Temporal.Pending { obligations = [ 3 ] });
        ("c", Temporal.Violated { at = 1; reason = "bad" }) ]
  in
  Alcotest.(check bool) "not all hold" false (Report.all_hold r);
  Alcotest.(check bool) "not safe" false (Report.safe r);
  Alcotest.(check int) "failures" 2 (List.length (Report.failures r));
  Alcotest.(check int) "violations" 1 (List.length (Report.violations r));
  Alcotest.(check int) "pending" 1 (List.length (Report.pending r));
  let safe_r = Report.of_list [ ("a", Temporal.Holds); ("b", Temporal.Pending { obligations = [] }) ] in
  Alcotest.(check bool) "safe with pending" true (Report.safe safe_r);
  Alcotest.(check bool) "merge" true
    (List.length (Report.merge r safe_r) = 5);
  Alcotest.(check bool) "to_string nonempty" true
    (String.length (Report.to_string r) > 0)

let () =
  Alcotest.run "unityspec"
    [ ( "safety",
        [ Alcotest.test_case "invariant" `Quick test_invariant;
          Alcotest.test_case "unless" `Quick test_unless;
          Alcotest.test_case "stable" `Quick test_stable;
          Alcotest.test_case "step_invariant" `Quick test_step_invariant ] );
      ( "liveness",
        [ Alcotest.test_case "leads_to" `Quick test_leads_to;
          Alcotest.test_case "leads_to_always" `Quick test_leads_to_always;
          Alcotest.test_case "ok_with_tail" `Quick test_ok_with_tail ] );
      ( "combinators",
        [ Alcotest.test_case "both/all" `Quick test_both_and_all;
          Alcotest.test_case "forall" `Quick test_forall;
          Alcotest.test_case "forall_pairs" `Quick test_forall_pairs ] );
      ( "laws",
        [ test_stable_is_unless_false;
          test_invariant_implies_stable;
          test_leads_to_reflexive;
          test_leads_to_weakening;
          test_unless_with_q_true ] );
      ( "online",
        [ test_online_invariant;
          test_online_step_invariant;
          test_online_unless;
          test_online_stable;
          test_online_leads_to;
          test_online_leads_to_always;
          Alcotest.test_case "persistence" `Quick test_online_persistence;
          Alcotest.test_case "contramap" `Quick test_online_contramap;
          Alcotest.test_case "all" `Quick test_online_all ] );
      ("report", [ Alcotest.test_case "report" `Quick test_report ]) ]
