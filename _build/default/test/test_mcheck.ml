(* Tests for the bounded exhaustive model checker: the shipped
   protocols are safe under every interleaving within the bounds; the
   deliberately faulty RA mutant (replies while eating) is caught with
   a concrete counterexample trace.  This validates both directions —
   the protocols and the checker. *)

let ra = (module Tme.Ra_me : Graybox.Protocol.S)
let ra_gcl = (module Gcl.Ra_gcl : Graybox.Protocol.S)
let lamport = (module Tme.Lamport_me : Graybox.Protocol.S)
let mutant = (module Tme.Ra_mutant : Graybox.Protocol.S)

let check_safe ?(n = 2) name proto ~max_depth () =
  match Mcheck.check_me1 proto ~n ~max_depth () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool)
      (Printf.sprintf "%s explored real states" name)
      true (stats.Mcheck.explored > 100)
  | Mcheck.Violation { trace; _ } ->
    Alcotest.failf "%s: unexpected ME1 violation: %s" name
      (String.concat " ; " trace)

let test_mutant_caught () =
  match Mcheck.check_me1 mutant ~n:2 ~max_depth:20 () with
  | Mcheck.Ok _ -> Alcotest.fail "the mutant must violate ME1"
  | Mcheck.Violation { trace; witness; stats } ->
    Alcotest.(check bool) "short counterexample" true (List.length trace <= 20);
    Alcotest.(check bool) "found quickly" true (stats.Mcheck.explored < 200_000);
    let eaters =
      Array.fold_left
        (fun acc v -> if Graybox.View.eating v then acc + 1 else acc)
        0 witness
    in
    Alcotest.(check int) "two eaters in the witness state" 2 eaters;
    (* the trace is a genuine interleaving: it must mention a delivery
       and an entry by each process *)
    let mentions p =
      List.exists
        (fun l -> l = Printf.sprintf "enter(%d)" p)
        trace
    in
    Alcotest.(check bool) "both processes enter" true (mentions 0 && mentions 1)

let test_mutant_ok_at_n1_depths () =
  (* with insufficient depth the bug is not reachable: bounds matter *)
  match Mcheck.check_me1 mutant ~n:2 ~max_depth:4 () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool) "truncated" true stats.Mcheck.truncated
  | Mcheck.Violation _ ->
    Alcotest.fail "depth 4 cannot reach a double entry"

let test_custom_invariant () =
  (* a deliberately false invariant is reported with a witness *)
  match
    Mcheck.check_invariant ra ~n:2 ~max_depth:6 ~name:"nobody-hungry"
      (fun views -> not (Array.exists Graybox.View.hungry views))
  with
  | Mcheck.Violation { trace; _ } ->
    Alcotest.(check bool) "trace starts with a request" true
      (match trace with
       | l :: _ -> String.length l >= 7 && String.sub l 0 7 = "request"
       | [] -> false)
  | Mcheck.Ok _ -> Alcotest.fail "someone must get hungry"

let test_stats_sane () =
  match Mcheck.check_me1 ra ~n:2 ~max_depth:10 () with
  | Mcheck.Ok stats ->
    Alcotest.(check bool) "depth reached" true (stats.Mcheck.depth_reached <= 10);
    Alcotest.(check bool) "peak >= 1" true (stats.Mcheck.frontier_peak >= 1)
  | Mcheck.Violation _ -> Alcotest.fail "ra is safe"

let () =
  Alcotest.run "mcheck"
    [ ( "safety",
        [ Alcotest.test_case "ra safe (exhaustive, n=2 depth 30)" `Quick
            (check_safe "ra" ra ~max_depth:30);
          Alcotest.test_case "ra safe (exhaustive, n=3 depth 14)" `Quick
            (check_safe ~n:3 "ra" ra ~max_depth:14);
          Alcotest.test_case "ra-gcl safe (exhaustive, n=2 depth 24)" `Quick
            (check_safe "ra-gcl" ra_gcl ~max_depth:24);
          Alcotest.test_case "lamport safe (exhaustive, n=2 depth 24)" `Quick
            (check_safe "lamport" lamport ~max_depth:24);
          Alcotest.test_case "lamport safe (exhaustive, n=3 depth 12)" `Quick
            (check_safe ~n:3 "lamport" lamport ~max_depth:12) ] );
      ( "discrimination",
        [ Alcotest.test_case "mutant caught" `Quick test_mutant_caught;
          Alcotest.test_case "depth bound respected" `Quick
            test_mutant_ok_at_n1_depths;
          Alcotest.test_case "custom invariant" `Quick test_custom_invariant;
          Alcotest.test_case "stats" `Quick test_stats_sane ] ) ]
