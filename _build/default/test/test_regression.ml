(* Golden regression tests: exact execution fingerprints for fixed
   seeds.  The whole stack is deterministic (SplitMix64 + seeded
   scheduling + pure fault application), so any semantic change to the
   engine, a protocol, the wrapper, or the client shows up here as an
   exact-number diff.  If a change is *intended*, re-capture the
   goldens and say why in the commit. *)

let ra = Option.get (Tme.Scenarios.find_protocol "ra")
let lamport = Option.get (Tme.Scenarios.find_protocol "lamport")

type golden = {
  entries : int;
  sent : int;
  wrapper : int;
  delivered : int;
  me1 : int;
  recovered : bool;
}

let fingerprint (r : Tme.Scenarios.result) =
  { entries = r.total_entries;
    sent = r.sent_total;
    wrapper = r.wrapper_sends;
    delivered = r.delivered;
    me1 = r.analysis.me1_violations;
    recovered = r.analysis.recovered }

let golden_t =
  Alcotest.testable
    (fun ppf g ->
      Format.fprintf ppf
        "entries=%d sent=%d wrapper=%d delivered=%d me1=%d recovered=%b"
        g.entries g.sent g.wrapper g.delivered g.me1 g.recovered)
    ( = )

let check name expected actual () =
  Alcotest.check golden_t name expected (fingerprint actual)

let () =
  Alcotest.run "regression"
    [ ( "goldens",
        [ Alcotest.test_case "ra clean seed 100" `Quick
            (check "ra-clean"
               { entries = 184; sent = 1113; wrapper = 0; delivered = 1110;
                 me1 = 0; recovered = true }
               (Tme.Scenarios.run ra ~n:4 ~seed:100 ~steps:3000));
          Alcotest.test_case "ra wrapped burst seed 100" `Quick
            (check "ra-wrapped-burst"
               { entries = 168; sent = 1651; wrapper = 514; delivered = 1649;
                 me1 = 12; recovered = true }
               (Tme.Scenarios.run ra ~n:4 ~seed:100 ~steps:5000
                  ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
                  ~faults:(Tme.Scenarios.burst ~at:700)));
          Alcotest.test_case "lamport clean seed 100" `Quick
            (check "lamport-clean"
               { entries = 176; sent = 1205; wrapper = 0; delivered = 1204;
                 me1 = 0; recovered = true }
               (Tme.Scenarios.run lamport ~n:3 ~seed:100 ~steps:3000));
          Alcotest.test_case "lamport wrapped deadlock seed 100" `Quick
            (check "lamport-wrapped-deadlock"
               { entries = 203; sent = 1759; wrapper = 159; delivered = 1746;
                 me1 = 0; recovered = true }
               (Tme.Scenarios.run lamport ~n:3 ~seed:100 ~steps:5000
                  ~wrapper:(Tme.Scenarios.wrapped ~delta:8 ())
                  ~faults:
                    [ Tme.Scenarios.Drop_requests_window
                        { from_t = 400; until_t = 450 } ])) ] ) ]
