test/test_unityspec.mli:
