test/test_gcl.mli:
