test/test_gcl.ml: Alcotest Clocks Gcl Graybox List Option Printf QCheck2 QCheck_alcotest Sim Stdext Store Tme Unityspec
