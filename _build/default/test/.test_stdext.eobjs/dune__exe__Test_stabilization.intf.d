test/test_stabilization.mli:
