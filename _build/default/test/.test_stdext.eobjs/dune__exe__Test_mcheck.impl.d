test/test_mcheck.ml: Alcotest Array Gcl Graybox List Mcheck Printf String Tme
