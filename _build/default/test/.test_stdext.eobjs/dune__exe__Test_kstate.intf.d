test/test_kstate.mli:
