test/test_graybox.ml: Alcotest Array Clocks Graybox Harness List Lspec Msg QCheck2 QCheck_alcotest Sim Stabilize Stdext Timestamp Tme Tme_spec Unityspec Vector_clock View Wrapper
