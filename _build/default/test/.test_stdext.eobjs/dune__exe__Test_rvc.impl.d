test/test_rvc.ml: Alcotest Clocks List QCheck2 QCheck_alcotest Rvc Stdext Vector_clock
