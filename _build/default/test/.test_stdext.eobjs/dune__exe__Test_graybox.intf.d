test/test_graybox.mli:
