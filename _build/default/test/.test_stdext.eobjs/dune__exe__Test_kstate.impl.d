test/test_kstate.ml: Alcotest Array Kstate List Printf QCheck2 QCheck_alcotest
