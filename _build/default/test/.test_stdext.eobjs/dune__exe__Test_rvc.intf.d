test/test_rvc.mli:
