test/test_protocols.ml: Alcotest Array Clocks Graybox List Msg Printf Protocol QCheck2 QCheck_alcotest Stdext Timestamp Tme View
