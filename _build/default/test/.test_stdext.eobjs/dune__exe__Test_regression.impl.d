test/test_regression.ml: Alcotest Format Option Tme
