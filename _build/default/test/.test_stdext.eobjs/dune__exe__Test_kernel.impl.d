test/test_kernel.ml: Actsys Alcotest Fig1 Fun Kernel List Product QCheck2 QCheck_alcotest Stdext Synthesis Theorem1 Tolerance Tsys
