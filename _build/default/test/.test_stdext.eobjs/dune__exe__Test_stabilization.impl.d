test/test_stabilization.ml: Alcotest Array Format Graybox List Option Printf QCheck2 QCheck_alcotest Scenarios Sim Tme Unityspec
