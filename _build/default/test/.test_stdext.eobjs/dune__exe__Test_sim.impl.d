test/test_sim.ml: Alcotest Array Engine Faults List Metrics Network Pid QCheck2 QCheck_alcotest Sim String Trace
