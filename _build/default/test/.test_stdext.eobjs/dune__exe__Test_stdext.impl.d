test/test_stdext.ml: Alcotest Array Float Fqueue Fun List Pqueue QCheck2 QCheck_alcotest Rng Stats Stdext String Tabular
