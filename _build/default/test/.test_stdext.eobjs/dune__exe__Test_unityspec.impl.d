test/test_unityspec.ml: Alcotest List Online QCheck2 QCheck_alcotest Report String Temporal Unityspec
