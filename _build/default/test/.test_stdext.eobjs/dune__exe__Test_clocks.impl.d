test/test_clocks.ml: Alcotest Clocks List Logical_clock QCheck2 QCheck_alcotest Timestamp Vector_clock
