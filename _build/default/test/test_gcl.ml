(* Tests for the guarded-command store layer and the store-based RA
   transliteration: schema validation, domain-respecting corruption,
   and — the punchline — step-for-step behavioural equivalence with
   the record-based Ra_me, plus full conformance and stabilization
   through the shared wrapper. *)

open Gcl
module T = Unityspec.Temporal

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let mini_schema =
  [ ("flag", Store.Domain.D_bool);
    ("count", Store.Domain.D_nat 10);
    ("m", Store.Domain.D_mode);
    ("req", Store.Domain.D_own_ts);
    ("copies", Store.Domain.D_peer_ts_map);
    ("who", Store.Domain.D_pid_set) ]

let mini_store () =
  Store.create mini_schema ~self:1 ~n:3
    [ ("flag", Store.Value.V_bool false);
      ("count", Store.Value.V_nat 0);
      ("m", Store.Value.V_mode Graybox.View.Thinking);
      ("req", Store.Value.V_own_ts (Clocks.Timestamp.zero ~pid:1));
      ( "copies",
        Store.Value.V_peer_ts_map
          (Sim.Pid.Map.of_list
             [ (0, Clocks.Timestamp.zero ~pid:0);
               (2, Clocks.Timestamp.zero ~pid:2) ]) );
      ("who", Store.Value.V_pid_set Sim.Pid.Set.empty) ]

let test_store_create_and_read () =
  let s = mini_store () in
  Alcotest.(check bool) "flag" false (Store.get_bool s "flag");
  Alcotest.(check int) "count" 0 (Store.get_nat s "count");
  Alcotest.(check int) "self" 1 (Store.self s);
  Alcotest.(check int) "size" 3 (Store.size s);
  Alcotest.(check bool) "well formed" true (Store.well_formed s)

let test_store_create_validates () =
  Alcotest.check_raises "missing binding"
    (Invalid_argument "Store.create: bindings do not match the schema")
    (fun () ->
      ignore
        (Store.create mini_schema ~self:1 ~n:3
           [ ("flag", Store.Value.V_bool true) ]));
  Alcotest.check_raises "own ts with foreign pid"
    (Invalid_argument "Store.create: req out of domain") (fun () ->
      ignore
        (Store.create
           [ ("req", Store.Domain.D_own_ts) ]
           ~self:1 ~n:3
           [ ("req", Store.Value.V_own_ts (Clocks.Timestamp.zero ~pid:2)) ]))

let test_store_updates () =
  let s = mini_store () in
  let s = Store.set_nat s "count" 7 in
  Alcotest.(check int) "updated" 7 (Store.get_nat s "count");
  let s = Store.add_to_set s "who" 2 in
  Alcotest.(check bool) "added" true (Sim.Pid.Set.mem 2 (Store.get_set s "who"));
  let s = Store.remove_from_set s "who" 2 in
  Alcotest.(check bool) "removed" false
    (Sim.Pid.Set.mem 2 (Store.get_set s "who"));
  let ts = Clocks.Timestamp.make ~clock:5 ~pid:0 in
  let s = Store.set_map_entry s "copies" 0 ts in
  Alcotest.(check bool) "map entry" true
    (Clocks.Timestamp.equal ts (Store.map_entry s "copies" 0))

let test_store_domain_enforced_on_update () =
  let s = mini_store () in
  Alcotest.check_raises "own ts pid enforced"
    (Invalid_argument "Store: req assignment out of domain") (fun () ->
      ignore (Store.set_ts s "req" (Clocks.Timestamp.make ~clock:3 ~pid:0)));
  Alcotest.check_raises "negative nat"
    (Invalid_argument "Store: count assignment out of domain") (fun () ->
      ignore (Store.set_nat s "count" (-1)))

let test_store_type_errors () =
  let s = mini_store () in
  Alcotest.check_raises "wrong type" (Invalid_argument "Store: flag wrong type")
    (fun () -> ignore (Store.get_nat s "flag"));
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "Store: unknown variable nope") (fun () ->
      ignore (Store.get_bool s "nope"))

let prop_corrupt_stays_in_domain =
  qtest "corruption respects every domain" QCheck2.Gen.small_int (fun seed ->
      let rng = Stdext.Rng.create seed in
      let s = Store.corrupt rng (mini_store ()) in
      Store.well_formed s)

let prop_random_values_in_domain =
  qtest "random values inhabit their domains"
    QCheck2.Gen.(pair small_int (0 -- 5))
    (fun (seed, which) ->
      let rng = Stdext.Rng.create seed in
      let domain = List.nth (List.map snd mini_schema) which in
      Store.Value.in_domain ~self:1 ~n:3 domain
        (Store.Value.random rng ~self:1 ~n:3 domain))

(* ------------------------------------------------------------------ *)
(* Ra_gcl: behavioural equivalence with Ra_me                          *)

let ra = Option.get (Tme.Scenarios.find_protocol "ra")
let ra_gcl = Option.get (Tme.Scenarios.find_protocol "ra-gcl")

let fingerprint (r : Tme.Scenarios.result) =
  (r.total_entries, r.sent_total, r.delivered, r.analysis.me1_violations)

let test_equivalent_fault_free () =
  List.iter
    (fun seed ->
      let a = Tme.Scenarios.run ra ~n:4 ~seed ~steps:4000 in
      let b = Tme.Scenarios.run ra_gcl ~n:4 ~seed ~steps:4000 in
      Alcotest.(check bool)
        (Printf.sprintf "identical executions (seed %d)" seed)
        true
        (fingerprint a = fingerprint b))
    [ 1; 5; 9 ]

let test_equivalent_under_drop_faults () =
  (* message-level faults are representation-independent, so the two
     implementations stay in lockstep through them *)
  let faults =
    [ Tme.Scenarios.Drop_requests_window { from_t = 400; until_t = 450 } ]
  in
  let a =
    Tme.Scenarios.run ra ~n:4 ~seed:3 ~steps:6000 ~faults
      ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
  in
  let b =
    Tme.Scenarios.run ra_gcl ~n:4 ~seed:3 ~steps:6000 ~faults
      ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
  in
  Alcotest.(check bool) "lockstep through drops" true
    (fingerprint a = fingerprint b)

let test_gcl_conformance_fault_free () =
  let r = Tme.Scenarios.run ra_gcl ~n:4 ~seed:11 ~steps:5000 in
  let lspec = Tme.Scenarios.lspec_report r in
  Alcotest.(check bool) "Lspec safety" true (Unityspec.Report.safe lspec);
  Alcotest.(check bool) "ME1" true (T.is_ok (Graybox.Tme_spec.me1 r.vtrace));
  Alcotest.(check bool) "ME3" true (T.is_ok (Graybox.Tme_spec.me3 r.entry_log))

let test_gcl_wrapper_stabilizes () =
  (* the same wrapper, over the store-based implementation, with the
     schema-derived generic corruption *)
  List.iter
    (fun seed ->
      let r =
        Tme.Scenarios.run ra_gcl ~n:4 ~seed ~steps:8000
          ~wrapper:(Tme.Scenarios.wrapped ~delta:4 ())
          ~faults:(Tme.Scenarios.burst ~at:900)
      in
      Alcotest.(check bool)
        (Printf.sprintf "recovered (seed %d)" seed)
        true r.analysis.recovered)
    [ 1; 2; 3; 4 ]

let test_gcl_unwrapped_deadlocks () =
  let r =
    Tme.Scenarios.run ra_gcl ~n:4 ~seed:2 ~steps:6000
      ~faults:[ Tme.Scenarios.Drop_requests_window { from_t = 500; until_t = 560 } ]
  in
  Alcotest.(check bool) "stuck without wrapper" false r.analysis.recovered

let test_gcl_store_exposed () =
  let s = Gcl.Ra_gcl.init ~n:3 1 in
  let st = Gcl.Ra_gcl.store s in
  Alcotest.(check int) "schema size" (List.length Gcl.Ra_gcl.schema)
    (List.length (Store.schema st));
  Alcotest.(check bool) "initial store well formed" true (Store.well_formed st)

let () =
  Alcotest.run "gcl"
    [ ( "store",
        [ Alcotest.test_case "create/read" `Quick test_store_create_and_read;
          Alcotest.test_case "create validates" `Quick test_store_create_validates;
          Alcotest.test_case "updates" `Quick test_store_updates;
          Alcotest.test_case "domains enforced" `Quick
            test_store_domain_enforced_on_update;
          Alcotest.test_case "type errors" `Quick test_store_type_errors;
          prop_corrupt_stays_in_domain;
          prop_random_values_in_domain ] );
      ( "ra-gcl",
        [ Alcotest.test_case "equivalent fault-free" `Quick
            test_equivalent_fault_free;
          Alcotest.test_case "equivalent under drops" `Quick
            test_equivalent_under_drop_faults;
          Alcotest.test_case "conformance" `Quick test_gcl_conformance_fault_free;
          Alcotest.test_case "wrapper stabilizes" `Quick test_gcl_wrapper_stabilizes;
          Alcotest.test_case "unwrapped deadlocks" `Quick
            test_gcl_unwrapped_deadlocks;
          Alcotest.test_case "store exposed" `Quick test_gcl_store_exposed ] ) ]
