(* Tests for Dijkstra's K-state ring: the whitebox-stabilization
   contrast case.  Privilege counting, fault-free legitimacy, recovery
   from arbitrary counter corruption (Dijkstra's theorem, empirically),
   and validation of the K >= n + 1 precondition. *)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let test_privileges_counting () =
  (* all equal: only the bottom is privileged *)
  Alcotest.(check int) "uniform" 1
    (Kstate.privileges ~counters:[| 3; 3; 3; 3 |] ~k:5);
  (* mid-circulation: the new value has propagated halfway; only the
     frontier machine is privileged *)
  Alcotest.(check int) "one step" 1
    (Kstate.privileges ~counters:[| 4; 4; 3; 3 |] ~k:5);
  (* fully scrambled: several privileges *)
  Alcotest.(check bool) "scrambled has several" true
    (Kstate.privileges ~counters:[| 0; 2; 1; 4 |] ~k:5 > 1)

let test_privileges_never_zero =
  qtest "at least one machine is always privileged"
    QCheck2.Gen.(list_size (return 5) (0 -- 5))
    (fun xs ->
      Kstate.privileges ~counters:(Array.of_list xs) ~k:6 >= 1)

let test_run_validates () =
  Alcotest.check_raises "k too small"
    (Invalid_argument "Kstate.run: need k >= n + 1") (fun () ->
      ignore (Kstate.run ~n:5 ~k:5 ~seed:1 ~steps:10 ()));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Kstate.run: need n >= 2") (fun () ->
      ignore (Kstate.run ~n:1 ~k:5 ~seed:1 ~steps:10 ()))

let test_fault_free_legitimate () =
  let o = Kstate.run ~n:4 ~k:5 ~seed:3 ~steps:2000 () in
  Alcotest.(check bool) "stabilized (trivially)" true
    (o.Kstate.stabilized_at <> None);
  Alcotest.(check int) "one privilege at end" 1 o.Kstate.privileges_at_end;
  Alcotest.(check bool) "token moved" true (o.Kstate.moves > 20)

let test_recovers_from_corruption () =
  List.iter
    (fun seed ->
      let o = Kstate.run ~corrupt_at:300 ~n:5 ~k:6 ~seed ~steps:3000 () in
      Alcotest.(check bool)
        (Printf.sprintf "stabilized (seed %d)" seed)
        true
        (o.Kstate.stabilized_at <> None);
      Alcotest.(check int) "single privilege" 1 o.Kstate.privileges_at_end)
    [ 1; 2; 3; 4; 5; 6 ]

let prop_recovers_from_random_corruption =
  qtest ~count:15 "K-state always stabilizes after corruption"
    QCheck2.Gen.(pair (1 -- 500) (100 -- 600))
    (fun (seed, at) ->
      let o = Kstate.run ~corrupt_at:at ~n:4 ~k:5 ~seed ~steps:4000 () in
      o.Kstate.stabilized_at <> None && o.Kstate.privileges_at_end = 1)

let () =
  Alcotest.run "kstate"
    [ ( "kstate",
        [ Alcotest.test_case "privilege counting" `Quick test_privileges_counting;
          test_privileges_never_zero;
          Alcotest.test_case "validates" `Quick test_run_validates;
          Alcotest.test_case "fault-free" `Quick test_fault_free_legitimate;
          Alcotest.test_case "recovers" `Quick test_recovers_from_corruption;
          prop_recovers_from_random_corruption ] ) ]
