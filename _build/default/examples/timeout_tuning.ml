(* W'(delta): the timeout refinement of the wrapper (paper §4,
   "Implementation of W").

   "The timeout mechanism is just an optimization ... it can be
   employed to tune the wrapper to decrease the unnecessary
   repetitions of the request messages when the system is in the
   consistent states."

   This example sweeps delta and prints the trade-off: wrapper traffic
   falls roughly as 1/delta while recovery latency grows.

   Run with:  dune exec examples/timeout_tuning.exe *)

open Stdext

let faults =
  [ Tme.Scenarios.Drop_requests_window { from_t = 500; until_t = 560 } ]

let () =
  let protocol = Option.get (Tme.Scenarios.find_protocol "ra") in
  let table =
    Tabular.create
      [ "delta"; "wrapper msgs (no faults)"; "wrapper msgs (faulty)";
        "recovered"; "recovery steps" ]
  in
  List.iter
    (fun delta ->
      let wrapper = Tme.Scenarios.wrapped ~delta () in
      let clean =
        Tme.Scenarios.run protocol ~n:4 ~seed:5 ~steps:6000 ~wrapper
      in
      let faulty =
        Tme.Scenarios.run protocol ~n:4 ~seed:5 ~steps:6000 ~wrapper ~faults
      in
      Tabular.add_row table
        [ string_of_int delta;
          string_of_int clean.wrapper_sends;
          string_of_int faulty.wrapper_sends;
          Tabular.cell_bool faulty.analysis.recovered;
          (match faulty.recovery_latency with
           | Some l -> string_of_int l
           | None -> "-") ])
    [ 0; 1; 2; 4; 8; 16; 32; 64 ];
  Tabular.print ~title:"W'(delta): overhead vs recovery latency" table;
  print_endline "";
  print_endline
    "delta = 0 is the paper's W (resend at every opportunity); all";
  print_endline
    "values of delta stabilize - W'(delta) everywhere implements W, so";
  print_endline "Theorem 4 applies to every row of this table."
