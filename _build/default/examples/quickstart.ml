(* Quickstart: wrap Ricart-Agrawala mutual exclusion with the graybox
   wrapper, knock the system over with the paper's §4 fault (all
   request messages lost), and watch it stabilize.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  print_endline "== Graybox stabilization quickstart ==";
  print_endline "";
  print_endline
    "Protocol: Ricart-Agrawala distributed mutual exclusion, 4 processes.";
  print_endline
    "Wrapper : W'(8) - while hungry, every 8 scheduling opportunities,";
  print_endline
    "          resend REQ_j to every k whose copy j.REQ_k is stale.";
  print_endline
    "Fault   : every request message in flight during steps 500-560 is lost.";
  print_endline "";

  (* 1. pick the implementation (the wrapper does not care which) *)
  let protocol = Option.get (Tme.Scenarios.find_protocol "ra") in

  (* 2. describe the scenario *)
  let faults =
    [ Tme.Scenarios.Drop_requests_window { from_t = 500; until_t = 560 } ]
  in

  (* 3. run it, wrapped *)
  let result =
    Tme.Scenarios.run protocol ~n:4 ~seed:42 ~steps:8000 ~faults
      ~wrapper:(Tme.Scenarios.wrapped ~delta:8 ())
  in

  (* 4. inspect the stabilization analysis *)
  Format.printf "%a@." Graybox.Stabilize.pp result.analysis;
  Printf.printf "CS entries served : %d\n" result.total_entries;
  Printf.printf "wrapper messages  : %d of %d total\n" result.wrapper_sends
    result.sent_total;
  (match result.recovery_latency with
   | Some l ->
     Printf.printf
       "full service round: every process ate within %d steps of the fault\n" l
   | None -> print_endline "full service round: never (still broken!)");
  print_endline "";

  (* 5. the same scenario without the wrapper, for contrast *)
  let bare = Tme.Scenarios.run protocol ~n:4 ~seed:42 ~steps:8000 ~faults in
  Printf.printf
    "Without the wrapper: recovered=%b, starving processes=[%s]\n"
    bare.analysis.recovered
    (String.concat ";" (List.map string_of_int bare.analysis.starving));
  print_endline "";
  print_endline
    (if result.analysis.recovered && not bare.analysis.recovered then
       "The wrapper turned a permanent deadlock into a transient glitch."
     else "Unexpected outcome - inspect the traces!")
