examples/rvc_reset.ml: List Rvc Stdext Tabular
