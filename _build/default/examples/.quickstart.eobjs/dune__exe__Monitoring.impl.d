examples/monitoring.ml: Array Format Graybox Printf Sim Tme Unityspec
