examples/deadlock_recovery.ml: Array Format Graybox List Option Printf Sim String Tme View
