examples/counterexample.mli:
