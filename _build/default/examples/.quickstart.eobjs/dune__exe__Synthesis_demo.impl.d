examples/synthesis_demo.ml: Actsys Format Kernel List Printf Product String Synthesis Tsys
