examples/rvc_reset.mli:
