examples/counterexample.ml: Fig1 Format Kernel List Option Printf String Theorem1 Tme Tsys
