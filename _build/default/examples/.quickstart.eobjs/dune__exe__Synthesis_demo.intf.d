examples/synthesis_demo.mli:
