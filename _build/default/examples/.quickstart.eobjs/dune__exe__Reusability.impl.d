examples/reusability.ml: List Option Printf Stdext Tabular Tme
