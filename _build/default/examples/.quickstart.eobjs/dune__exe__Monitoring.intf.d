examples/monitoring.mli:
