examples/deadlock_recovery.mli:
