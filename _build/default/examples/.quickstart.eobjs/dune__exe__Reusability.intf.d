examples/reusability.mli:
