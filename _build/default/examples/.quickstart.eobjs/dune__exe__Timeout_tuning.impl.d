examples/timeout_tuning.ml: List Option Stdext Tabular Tme
