examples/quickstart.mli:
