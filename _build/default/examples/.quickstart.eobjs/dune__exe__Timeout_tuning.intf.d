examples/timeout_tuning.mli:
