examples/quickstart.ml: Format Graybox List Option Printf String Tme
