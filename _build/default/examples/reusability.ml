(* Reusability (paper §5, Corollary 11): ONE wrapper value, defined
   against Lspec alone, stabilizes every everywhere-implementation of
   Lspec — here Ricart-Agrawala and the modified Lamport program —
   and fails exactly where the theory says it must: on the unmodified
   Lamport program, which only implements Lspec from initial states.

   Run with:  dune exec examples/reusability.exe *)

let wrapper = Tme.Scenarios.wrapped ~delta:4 ()
(* ^ this single value is the entire protocol-specific configuration:
   there is none.  The wrapper reads only the spec-level view. *)

let seeds = [ 1; 2; 3; 4; 5 ]

let attempt proto_name =
  let proto = Option.get (Tme.Scenarios.find_protocol proto_name) in
  let recovered_runs =
    List.filter
      (fun seed ->
        (Tme.Scenarios.run proto ~n:4 ~seed ~steps:8000 ~wrapper
           ~faults:(Tme.Scenarios.burst ~at:1000))
          .analysis.recovered)
      seeds
  in
  (proto_name, List.length recovered_runs, List.length seeds)

let () =
  print_endline "== One wrapper, three implementations ==";
  print_endline "";
  print_endline
    "Fault: burst at t=1000 (state corruption of every process + message";
  print_endline "corruption + message loss), five different corruption draws.";
  print_endline "";
  let open Stdext in
  let table = Tabular.create [ "implementation"; "recovered"; "expected" ] in
  List.iter
    (fun (name, expected) ->
      let name, ok, total = attempt name in
      Tabular.add_row table
        [ name; Printf.sprintf "%d/%d" ok total; expected ])
    [ ("ra", "all: everywhere implements Lspec");
      ("ra-gcl", "all: the paper's program text, transliterated");
      ("lamport", "all: everywhere implements Lspec");
      ("lamport-unmod", "some fail: implements Lspec only from Init") ];
  Tabular.print table;
  print_endline "";
  print_endline
    "The wrapper was designed from the specification; it never saw any";
  print_endline
    "of these implementations.  That is graybox stabilization."
