(* Figure 1, executed: implementing a specification from initial
   states is NOT enough for stabilization to transfer.

   The kernel systems are checked exactly (finite-state model
   checking); the simulator shows the same phenomenon at protocol
   scale with the unmodified Lamport program.

   Run with:  dune exec examples/counterexample.exe *)

open Kernel

let yn b = if b then "yes" else "NO"

let () =
  print_endline "== Figure 1 (exact, on finite transition systems) ==";
  print_endline "";
  Format.printf "Specification A:@.%a@.@." Tsys.pp Fig1.a;
  Format.printf "Implementation C:@.%a@.@." Tsys.pp Fig1.c;
  Printf.printf "[C => A]init (implements from initial states) : %s\n"
    (yn (Tsys.implements_from_init Fig1.c Fig1.a));
  Printf.printf "[C => A]     (everywhere implements)          : %s\n"
    (yn (Tsys.everywhere_implements Fig1.c Fig1.a));
  Printf.printf "A is stabilizing to A                         : %s\n"
    (yn (Tsys.is_stabilizing_to Fig1.a Fig1.a));
  Printf.printf "C is stabilizing to A                         : %s\n"
    (yn (Tsys.is_stabilizing_to Fig1.c Fig1.a));
  (match Tsys.stabilization_counterexample Fig1.c Fig1.a with
   | Some witness ->
     Printf.printf "witness computation with no legitimate suffix : %s\n"
       (String.concat " -> " (List.map (Tsys.name Fig1.c) witness))
   | None -> ());
  print_endline "";
  print_endline "After the transient fault F throws s0 to s*:";
  print_endline "  A recovers (it has the edge s* -> s2); C is stuck at s*.";
  print_endline "";

  print_endline "== Theorem 1 instance (machine-checked) ==";
  Printf.printf "hypotheses ([C=>A], A box W stabilizing, [W'=>W]) : %s\n"
    (yn
       (Theorem1.hypotheses_hold ~c:Theorem1.c ~a:Theorem1.a ~w:Theorem1.w
          ~w':Theorem1.w'));
  Printf.printf "conclusion (C box W' stabilizing to A)            : %s\n"
    (yn
       (Tsys.is_stabilizing_to
          (Tsys.box Theorem1.c Theorem1.w')
          Theorem1.a));
  print_endline "";

  print_endline "== The same lesson at protocol scale ==";
  print_endline "";
  print_endline
    "The unmodified Lamport program is a correct mutual exclusion";
  print_endline
    "algorithm (it implements Lspec from Init) but not an everywhere";
  print_endline
    "implementation: corrupt its request queue and the wrapper cannot";
  print_endline "help, because no wrapper message dislodges a queue entry.";
  print_endline "";
  let unmod = Option.get (Tme.Scenarios.find_protocol "lamport-unmod") in
  let lamport = Option.get (Tme.Scenarios.find_protocol "lamport") in
  let wrapper = Tme.Scenarios.wrapped ~delta:4 () in
  let run proto seed =
    (Tme.Scenarios.run proto ~n:4 ~seed ~steps:8000 ~wrapper
       ~faults:(Tme.Scenarios.burst ~at:800))
      .analysis.recovered
  in
  let seeds = [ 11; 12; 13; 14 ] in
  List.iter
    (fun seed ->
      Printf.printf
        "seed %d: modified Lamport + W recovers: %-3s   unmodified + W: %s\n"
        seed
        (yn (run lamport seed))
        (yn (run unmod seed)))
    seeds
