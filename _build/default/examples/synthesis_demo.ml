(* Automatic synthesis of graybox wrappers (the paper's closing
   research direction, §6), demonstrated end to end:

   1. a local specification (a two-state legitimate cycle) and a local
      system with an idling fault state;
   2. the synthesizer computes the minimal correction action from the
      specification alone;
   3. per-process wrappers compose: the product of two such systems is
      stabilized by the product of the two synthesized local wrappers
      (Theorem 4, machine-checked under weak fairness).

   Run with:  dune exec examples/synthesis_demo.exe *)

open Kernel

let g0 = 0
let g1 = 1
let b = 2

let local_spec =
  Tsys.create ~n:3 ~names:[| "g0"; "g1"; "b" |]
    ~edges:[ (g0, g1); (g1, g0) ]
    ~init:[ g0 ] ()

let local_sys =
  Actsys.create ~n:3 ~names:[| "g0"; "g1"; "b" |]
    ~actions:[ ("prog", [ (g0, g1); (g1, g0) ]); ("idle", [ (b, b) ]) ]
    ~init:[ g0 ] ()

let () =
  print_endline "== Synthesizing a stabilization wrapper ==";
  print_endline "";
  Format.printf "Local specification (legitimate behaviour):@.%a@.@." Tsys.pp
    local_spec;
  Printf.printf "States needing correction: [%s]\n"
    (String.concat ";"
       (List.map (Tsys.name local_spec)
          (Synthesis.needs_correction local_sys ~spec:local_spec)));
  match Synthesis.synthesize local_sys ~spec:local_spec with
  | None -> print_endline "synthesis failed (no legitimate target)"
  | Some w ->
    List.iter
      (fun (u, v) ->
        Printf.printf "Synthesized correction: %s -> %s\n"
          (Tsys.name local_spec u) (Tsys.name local_spec v))
      (Actsys.transitions w "correct");
    Printf.printf "Minimal: %b\n"
      (Synthesis.is_minimal local_sys ~spec:local_spec ~wrapper:w);
    Printf.printf "Local system + wrapper fairly stabilizes: %b\n"
      (Actsys.is_fairly_stabilizing_to (Actsys.box local_sys w) local_spec);
    print_endline "";
    print_endline "== Theorem 4: local wrappers compose ==";
    let global_sys = Product.compose_act [ local_sys; local_sys ] in
    let global_spec = Product.compose [ local_spec; local_spec ] in
    let global_wrapper = Product.compose_act [ w; w ] in
    Printf.printf "product alone stabilizes          : %b (expected false)\n"
      (Actsys.is_fairly_stabilizing_to global_sys global_spec);
    Printf.printf "product + composed local wrappers : %b (expected true)\n"
      (Actsys.is_fairly_stabilizing_to
         (Actsys.box global_sys global_wrapper)
         global_spec);
    print_endline "";
    print_endline
      "The wrappers were synthesized from the local specifications only -";
    print_endline
      "never from the composed system: graybox design, automated."
