(* The second graybox case study: resettable vector clocks (the
   paper's references [1,4], and the §2.2 design method's level-1
   wrapper with exception notification).

   Vector clocks with components bounded by B.  Overflow or transient
   corruption makes a clock ill-formed; the level-1 wrapper resets it
   and bumps an epoch (the "exception"); receivers adopt newer epochs
   (the level-2 reconciliation).

   Run with:  dune exec examples/rvc_reset.exe *)

open Stdext

let () =
  print_endline "== Resettable vector clocks under corruption ==";
  print_endline "";
  let table =
    Tabular.create
      [ "wrapper"; "recovered"; "recovery steps"; "resets";
        "ill-formed at end"; "hb sound" ]
  in
  List.iter
    (fun wrapper ->
      let o =
        Rvc.System.run ~corrupt_at:500
          { Rvc.System.n = 4; bound = 60; wrapper }
          ~seed:3 ~steps:5000
      in
      Tabular.add_row table
        [ (if wrapper then "level-1 reset" else "none");
          Tabular.cell_bool o.Rvc.System.recovered;
          (match o.Rvc.System.recovery_steps with
           | Some s -> string_of_int s
           | None -> "-");
          string_of_int o.Rvc.System.resets;
          string_of_int o.Rvc.System.ill_at_end;
          Tabular.cell_bool o.Rvc.System.hb_sound ])
    [ false; true ];
  Tabular.print ~title:"Corrupt every clock at t=500" table;
  print_endline "";
  print_endline
    "Without the wrapper a corrupted component spreads through merges";
  print_endline
    "and the system never returns to well-formed states.  The level-1";
  print_endline
    "wrapper restores internal consistency locally; the epoch carried";
  print_endline
    "on every stamp notifies the other processes, exactly the";
  print_endline "\"exception\" mechanism of the paper's design method (2.2)."
