(* Online monitoring: watch a wrapped system break and heal, live.

   Instead of recording a trace and checking it afterwards, this
   example drives the engine step by step and feeds each global view
   snapshot to incremental UNITY monitors (Unityspec.Online).  The
   mutual exclusion invariant is violated moments after the fault and
   the violation index is reported by the monitor itself; a second,
   fresh monitor started after recovery stays clean.

   Run with:  dune exec examples/monitoring.exe *)

module P = Tme.Ra_me
module H = Graybox.Harness.Make (P)

let me1_monitor =
  Unityspec.Online.invariant ~name:"ME1" (fun views ->
      Array.fold_left
        (fun eaters v -> if Graybox.View.eating v then eaters + 1 else eaters)
        0 views
      <= 1)

let () =
  let params =
    Graybox.Harness.params
      ~wrapper:(Graybox.Harness.On { variant = Graybox.Wrapper.Refined; delta = 4 })
      ~n:4 ()
  in
  let engine = H.make_engine ~record:false params ~seed:12 in
  let monitor = ref me1_monitor in
  let corrupt_time = 600 in
  let violated_at = ref None in
  for _ = 1 to 6000 do
    if H.Run.time engine = corrupt_time then
      H.Run.apply_fault engine (H.fault_corrupt_process Sim.Faults.Any_proc);
    ignore (H.Run.step engine);
    monitor := Unityspec.Online.feed !monitor (H.views engine);
    match !violated_at, Unityspec.Online.verdict !monitor with
    | None, Unityspec.Temporal.Violated { at; _ } -> violated_at := Some at
    | _ -> ()
  done;
  (match !violated_at with
   | Some at ->
     Printf.printf
       "ME1 violated at monitor index %d (fault was injected at engine \
        time %d):\nthe corruption made two processes believe they were \
        earliest.\n"
       at corrupt_time
   | None ->
     Printf.printf
       "This corruption draw did not produce a double-entry (ME1 held \
        throughout).\n");

  (* a fresh monitor over the post-recovery period must stay clean *)
  let late = ref me1_monitor in
  for _ = 1 to 4000 do
    ignore (H.Run.step engine);
    late := Unityspec.Online.feed !late (H.views engine)
  done;
  Printf.printf "Post-recovery ME1 verdict over 4000 further steps: %s\n"
    (Format.asprintf "%a" Unityspec.Temporal.pp_verdict
       (Unityspec.Online.verdict !late));
  Printf.printf "Total CS entries served: %d\n" (H.total_entries engine)
