(* The paper's §4 deadlock scenario, narrated step by step.

   "Suppose processes j and k have both requested the CS.  Due to
   transient faults (e.g., REQ_j and REQ_k are both dropped from the
   channels) j and k may have mutually inconsistent information:
   j.REQ_k lt REQ_j and k.REQ_j lt REQ_k.  Process j cannot enter CS
   ... likewise k ... the state of M has a deadlock."

   This example reproduces the deadlock in the simulator, shows the
   mutual inconsistency in the views, and then shows the wrapper
   clearing it.

   Run with:  dune exec examples/deadlock_recovery.exe *)

open Graybox

let faults =
  [ Tme.Scenarios.Drop_requests_window { from_t = 400; until_t = 460 } ]

let hungry_views (r : Tme.Scenarios.result) =
  (* the views at the end of the run *)
  match List.rev r.vtrace with
  | [] -> [||]
  | last :: _ -> last.Sim.Trace.states

let show_views label views =
  Printf.printf "%s\n" label;
  Array.iter (fun v -> Format.printf "  %a@." View.pp v) views

let mutual_inconsistency views =
  (* find a hungry pair with j.REQ_k lt REQ_j and k.REQ_j lt REQ_k *)
  let n = Array.length views in
  let pairs = ref [] in
  for j = 0 to n - 1 do
    for k = j + 1 to n - 1 do
      let vj = views.(j) and vk = views.(k) in
      if
        View.hungry vj && View.hungry vk
        && View.earlier vj ~than:vj.View.req k
        && View.earlier vk ~than:vk.View.req j
      then pairs := (j, k) :: !pairs
    done
  done;
  !pairs

let () =
  let protocol = Option.get (Tme.Scenarios.find_protocol "ra") in
  print_endline "== The paper's deadlock scenario (unwrapped) ==";
  let bare = Tme.Scenarios.run protocol ~n:4 ~seed:7 ~steps:6000 ~faults in
  let views = hungry_views bare in
  show_views "Final views (t/h/e = thinking/hungry/eating):" views;
  (match mutual_inconsistency views with
   | [] ->
     print_endline "No mutually inconsistent hungry pair found (try another seed)."
   | pairs ->
     List.iter
       (fun (j, k) ->
         Printf.printf
           "Processes %d and %d are mutually inconsistent:\n\
           \  %d.REQ_%d lt REQ_%d and %d.REQ_%d lt REQ_%d - each waits for the other.\n"
           j k j k j k j k)
       pairs);
  Printf.printf "Recovered: %b; starving: [%s]\n\n" bare.analysis.recovered
    (String.concat ";" (List.map string_of_int bare.analysis.starving));

  print_endline "== Same fault, with the graybox wrapper W ==";
  let wrapped =
    Tme.Scenarios.run protocol ~n:4 ~seed:7 ~steps:6000 ~faults
      ~wrapper:(Tme.Scenarios.wrapped ~delta:0 ())
  in
  show_views "Final views:" (hungry_views wrapped);
  Printf.printf "Recovered: %b; wrapper sent %d corrective requests.\n"
    wrapped.analysis.recovered wrapped.wrapper_sends;
  print_endline "";
  print_endline
    "W_j :: h.j -> (forall k : j.REQ_k lt REQ_j : send(REQ_j, j, k))  -";
  print_endline
    "resending the own request repairs k.REQ_j at the receiver, whose";
  print_endline
    "reply (Reply Spec) then repairs j.REQ_k: the deadlock dissolves."
