(** CEGIS over the wrapper DSL: enumerate level-2 guard terms in size
    order, prune with learned counterexamples, certify with the
    model-checking oracle.

    The paper derives its wrapper [W] by hand from the Lspec proof
    obligations; this module asks whether the harness can find it.
    The search space is {!Graybox.Wrapper}'s guard/send language —
    mode predicates, boolean connectives, peer-timestamp quantifiers,
    a target filter, and a send kind — and the specification is
    {!Mcheck.Oracle.check}: everywhere-mode ME1 over the corruption
    closure (safety) plus re-entry from every §4 wedge (recovery and
    progress).  The loop is classic counterexample-guided synthesis:

    - candidates are enumerated in {e size order} (ties broken by a
      fixed total order, targets restrictive-first), so the first
      certified term is size-minimal and, within its size tier, sends
      the least;
    - a {e safety} counterexample is generalized to its blamed
      firings: any future candidate reproducing one of those exact
      observable firings (same send kind, same view, same target set)
      is pruned without an oracle call;
    - a {e recovery}/{e progress} counterexample is generalized to a
      must-fire obligation: future candidates that cannot fire from
      any view of the stuck wedge are pruned — this single example
      eliminates whole guard families (wrong mode, never-true tests)
      after one oracle call;
    - {!Graybox.Wrapper.Timer_zero} is excluded from the space: the
      oracle abstracts the timer to zero, so the gate is invisible to
      certification — δ rate-limiting is applied at registration
      ([Wrapper.timed] / [Harness.On_term]), exactly as [W'] refines
      [W] in the paper.

    Determinism: candidates are dispatched in fixed-width batches over
    {!Stdext.Pool.map} (input-ordered results) and admitted against
    the example set as of the previous batch, and the oracle's
    verdicts are themselves [jobs]/[shards]-invariant — so the full
    transcript, every count, and the synthesized term are identical
    for every [jobs] value. *)

type config = {
  n : int;  (** ring size the oracle certifies at *)
  jobs : int;  (** pool width for fanning candidate checks *)
  max_size : int;  (** largest term size enumerated *)
  max_checks : int;  (** oracle-call budget *)
  safety_depth : int;
  recovery_depth : int;
  max_states : int;  (** per-oracle-run visited-state bound *)
}

val config :
  ?n:int -> ?jobs:int -> ?max_size:int -> ?max_checks:int ->
  ?safety_depth:int -> ?recovery_depth:int -> ?max_states:int -> unit ->
  config
(** Defaults: [n = 2], [jobs = 1], [max_size = 5], [max_checks = 64],
    [safety_depth = 8], [recovery_depth = 14], [max_states = 200_000].
    @raise Invalid_argument on senseless values ([n < 2],
    [max_size < 3], non-positive [jobs]/[max_checks]). *)

type outcome =
  | Certified  (** the oracle passed both legs *)
  | Refuted of Mcheck.Oracle.obligation  (** which leg failed *)
  | Pruned_must_fire
      (** cannot fire from any view of a learned stuck wedge *)
  | Pruned_blamed
      (** reproduces a blamed firing of an earlier safety cex *)

type attempt = { index : int; term : Graybox.Wrapper.t; outcome : outcome }
(** One transcript line; [index] is the candidate's position in the
    enumeration (pruned candidates included). *)

type result = {
  synthesized : Graybox.Wrapper.t option;
      (** the first certified candidate, or [None] if the budget or
          the enumeration ran out *)
  attempts : attempt list;  (** in enumeration order *)
  enumerated : int;  (** total candidates in the enumerated space *)
  checked : int;  (** oracle calls spent *)
  pruned : int;  (** candidates rejected without an oracle call *)
  oracle_runs : int;  (** exploration runs across all oracle calls *)
  oracle_states : int;  (** states explored across all oracle calls *)
}

val outcome_label : outcome -> string
(** ["certified"], ["cex-safety"], ["cex-recovery(p)"],
    ["cex-progress"], ["pruned-must-fire"], ["pruned-blamed"]. *)

val synthesize : (module Graybox.Protocol.S) -> config -> result
(** [synthesize proto cfg] runs the loop to the first certified
    candidate or the budget's end.  For Ricart-Agrawala the result is
    {!Graybox.Wrapper.w_refined} — the paper's refined [W_j] — found
    after two oracle-informative batches (the test suite asserts the
    coincidence). *)
