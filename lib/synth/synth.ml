(** Counterexample-guided synthesis of level-2 wrappers (see the
    interface for the loop invariants). *)

module W = Graybox.Wrapper
module O = Mcheck.Oracle

type config = {
  n : int;
  jobs : int;
  max_size : int;
  max_checks : int;
  safety_depth : int;
  recovery_depth : int;
  max_states : int;
}

let config ?(n = 2) ?(jobs = 1) ?(max_size = 5) ?(max_checks = 64)
    ?(safety_depth = 8) ?(recovery_depth = 14) ?(max_states = 200_000) () =
  if n < 2 then invalid_arg "Synth.config: need at least two processes";
  if jobs < 1 then invalid_arg "Synth.config: jobs must be positive";
  if max_size < 3 then
    invalid_arg "Synth.config: no term is smaller than size 3";
  if max_checks < 1 then invalid_arg "Synth.config: max_checks must be positive";
  { n; jobs; max_size; max_checks; safety_depth; recovery_depth; max_states }

type outcome =
  | Certified
  | Refuted of O.obligation
  | Pruned_must_fire
  | Pruned_blamed

type attempt = { index : int; term : W.t; outcome : outcome }

type result = {
  synthesized : W.t option;
  attempts : attempt list;
  enumerated : int;
  checked : int;
  pruned : int;
  oracle_runs : int;
  oracle_states : int;
}

let outcome_label = function
  | Certified -> "certified"
  | Refuted o -> "cex-" ^ O.obligation_label o
  | Pruned_must_fire -> "pruned-must-fire"
  | Pruned_blamed -> "pruned-blamed"

(* ------------------------------------------------------------------ *)
(* Enumeration: guards by exact AST size, in a fixed total order.      *)

let peer_tests = [ W.Peer_lt_own; W.Own_lt_peer; W.Any_peer ]
let sends = [ W.Send_request; W.Send_reply; W.Send_release ]

(* [Timer_zero] is excluded from the search space: the oracle
   abstracts the harness timer to zero, so a timer gate is invisible
   to certification — the δ rate limit is applied at registration
   ([Harness.On_term]/[Wrapper.timed]), exactly as [W'] refines [W]. *)
let guards_of_size =
  let memo : (int, W.guard list) Hashtbl.t = Hashtbl.create 8 in
  let rec go s =
    match Hashtbl.find_opt memo s with
    | Some gs -> gs
    | None ->
      let gs =
        match s with
        | 1 -> [ W.Mode Is_thinking; W.Mode Is_hungry; W.Mode Is_eating ]
        | 2 ->
          List.map (fun t -> W.Exists_peer t) peer_tests
          @ List.map (fun t -> W.Forall_peer t) peer_tests
          @ List.map (fun g -> W.Not g) (go 1)
        | s when s > 2 ->
          List.map (fun g -> W.Not g) (go (s - 1))
          @ List.concat_map
              (fun ls ->
                List.concat_map
                  (fun l ->
                    List.concat_map
                      (fun r -> [ W.And (l, r); W.Or (l, r) ])
                      (go (s - 1 - ls)))
                  (go ls))
              (List.init (s - 2) (fun i -> i + 1))
        | _ -> []
      in
      Hashtbl.add memo s gs;
      gs
  in
  go

(* Candidates of term size [s] (= guard size + 2 for target/send), in
   the order the loop tries them.  Within one guard, targets go
   restrictive-first — so among equally small certified candidates the
   first found also sends the least — and the honest send first. *)
let candidates_of_size s =
  List.concat_map
    (fun guard ->
      List.concat_map
        (fun target ->
          List.map (fun send -> { W.guard; target; send }) sends)
        peer_tests)
    (guards_of_size (s - 2))

(* ------------------------------------------------------------------ *)
(* Examples and pruning                                                *)

(* A positive example is a [View.t list]: views from a wedge the
   candidate failed to leave.  Any future candidate must fire from at
   least one of them (for a singleton wedge the list is just the
   wedged process's view — only its own resend can restore the lost
   request). *)

(* A negative example: one blamed firing of a refuted candidate —
   the send kind, the view it fired from, and the exact target set.
   A future candidate reproducing that exact observable firing would
   ride the same counterexample. *)
type negative = { neg_send : W.send; neg_view : Graybox.View.t;
                  neg_targets : Sim.Pid.t list }

let fires cfg c v = W.term_targets c v ~n:cfg.n ~timer:0 <> []

let pruned cfg ~positives ~negatives c =
  if
    List.exists
      (fun views -> not (List.exists (fires cfg c) views))
      positives
  then Some Pruned_must_fire
  else if
    List.exists
      (fun neg ->
        c.W.send = neg.neg_send
        && W.term_targets c neg.neg_view ~n:cfg.n ~timer:0 = neg.neg_targets)
      negatives
  then Some Pruned_blamed
  else None

(* Generalize a counterexample into examples for the pruner. *)
let learn cfg c (cex : O.cex) ~positives ~negatives =
  match cex.O.obligation with
  | O.Safety ->
    let negs =
      List.map
        (fun ((_p : int), v) ->
          { neg_send = c.W.send;
            neg_view = v;
            neg_targets = W.term_targets c v ~n:cfg.n ~timer:0 })
        cex.O.fired
    in
    (positives, negs @ negatives)
  | O.Recovery p ->
    let pos =
      List.concat_map (fun views -> [ [ views.(p) ] ]) cex.O.path
    in
    (pos @ positives, negatives)
  | O.Progress ->
    let pos = List.map Array.to_list cex.O.path in
    (pos @ positives, negatives)

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)

(* Fixed batch width: candidates are admitted against the example set
   as of the previous batch, dispatched over the pool, and their
   verdicts scanned in input order — so the transcript (and the
   synthesized term) is identical for every [jobs] value. *)
let batch_width = 8

let synthesize (module P : Graybox.Protocol.S) cfg =
  let check c =
    O.check
      (module P)
      ~n:cfg.n ~jobs:1 ~safety_depth:cfg.safety_depth
      ~recovery_depth:cfg.recovery_depth ~max_states:cfg.max_states c
  in
  let stream =
    List.concat_map candidates_of_size
      (List.init (cfg.max_size - 2) (fun i -> i + 3))
  in
  let enumerated = List.length stream in
  let attempts = ref [] in
  let checked = ref 0 in
  let pruned_n = ref 0 in
  let oracle_runs = ref 0 in
  let oracle_states = ref 0 in
  let account stats =
    oracle_runs := !oracle_runs + List.length stats;
    List.iter (fun s -> oracle_states := !oracle_states + s.Mcheck.explored)
      stats
  in
  let rec loop index stream positives negatives =
    if stream = [] || !checked >= cfg.max_checks then None
    else begin
      (* admit one batch against the current examples *)
      let rec admit index stream batch =
        if List.length batch = batch_width
           || !checked + List.length batch >= cfg.max_checks
        then (index, stream, List.rev batch)
        else
          match stream with
          | [] -> (index, stream, List.rev batch)
          | c :: rest -> (
            match pruned cfg ~positives ~negatives c with
            | Some outcome ->
              incr pruned_n;
              attempts := { index; term = c; outcome } :: !attempts;
              admit (index + 1) rest batch
            | None -> admit (index + 1) rest ((index, c) :: batch))
      in
      let index, stream, batch = admit index stream [] in
      if batch = [] then loop index stream positives negatives
      else begin
        let verdicts =
          Stdext.Pool.map ~jobs:cfg.jobs (fun (_, c) -> check c) batch
        in
        checked := !checked + List.length batch;
        (* scan in input order: every verdict is recorded (the whole
           batch was paid for), every refutation teaches, and the
           first certified candidate in enumeration order wins *)
        let certified = ref None in
        let positives = ref positives and negatives = ref negatives in
        List.iter2
          (fun (i, c) verdict ->
            match verdict with
            | O.Safe stats ->
              account stats;
              attempts := { index = i; term = c; outcome = Certified }
                          :: !attempts;
              if !certified = None then certified := Some c
            | O.Cex cex ->
              account cex.O.stats;
              attempts :=
                { index = i; term = c; outcome = Refuted cex.O.obligation }
                :: !attempts;
              let pos, neg =
                learn cfg c cex ~positives:!positives ~negatives:!negatives
              in
              positives := pos;
              negatives := neg)
          batch verdicts;
        match !certified with
        | Some c -> Some c
        | None -> loop index stream !positives !negatives
      end
    end
  in
  let synthesized = loop 0 stream [] [] in
  { synthesized;
    attempts =
      List.sort (fun a b -> compare a.index b.index) (List.rev !attempts);
    enumerated;
    checked = !checked;
    pruned = !pruned_n;
    oracle_runs = !oracle_runs;
    oracle_states = !oracle_states }
