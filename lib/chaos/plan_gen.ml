open Stdext
module S = Tme.Scenarios

type config = { n : int; horizon : int; budget : int; partitions : bool }

let config ?(partitions = false) ~n ~horizon ~budget () =
  if n < 2 then invalid_arg "Plan_gen.config: need n >= 2";
  if horizon < 10 then invalid_arg "Plan_gen.config: need horizon >= 10";
  if budget < 0 then invalid_arg "Plan_gen.config: need budget >= 0";
  { n; horizon; budget; partitions }

(* Faults land in the first ~60% of the horizon so the tail is long
   enough for convergence analysis to have a suffix to judge. *)
let latest_fault cfg = max 1 (cfg.horizon * 3 / 5)

let spec_time = function
  | S.Drop_requests { at; _ }
  | S.Drop_any { at; _ }
  | S.Duplicate { at; _ }
  | S.Corrupt_messages { at; _ }
  | S.Reorder { at; _ }
  | S.Flush { at }
  | S.Corrupt_state { at; _ }
  | S.Reset_state { at; _ } -> at
  | S.Drop_requests_window { from_t; _ }
  | S.Partition { from_t; _ }
  | S.Crash { from_t; _ }
  | S.Split { from_t; _ } -> from_t
  | S.Delay { at; _ } -> at

let gen_procs rng n =
  if Rng.chance rng 0.3 then Sim.Faults.Any_proc
  else Sim.Faults.Proc (Rng.int rng n)

(* A random two-sided partition: [k] shuffled pids on one side, the
   implicit remainder on the other — stored explicitly so labels and
   shrinking see the whole group structure. *)
let gen_split rng cfg ~at ~mode =
  let pids = Rng.shuffle_list rng (Sim.Pid.range cfg.n) in
  let k = Rng.int_in rng 1 (cfg.n - 1) in
  let groups = Sim.Faults.split_groups ~n:cfg.n [ List.filteri (fun i _ -> i < k) pids ] in
  S.Split { groups; from_t = at; until_t = at + Rng.int_in rng 20 80; mode }

let gen_chan rng n =
  match Rng.int rng 4 with
  | 0 -> Sim.Faults.Any_chan
  | 1 ->
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    Sim.Faults.Chan (src, dst)
  | 2 -> Sim.Faults.From (Rng.int rng n)
  | _ -> Sim.Faults.Into (Rng.int rng n)

let gen_dist rng =
  match Rng.int rng 3 with
  | 0 -> Sim.Faults.Fixed (Rng.int_in rng 1 6)
  | 1 -> Sim.Faults.Uniform (0, Rng.int_in rng 4 20)
  | _ -> Sim.Faults.Heavy_tail { mean = Rng.int_in rng 5 30; cap = 120 }

let gen_spec rng cfg =
  let at = Rng.int_in rng 1 (latest_fault cfg) in
  let per_chan = Rng.int_in rng 1 3 in
  (* the partition family joins the draw pool only when enabled, so
     default plan streams (and the golden campaign report) are
     unchanged kind for kind, draw for draw *)
  match Rng.int rng (if cfg.partitions then 13 else 11) with
  | 0 -> S.Drop_requests { at; per_chan }
  | 1 ->
    S.Drop_requests_window { from_t = at; until_t = at + Rng.int_in rng 1 40 }
  | 2 -> S.Drop_any { at; per_chan }
  | 3 -> S.Duplicate { at; per_chan }
  | 4 -> S.Corrupt_messages { at; per_chan }
  | 5 -> S.Reorder { at; per_chan }
  | 6 -> S.Flush { at }
  | 7 ->
    S.Partition
      { pid = Rng.int rng cfg.n; from_t = at; until_t = at + Rng.int_in rng 1 40 }
  | 8 -> S.Corrupt_state { at; procs = gen_procs rng cfg.n }
  | 9 -> S.Reset_state { at; procs = gen_procs rng cfg.n }
  | 10 ->
    S.Crash
      { procs = gen_procs rng cfg.n;
        from_t = at;
        until_t = at + Rng.int_in rng 1 60;
        lose = Rng.bool rng }
  | 11 ->
    gen_split rng cfg ~at
      ~mode:(if Rng.bool rng then Sim.Faults.Buffered else Sim.Faults.Lossy)
  | _ -> S.Delay { at; chan = gen_chan rng cfg.n; dist = gen_dist rng }

let generate rng cfg =
  List.init cfg.budget (fun _ -> gen_spec rng cfg)
  |> List.stable_sort (fun a b -> compare (spec_time a) (spec_time b))

let split_plan rng cfg ~mode =
  [ gen_split rng cfg ~at:(Rng.int_in rng 1 (latest_fault cfg)) ~mode ]

(* ------------------------------------------------------------------ *)
(* Printing: compact labels for tables, and ready-to-paste OCaml for
   shrunk counterexamples.                                             *)

let procs_label = function
  | Sim.Faults.Any_proc -> "any"
  | Sim.Faults.Proc p -> "p" ^ string_of_int p

let chan_label = function
  | Sim.Faults.Any_chan -> "*"
  | Sim.Faults.Chan (src, dst) -> Printf.sprintf "p%d->p%d" src dst
  | Sim.Faults.From src -> Printf.sprintf "p%d->*" src
  | Sim.Faults.Into dst -> Printf.sprintf "*->p%d" dst

let groups_label groups =
  String.concat "|"
    (List.map
       (fun g ->
         "{" ^ String.concat "," (List.map string_of_int g) ^ "}")
       groups)

let mode_label = function Sim.Faults.Lossy -> "lossy" | Sim.Faults.Buffered -> "buf"

let dist_label = function
  | Sim.Faults.Fixed d -> Printf.sprintf "=%d" d
  | Sim.Faults.Uniform (lo, hi) -> Printf.sprintf "~u%d-%d" lo hi
  | Sim.Faults.Heavy_tail { mean; _ } -> Printf.sprintf "~exp%d" mean

let spec_label = function
  | S.Drop_requests { at; per_chan } ->
    Printf.sprintf "drop-requests@%d/%d" at per_chan
  | S.Drop_requests_window { from_t; until_t } ->
    Printf.sprintf "drop-requests@%d-%d" from_t until_t
  | S.Drop_any { at; per_chan } -> Printf.sprintf "drop@%d/%d" at per_chan
  | S.Duplicate { at; per_chan } -> Printf.sprintf "duplicate@%d/%d" at per_chan
  | S.Corrupt_messages { at; per_chan } ->
    Printf.sprintf "corrupt-msgs@%d/%d" at per_chan
  | S.Reorder { at; per_chan } -> Printf.sprintf "reorder@%d/%d" at per_chan
  | S.Flush { at } -> Printf.sprintf "flush@%d" at
  | S.Partition { pid; from_t; until_t } ->
    Printf.sprintf "partition@%d-%d(p%d)" from_t until_t pid
  | S.Corrupt_state { at; procs } ->
    Printf.sprintf "corrupt-state@%d(%s)" at (procs_label procs)
  | S.Reset_state { at; procs } ->
    Printf.sprintf "reset@%d(%s)" at (procs_label procs)
  | S.Crash { procs; from_t; until_t; lose } ->
    Printf.sprintf "crash@%d-%d(%s%s)" from_t until_t (procs_label procs)
      (if lose then ",lose" else "")
  | S.Split { groups; from_t; until_t; mode } ->
    Printf.sprintf "split@%d-%d(%s,%s)" from_t until_t (groups_label groups)
      (mode_label mode)
  | S.Delay { at; chan; dist } ->
    Printf.sprintf "delay@%d(%s,%s)" at (chan_label chan) (dist_label dist)

let plan_label plan = String.concat " " (List.map spec_label plan)

let pp_procs ppf = function
  | Sim.Faults.Any_proc -> Format.pp_print_string ppf "Sim.Faults.Any_proc"
  | Sim.Faults.Proc p -> Format.fprintf ppf "Sim.Faults.Proc %d" p

let pp_spec ppf spec =
  match spec with
  | S.Drop_requests { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Drop_requests { at = %d; per_chan = %d }"
      at per_chan
  | S.Drop_requests_window { from_t; until_t } ->
    Format.fprintf ppf
      "Tme.Scenarios.Drop_requests_window { from_t = %d; until_t = %d }" from_t
      until_t
  | S.Drop_any { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Drop_any { at = %d; per_chan = %d }" at
      per_chan
  | S.Duplicate { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Duplicate { at = %d; per_chan = %d }" at
      per_chan
  | S.Corrupt_messages { at; per_chan } ->
    Format.fprintf ppf
      "Tme.Scenarios.Corrupt_messages { at = %d; per_chan = %d }" at per_chan
  | S.Reorder { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Reorder { at = %d; per_chan = %d }" at
      per_chan
  | S.Flush { at } -> Format.fprintf ppf "Tme.Scenarios.Flush { at = %d }" at
  | S.Partition { pid; from_t; until_t } ->
    Format.fprintf ppf
      "Tme.Scenarios.Partition { pid = %d; from_t = %d; until_t = %d }" pid
      from_t until_t
  | S.Corrupt_state { at; procs } ->
    Format.fprintf ppf "Tme.Scenarios.Corrupt_state { at = %d; procs = %a }" at
      pp_procs procs
  | S.Reset_state { at; procs } ->
    Format.fprintf ppf "Tme.Scenarios.Reset_state { at = %d; procs = %a }" at
      pp_procs procs
  | S.Crash { procs; from_t; until_t; lose } ->
    Format.fprintf ppf
      "Tme.Scenarios.Crash { procs = %a; from_t = %d; until_t = %d; lose = %b \
       }"
      pp_procs procs from_t until_t lose
  | S.Split { groups; from_t; until_t; mode } ->
    Format.fprintf ppf
      "Tme.Scenarios.Split { groups = [ %s ]; from_t = %d; until_t = %d; mode \
       = Sim.Faults.%s }"
      (String.concat "; "
         (List.map
            (fun g ->
              "[ " ^ String.concat "; " (List.map string_of_int g) ^ " ]")
            groups))
      from_t until_t
      (match mode with Sim.Faults.Lossy -> "Lossy" | Sim.Faults.Buffered -> "Buffered")
  | S.Delay { at; chan; dist } ->
    let pp_chan ppf = function
      | Sim.Faults.Any_chan -> Format.pp_print_string ppf "Sim.Faults.Any_chan"
      | Sim.Faults.Chan (s, d) -> Format.fprintf ppf "Sim.Faults.Chan (%d, %d)" s d
      | Sim.Faults.From p -> Format.fprintf ppf "Sim.Faults.From %d" p
      | Sim.Faults.Into p -> Format.fprintf ppf "Sim.Faults.Into %d" p
    in
    let pp_dist ppf = function
      | Sim.Faults.Fixed d -> Format.fprintf ppf "Sim.Faults.Fixed %d" d
      | Sim.Faults.Uniform (lo, hi) ->
        Format.fprintf ppf "Sim.Faults.Uniform (%d, %d)" lo hi
      | Sim.Faults.Heavy_tail { mean; cap } ->
        Format.fprintf ppf "Sim.Faults.Heavy_tail { mean = %d; cap = %d }" mean
          cap
    in
    Format.fprintf ppf "Tme.Scenarios.Delay { at = %d; chan = %a; dist = %a }"
      at pp_chan chan pp_dist dist

let pp_plan ppf = function
  | [] -> Format.pp_print_string ppf "[]"
  | plan ->
    Format.fprintf ppf "@[<hv 2>[ %a ]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         pp_spec)
      plan
