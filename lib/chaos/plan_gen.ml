open Stdext
module S = Tme.Scenarios

type config = { n : int; horizon : int; budget : int }

let config ~n ~horizon ~budget =
  if n < 2 then invalid_arg "Plan_gen.config: need n >= 2";
  if horizon < 10 then invalid_arg "Plan_gen.config: need horizon >= 10";
  if budget < 0 then invalid_arg "Plan_gen.config: need budget >= 0";
  { n; horizon; budget }

(* Faults land in the first ~60% of the horizon so the tail is long
   enough for convergence analysis to have a suffix to judge. *)
let latest_fault cfg = max 1 (cfg.horizon * 3 / 5)

let spec_time = function
  | S.Drop_requests { at; _ }
  | S.Drop_any { at; _ }
  | S.Duplicate { at; _ }
  | S.Corrupt_messages { at; _ }
  | S.Reorder { at; _ }
  | S.Flush { at }
  | S.Corrupt_state { at; _ }
  | S.Reset_state { at; _ } -> at
  | S.Drop_requests_window { from_t; _ }
  | S.Partition { from_t; _ }
  | S.Crash { from_t; _ } -> from_t

let gen_procs rng n =
  if Rng.chance rng 0.3 then Sim.Faults.Any_proc
  else Sim.Faults.Proc (Rng.int rng n)

let gen_spec rng cfg =
  let at = Rng.int_in rng 1 (latest_fault cfg) in
  let per_chan = Rng.int_in rng 1 3 in
  match Rng.int rng 11 with
  | 0 -> S.Drop_requests { at; per_chan }
  | 1 ->
    S.Drop_requests_window { from_t = at; until_t = at + Rng.int_in rng 1 40 }
  | 2 -> S.Drop_any { at; per_chan }
  | 3 -> S.Duplicate { at; per_chan }
  | 4 -> S.Corrupt_messages { at; per_chan }
  | 5 -> S.Reorder { at; per_chan }
  | 6 -> S.Flush { at }
  | 7 ->
    S.Partition
      { pid = Rng.int rng cfg.n; from_t = at; until_t = at + Rng.int_in rng 1 40 }
  | 8 -> S.Corrupt_state { at; procs = gen_procs rng cfg.n }
  | 9 -> S.Reset_state { at; procs = gen_procs rng cfg.n }
  | _ ->
    S.Crash
      { procs = gen_procs rng cfg.n;
        from_t = at;
        until_t = at + Rng.int_in rng 1 60;
        lose = Rng.bool rng }

let generate rng cfg =
  List.init cfg.budget (fun _ -> gen_spec rng cfg)
  |> List.stable_sort (fun a b -> compare (spec_time a) (spec_time b))

(* ------------------------------------------------------------------ *)
(* Printing: compact labels for tables, and ready-to-paste OCaml for
   shrunk counterexamples.                                             *)

let procs_label = function
  | Sim.Faults.Any_proc -> "any"
  | Sim.Faults.Proc p -> "p" ^ string_of_int p

let spec_label = function
  | S.Drop_requests { at; per_chan } ->
    Printf.sprintf "drop-requests@%d/%d" at per_chan
  | S.Drop_requests_window { from_t; until_t } ->
    Printf.sprintf "drop-requests@%d-%d" from_t until_t
  | S.Drop_any { at; per_chan } -> Printf.sprintf "drop@%d/%d" at per_chan
  | S.Duplicate { at; per_chan } -> Printf.sprintf "duplicate@%d/%d" at per_chan
  | S.Corrupt_messages { at; per_chan } ->
    Printf.sprintf "corrupt-msgs@%d/%d" at per_chan
  | S.Reorder { at; per_chan } -> Printf.sprintf "reorder@%d/%d" at per_chan
  | S.Flush { at } -> Printf.sprintf "flush@%d" at
  | S.Partition { pid; from_t; until_t } ->
    Printf.sprintf "partition@%d-%d(p%d)" from_t until_t pid
  | S.Corrupt_state { at; procs } ->
    Printf.sprintf "corrupt-state@%d(%s)" at (procs_label procs)
  | S.Reset_state { at; procs } ->
    Printf.sprintf "reset@%d(%s)" at (procs_label procs)
  | S.Crash { procs; from_t; until_t; lose } ->
    Printf.sprintf "crash@%d-%d(%s%s)" from_t until_t (procs_label procs)
      (if lose then ",lose" else "")

let plan_label plan = String.concat " " (List.map spec_label plan)

let pp_procs ppf = function
  | Sim.Faults.Any_proc -> Format.pp_print_string ppf "Sim.Faults.Any_proc"
  | Sim.Faults.Proc p -> Format.fprintf ppf "Sim.Faults.Proc %d" p

let pp_spec ppf spec =
  match spec with
  | S.Drop_requests { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Drop_requests { at = %d; per_chan = %d }"
      at per_chan
  | S.Drop_requests_window { from_t; until_t } ->
    Format.fprintf ppf
      "Tme.Scenarios.Drop_requests_window { from_t = %d; until_t = %d }" from_t
      until_t
  | S.Drop_any { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Drop_any { at = %d; per_chan = %d }" at
      per_chan
  | S.Duplicate { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Duplicate { at = %d; per_chan = %d }" at
      per_chan
  | S.Corrupt_messages { at; per_chan } ->
    Format.fprintf ppf
      "Tme.Scenarios.Corrupt_messages { at = %d; per_chan = %d }" at per_chan
  | S.Reorder { at; per_chan } ->
    Format.fprintf ppf "Tme.Scenarios.Reorder { at = %d; per_chan = %d }" at
      per_chan
  | S.Flush { at } -> Format.fprintf ppf "Tme.Scenarios.Flush { at = %d }" at
  | S.Partition { pid; from_t; until_t } ->
    Format.fprintf ppf
      "Tme.Scenarios.Partition { pid = %d; from_t = %d; until_t = %d }" pid
      from_t until_t
  | S.Corrupt_state { at; procs } ->
    Format.fprintf ppf "Tme.Scenarios.Corrupt_state { at = %d; procs = %a }" at
      pp_procs procs
  | S.Reset_state { at; procs } ->
    Format.fprintf ppf "Tme.Scenarios.Reset_state { at = %d; procs = %a }" at
      pp_procs procs
  | S.Crash { procs; from_t; until_t; lose } ->
    Format.fprintf ppf
      "Tme.Scenarios.Crash { procs = %a; from_t = %d; until_t = %d; lose = %b \
       }"
      pp_procs procs from_t until_t lose

let pp_plan ppf = function
  | [] -> Format.pp_print_string ppf "[]"
  | plan ->
    Format.fprintf ppf "@[<hv 2>[ %a ]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         pp_spec)
      plan
