(** Outcome classification of a chaos run.

    {!Graybox.Stabilize.analyse} already answers "did the trace converge
    to a legitimate suffix"; a campaign additionally wants to know {e
    how} a run failed, so every run is bucketed into one of five
    verdicts. *)

type verdict =
  | Recovered  (** converged to a legitimate suffix after the last fault *)
  | Me1_violation
      (** mutual exclusion violated after the last fault — the safety
          failure *)
  | Starvation
      (** some (but not all) processes hungry forever — a liveness
          failure *)
  | Deadlock  (** every process starving: the §4 scenario's signature *)
  | Unstable
      (** no legitimate suffix, yet no starving process and no ME1
          violation — e.g. churn that never settles *)

val all : verdict list

val label : verdict -> string
(** Short stable identifier, used in tables and JSON ([recovered],
    [me1-violation], [starvation], [deadlock], [unstable]). *)

val classify : n:int -> Graybox.Stabilize.analysis -> verdict
(** [classify ~n a] buckets an analysis over [n] processes.  The first
    matching rule wins: recovered, ME1 violation, deadlock (all [n]
    starving), starvation (some starving), unstable. *)

val is_failure : verdict -> bool
(** Everything except {!Recovered}. *)
