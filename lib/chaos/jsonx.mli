(** A minimal JSON value and serializer for machine-readable campaign
    reports.  Hand-rolled on purpose: the repo deliberately takes no
    dependency on a JSON library, and reports only need emission, never
    parsing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** [to_string j] is the compact (single-line) JSON rendering.  [Float]
    values that are NaN serialize as [null]. *)

val of_int_option : int option -> t
