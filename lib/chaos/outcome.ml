type verdict = Recovered | Me1_violation | Starvation | Deadlock | Unstable

let all = [ Recovered; Me1_violation; Starvation; Deadlock; Unstable ]

let label = function
  | Recovered -> "recovered"
  | Me1_violation -> "me1-violation"
  | Starvation -> "starvation"
  | Deadlock -> "deadlock"
  | Unstable -> "unstable"

let classify ~n (a : Graybox.Stabilize.analysis) =
  if a.recovered then Recovered
  else if a.me1_violations > 0 then Me1_violation
  else
    match a.starving with
    | [] -> Unstable
    | starving -> if List.length starving >= n then Deadlock else Starvation

let is_failure = function Recovered -> false | _ -> true
