(** The chaos-campaign runner: an adversarial sweep over the fault
    space.

    A campaign fixes a process count, horizon, and wrapper timeout,
    samples [seeds] random fault plans (each of [budget] events, all
    derived from [base_seed] — same seed, same report, bit for bit),
    and runs every plan against every {e cell}: protocol × wrapper
    mode.  Outcomes are classified with {!Outcome.classify} and
    recovery latencies aggregated with {!Stdext.Stats}.

    Cells carry expectations that turn the sweep into a CI gate:
    wrapped everywhere-implementations must recover from {e every}
    generated plan (the paper's §3.1 claim, tested as a property);
    negative controls (e.g. [lamport-unmod]) must fail at least once
    (otherwise the campaign has lost its teeth); unwrapped correct
    protocols are observed without gating.  A deterministic §4
    deadlock canary (unwrapped RA under windowed request loss) is
    included by default as a guaranteed-failing baseline.

    Every gated-or-expected failure is handed to {!Shrink} and reported
    as a minimal, seed-confirmed reproducer. *)

type expectation = Graybox.Registry.expectation =
  | Expect_recover  (** gate: every run must recover *)
  | Expect_failure  (** gate: at least one run must fail *)
  | Observe  (** informational only *)
(** Re-export of {!Graybox.Registry.expectation}: which gate a cell is
    swept under is protocol metadata, owned by the registry. *)

val expectation_label : expectation -> string

type config = {
  base_seed : int;
  seeds : int;  (** plans per cell *)
  budget : int;  (** fault events per plan *)
  n : int;
  steps : int;
  delta : int;  (** wrapper timeout for wrapped cells *)
  protocols : string list;
  include_unwrapped : bool;
  deadlock_canary : bool;
  shrink : bool;
  shrink_max_runs : int;
  max_counterexamples : int;
  jobs : int;
      (** worker domains for the sweep (and shrinking); the report is
          identical for every value ({!Stdext.Pool.map} preserves input
          order and each run is an isolated function of the config) *)
  streaming : bool;
      (** analyse runs online with engine observers instead of
          recording traces (default); the report is byte-identical
          either way — streaming only drops the per-run trace
          allocation and exits deadlocked runs early *)
  partitions : bool;
      (** add the partition fault family to the sweep: generated plans
          may contain group partitions and link delays
          ({!Plan_gen.config}[ ~partitions:true]), and each protocol
          gains extra partition cells — the heal-recovery pair
          [/split-lossy] and [/split-buf] (one group partition per
          run, gated by
          {!Graybox.Registry.entry.partition_expectation}), and the
          [/during-split] cells (wrapped, plus unwrapped when
          [include_unwrapped]) sharing the lossy plan stream and gated
          by {!Graybox.Registry.entry.during_partition} against the
          regime-epoch safety verdict.  All gate readings and the
          unwrapped/buffered demotions are the registry's expectation
          lattice — see {!Graybox.Registry.expectation_of_during}'s
          doc block. *)
}

val default_protocols : string list
(** {!Graybox.Registry.default_sweep} — the acceptance sweep: every
    registry entry with a sweep rank, in rank order (both wrapped
    everywhere-implementations plus the negative control). *)

val config :
  ?base_seed:int -> ?seeds:int -> ?budget:int -> ?n:int -> ?steps:int ->
  ?delta:int -> ?protocols:string list -> ?include_unwrapped:bool ->
  ?deadlock_canary:bool -> ?shrink:bool -> ?shrink_max_runs:int ->
  ?max_counterexamples:int -> ?jobs:int -> ?streaming:bool ->
  ?partitions:bool -> unit -> config
(** Defaults: seed 1, 50 seeds, budget 6, n = 4, 4000 steps, δ = 8,
    protocols [lamport; ra; lamport-unmod], unwrapped cells and the
    deadlock canary included, shrinking on (300 runs, 3 counterexamples),
    [jobs = 1] (serial), streaming analysis on, partitions off.
    @raise Invalid_argument on an empty protocol list, [seeds <= 0],
    [steps < 100], or [jobs < 1]. *)

exception Unknown_protocol of string
(** Raised by {!run} when a configured protocol name does not
    {!resolve}; carries the unknown name. *)

val resolve : string -> (module Graybox.Protocol.S) option
(** {!Graybox.Registry.find_protocol}: every registered implementation
    resolves, including the negative controls. *)

val known_protocols : unit -> string list
(** {!Graybox.Registry.names} — every name {!resolve} accepts, for
    error messages; by construction it cannot drift from the
    resolver. *)

val negative_controls : string list
(** Protocol names whose cells expect failure rather than recovery —
    the registry entries whose expectation is [Expect_failure]. *)

type row = {
  row_seed : int;
  row_plan : Tme.Scenarios.fault_spec list;
  row_verdict : Outcome.verdict;
  row_latency : int option;
  row_epoch : (bool * int) option;
      (** during-split cells only: (epoch-safety verdict, during-split
          CS entries) from {!Graybox.Tme_spec.Epoch}; [None] on every
          other cell, keeping non-partition reports byte-identical *)
}

type latency_stats = {
  samples : int;
  lat_mean : float;
  lat_median : float;
  lat_p95 : float;
  lat_max : float;
}

type cell = {
  cell_label : string;
  cell_protocol : string;
  cell_wrapped : bool;
  cell_expect : expectation;
  cell_during : Graybox.Registry.during_partition option;
      (** [Some] marks a during-split cell, whose expectation gates the
          rows' epoch-safety verdicts rather than their outcomes *)
  rows : row list;
  counts : (Outcome.verdict * int) list;  (** one entry per {!Outcome.all} *)
  latency : latency_stats option;  (** over recovered rows; [None] if none *)
  cell_ok : bool;  (** the cell's expectation was met *)
}

type counterexample = {
  cx_cell : string;
  cx_protocol : string;
  cx_wrapper : Graybox.Harness.wrapper_mode;
  cx_seed : int;
  cx_verdict : Outcome.verdict;
  cx_shrink : Shrink.result;
}

type report = {
  report_config : config;
  cells : cell list;
  counterexamples : counterexample list;
  gate_ok : bool;
      (** every cell met its expectation and every shrunk counterexample
          re-failed under its original seed — the CI exit status *)
}

val run : config -> report

val summary_table : report -> Stdext.Tabular.t
(** One row per cell: verdict counts, recovery-latency median/p95, and
    the gate verdict. *)

val during_table : report -> Stdext.Tabular.t
(** One row per during-split cell: the registered during-partition
    level, epoch-safe run count, total during-split CS entries, and the
    gate verdict.  Empty when the campaign ran without partitions. *)

val has_during_cells : report -> bool
(** Whether {!during_table} has any rows to show. *)

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Human-readable rendering ending in the ready-to-paste OCaml plan. *)

val to_json : report -> Jsonx.t
(** The machine-readable report (config, cells with per-run rows,
    shrunk counterexamples, gate verdict). *)
