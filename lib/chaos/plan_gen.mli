(** Randomized fault-plan generation over the protocol-independent
    {!Tme.Scenarios.fault_spec} vocabulary.

    A plan is a finite batch of transient faults — exactly the paper's
    §3.1 fault model ("any finite number of these faults") — sampled
    from a seeded {!Stdext.Rng} stream, so a campaign seed fully
    determines every plan it tries.  Every {!Tme.Scenarios.fault_spec}
    kind is in the draw pool (the test suite asserts that {!generate}
    eventually samples each constructor, so a new kind cannot be
    silently unsampled): message loss, duplication, corruption and
    reordering, channel flushes, windowed request loss (the §4
    deadlock injection), state corruption and improper
    reinitialization, crash/recover, process isolation — and, with
    [~partitions:true], healing group partitions and link delays.
    The partition family is opt-in so that default plan streams (and
    golden chaos reports) are unchanged draw for draw. *)

type config = { n : int; horizon : int; budget : int; partitions : bool }

val config :
  ?partitions:bool -> n:int -> horizon:int -> budget:int -> unit -> config
(** [config ~n ~horizon ~budget ()]: plans of [budget] fault events
    for an [n]-process run of [horizon] scheduler steps.  Fault times
    are kept inside the first ~60% of the horizon so every plan leaves
    a convergence tail.  [~partitions] (default [false]) adds
    {!Tme.Scenarios.Split} and {!Tme.Scenarios.Delay} to the draw
    pool.
    @raise Invalid_argument on [n < 2], [horizon < 10] or negative
    [budget]. *)

val generate : Stdext.Rng.t -> config -> Tme.Scenarios.fault_spec list
(** [generate rng cfg] samples one plan, sorted by injection time
    (stable, so same-time events keep their draw order).  Consumes a
    deterministic amount of [rng] per event. *)

val split_plan :
  Stdext.Rng.t -> config -> mode:Sim.Faults.heal_mode ->
  Tme.Scenarios.fault_spec list
(** [split_plan rng cfg ~mode] samples a plan holding exactly one
    group partition in the given heal mode (random two-sided group
    structure and window) — the campaign's partition-cell generator,
    where the cell must contain {e only} the partition so the gate
    genuinely tests heal recovery. *)

val spec_time : Tme.Scenarios.fault_spec -> int
(** Injection time of a spec (the window start for windowed kinds). *)

val spec_label : Tme.Scenarios.fault_spec -> string
(** Compact one-token rendering, e.g. [crash@120-160(p2,lose)]. *)

val plan_label : Tme.Scenarios.fault_spec list -> string
(** Space-separated {!spec_label}s — the table/JSON rendering. *)

val pp_spec : Format.formatter -> Tme.Scenarios.fault_spec -> unit
(** Ready-to-paste OCaml syntax for one spec. *)

val pp_plan : Format.formatter -> Tme.Scenarios.fault_spec list -> unit
(** Ready-to-paste OCaml syntax for a whole plan — what the shrinker
    prints so a minimal counterexample can be dropped straight into a
    test or an [examples/] program. *)
