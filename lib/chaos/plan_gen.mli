(** Randomized fault-plan generation over the protocol-independent
    {!Tme.Scenarios.fault_spec} vocabulary.

    A plan is a finite batch of transient faults — exactly the paper's
    §3.1 fault model ("any finite number of these faults") — sampled
    from a seeded {!Stdext.Rng} stream, so a campaign seed fully
    determines every plan it tries.  All eleven spec kinds are drawn,
    including the crash/recover process fault, windowed request loss
    (the §4 deadlock injection), and process partitions. *)

type config = { n : int; horizon : int; budget : int }

val config : n:int -> horizon:int -> budget:int -> config
(** [config ~n ~horizon ~budget]: plans of [budget] fault events for an
    [n]-process run of [horizon] scheduler steps.  Fault times are kept
    inside the first ~60% of the horizon so every plan leaves a
    convergence tail.
    @raise Invalid_argument on [n < 2], [horizon < 10] or negative
    [budget]. *)

val generate : Stdext.Rng.t -> config -> Tme.Scenarios.fault_spec list
(** [generate rng cfg] samples one plan, sorted by injection time
    (stable, so same-time events keep their draw order).  Consumes a
    deterministic amount of [rng] per event. *)

val spec_time : Tme.Scenarios.fault_spec -> int
(** Injection time of a spec (the window start for windowed kinds). *)

val spec_label : Tme.Scenarios.fault_spec -> string
(** Compact one-token rendering, e.g. [crash@120-160(p2,lose)]. *)

val plan_label : Tme.Scenarios.fault_spec list -> string
(** Space-separated {!spec_label}s — the table/JSON rendering. *)

val pp_spec : Format.formatter -> Tme.Scenarios.fault_spec -> unit
(** Ready-to-paste OCaml syntax for one spec. *)

val pp_plan : Format.formatter -> Tme.Scenarios.fault_spec list -> unit
(** Ready-to-paste OCaml syntax for a whole plan — what the shrinker
    prints so a minimal counterexample can be dropped straight into a
    test or an [examples/] program. *)
