module S = Tme.Scenarios

type scenario = {
  protocol : string;
  proto : (module Graybox.Protocol.S);
  wrapper : Graybox.Harness.wrapper_mode;
  n : int;
  seed : int;
  steps : int;
}

(* Streaming analysis: classification is all we need, and deadlocked
   candidates — the common case while shrinking — exit early. *)
let verdict sc plan =
  let r =
    S.run sc.proto ~wrapper:sc.wrapper ~faults:plan ~streaming:true ~n:sc.n
      ~seed:sc.seed ~steps:sc.steps
  in
  Outcome.classify ~n:sc.n r.analysis

let fails sc plan = Outcome.is_failure (verdict sc plan)

type result = {
  original : S.fault_spec list;
  shrunk : S.fault_spec list;
  runs : int;
  confirmed : bool;
}

(* Candidate simplifications of one spec, most aggressive first.  Times
   are never moved: a candidate must stay comparable to the original
   execution, only smaller. *)
let simpler ~n spec =
  let count_cands rebuild per_chan =
    if per_chan <= 1 then []
    else
      rebuild 1 :: (if per_chan > 2 then [ rebuild (per_chan / 2) ] else [])
  in
  let window_cands rebuild from_t until_t =
    let w = until_t - from_t in
    if w <= 1 then []
    else
      rebuild (from_t + 1)
      :: (if w > 2 then [ rebuild (from_t + (w / 2)) ] else [])
  in
  let proc_cands rebuild = function
    | Sim.Faults.Proc _ -> []
    | Sim.Faults.Any_proc ->
      List.init n (fun p -> rebuild (Sim.Faults.Proc p))
  in
  match spec with
  | S.Drop_requests { at; per_chan } ->
    count_cands (fun per_chan -> S.Drop_requests { at; per_chan }) per_chan
  | S.Drop_requests_window { from_t; until_t } ->
    window_cands
      (fun until_t -> S.Drop_requests_window { from_t; until_t })
      from_t until_t
  | S.Drop_any { at; per_chan } ->
    count_cands (fun per_chan -> S.Drop_any { at; per_chan }) per_chan
  | S.Duplicate { at; per_chan } ->
    count_cands (fun per_chan -> S.Duplicate { at; per_chan }) per_chan
  | S.Corrupt_messages { at; per_chan } ->
    count_cands (fun per_chan -> S.Corrupt_messages { at; per_chan }) per_chan
  | S.Reorder { at; per_chan } ->
    count_cands (fun per_chan -> S.Reorder { at; per_chan }) per_chan
  | S.Flush _ -> []
  | S.Partition { pid; from_t; until_t } ->
    window_cands
      (fun until_t -> S.Partition { pid; from_t; until_t })
      from_t until_t
  | S.Corrupt_state { at; procs } ->
    proc_cands (fun procs -> S.Corrupt_state { at; procs }) procs
  | S.Reset_state { at; procs } ->
    proc_cands (fun procs -> S.Reset_state { at; procs }) procs
  | S.Crash { procs; from_t; until_t; lose } ->
    (if lose then [ S.Crash { procs; from_t; until_t; lose = false } ] else [])
    @ window_cands
        (fun until_t -> S.Crash { procs; from_t; until_t; lose })
        from_t until_t
    @ proc_cands
        (fun procs -> S.Crash { procs; from_t; until_t; lose })
        procs
  | S.Split { groups; from_t; until_t; mode } ->
    (* a buffered heal is the harsher case (the flood); losing is the
       classic one — try it first, then the window, then a coarser
       group structure (merging the last two groups removes their
       mutual cut; a two-group split merges to nothing, which is what
       deleting the event does, so that case yields no candidate) *)
    (match mode with
     | Sim.Faults.Buffered ->
       [ S.Split { groups; from_t; until_t; mode = Sim.Faults.Lossy } ]
     | Sim.Faults.Lossy -> [])
    @ window_cands
        (fun until_t -> S.Split { groups; from_t; until_t; mode })
        from_t until_t
    @ (match List.rev groups with
       | last :: prev :: rest when prev <> [] && List.length groups > 2 ->
         [ S.Split
             { groups = List.rev ((prev @ last) :: rest);
               from_t;
               until_t;
               mode } ]
       | _ -> [])
  | S.Delay { at; chan; dist } ->
    let dist_cands =
      match dist with
      | Sim.Faults.Fixed d ->
        if d <= 1 then []
        else
          [ Sim.Faults.Fixed 1 ]
          @ (if d > 2 then [ Sim.Faults.Fixed (d / 2) ] else [])
      | Sim.Faults.Uniform (lo, hi) ->
        [ Sim.Faults.Fixed (max 1 lo) ]
        @ (if hi - lo > 1 then [ Sim.Faults.Uniform (lo, lo + ((hi - lo) / 2)) ]
           else [])
      | Sim.Faults.Heavy_tail { mean; cap } ->
        [ Sim.Faults.Fixed 1 ]
        @ (if mean > 1 then
             [ Sim.Faults.Heavy_tail { mean = mean / 2; cap } ]
           else [])
    in
    List.map (fun dist -> S.Delay { at; chan; dist }) dist_cands

let replace_nth plan i spec = List.mapi (fun j s -> if j = i then spec else s) plan

let shrink ?(max_runs = 300) sc original =
  let runs = ref 0 in
  let try_fail plan =
    if !runs >= max_runs then false
    else begin
      incr runs;
      fails sc plan
    end
  in
  if not (try_fail original) then
    { original; shrunk = original; runs = !runs; confirmed = false }
  else begin
    (* Phase 1: greedily delete whole events until no single deletion
       still fails.  List order is preserved throughout: same-time
       events fire in schedule order, so permuting the plan could
       change the execution. *)
    let rec remove_pass plan =
      let len = List.length plan in
      let rec go i =
        if i >= len then plan
        else
          let cand = List.filteri (fun j _ -> j <> i) plan in
          if try_fail cand then remove_pass cand else go (i + 1)
      in
      go 0
    in
    (* Phase 2: shrink events in place — counts toward 1, windows
       toward a point, Any_proc toward a single process. *)
    let rec simplify_pass plan =
      let len = List.length plan in
      let rec go i =
        if i >= len then plan
        else
          let spec = List.nth plan i in
          let rec try_cands = function
            | [] -> go (i + 1)
            | cand :: rest ->
              let plan' = replace_nth plan i cand in
              if try_fail plan' then simplify_pass plan' else try_cands rest
          in
          try_cands (simpler ~n:sc.n spec)
      in
      go 0
    in
    let rec fix plan =
      let plan' = simplify_pass (remove_pass plan) in
      if plan' = plan || !runs >= max_runs then plan' else fix plan'
    in
    let shrunk = fix original in
    (* Re-validate outside the budget: the minimal reproducer must fail
       under the very same seed, or it is worthless. *)
    let confirmed =
      incr runs;
      fails sc shrunk
    in
    { original; shrunk; runs = !runs; confirmed }
  end
