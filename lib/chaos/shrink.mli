(** Automatic counterexample shrinking: delta-debug a failing fault
    plan down to a minimal reproducer.

    The whole stack is deterministic from the scenario seed, so "does
    this smaller plan still fail?" is decidable by re-running the
    scenario.  The shrinker alternates two greedy passes until a fixed
    point: deleting whole fault events, and simplifying surviving
    events in place (counts toward 1, fault windows toward a single
    step, [Any_proc] selectors toward one process).  Injection times are
    never moved and list order is preserved, so every candidate run
    stays comparable to the original execution. *)

type scenario = {
  protocol : string;  (** display name, carried into reports *)
  proto : (module Graybox.Protocol.S);
  wrapper : Graybox.Harness.wrapper_mode;
  n : int;
  seed : int;
  steps : int;
}

val verdict : scenario -> Tme.Scenarios.fault_spec list -> Outcome.verdict
(** [verdict sc plan] re-runs the scenario under [plan] and classifies
    the outcome. *)

val fails : scenario -> Tme.Scenarios.fault_spec list -> bool
(** [fails sc plan] is [verdict sc plan <> Recovered]. *)

type result = {
  original : Tme.Scenarios.fault_spec list;
  shrunk : Tme.Scenarios.fault_spec list;
  runs : int;  (** scenario executions spent (including validation) *)
  confirmed : bool;
      (** the shrunk plan was re-run once more under the original seed
          and still failed — always true for a genuinely failing input;
          [false] means the input plan did not fail at all *)
}

val shrink :
  ?max_runs:int -> scenario -> Tme.Scenarios.fault_spec list -> result
(** [shrink ?max_runs sc plan] minimizes [plan].  [max_runs] (default
    300) bounds the candidate re-executions; when the budget runs out
    the best plan found so far is returned (still failing, still
    confirmed). *)
