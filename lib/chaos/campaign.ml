open Stdext
module S = Tme.Scenarios
module Registry = Graybox.Registry

(* Expectations are registry metadata (each protocol declares how its
   wrapped cells are gated); re-exported here so campaign clients can
   keep pattern-matching without opening Graybox. *)
type expectation = Graybox.Registry.expectation =
  | Expect_recover
  | Expect_failure
  | Observe

let expectation_label = Registry.expectation_label

type config = {
  base_seed : int;
  seeds : int;
  budget : int;
  n : int;
  steps : int;
  delta : int;
  protocols : string list;
  include_unwrapped : bool;
  deadlock_canary : bool;
  shrink : bool;
  shrink_max_runs : int;
  max_counterexamples : int;
  jobs : int;
  streaming : bool;
  partitions : bool;
}

(* The acceptance sweep, in declared order: every protocol with a
   [sweep_rank] (both wrapped everywhere-implementations plus the
   negative control). *)
let default_protocols = Registry.default_sweep ()

let config ?(base_seed = 1) ?(seeds = 50) ?(budget = 6) ?(n = 4) ?(steps = 4000)
    ?(delta = 8) ?(protocols = default_protocols) ?(include_unwrapped = true)
    ?(deadlock_canary = true) ?(shrink = true) ?(shrink_max_runs = 300)
    ?(max_counterexamples = 3) ?(jobs = 1) ?(streaming = true)
    ?(partitions = false) () =
  if seeds <= 0 then invalid_arg "Campaign.config: need seeds > 0";
  if steps < 100 then invalid_arg "Campaign.config: need steps >= 100";
  if protocols = [] then invalid_arg "Campaign.config: need a protocol";
  if jobs < 1 then invalid_arg "Campaign.config: need jobs >= 1";
  { base_seed; seeds; budget; n; steps; delta; protocols; include_unwrapped;
    deadlock_canary; shrink; shrink_max_runs; max_counterexamples; jobs;
    streaming; partitions }

(* Protocols that are not everywhere-implementations of Lspec: the
   wrapper is not expected to rescue them (the paper's negative
   controls and ablations), so their cells are never gated on
   recovery.  Derived from the registry's expectation metadata — this
   list and the resolver can no longer drift apart. *)
let negative_controls =
  List.filter_map
    (fun (e : Registry.entry) ->
      if e.Registry.expectation = Expect_failure then Some e.Registry.name
      else None)
    (Registry.all ())

exception Unknown_protocol of string

let resolve = Registry.find_protocol

let known_protocols () = Registry.names ()

type row = {
  row_seed : int;
  row_plan : S.fault_spec list;
  row_verdict : Outcome.verdict;
  row_latency : int option;
  row_epoch : (bool * int) option;
      (* during-split cells only: (epoch-safe, during-split CS entries)
         from the regime-epoch monitors; [None] elsewhere so the
         non-partition report stays byte-identical *)
}

let epoch_safe r = match r.row_epoch with Some (ok, _) -> ok | None -> true

let split_grants r = match r.row_epoch with Some (_, g) -> g | None -> 0

type latency_stats = {
  samples : int;
  lat_mean : float;
  lat_median : float;
  lat_p95 : float;
  lat_max : float;
}

type cell = {
  cell_label : string;
  cell_protocol : string;
  cell_wrapped : bool;
  cell_expect : expectation;
  cell_during : Registry.during_partition option;
      (* [Some] marks a during-split cell: the expectation then gates
         the rows' epoch-safety verdicts, not their outcome verdicts *)
  rows : row list;
  counts : (Outcome.verdict * int) list;
  latency : latency_stats option;
  cell_ok : bool;
}

type counterexample = {
  cx_cell : string;
  cx_protocol : string;
  cx_wrapper : Graybox.Harness.wrapper_mode;
  cx_seed : int;
  cx_verdict : Outcome.verdict;
  cx_shrink : Shrink.result;
}

type report = {
  report_config : config;
  cells : cell list;
  counterexamples : counterexample list;
  gate_ok : bool;
}

(* Decorrelate the plan stream from the engine's scheduling stream,
   which is seeded with the bare run seed. *)
let plan_seed run_seed = (run_seed * 1_000_003) + 7919

let run_seed cfg i = cfg.base_seed + i

let plans cfg =
  let gen_cfg =
    Plan_gen.config ~partitions:cfg.partitions ~n:cfg.n ~horizon:cfg.steps
      ~budget:cfg.budget ()
  in
  List.init cfg.seeds (fun i ->
      let seed = run_seed cfg i in
      (seed, Plan_gen.generate (Rng.create (plan_seed seed)) gen_cfg))

(* Partition-gate cells hold exactly one Split each (mode fixed per
   cell, random group structure and window per seed) so the gate tests
   heal recovery and nothing else.  The two modes share the plan-seed
   stream, so a lossy cell and its buffered sibling see the same
   partitions — only the fate of cross-partition traffic differs. *)
let split_plans cfg ~mode =
  let gen_cfg =
    Plan_gen.config ~n:cfg.n ~horizon:cfg.steps ~budget:1 ()
  in
  List.init cfg.seeds (fun i ->
      let seed = run_seed cfg i in
      (seed, Plan_gen.split_plan (Rng.create (plan_seed seed)) gen_cfg ~mode))

let run_row ~cfg ~proto ~wrapper ~want_epoch (seed, plan) =
  let r =
    S.run proto ~wrapper ~faults:plan ~streaming:cfg.streaming ~n:cfg.n ~seed
      ~steps:cfg.steps
  in
  { row_seed = seed;
    row_plan = plan;
    row_verdict = Outcome.classify ~n:cfg.n r.S.analysis;
    row_latency = r.S.recovery_latency;
    row_epoch =
      (if want_epoch then
         Option.map
           (fun (e : Graybox.Tme_spec.Epoch.report) ->
             (Graybox.Tme_spec.Epoch.safe e, e.Graybox.Tme_spec.Epoch.split_entries))
           r.S.epoch_spec
       else None) }

let latency_stats rows =
  (* One sorted pass serves median, p95, and max (p100 is the maximum
     under the nearest-rank formula); the mean folds over the same Vec.
     Values agree exactly with the former median/percentile/min_max
     list calls — the golden campaign reports don't move. *)
  let v = Vec.create () in
  List.iter
    (fun r ->
      if r.row_verdict = Outcome.Recovered then
        Option.iter (fun l -> Vec.push v (float_of_int l)) r.row_latency)
    rows;
  match Stats.percentiles v [ 50.; 95.; 100. ] with
  | [ med; p95; max_ ] when Vec.length v > 0 ->
    let total = ref 0. in
    Vec.iter (fun x -> total := !total +. x) v;
    Some
      { samples = Vec.length v;
        lat_mean = !total /. float_of_int (Vec.length v);
        lat_median = med;
        lat_p95 = p95;
        lat_max = max_ }
  | _ -> None

(* A cell's expectation gates outcome verdicts; a during-split cell's
   expectation gates the epoch-safety verdicts instead, with [Weak_me1]
   additionally requiring during-split availability (the registry's
   lattice doc is the single statement of these readings). *)
let cell_ok ~during expect rows =
  match during with
  | None -> (
    match expect with
    | Expect_recover ->
      List.for_all (fun r -> r.row_verdict = Outcome.Recovered) rows
    | Expect_failure ->
      List.exists (fun r -> Outcome.is_failure r.row_verdict) rows
    | Observe -> true)
  | Some d -> (
    match expect with
    | Expect_recover ->
      List.for_all epoch_safe rows
      && (d <> Registry.Weak_me1
         || List.exists (fun r -> split_grants r > 0) rows)
    | Expect_failure -> List.exists (fun r -> not (epoch_safe r)) rows
    | Observe -> true)

let make_cell ~label ~protocol ~wrapped ~expect ~during rows =
  let counts =
    List.map
      (fun v ->
        (v, List.length (List.filter (fun r -> r.row_verdict = v) rows)))
      Outcome.all
  in
  { cell_label = label;
    cell_protocol = protocol;
    cell_wrapped = wrapped;
    cell_expect = expect;
    cell_during = during;
    rows;
    counts;
    latency = latency_stats rows;
    cell_ok = cell_ok ~during expect rows }

let canary_plan cfg =
  let from_t = max 1 (cfg.steps / 10) in
  [ S.Drop_requests_window { from_t; until_t = from_t + 60 } ]

(* The wrapper a wrapped cell composes: the hand-written W'(δ) unless
   the entry registers a synthesized term — then that term under the
   same δ-timer, so [ra-synth] faces exactly the gates [ra] does. *)
let wrapper_of cfg (e : Registry.entry) =
  match e.Registry.wrapper_term with
  | None -> S.wrapped ~delta:cfg.delta ()
  | Some term -> S.wrapped_term ~term ~delta:cfg.delta ()

(* One planned cell: everything [run] needs to execute and label it. *)
type cell_spec = {
  sp_label : string;
  sp_protocol : string;
  sp_wrapped : bool;
  sp_expect : expectation;
  sp_during : Registry.during_partition option;
  sp_proto : (module Graybox.Protocol.S);
  sp_wrapper : Graybox.Harness.wrapper_mode;
  sp_seeded : (int * S.fault_spec list) list;
}

let cells_of_config cfg =
  let seeded = plans cfg in
  let proto_cells =
    List.concat_map
      (fun name ->
        match Registry.find name with
        | None -> raise (Unknown_protocol name)
        | Some e ->
          let proto = e.Registry.proto in
          let wrapped = wrapper_of cfg e in
          let wrapped_cell =
            { sp_label = Printf.sprintf "%s+W'(%d)" name cfg.delta;
              sp_protocol = name;
              sp_wrapped = true;
              sp_expect = e.Registry.expectation;
              sp_during = None;
              sp_proto = proto;
              sp_wrapper = wrapped;
              sp_seeded = seeded }
          in
          let unwrapped_cell =
            { sp_label = name;
              sp_protocol = name;
              sp_wrapped = false;
              sp_expect = Registry.demote_unwrapped e.Registry.expectation;
              sp_during = None;
              sp_proto = proto;
              sp_wrapper = Graybox.Harness.Off;
              sp_seeded = seeded }
          in
          if cfg.include_unwrapped then [ wrapped_cell; unwrapped_cell ]
          else [ wrapped_cell ])
      cfg.protocols
  in
  let partition_cells =
    if not cfg.partitions then []
    else begin
      let lossy = split_plans cfg ~mode:Sim.Faults.Lossy in
      let buffered = split_plans cfg ~mode:Sim.Faults.Buffered in
      List.concat_map
        (fun name ->
          match Registry.find name with
          | None -> raise (Unknown_protocol name)
          | Some e ->
            let wrapped = wrapper_of cfg e in
            let heal_expect =
              Registry.expectation_of_partition e.Registry.partition_expectation
            in
            let during = e.Registry.during_partition in
            let during_expect = Registry.expectation_of_during during in
            let cell ~suffix ~wrapped:w ~expect ~during ~seeded =
              { sp_label =
                  (if w then
                     Printf.sprintf "%s+W'(%d)/%s" name cfg.delta suffix
                   else Printf.sprintf "%s/%s" name suffix);
                sp_protocol = name;
                sp_wrapped = w;
                sp_expect = expect;
                sp_during = during;
                sp_proto = e.Registry.proto;
                sp_wrapper = (if w then wrapped else Graybox.Harness.Off);
                sp_seeded = seeded }
            in
            [ cell ~suffix:"split-lossy" ~wrapped:true ~expect:heal_expect
                ~during:None ~seeded:lossy;
              cell ~suffix:"split-buf" ~wrapped:true
                ~expect:(Registry.demote_buffered heal_expect)
                ~during:None ~seeded:buffered;
              (* the during-split cells share the lossy plan stream, so
                 their epochs line up with the lossy heal cell's runs *)
              cell ~suffix:"during-split" ~wrapped:true ~expect:during_expect
                ~during:(Some during) ~seeded:lossy ]
            @ (if cfg.include_unwrapped then
                 [ cell ~suffix:"during-split" ~wrapped:false
                     ~expect:(Registry.demote_unwrapped during_expect)
                     ~during:(Some during) ~seeded:lossy ]
               else []))
        cfg.protocols
    end
  in
  let canary =
    (* the deterministic §4 deadlock baseline runs on the canonical
       reference protocol (the first registered Reference) *)
    if not cfg.deadlock_canary then []
    else
      match Registry.default_reference () with
      | None -> []
      | Some e ->
        [ { sp_label = Printf.sprintf "%s/deadlock-canary" e.Registry.name;
            sp_protocol = e.Registry.name;
            sp_wrapped = false;
            sp_expect = Expect_failure;
            sp_during = None;
            sp_proto = e.Registry.proto;
            sp_wrapper = Graybox.Harness.Off;
            sp_seeded = [ (cfg.base_seed, canary_plan cfg) ] } ]
  in
  proto_cells @ partition_cells @ canary

(* Shrink the first failing row of each cell, unexpected failures
   first, within the global counterexample cap. *)
let counterexamples_of cfg cells =
  if not cfg.shrink then []
  else begin
    let priority c =
      match c.cell_expect with
      | Expect_recover -> 0
      | Expect_failure -> 1
      | Observe -> 2
    in
    let candidates =
      (* during-split cells are excluded: they share the lossy heal
         cell's plan stream (any outcome failure shrinks there), and
         their own gate reads the epoch monitors, which the
         verdict-driven shrinker cannot re-confirm *)
      List.stable_sort
        (fun a b -> compare (priority a) (priority b))
        (List.filter
           (fun c ->
             c.cell_during = None
             && List.exists (fun r -> Outcome.is_failure r.row_verdict) c.rows)
           cells)
    in
    candidates
    |> List.filteri (fun i _ -> i < cfg.max_counterexamples)
    |> Pool.map ~jobs:cfg.jobs (fun c ->
           let r =
             List.find (fun r -> Outcome.is_failure r.row_verdict) c.rows
           in
           let entry = Option.get (Registry.find c.cell_protocol) in
           let wrapper =
             if c.cell_wrapped then wrapper_of cfg entry
             else Graybox.Harness.Off
           in
           let scenario =
             { Shrink.protocol = c.cell_protocol;
               proto = entry.Registry.proto;
               wrapper;
               n = cfg.n;
               seed = r.row_seed;
               steps = cfg.steps }
           in
           { cx_cell = c.cell_label;
             cx_protocol = c.cell_protocol;
             cx_wrapper = wrapper;
             cx_seed = r.row_seed;
             cx_verdict = r.row_verdict;
             cx_shrink =
               Shrink.shrink ~max_runs:cfg.shrink_max_runs scenario r.row_plan })
  end

(* Every (cell, seeded plan) run is an isolated deterministic function
   of the config, so the whole sweep flattens into one work list for
   {!Pool.map} — parallelism crosses cell boundaries, keeping all
   domains busy even when cells have few rows.  [Pool.map] returns
   results in input order, so the report (and its JSON) is identical
   for every [jobs] value. *)
let run cfg =
  let specs = cells_of_config cfg in
  let tasks =
    List.concat_map
      (fun spec ->
        List.map
          (fun sp ->
            (spec.sp_proto, spec.sp_wrapper, spec.sp_during <> None, sp))
          spec.sp_seeded)
      specs
  in
  let rows =
    Pool.map ~jobs:cfg.jobs
      (fun (proto, wrapper, want_epoch, sp) ->
        run_row ~cfg ~proto ~wrapper ~want_epoch sp)
      tasks
  in
  let cells, leftover =
    List.fold_left
      (fun (acc, rows) spec ->
        let rec take k xs =
          if k = 0 then ([], xs)
          else
            match xs with
            | x :: rest ->
              let taken, rest = take (k - 1) rest in
              (x :: taken, rest)
            | [] -> assert false (* |rows| = sum of cell sizes *)
        in
        let cell_rows, rows = take (List.length spec.sp_seeded) rows in
        ( make_cell ~label:spec.sp_label ~protocol:spec.sp_protocol
            ~wrapped:spec.sp_wrapped ~expect:spec.sp_expect
            ~during:spec.sp_during cell_rows
          :: acc,
          rows ))
      ([], rows) specs
  in
  assert (leftover = []);
  let cells = List.rev cells in
  let counterexamples = counterexamples_of cfg cells in
  let gate_ok =
    List.for_all (fun c -> c.cell_ok) cells
    && List.for_all (fun cx -> cx.cx_shrink.Shrink.confirmed) counterexamples
  in
  { report_config = cfg; cells; counterexamples; gate_ok }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let count_of cell v = List.assoc v cell.counts

let summary_table report =
  let t =
    Tabular.create
      [ "cell"; "expect"; "runs"; "recovered"; "me1"; "starv"; "dead";
        "unstable"; "lat-med"; "lat-p95"; "ok" ]
  in
  List.iter
    (fun c ->
      let lat f =
        match c.latency with
        | None -> "-"
        | Some l -> Tabular.cell_float ~decimals:0 (f l)
      in
      Tabular.add_row t
        [ c.cell_label;
          expectation_label c.cell_expect;
          Tabular.cell_int (List.length c.rows);
          Tabular.cell_int (count_of c Outcome.Recovered);
          Tabular.cell_int (count_of c Outcome.Me1_violation);
          Tabular.cell_int (count_of c Outcome.Starvation);
          Tabular.cell_int (count_of c Outcome.Deadlock);
          Tabular.cell_int (count_of c Outcome.Unstable);
          lat (fun l -> l.lat_median);
          lat (fun l -> l.lat_p95);
          Tabular.cell_bool c.cell_ok ])
    report.cells;
  t

(* The during-split companion table: epoch-safety and during-split
   availability per cell, only populated when partition cells ran. *)
let during_table report =
  let t =
    Tabular.create
      [ "cell"; "during"; "expect"; "runs"; "epoch-safe"; "split-grants";
        "ok" ]
  in
  List.iter
    (fun c ->
      match c.cell_during with
      | None -> ()
      | Some d ->
        let safe = List.length (List.filter epoch_safe c.rows) in
        let grants =
          List.fold_left (fun acc r -> acc + split_grants r) 0 c.rows
        in
        Tabular.add_row t
          [ c.cell_label;
            Registry.during_partition_label d;
            expectation_label c.cell_expect;
            Tabular.cell_int (List.length c.rows);
            Tabular.cell_int safe;
            Tabular.cell_int grants;
            Tabular.cell_bool c.cell_ok ])
    report.cells;
  t

let has_during_cells report =
  List.exists (fun c -> c.cell_during <> None) report.cells

let pp_counterexample ppf cx =
  Format.fprintf ppf
    "@[<v>counterexample: %s (seed %d, verdict %s)@,\
     original (%d events): %s@,\
     shrunk   (%d events, %d runs, confirmed %b):@,  @[%a@]@]"
    cx.cx_cell cx.cx_seed
    (Outcome.label cx.cx_verdict)
    (List.length cx.cx_shrink.Shrink.original)
    (Plan_gen.plan_label cx.cx_shrink.Shrink.original)
    (List.length cx.cx_shrink.Shrink.shrunk)
    cx.cx_shrink.Shrink.runs cx.cx_shrink.Shrink.confirmed Plan_gen.pp_plan
    cx.cx_shrink.Shrink.shrunk

let json_of_row r =
  Jsonx.Obj
    ([ ("seed", Jsonx.Int r.row_seed);
       ("plan", Jsonx.List (List.map (fun s -> Jsonx.String (Plan_gen.spec_label s)) r.row_plan));
       ("verdict", Jsonx.String (Outcome.label r.row_verdict));
       ("recovery_latency", Jsonx.of_int_option r.row_latency) ]
    @
    (* epoch fields exist only on during-split rows, so non-partition
       reports keep their golden bytes *)
    match r.row_epoch with
    | None -> []
    | Some (ok, grants) ->
      [ ("epoch_safe", Jsonx.Bool ok); ("split_entries", Jsonx.Int grants) ])

let json_of_cell c =
  Jsonx.Obj
    ([ ("cell", Jsonx.String c.cell_label);
       ("protocol", Jsonx.String c.cell_protocol);
       ("wrapped", Jsonx.Bool c.cell_wrapped);
       ("expect", Jsonx.String (expectation_label c.cell_expect)) ]
    @ (match c.cell_during with
      | None -> []
      | Some d ->
        [ ("during", Jsonx.String (Registry.during_partition_label d)) ])
    @ [
      ( "counts",
        Jsonx.Obj
          (List.map (fun (v, k) -> (Outcome.label v, Jsonx.Int k)) c.counts) );
      ( "latency",
        match c.latency with
        | None -> Jsonx.Null
        | Some l ->
          Jsonx.Obj
            [ ("samples", Jsonx.Int l.samples);
              ("mean", Jsonx.Float l.lat_mean);
              ("median", Jsonx.Float l.lat_median);
              ("p95", Jsonx.Float l.lat_p95);
              ("max", Jsonx.Float l.lat_max) ] );
      ("ok", Jsonx.Bool c.cell_ok);
      ("runs", Jsonx.List (List.map json_of_row c.rows)) ])

let json_of_counterexample cx =
  let plan_json plan =
    Jsonx.List (List.map (fun s -> Jsonx.String (Plan_gen.spec_label s)) plan)
  in
  Jsonx.Obj
    [ ("cell", Jsonx.String cx.cx_cell);
      ("seed", Jsonx.Int cx.cx_seed);
      ("verdict", Jsonx.String (Outcome.label cx.cx_verdict));
      ("original", plan_json cx.cx_shrink.Shrink.original);
      ("shrunk", plan_json cx.cx_shrink.Shrink.shrunk);
      ( "shrunk_ocaml",
        Jsonx.String (Format.asprintf "%a" Plan_gen.pp_plan cx.cx_shrink.Shrink.shrunk) );
      ("shrink_runs", Jsonx.Int cx.cx_shrink.Shrink.runs);
      ("confirmed", Jsonx.Bool cx.cx_shrink.Shrink.confirmed) ]

let to_json report =
  let cfg = report.report_config in
  Jsonx.Obj
    [ ( "config",
        Jsonx.Obj
          [ ("base_seed", Jsonx.Int cfg.base_seed);
            ("seeds", Jsonx.Int cfg.seeds);
            ("budget", Jsonx.Int cfg.budget);
            ("n", Jsonx.Int cfg.n);
            ("steps", Jsonx.Int cfg.steps);
            ("delta", Jsonx.Int cfg.delta);
            ( "protocols",
              Jsonx.List (List.map (fun p -> Jsonx.String p) cfg.protocols) );
            ("include_unwrapped", Jsonx.Bool cfg.include_unwrapped);
            ("deadlock_canary", Jsonx.Bool cfg.deadlock_canary) ] );
      ("cells", Jsonx.List (List.map json_of_cell report.cells));
      ( "counterexamples",
        Jsonx.List (List.map json_of_counterexample report.counterexamples) );
      ("gate_ok", Jsonx.Bool report.gate_ok) ]
