(** Open-loop load generation with grant-latency percentiles.

    Where {!Scenarios} drives each process with a closed-loop client
    (think, request, eat, repeat — ideal for stabilization
    experiments), this module drives the system with an {e open-loop}
    Poisson workload: requests arrive at a configured rate regardless
    of how fast the system grants them, and each grant's latency is
    measured from the request's {e intended} arrival step.  A slow
    system therefore accumulates queued requests and the wait shows up
    in the tail percentiles, instead of silently throttling the
    workload (coordinated omission).

    Runs are seed-deterministic: the result — including every latency
    sample — is a pure function of (protocol, n, seed, rate, bounds),
    independent of wall-clock, worker count, or the engine's move-index
    implementation.  Callers time {!run} externally for steps/sec. *)

type result = {
  protocol : string;
  n : int;
  seed : int;
  rate : float;  (** arrivals per step, across the whole system *)
  steps_run : int;
      (** steps actually executed — at most [2 * max_steps]: the
          injection horizon plus a drain phase of equal length, with
          early exit as soon as every injected request was granted *)
  requests : int;  (** arrivals injected (at most [max_requests]) *)
  grants : int;
  latencies : int array;
      (** steps from intended arrival to CS entry, in grant order *)
}

val run :
  ?indexed:bool ->
  (module Graybox.Protocol.S) ->
  n:int ->
  seed:int ->
  rate:float ->
  max_requests:int ->
  max_steps:int ->
  unit ->
  result
(** [run proto ~n ~seed ~rate ~max_requests ~max_steps ()] drives an
    unwrapped, unrecorded simulation of [proto] under Poisson arrivals
    (exponential inter-arrival gaps of mean [1/rate], each request
    targeting a uniform process).  Arrivals stop at [max_steps] (or
    after [max_requests], whichever is first); the run then {e drains}
    for at most [max_steps] further steps so late arrivals' grants are
    measured rather than censored by the horizon, exiting as soon as
    every injected request has been granted.  A request still ungranted
    when the drain ends leaves [grants < requests] — for the reference
    protocols that indicates a genuine liveness problem.
    [?indexed] selects the engine's move-index implementation (see
    {!Sim.Engine.Make.config}); results are identical either way. *)

val percentiles : result -> float list -> float list
(** [percentiles r ps] are the exact nearest-rank percentiles of the
    latency sample, e.g. [percentiles r [50.; 99.; 99.9]] — [nan]
    entries when no request was granted. *)
