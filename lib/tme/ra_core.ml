(** The common machinery of Ricart-Agrawala, shared by the correct
    implementation ({!Ra_me}) and a deliberately faulty mutant
    ({!Ra_mutant}) used to validate the bounded model checker's
    discrimination (see test/test_mcheck.ml).  The single configuration
    point is the receive-request reply condition:

    - the paper's rule replies iff [t.j \/ REQ_k lt REQ_j] — an eating
      process defers every later request until release;
    - the mutant replies whenever it is not hungry — including while
      eating — which lets two processes eat at once.  This is a real
      bug this repository had during development; the model checker
      finds it within a dozen steps. *)

module type CONFIG = sig
  val name : string

  val defer_while_eating : bool
  (** [true] is the paper's rule; [false] is the mutant. *)
end

module Make (C : CONFIG) : Graybox.Protocol.S = struct
  open Clocks
  module View = Graybox.View
  module Msg = Graybox.Msg

  type state = {
    self : Sim.Pid.t;
    n : int;
    mode : View.mode;
    clock : Logical_clock.t;
    req : Timestamp.t;  (* REQ_j *)
    local_req : Timestamp.t Sim.Pid.Map.t;
        (* j.REQ_k; an absent key reads as [Timestamp.zero ~pid:k], so
           large systems start sparse (see {!Sim.Pid.dense_threshold})
           without changing a single observable value *)
    received : Sim.Pid.Set.t;  (* received(j.REQ_k): request pending reply *)
  }

  let name = C.name

  let peers s = Sim.Pid.others ~self:s.self ~n:s.n

  let local_req_of s k =
    match Sim.Pid.Map.find_opt k s.local_req with
    | Some ts -> ts
    | None -> Timestamp.zero ~pid:k

  let init ~n self =
    { self;
      n;
      mode = View.Thinking;
      clock = Logical_clock.create ~pid:self;
      req = Timestamp.zero ~pid:self;
      local_req =
        (if n <= Sim.Pid.dense_threshold then
           List.fold_left
             (fun m k -> Sim.Pid.Map.add k (Timestamp.zero ~pid:k) m)
             Sim.Pid.Map.empty
             (Sim.Pid.others ~self ~n)
         else Sim.Pid.Map.empty);
      received = Sim.Pid.Set.empty }

  let view s =
    View.make ~self:s.self ~mode:s.mode ~req:s.req ~local_req:s.local_req
      ~clock:(Logical_clock.now s.clock)

  (* CS Release Spec: while thinking, REQ_j tracks the newest event. *)
  let refresh_req_if_thinking s =
    if s.mode = View.Thinking then { s with req = Logical_clock.read s.clock }
    else s

  let request_cs s =
    let clock, ts = Logical_clock.tick s.clock in
    let s = { s with clock; req = ts; mode = View.Hungry } in
    (s, List.map (fun k -> (k, Msg.Request ts)) (peers s))

  (* ∀k ≠ j: REQ_j lt j.REQ_k — an early-exit loop over the pid range
     rather than a materialized peers list: across the n-1 attempts a
     grant takes as replies trickle in, the expected total is O(n log n)
     reads (the failing k moves right as replies arrive), not O(n^2). *)
  let earliest s =
    let rec go k =
      k >= s.n
      || ((k = s.self || Timestamp.lt s.req (local_req_of s k)) && go (k + 1))
    in
    go 0

  let try_enter s =
    if s.mode = View.Hungry && earliest s then begin
      let clock, _entry_ts = Logical_clock.tick s.clock in
      Some ({ s with clock; mode = View.Eating }, [])
    end
    else None

  (* Walking [received] (ascending, like the peers list it replaces)
     costs O(deferred), not O(n) — only processes that actually sent a
     pending request are candidates. *)
  let deferred_set s =
    Sim.Pid.Set.fold
      (fun k acc ->
        if Timestamp.lt s.req (local_req_of s k) then k :: acc else acc)
      s.received []
    |> List.rev

  let release_cs s =
    let deferred = deferred_set s in
    let clock, ts = Logical_clock.tick s.clock in
    let s =
      { s with
        clock;
        mode = View.Thinking;
        req = ts;
        received = Sim.Pid.Set.empty }
    in
    (s, List.map (fun k -> (k, Msg.Reply ts)) deferred)

  let on_message ~from msg s =
    let ts = Msg.timestamp msg in
    let clock, _ = Logical_clock.receive_event s.clock ts in
    let s = refresh_req_if_thinking { s with clock } in
    match msg with
    | Msg.Request req_k ->
      (* Assignment, not max: receipt of the owner's (or its wrapper's)
         request repairs an arbitrarily corrupted copy. *)
      let s = { s with local_req = Sim.Pid.Map.add from req_k s.local_req } in
      (* Reply iff t.j ∨ REQ_k lt REQ_j: an eating process defers every
         later request until it releases.  The mutant (defer_while_eating
         = false) also replies while eating — the seeded safety bug. *)
      let replies_now =
        if C.defer_while_eating then
          s.mode = View.Thinking || Timestamp.lt req_k s.req
        else s.mode <> View.Hungry || Timestamp.lt req_k s.req
      in
      if replies_now then begin
        let s = { s with received = Sim.Pid.Set.remove from s.received } in
        (s, [ (from, Msg.Reply (Logical_clock.read s.clock)) ])
      end
      else ({ s with received = Sim.Pid.Set.add from s.received }, [])
    | Msg.Reply r | Msg.Release r ->
      (* A reply counts as a grant only if it postdates our request;
         stale replies (pre-fault leftovers, duplicates) are absorbed. *)
      if Timestamp.lt s.req r then
        ({ s with local_req = Sim.Pid.Map.add from r s.local_req }, [])
      else (s, [])

  let random_ts ~n rng =
    Timestamp.make
      ~clock:(Stdext.Rng.int rng 64)
      ~pid:(Stdext.Rng.int rng n)

  let corrupt rng s =
    let open Stdext in
    let mode =
      match Rng.int rng 3 with
      | 0 -> View.Thinking
      | 1 -> View.Hungry
      | _ -> View.Eating
    in
    let clock =
      if Rng.bool rng then Logical_clock.with_now s.clock (Rng.int rng 64)
      else s.clock
    in
    (* REQ_j's domain is stamps of j's own clock: the pid component is
       structural, so "arbitrary corruption" randomizes the clock value
       only.  (A foreign pid would be outside the variable's domain, like
       assigning a string to an int.) *)
    let req =
      if Rng.bool rng then Timestamp.make ~clock:(Rng.int rng 64) ~pid:s.self
      else s.req
    in
    let local_req =
      Sim.Pid.Map.map
        (fun ts -> if Rng.chance rng 0.5 then random_ts ~n:s.n rng else ts)
        s.local_req
    in
    let received =
      List.fold_left
        (fun acc k -> if Rng.bool rng then Sim.Pid.Set.add k acc else acc)
        Sim.Pid.Set.empty (peers s)
    in
    { s with mode; clock; req; local_req; received }

  let reset ~n self =
    (* Improper initialization: claims hungry with the zero request but
       told nobody. *)
    let s = init ~n self in
    { s with mode = View.Hungry }

  let membership_aware = false
  let on_view_change ~members:_ s = s

  (* Everywhere-mode seeds: corruptions of the variables no message has
     justified — a mode nobody was told about, a received-set full of
     requests never sent.  Timestamps are left legitimate (zero-ish):
     the paper's reply rule intentionally replies to *earlier* requests
     even while eating, so clock corruption defeats any timestamp
     protocol; what separates the mutant is its behaviour on *later*
     requests, which these seeds expose within a handful of steps. *)
  let perturb ~n:_ s =
    let all_received = Sim.Pid.Set.of_list (peers s) in
    [ { s with mode = View.Hungry };
      { s with mode = View.Eating };
      { s with mode = View.Hungry; received = all_received };
      { s with received = all_received };
      reset ~n:s.n s.self ]

  let pp ppf s =
    Format.fprintf ppf "ra[%d %a req=%a lc=%d recv={%a}]" s.self View.pp_mode
      s.mode Timestamp.pp s.req
      (Logical_clock.now s.clock)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Sim.Pid.Set.elements s.received)

end
