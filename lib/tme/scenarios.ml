module H = Graybox.Harness

type fault_spec =
  | Drop_requests of { at : int; per_chan : int }
  | Drop_requests_window of { from_t : int; until_t : int }
  | Drop_any of { at : int; per_chan : int }
  | Duplicate of { at : int; per_chan : int }
  | Corrupt_messages of { at : int; per_chan : int }
  | Reorder of { at : int; per_chan : int }
  | Flush of { at : int }
  | Partition of { pid : Sim.Pid.t; from_t : int; until_t : int }
  | Corrupt_state of { at : int; procs : Sim.Faults.proc_selector }
  | Reset_state of { at : int; procs : Sim.Faults.proc_selector }
  | Crash of
      { procs : Sim.Faults.proc_selector;
        from_t : int;
        until_t : int;
        lose : bool }
  | Split of
      { groups : Sim.Pid.t list list;
        from_t : int;
        until_t : int;
        mode : Sim.Faults.heal_mode }
  | Delay of { at : int; chan : Sim.Faults.chan_selector; dist : Sim.Faults.delay_dist }

let burst ~at =
  [ Corrupt_state { at; procs = Sim.Faults.Any_proc };
    Corrupt_messages { at; per_chan = 2 };
    Drop_any { at; per_chan = 1 } ]

type result = {
  protocol : string;
  n : int;
  seed : int;
  steps : int;
  wrapper : H.wrapper_mode;
  vtrace : (Graybox.View.t, Graybox.Msg.t) Sim.Trace.t;
  entry_log : H.entry_record list;
  total_entries : int;
  analysis : Graybox.Stabilize.analysis;
  recovery_latency : int option;
  live_spec : Unityspec.Report.t option;
  epoch_spec : Graybox.Tme_spec.Epoch.report option;
  sent_total : int;
  wrapper_sends : int;
  protocol_sends : int;
  delivered : int;
  sim_steps : int;
}

let run ?(wrapper = H.Off) ?(faults = []) ?(record = true) ?(streaming = false)
    ?(live_monitors = false) ?tail_margin ?(think = (2, 8)) ?(eat = (1, 3))
    ?(passive = []) ?indexed (module P : Graybox.Protocol.S) ~n ~seed ~steps =
  let module Run = H.Make (P) in
  let think_min, think_max = think and eat_min, eat_max = eat in
  let params =
    H.params ~wrapper ~think_min ~think_max ~eat_min ~eat_max ~passive ~n ()
  in
  let record = record && not streaming in
  let engine = Run.make_engine ~record ?indexed params ~seed in
  let lower = function
    | Drop_requests { at; per_chan } ->
      [ Sim.Faults.at at
          (Run.fault_drop_requests Sim.Faults.Any_chan ~count:per_chan) ]
    | Drop_requests_window { from_t; until_t } ->
      List.init
        (max 0 (until_t - from_t + 1))
        (fun i ->
          Sim.Faults.at (from_t + i)
            (Run.fault_drop_requests Sim.Faults.Any_chan ~count:max_int))
    | Drop_any { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_drop_any Sim.Faults.Any_chan ~count:per_chan) ]
    | Duplicate { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_duplicate Sim.Faults.Any_chan ~count:per_chan) ]
    | Corrupt_messages { at; per_chan } ->
      [ Sim.Faults.at at
          (Run.fault_corrupt_messages params Sim.Faults.Any_chan ~count:per_chan) ]
    | Reorder { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_reorder Sim.Faults.Any_chan ~count:per_chan) ]
    | Flush { at } -> [ Sim.Faults.at at (Run.fault_flush Sim.Faults.Any_chan) ]
    | Partition { pid; from_t; until_t } ->
      List.concat
        (List.init
           (max 0 (until_t - from_t + 1))
           (fun i ->
             [ Sim.Faults.at (from_t + i)
                 (Run.fault_drop_any (Sim.Faults.From pid) ~count:max_int);
               Sim.Faults.at (from_t + i)
                 (Run.fault_drop_any (Sim.Faults.Into pid) ~count:max_int) ]))
    | Corrupt_state { at; procs } ->
      [ Sim.Faults.at at (Run.fault_corrupt_process procs) ]
    | Reset_state { at; procs } ->
      [ Sim.Faults.at at (Run.fault_reset_process params procs) ]
    | Crash { procs; from_t; until_t; lose } ->
      [ Sim.Faults.at from_t
          (Sim.Faults.Crash { proc = procs; until_t; lose_deliveries = lose }) ]
    | Split { groups; from_t; until_t; mode } ->
      (* the Heal marker re-bases recovery-latency measurement at the
         heal step: [Stabilize.last_fault_index] finds it as the last
         Fault event, so latency is counted from the heal, not from
         the moment the partition began *)
      [ Sim.Faults.at from_t (Sim.Faults.Split { groups; from_t; until_t; mode });
        Sim.Faults.at until_t Sim.Faults.Heal ]
    | Delay { at; chan; dist } ->
      [ Sim.Faults.at at (Sim.Faults.Delay { chan; dist }) ]
  in
  let plan = List.concat_map lower faults in
  (* regime epochs: the piecewise-constant topology this plan induces.
     A plan without effective split/crash windows has the one-epoch
     trivial timeline — no epoch monitor, no extra fault events, and
     byte-identical reports to the pre-epoch code. *)
  let timeline = Sim.Regime.of_plan ~n plan in
  let epochal = Sim.Regime.nontrivial timeline in
  let plan =
    (* the group membership service: membership-aware protocols hear
       about every topology change via [on_view_change].  Appended
       after the base plan so same-time events fire after the
       Split/Heal that caused them; classical protocols get no events
       and keep their exact pre-GMS plans. *)
    if epochal && P.membership_aware then
      plan
      @ (Sim.Regime.epochs timeline
        |> List.filter (fun (t : Sim.Regime.topo) -> t.Sim.Regime.since > 0)
        |> List.map (fun topo ->
               Sim.Faults.at topo.Sim.Regime.since
                 (Run.fault_view_change
                    ~members_of:(fun self ->
                      Sim.Regime.group_members topo self))))
    else plan
  in
  let vtrace, entry_log, analysis, recovery_latency, live_spec, epoch_spec =
    if not streaming then begin
      (* record-then-analyse: run the horizon, then fold the trace *)
      Run.Run.run ~plan ~steps engine;
      let vtrace = if record then Run.view_trace engine else [] in
      let entry_log = if record then Run.entry_log engine else [] in
      let analysis = Graybox.Stabilize.analyse ?tail_margin vtrace in
      let recovery_latency =
        let after =
          match analysis.Graybox.Stabilize.last_fault_index with
          | Some i -> i
          | None -> 0
        in
        Graybox.Stabilize.service_round_latency vtrace ~after
      in
      let epoch_spec =
        if epochal && record then
          Some
            (Graybox.Tme_spec.Epoch.of_trace ~timeline ~n ~entries:entry_log
               vtrace)
        else None
      in
      (vtrace, entry_log, analysis, recovery_latency, None, epoch_spec)
    end
    else begin
      (* Streaming: no trace.  One observer keeps the spec-level
         projection (views, oracle request stamps) current — only the
         process an event touched is re-projected — and fans each step
         out to the incremental analysis, the entry stream, and (when
         asked) the live TME_Spec monitors.  The analysis, latency,
         and entry log equal the offline ones on the same run, seed
         for seed; the equivalence is asserted in the test suite. *)
      let ol = Graybox.Stabilize.Online.create ?tail_margin () in
      let nodes0 = Run.Run.states engine in
      let views = Array.map Run.view nodes0 in
      let req_vcs = Array.map (fun (nd : Run.node) -> nd.Run.req_vc) nodes0 in
      let entries = ref [] in
      let me1 = ref (Graybox.Tme_spec.me1_online ()) in
      let me2 = ref (Graybox.Tme_spec.me2_online ~n) in
      let me3 = ref (Graybox.Tme_spec.me3_online ()) in
      let em =
        if epochal then Some (Graybox.Tme_spec.Epoch.create ~n ~timeline)
        else None
      in
      let stuttering = ref false in
      let refresh (nodes : Run.node array) p =
        views.(p) <- Run.view nodes.(p);
        req_vcs.(p) <- nodes.(p).Run.req_vc
      in
      let feed_monitors () =
        if live_monitors then begin
          me1 := Unityspec.Online.feed !me1 views;
          me2 := Unityspec.Online.feed !me2 views
        end
      in
      let on_step (s : (Run.node, Run.envelope) Sim.Observer.step) =
        let nodes = s.Sim.Observer.states in
        (match s.Sim.Observer.event with
         | Sim.Trace.Init ->
           for p = 0 to n - 1 do refresh nodes p done
         | Sim.Trace.Deliver { dst; _ } -> refresh nodes dst
         | Sim.Trace.Internal { pid; label } ->
           if label = "enter-cs" then begin
             (* the arrays still hold the pre-step projection: the
                request this entry served *)
             let e =
               { H.entry_time = s.Sim.Observer.time;
                 entry_pid = pid;
                 entry_req = views.(pid).Graybox.View.req;
                 entry_req_vc = req_vcs.(pid) }
             in
             entries := e :: !entries;
             if live_monitors then me3 := Unityspec.Online.feed !me3 e;
             match em with
             | Some em ->
               Graybox.Tme_spec.Epoch.feed_entry em ~time:s.Sim.Observer.time e
             | None -> ()
           end;
           refresh nodes pid
         | Sim.Trace.Fault _ ->
           for p = 0 to n - 1 do refresh nodes p done
         | Sim.Trace.Stutter -> ());
        let fault, stutter =
          match s.Sim.Observer.event with
          | Sim.Trace.Fault _ -> (true, false)
          | Sim.Trace.Stutter -> (false, true)
          | _ -> (false, false)
        in
        stuttering := stutter;
        Graybox.Stabilize.Online.feed ol ~time:s.Sim.Observer.time ~fault views;
        feed_monitors ();
        match em with
        | Some em ->
          Graybox.Tme_spec.Epoch.feed em ~time:s.Sim.Observer.time views
        | None -> ()
      in
      Run.Run.add_observer engine on_step;
      (* A stutter with no crash window left is permanent: exit early
         and feed the remaining horizon synthetically, so the analysis
         stays byte-identical to the full run at a fraction of the
         cost (deadlocked cells dominate campaign wall-clock). *)
      let stop eng = !stuttering && Run.Run.quiescent eng in
      (match Run.Run.run_until ~plan ~max_steps:steps ~stop engine with
       | None -> ()
       | Some exit_time ->
         for time = exit_time + 1 to steps do
           Graybox.Stabilize.Online.feed ol ~time ~fault:false views;
           feed_monitors ();
           match em with
           | Some em -> Graybox.Tme_spec.Epoch.feed em ~time views
           | None -> ()
         done);
      let live =
        if live_monitors then
          Some
            (Graybox.Tme_spec.report_of_verdicts
               ~me1:(Unityspec.Online.verdict !me1)
               ~me2:(Unityspec.Online.verdict !me2)
               ~me3:(Unityspec.Online.verdict !me3))
        else None
      in
      ( [],
        List.rev !entries,
        Graybox.Stabilize.Online.analysis ol,
        Graybox.Stabilize.Online.latency ol,
        live,
        Option.map Graybox.Tme_spec.Epoch.report em )
    end
  in
  let metrics = Run.Run.metrics engine in
  let wrapper_sends =
    Sim.Metrics.sends_with_label metrics Graybox.Wrapper.action_label
  in
  let sent_total = Sim.Metrics.sent metrics in
  { protocol = P.name;
    n;
    seed;
    steps;
    wrapper;
    vtrace;
    entry_log;
    total_entries = Run.total_entries engine;
    analysis;
    recovery_latency;
    live_spec;
    epoch_spec;
    sent_total;
    wrapper_sends;
    protocol_sends = sent_total - wrapper_sends;
    delivered = Sim.Metrics.delivered metrics;
    sim_steps = Run.Run.time engine }

let lspec_report r = Graybox.Lspec.check_all ~n:r.n r.vtrace

let tme_report r =
  Graybox.Tme_spec.check_all ~n:r.n ~entries:r.entry_log r.vtrace

(* The registration site: the one place that knows which
   implementations exist.  Names are read off the modules themselves
   (each name literal lives only where the protocol is defined), and
   everything downstream — campaign sweeps, the CLI resolver, the
   bench harness — dispatches through {!Graybox.Registry} queries.
   Registration order is the listing order; the first [Reference] is
   the canonical demo protocol. *)
let () =
  let open Graybox.Registry in
  List.iter register
    [ entry
        (module Ra_me : Graybox.Protocol.S)
        ~sweep_rank:1
        ~doc:"Ricart-Agrawala, deferred replies: the running everywhere-implementation";
      entry
        (module Gcl.Ra_gcl : Graybox.Protocol.S)
        ~doc:"RA transliterated onto the guarded-command store";
      entry
        (module Lamport_me : Graybox.Protocol.S)
        ~sweep_rank:0
        ~doc:"Lamport's queue algorithm with the paper's three modifications";
      entry
        (module Lamport_unmodified : Graybox.Protocol.S)
        ~role:Negative_control ~sweep_rank:2 ~during_partition:Wedge
          (* its failure mode is deadlock, which is epoch-safe: during a
             split it wedges rather than dual-entering, unlike ra-mutant
             whose reply-while-eating fires in any epoch *)
        ~doc:"Lamport's original program: implements Lspec from Init only";
      entry
        (module Lamport_ablation.M1 : Graybox.Protocol.S)
        ~role:Ablation
        ~doc:"Lamport + modification 1 only (dedup queue insert)";
      entry
        (module Lamport_ablation.M12 : Graybox.Protocol.S)
        ~role:Ablation
        ~doc:"Lamport + modifications 1+2 (entry on own request <= head)";
      entry
        (module Central_me : Graybox.Protocol.S)
        ~lspec_monitorable:false
        ~doc:"central-coordinator baseline (coordinator is outside Lspec)";
      entry
        (module Ra_mutant : Graybox.Protocol.S)
        ~role:Negative_control
        ~doc:"RA replying while eating: the checker-validation safety mutant";
      entry
        (module Ra_lease.Lease : Graybox.Protocol.S)
        ~during_partition:Weak_me1
        ~doc:"RA with membership-leased grants: serves per-group during splits";
      entry
        (module Ra_lease.Stale : Graybox.Protocol.S)
        ~role:Negative_control ~expectation:Observe
        ~partition_expectation:Partition_observe
        ~doc:"ra-lease that never un-suspects: post-heal split-brain control";
      entry
        (module Ra_synth : Graybox.Protocol.S)
        ~role:Synthesized ~wrapper_term:Ra_synth.wrapper_term
        ~doc:"RA under the CEGIS-synthesized wrapper term (see Synth)" ]

let find_protocol = Graybox.Registry.find_protocol

let wrapped ?(variant = Graybox.Wrapper.Refined) ~delta () =
  H.On { variant; delta }

let wrapped_term ~term ~delta () = H.On_term { term; delta }
