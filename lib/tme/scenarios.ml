module H = Graybox.Harness

type fault_spec =
  | Drop_requests of { at : int; per_chan : int }
  | Drop_requests_window of { from_t : int; until_t : int }
  | Drop_any of { at : int; per_chan : int }
  | Duplicate of { at : int; per_chan : int }
  | Corrupt_messages of { at : int; per_chan : int }
  | Reorder of { at : int; per_chan : int }
  | Flush of { at : int }
  | Partition of { pid : Sim.Pid.t; from_t : int; until_t : int }
  | Corrupt_state of { at : int; procs : Sim.Faults.proc_selector }
  | Reset_state of { at : int; procs : Sim.Faults.proc_selector }
  | Crash of
      { procs : Sim.Faults.proc_selector;
        from_t : int;
        until_t : int;
        lose : bool }

let burst ~at =
  [ Corrupt_state { at; procs = Sim.Faults.Any_proc };
    Corrupt_messages { at; per_chan = 2 };
    Drop_any { at; per_chan = 1 } ]

type result = {
  protocol : string;
  n : int;
  seed : int;
  steps : int;
  wrapper : H.wrapper_mode;
  vtrace : (Graybox.View.t, Graybox.Msg.t) Sim.Trace.t;
  entry_log : H.entry_record list;
  total_entries : int;
  analysis : Graybox.Stabilize.analysis;
  recovery_latency : int option;
  sent_total : int;
  wrapper_sends : int;
  protocol_sends : int;
  delivered : int;
  sim_steps : int;
}

let run ?(wrapper = H.Off) ?(faults = []) ?(record = true) ?tail_margin
    ?(think = (2, 8)) ?(eat = (1, 3)) ?(passive = [])
    (module P : Graybox.Protocol.S) ~n ~seed ~steps =
  let module Run = H.Make (P) in
  let think_min, think_max = think and eat_min, eat_max = eat in
  let params =
    H.params ~wrapper ~think_min ~think_max ~eat_min ~eat_max ~passive ~n ()
  in
  let engine = Run.make_engine ~record params ~seed in
  let lower = function
    | Drop_requests { at; per_chan } ->
      [ Sim.Faults.at at
          (Run.fault_drop_requests Sim.Faults.Any_chan ~count:per_chan) ]
    | Drop_requests_window { from_t; until_t } ->
      List.init
        (max 0 (until_t - from_t + 1))
        (fun i ->
          Sim.Faults.at (from_t + i)
            (Run.fault_drop_requests Sim.Faults.Any_chan ~count:max_int))
    | Drop_any { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_drop_any Sim.Faults.Any_chan ~count:per_chan) ]
    | Duplicate { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_duplicate Sim.Faults.Any_chan ~count:per_chan) ]
    | Corrupt_messages { at; per_chan } ->
      [ Sim.Faults.at at
          (Run.fault_corrupt_messages params Sim.Faults.Any_chan ~count:per_chan) ]
    | Reorder { at; per_chan } ->
      [ Sim.Faults.at at (Run.fault_reorder Sim.Faults.Any_chan ~count:per_chan) ]
    | Flush { at } -> [ Sim.Faults.at at (Run.fault_flush Sim.Faults.Any_chan) ]
    | Partition { pid; from_t; until_t } ->
      List.concat
        (List.init
           (max 0 (until_t - from_t + 1))
           (fun i ->
             [ Sim.Faults.at (from_t + i)
                 (Run.fault_drop_any (Sim.Faults.From pid) ~count:max_int);
               Sim.Faults.at (from_t + i)
                 (Run.fault_drop_any (Sim.Faults.Into pid) ~count:max_int) ]))
    | Corrupt_state { at; procs } ->
      [ Sim.Faults.at at (Run.fault_corrupt_process procs) ]
    | Reset_state { at; procs } ->
      [ Sim.Faults.at at (Run.fault_reset_process params procs) ]
    | Crash { procs; from_t; until_t; lose } ->
      [ Sim.Faults.at from_t
          (Sim.Faults.Crash { proc = procs; until_t; lose_deliveries = lose }) ]
  in
  let plan = List.concat_map lower faults in
  Run.Run.run ~plan ~steps engine;
  let vtrace = if record then Run.view_trace engine else [] in
  let entry_log = if record then Run.entry_log engine else [] in
  let metrics = Run.Run.metrics engine in
  let wrapper_sends =
    Sim.Metrics.sends_with_label metrics Graybox.Wrapper.action_label
  in
  let sent_total = Sim.Metrics.sent metrics in
  let analysis = Graybox.Stabilize.analyse ?tail_margin vtrace in
  let recovery_latency =
    let after =
      match analysis.Graybox.Stabilize.last_fault_index with
      | Some i -> i
      | None -> 0
    in
    Graybox.Stabilize.service_round_latency vtrace ~after
  in
  { protocol = P.name;
    n;
    seed;
    steps;
    wrapper;
    vtrace;
    entry_log;
    total_entries = Run.total_entries engine;
    analysis;
    recovery_latency;
    sent_total;
    wrapper_sends;
    protocol_sends = sent_total - wrapper_sends;
    delivered = Sim.Metrics.delivered metrics;
    sim_steps = Run.Run.time engine }

let lspec_report r = Graybox.Lspec.check_all ~n:r.n r.vtrace

let tme_report r =
  Graybox.Tme_spec.check_all ~n:r.n ~entries:r.entry_log r.vtrace

let protocols =
  [ ("ra", (module Ra_me : Graybox.Protocol.S));
    ("ra-gcl", (module Gcl.Ra_gcl : Graybox.Protocol.S));
    ("lamport", (module Lamport_me : Graybox.Protocol.S));
    ("lamport-unmod", (module Lamport_unmodified : Graybox.Protocol.S));
    ("lamport-m1", (module Lamport_ablation.M1 : Graybox.Protocol.S));
    ("lamport-m12", (module Lamport_ablation.M12 : Graybox.Protocol.S));
    ("central", (module Central_me : Graybox.Protocol.S)) ]

let find_protocol name = List.assoc_opt name protocols

let wrapped ?(variant = Graybox.Wrapper.Refined) ~delta () =
  H.On { variant; delta }
