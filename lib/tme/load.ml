open Stdext

(* An open-loop workload driver: requests arrive by a Poisson process
   whose rate is fixed in advance, independent of how fast the system
   grants them — the load is the experiment's input, not an emergent
   property of the measured system.  The closed-loop alternative (each
   client thinks, requests, eats, repeats — the {!Scenarios} client)
   backs off exactly when the system slows down, which systematically
   under-reports tail latency (coordinated omission).  Here a grant's
   latency is measured from the request's {e intended} arrival step, so
   time a request spent queued behind a slow system is charged to the
   system.

   Arrival stamps are quantized to the step grid: an arrival drawn at
   continuous time [a] is injected at the first step boundary >= [a]
   and stamped with it (error < 1 step, identical for every protocol
   under a seed, so comparisons are unaffected).

   Per-process client state machine, driven as engine actions so the
   scheduler interleaves clients and protocol fairly:

     Idle  --pending request--> Waiting --try_enter ok--> Eating
       ^                                                     |
       +------------------- release ------------------------+

   A Waiting client attempts entry only when [fresh] — some message
   arrived since its last failed attempt — so guard evaluations are
   bounded by deliveries, not steps; with the protocols' early-exit
   entry guards the expected guard cost per grant is O(n log n), not
   O(n^2).  Zero think time and zero eat time: the client releases at
   its next scheduled action, keeping measured latency about the
   protocol, not the workload. *)

type result = {
  protocol : string;
  n : int;
  seed : int;
  rate : float;
  steps_run : int;
      (* steps actually executed: injection horizon + drain, early
         exit once every injected request was granted *)
  requests : int;  (* arrivals injected *)
  grants : int;
  latencies : int array;
      (* steps from intended arrival to CS entry, in grant order *)
}

let run ?indexed (module P : Graybox.Protocol.S) ~n ~seed ~rate ~max_requests
    ~max_steps () =
  if rate <= 0. then invalid_arg "Load.run: need rate > 0";
  let module Node = struct
    type phase = Idle | Waiting | Eating

    type state = {
      proto : P.state;
      phase : phase;
      pending : int Fqueue.t;  (* intended arrival steps, FIFO *)
      serving : int;  (* intended arrival of the request in service *)
      fresh : bool;  (* message arrived since the last failed attempt *)
      grants : int;
    }

    type msg = Graybox.Msg.t

    let receive ~self:_ ~from m s =
      let proto, out = P.on_message ~from m s.proto in
      ({ s with proto; fresh = true }, out)

    (* At most one action is ever enabled per client, so the engine's
       per-process action count stays 0 or 1 and idle clients cost the
       scheduler nothing. *)
    let act_request =
      ( "request-cs",
        fun s ->
          match Fqueue.pop s.pending with
          | None -> (s, [])
          | Some (stamp, pending) ->
            let proto, out = P.request_cs s.proto in
            ( { s with proto; pending; phase = Waiting; serving = stamp;
                fresh = true },
              out ) )

    let act_enter =
      ( "enter-cs",
        fun s ->
          match P.try_enter s.proto with
          | Some (proto, out) ->
            ({ s with proto; phase = Eating; grants = s.grants + 1 }, out)
          | None -> ({ s with fresh = false }, []) )

    let act_release =
      ( "release-cs",
        fun s ->
          let proto, out = P.release_cs s.proto in
          ({ s with proto; phase = Idle }, out) )

    let actions ~self:_ s =
      match s.phase with
      | Idle -> if Fqueue.is_empty s.pending then [] else [ act_request ]
      | Waiting -> if s.fresh then [ act_enter ] else []
      | Eating -> [ act_release ]
  end in
  let module E = Sim.Engine.Make (Node) in
  let eng =
    E.create
      (E.config ?indexed ~record:false ~n ~seed ())
      ~init:(fun self ->
        { Node.proto = P.init ~n self;
          phase = Node.Idle;
          pending = Fqueue.empty;
          serving = 0;
          fresh = false;
          grants = 0 })
  in
  (* Arrivals draw from their own stream so the schedule RNG stays
     aligned with other runs of the same seed. *)
  let arr_rng = Rng.create ((seed * 1_000_003) + 40_503) in
  let next_arrival = ref 0. in
  let draw_gap () = -.log (1. -. Rng.float arr_rng 1.) /. rate in
  next_arrival := !next_arrival +. draw_gap ();
  let requests = ref 0 in
  let grants_seen = Array.make n 0 in
  let latencies = Vec.create () in
  let steps_run = ref 0 in
  (* [max_steps] bounds {e injection}; after it the run keeps stepping
     (up to [max_steps] more) with no new arrivals so requests still in
     flight can finish — otherwise the slowest (deepest-tail) samples
     would be silently censored by the horizon cut-off. *)
  let injection_done () =
    !requests >= max_requests
    || !next_arrival > float_of_int (max_steps - 1)
  in
  (try
     while !steps_run < 2 * max_steps do
       let now = E.time eng in
       while
         !requests < max_requests && now < max_steps
         && !next_arrival <= float_of_int now
       do
         let target = Rng.int arr_rng n in
         let s = E.state eng target in
         E.set_state eng target
           { s with Node.pending = Fqueue.push now s.Node.pending };
         incr requests;
         next_arrival := !next_arrival +. draw_gap ()
       done;
       (match E.step eng with
        | Sim.Trace.Internal { pid; label = "enter-cs" } ->
          let s = E.state eng pid in
          if s.Node.grants > grants_seen.(pid) then begin
            grants_seen.(pid) <- s.Node.grants;
            (* time already advanced past the granting step *)
            Vec.push latencies (E.time eng - 1 - s.Node.serving)
          end
        | _ -> ());
       incr steps_run;
       if injection_done () && Vec.length latencies >= !requests then
         raise Exit
     done
   with Exit -> ());
  { protocol = P.name;
    n;
    seed;
    rate;
    steps_run = !steps_run;
    requests = !requests;
    grants = Vec.length latencies;
    latencies = Vec.to_array latencies }

let percentiles r ps =
  let v = Vec.create () in
  Array.iter (fun l -> Vec.push v (float_of_int l)) r.latencies;
  Stats.percentiles v ps
