(** Packaged simulation scenarios.

    Everything downstream — tests, examples, the CLI, and the bench
    harness — runs experiments through this module, so a scenario is
    described once: protocol (as a first-class module), wrapper mode,
    process count, seed, horizon, and a protocol-independent fault
    script that is lowered onto the protocol's own corruption hooks. *)

type fault_spec =
  | Drop_requests of { at : int; per_chan : int }
      (** lose request messages — the paper's §4 deadlock scenario when
          applied to all in-flight requests *)
  | Drop_requests_window of { from_t : int; until_t : int }
      (** lose {e every} request in flight during the window: the
          reliable §4 deadlock injection — any process that requests
          inside the window has its request lost to all peers *)
  | Drop_any of { at : int; per_chan : int }
  | Duplicate of { at : int; per_chan : int }
  | Corrupt_messages of { at : int; per_chan : int }
  | Reorder of { at : int; per_chan : int }
  | Flush of { at : int }
  | Partition of { pid : Sim.Pid.t; from_t : int; until_t : int }
      (** process {e isolation} (not a group partition — that is
          {!Split}): every message to or from the one selected process
          is lost while the window lasts, modelling a single process
          falling off the network and recovering.  The chaos label for
          this spec remains ["partition"] for golden-report
          stability. *)
  | Corrupt_state of { at : int; procs : Sim.Faults.proc_selector }
  | Reset_state of { at : int; procs : Sim.Faults.proc_selector }
  | Crash of
      { procs : Sim.Faults.proc_selector;
        from_t : int;
        until_t : int;
        lose : bool }
      (** crash/recover ({!Sim.Faults.Crash}): the selected processes
          take no steps during [\[from_t, until_t)]; with [lose] their
          inbound messages are lost meanwhile, otherwise delivery merely
          stalls until recovery *)
  | Split of
      { groups : Sim.Pid.t list list;
        from_t : int;
        until_t : int;
        mode : Sim.Faults.heal_mode }
      (** group partition that heals ({!Sim.Faults.Split}): every
          channel between different groups is down for the window
          (unlisted pids form an implicit remainder group).
          [Lossy] loses cross-partition traffic; [Buffered] holds it
          and floods it in at the heal.  Lowering also schedules a
          {!Sim.Faults.Heal} marker at [until_t], so
          [recovery_latency] measures from the heal — the quantity the
          PARTITION experiment reports. *)
  | Delay of { at : int; chan : Sim.Faults.chan_selector; dist : Sim.Faults.delay_dist }
      (** from [at] on, messages over the selected channels are
          delivered only after a per-message delay drawn from [dist]
          (seeded by the engine's fault RNG — runs stay
          seed-deterministic).  Per-channel FIFO is preserved. *)

val burst : at:int -> fault_spec list
(** [burst ~at] is a compound transient fault: state corruption of
    every process plus message corruption and loss — the stress case
    for stabilization. *)

type result = {
  protocol : string;
  n : int;
  seed : int;
  steps : int;
  wrapper : Graybox.Harness.wrapper_mode;
  vtrace : (Graybox.View.t, Graybox.Msg.t) Sim.Trace.t;
  entry_log : Graybox.Harness.entry_record list;
  total_entries : int;
  analysis : Graybox.Stabilize.analysis;
  recovery_latency : int option;
      (** steps from the last fault until every process completed a
          fresh CS entry ({!Graybox.Stabilize.service_round_latency});
          measured from the trace start on fault-free runs *)
  live_spec : Unityspec.Report.t option;
      (** ME1/ME2/ME3 verdicts from the online monitors, present only
          on streaming runs with [~live_monitors:true]; equal to
          {!tme_report} of the same scenario recorded *)
  epoch_spec : Graybox.Tme_spec.Epoch.report option;
      (** the regime-epoch report ({!Graybox.Tme_spec.Epoch}): present
          exactly when the lowered plan induces a nontrivial
          {!Sim.Regime} timeline (an effective split or crash window).
          Streaming runs feed the monitor online; recorded runs replay
          the trace through {!Graybox.Tme_spec.Epoch.of_trace} — equal
          either way (asserted in tests).  [None] on no-partition
          plans, whose results are byte-identical to pre-epoch code. *)
  sent_total : int;
  wrapper_sends : int;
  protocol_sends : int;  (** [sent_total - wrapper_sends] *)
  delivered : int;
  sim_steps : int;
}

val run :
  ?wrapper:Graybox.Harness.wrapper_mode ->
  ?faults:fault_spec list ->
  ?record:bool ->
  ?streaming:bool ->
  ?live_monitors:bool ->
  ?tail_margin:int ->
  ?think:(int * int) ->
  ?eat:(int * int) ->
  ?passive:Sim.Pid.t list ->
  ?indexed:bool ->
  (module Graybox.Protocol.S) ->
  n:int -> seed:int -> steps:int -> result
(** [run proto ~n ~seed ~steps] executes one scenario.  With
    [~record:false] the view trace and entry log are empty and the
    analysis is degenerate — use it for throughput measurements
    only.

    With [~streaming:true] trace recording is forced off and the
    analysis, recovery latency, and entry log are computed online by
    an engine observer while the run proceeds; they equal the recorded
    run's results field for field (asserted in the test suite), but
    [vtrace] is empty.  Streaming runs also exit early once the system
    is permanently quiescent (deadlocked with no pending recovery),
    feeding the rest of the horizon synthetically — [sim_steps] then
    reports how far the engine actually ran.  [~live_monitors:true]
    additionally folds the {!Graybox.Tme_spec} online monitors over
    the run and fills [live_spec]. *)

val lspec_report : result -> Unityspec.Report.t
(** Lspec clause verdicts over the scenario's recorded trace — only
    meaningful on fault-free runs (see {!Graybox.Lspec}). *)

val tme_report : result -> Unityspec.Report.t
(** ME1/ME2/ME3 verdicts over the recorded trace. *)

val find_protocol : string -> (module Graybox.Protocol.S) option
(** Alias for {!Graybox.Registry.find_protocol}.  This module is the
    {e registration site}: loading it fills {!Graybox.Registry} with
    every implementation — the references ([ra], [ra-gcl], [lamport],
    [central]), the modification ablations ([lamport-m1],
    [lamport-m12]), the negative controls ([lamport-unmod], the
    kept-reply RA safety mutant, and the sticky-suspicion
    [ra-lease-stale]), the partition-tolerant [ra-lease], and the
    synthesized-wrapper [ra-synth] —
    together with their roles, chaos expectations, and capabilities.  Enumerate and dispatch through
    {!Graybox.Registry.all}; there is no separate protocol list here
    to drift from it. *)

val wrapped : ?variant:Graybox.Wrapper.variant -> delta:int -> unit ->
  Graybox.Harness.wrapper_mode
(** Convenience constructor for [On {variant; delta}]. *)

val wrapped_term : term:Graybox.Wrapper.t -> delta:int -> unit ->
  Graybox.Harness.wrapper_mode
(** Convenience constructor for [On_term {term; delta}] — an arbitrary
    wrapper-DSL term (a registry entry's [wrapper_term], a synthesized
    candidate) under the same [δ]-timer discipline. *)
