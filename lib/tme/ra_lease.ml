(** Ricart-Agrawala with membership-leased grants: the
    partition-tolerant reference variant, and its non-tolerant
    ablation.

    The classical RA program ({!Ra_core}) wedges during a group
    partition: a hungry process waits on grants from peers it can no
    longer reach.  This variant subscribes to the simulated group
    membership service ({!Graybox.Protocol.S.on_view_change}) and
    degrades explicitly to {e per-group} mutual exclusion — the
    weak-ME1 regime the epoch monitors check:

    - the entry quorum is the {e current membership}, not all peers:
      a severed group keeps serving its own requests (a singleton
      group trivially so);
    - grants are {e leases} on continuous co-membership: each view
      change bumps a local view epoch and restarts the continuity
      clock of every (re)joining peer, and a grant counts only if it
      was recorded at or after the grantor's continuity epoch — a
      pre-partition grant from a peer that left and rejoined is void
      (the peer may have entered its own group's CS meanwhile), so
      the heal forces a fresh round with the peers that crossed it;
    - an eating process defers {e every} request until release.
      Classical RA replies to earlier-stamped requests even while
      eating — from legitimate states that branch is unreachable and
      after transient faults it is self-stabilizing repair, but after
      a heal it is a live hazard: the severed groups' timestamp
      orders never interleaved, so an "earlier" request from across
      the heal is a real competitor, not a corpse.  Deferring it
      until release keeps heal-crossing grants serialized; liveness
      is unaffected (release replies to everything deferred).

    With no view changes ever delivered, the quorum is all peers and
    every continuity epoch is 0: the program is Ricart-Agrawala with
    a slightly more patient eater.

    {b Known limit — buffered heals.}  The lease is enforced at
    {e receive} time: a grant recorded after the heal counts as fresh.
    Under a {e lossy} partition that is sound — nothing sent across
    the cut survives it.  Under a {e buffered} partition, a reply sent
    across the cut during the split is delivered at the heal, stamped
    with the post-heal epoch, and counted; the requester can combine
    it with own-group grants and enter against the other side's
    standing holder.  The partition bench measures exactly this
    (post-heal dual holders under [split-buf], none under lossy).
    Closing the hole needs an epoch fence {e on the message} — the
    fixed Request/Reply/Release alphabet cannot carry one, and
    receive-time stamping cannot reconstruct it, so the limit is
    documented and measured rather than patched around.  The
    during-split campaign gates run the lossy stream, where the lease
    is sound.

    The ablation ([ignore_rejoin = true], registered as the
    during-partition negative control) applies announcements that
    shrink its view but never un-suspects: heal-complete is ignored,
    each side keeps excluding only within its stale membership, and
    the first post-heal contention produces concurrent CS holders in
    a global epoch — exactly the dual-holder-survives-heal violation
    the cross-epoch obligation and per-epoch ME1 exist to catch. *)

module type CONFIG = sig
  val name : string

  val ignore_rejoin : bool
  (** [false] is the tolerant variant; [true] never applies a view
      change that grows the membership — the split-brain ablation. *)
end

module Make (C : CONFIG) : Graybox.Protocol.S = struct
  open Clocks
  module View = Graybox.View
  module Msg = Graybox.Msg

  type state = {
    self : Sim.Pid.t;
    n : int;
    mode : View.mode;
    clock : Logical_clock.t;
    req : Timestamp.t;
    local_req : Timestamp.t Sim.Pid.Map.t;
        (* j.REQ_k, sparse above Sim.Pid.dense_threshold like Ra_core *)
    received : Sim.Pid.Set.t;  (* requests pending reply *)
    members : Sim.Pid.Set.t;
        (* current view, self included; kept *empty* while pristine
           (the view is conceptually the full pid range — materializing
           n members in each of n processes is O(n^2) live heap across
           the system, which is pure GC ballast at load-bench scale) *)
    pristine : bool;
        (* no view change ever applied: the view is the full set and
           every continuity epoch is 0, so the lease checks reduce to
           classical RA — skipped entirely, keeping the no-membership
           fast path at ra's cost (the load bench runs it at n = 10k) *)
    view_epoch : int;  (* bumped at every applied view change *)
    co_since : int Sim.Pid.Map.t;
        (* epoch since which a peer has been continuously co-membered;
           absent reads 0 (together since the beginning) *)
    granted_in : int Sim.Pid.Map.t;
        (* epoch at which j.REQ_k was last written; absent reads 0 *)
  }

  let name = C.name

  let peers s = Sim.Pid.others ~self:s.self ~n:s.n

  let local_req_of s k =
    match Sim.Pid.Map.find_opt k s.local_req with
    | Some ts -> ts
    | None -> Timestamp.zero ~pid:k

  let co_since_of s k =
    match Sim.Pid.Map.find_opt k s.co_since with Some e -> e | None -> 0

  let granted_in_of s k =
    match Sim.Pid.Map.find_opt k s.granted_in with Some e -> e | None -> 0

  (* record j.REQ_k together with the epoch of the recording — the
     lease bookkeeping every local_req write goes through *)
  let record_local s k ts =
    { s with
      local_req = Sim.Pid.Map.add k ts s.local_req;
      granted_in =
        (* an absent entry reads 0 = the pristine epoch, so not
           writing it is the same lease *)
        (if s.pristine then s.granted_in
         else Sim.Pid.Map.add k s.view_epoch s.granted_in) }

  let init ~n self =
    { self;
      n;
      mode = View.Thinking;
      clock = Logical_clock.create ~pid:self;
      req = Timestamp.zero ~pid:self;
      local_req =
        (if n <= Sim.Pid.dense_threshold then
           List.fold_left
             (fun m k -> Sim.Pid.Map.add k (Timestamp.zero ~pid:k) m)
             Sim.Pid.Map.empty
             (Sim.Pid.others ~self ~n)
         else Sim.Pid.Map.empty);
      received = Sim.Pid.Set.empty;
      members = Sim.Pid.Set.empty (* pristine: conceptually full *);
      pristine = true;
      view_epoch = 0;
      co_since = Sim.Pid.Map.empty;
      granted_in = Sim.Pid.Map.empty }

  let view s =
    View.make ~self:s.self ~mode:s.mode ~req:s.req ~local_req:s.local_req
      ~clock:(Logical_clock.now s.clock)

  let refresh_req_if_thinking s =
    if s.mode = View.Thinking then { s with req = Logical_clock.read s.clock }
    else s

  let request_cs s =
    let clock, ts = Logical_clock.tick s.clock in
    let s = { s with clock; req = ts; mode = View.Hungry } in
    (s, List.map (fun k -> (k, Msg.Request ts)) (peers s))

  (* Entry quorum: every *co-membered* peer granted us, and each grant
     is leased — recorded no earlier than the peer's continuity epoch.
     Severed peers are not waited for; that is the explicit per-group
     degradation. *)
  let earliest s =
    if s.pristine then
      let rec go k =
        k >= s.n
        || ((k = s.self || Timestamp.lt s.req (local_req_of s k)) && go (k + 1))
      in
      go 0
    else
      let rec go k =
        k >= s.n
        || ((k = s.self
            || (not (Sim.Pid.Set.mem k s.members))
            || (Timestamp.lt s.req (local_req_of s k)
               && co_since_of s k <= granted_in_of s k))
           && go (k + 1))
      in
      go 0

  let try_enter s =
    if s.mode = View.Hungry && earliest s then
      let clock, _entry_ts = Logical_clock.tick s.clock in
      Some ({ s with clock; mode = View.Eating }, [])
    else None

  (* Release replies to *everything* deferred: the defer-while-eating
     rule above also defers earlier-stamped requests, so the release
     reply is their grant (a reply that turns out stale is absorbed by
     the postdating check on the other side). *)
  let release_cs s =
    let deferred = Sim.Pid.Set.elements s.received in
    let clock, ts = Logical_clock.tick s.clock in
    let s =
      { s with
        clock;
        mode = View.Thinking;
        req = ts;
        received = Sim.Pid.Set.empty }
    in
    (s, List.map (fun k -> (k, Msg.Reply ts)) deferred)

  let on_message ~from msg s =
    let ts = Msg.timestamp msg in
    let clock, _ = Logical_clock.receive_event s.clock ts in
    let s = refresh_req_if_thinking { s with clock } in
    match msg with
    | Msg.Request req_k ->
      let s = record_local s from req_k in
      (* Thinking: reply.  Hungry: reply only to earlier requests.
         Eating: defer everything until release (see the module
         comment — replying to heal-crossing "earlier" requests while
         eating is the dual-holder hazard). *)
      let replies_now =
        s.mode = View.Thinking
        || (s.mode = View.Hungry && Timestamp.lt req_k s.req)
      in
      if replies_now then begin
        let s = { s with received = Sim.Pid.Set.remove from s.received } in
        (s, [ (from, Msg.Reply (Logical_clock.read s.clock)) ])
      end
      else ({ s with received = Sim.Pid.Set.add from s.received }, [])
    | Msg.Reply r | Msg.Release r ->
      if Timestamp.lt s.req r then (record_local s from r, [])
      else (s, [])

  let membership_aware = true

  let on_view_change ~members s =
    let incoming = Sim.Pid.Set.add s.self (Sim.Pid.Set.of_list members) in
    (* while pristine the stored set is empty but the view is the full
       pid range — compare against that, not the representation *)
    let unchanged =
      if s.pristine then Sim.Pid.Set.cardinal incoming = s.n
      else Sim.Pid.Set.equal incoming s.members
    in
    let current_cardinal =
      if s.pristine then s.n else Sim.Pid.Set.cardinal s.members
    in
    if unchanged then s
    else if
      C.ignore_rejoin && Sim.Pid.Set.cardinal incoming > current_cardinal
    then s (* the ablation: suspicion is sticky, heals never believed *)
    else begin
      let view_epoch = s.view_epoch + 1 in
      let co_since =
        (* peers entering the view restart their continuity clock:
           whatever they granted before they left is void *)
        Sim.Pid.Set.fold
          (fun k acc ->
            if s.pristine || Sim.Pid.Set.mem k s.members then acc
            else Sim.Pid.Map.add k view_epoch acc)
          incoming s.co_since
      in
      { s with members = incoming; pristine = false; view_epoch; co_since }
    end

  let random_ts ~n rng =
    Timestamp.make
      ~clock:(Stdext.Rng.int rng 64)
      ~pid:(Stdext.Rng.int rng n)

  (* Protocol variables corrupt exactly like Ra_core's; the membership
     bookkeeping (members, view_epoch, co_since, granted_in) mirrors
     the fault injector's own oracle and is left alone — corrupting it
     would amount to corrupting the simulated membership service, not
     this process. *)
  let corrupt rng s =
    let open Stdext in
    let mode =
      match Rng.int rng 3 with
      | 0 -> View.Thinking
      | 1 -> View.Hungry
      | _ -> View.Eating
    in
    let clock =
      if Rng.bool rng then Logical_clock.with_now s.clock (Rng.int rng 64)
      else s.clock
    in
    let req =
      if Rng.bool rng then Timestamp.make ~clock:(Rng.int rng 64) ~pid:s.self
      else s.req
    in
    let local_req =
      Sim.Pid.Map.map
        (fun ts -> if Rng.chance rng 0.5 then random_ts ~n:s.n rng else ts)
        s.local_req
    in
    let received =
      List.fold_left
        (fun acc k -> if Rng.bool rng then Sim.Pid.Set.add k acc else acc)
        Sim.Pid.Set.empty (peers s)
    in
    { s with mode; clock; req; local_req; received }

  let reset ~n self =
    let s = init ~n self in
    { s with mode = View.Hungry }

  let perturb ~n:_ s =
    let all_received = Sim.Pid.Set.of_list (peers s) in
    [ { s with mode = View.Hungry };
      { s with mode = View.Eating };
      { s with mode = View.Hungry; received = all_received };
      { s with received = all_received };
      reset ~n:s.n s.self ]

  let pp ppf s =
    Format.fprintf ppf "%s[%d %a req=%a lc=%d ve=%d mem={%a}]" C.name s.self
      View.pp_mode s.mode Timestamp.pp s.req
      (Logical_clock.now s.clock)
      s.view_epoch
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (if s.pristine then Sim.Pid.range s.n
       else Sim.Pid.Set.elements s.members)
end

module Lease = Make (struct
  let name = "ra-lease"
  let ignore_rejoin = false
end)

module Stale = Make (struct
  let name = "ra-lease-stale"
  let ignore_rejoin = true
end)
