(** A deliberately faulty Ricart-Agrawala: replies to requests while
    eating (see {!Ra_core}).  It exists so the bounded model checker's
    ability to find real interleaving bugs is itself tested; it is
    registered in {!Graybox.Registry} (by {!Scenarios}) as a negative
    control, so chaos sweeps and the CLI resolve it like any other
    protocol. *)

include Ra_core.Make (struct
  let name = "ra-mutant"
  let defer_while_eating = false
end)
