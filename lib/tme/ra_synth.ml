(** Ricart-Agrawala run under a {e synthesized} wrapper term.

    The protocol is byte-for-byte {!Ra_me}'s (same [Ra_core] functor,
    deferred replies); only the registration differs: {!Scenarios}
    registers it with [role = Synthesized] and {!wrapper_term}, so the
    campaign and scenario layer compose it with
    [Harness.On_term {term; delta}] instead of the hand-written
    variant.  The term below is the one the CEGIS loop
    ([Synth.synthesize] over {!Mcheck.Oracle}) finds for RA — the
    size-minimal certified candidate, which coincides with the paper's
    refined [W_j]; [test_synth] asserts that coincidence, so this
    constant cannot silently drift from what synthesis produces. *)

include Ra_core.Make (struct
  let name = "ra-synth"
  let defer_while_eating = true
end)

let wrapper_term = Graybox.Wrapper.w_refined
