open Clocks
module View = Graybox.View
module Msg = Graybox.Msg

let coordinator : Sim.Pid.t = 0

type state = {
  self : Sim.Pid.t;
  n : int;
  mode : View.mode;
  clock : Logical_clock.t;
  req : Timestamp.t;
  granted : bool;  (* requester: holds the coordinator's grant *)
  pending : Timestamp.t list;  (* coordinator: waiting requests, sorted *)
  busy : bool;  (* coordinator: grant outstanding *)
}

let name = "central"

let init ~n self =
  { self;
    n;
    mode = View.Thinking;
    clock = Logical_clock.create ~pid:self;
    req = Timestamp.zero ~pid:self;
    granted = false;
    pending = [];
    busy = false }

let view s =
  let local_req =
    List.fold_left
      (fun m k -> Sim.Pid.Map.add k (Timestamp.zero ~pid:k) m)
      Sim.Pid.Map.empty
      (Sim.Pid.others ~self:s.self ~n:s.n)
  in
  View.make ~self:s.self ~mode:s.mode ~req:s.req ~local_req
    ~clock:(Logical_clock.now s.clock)

(* Coordinator: hand the section to the earliest pending request.  A
   grant to itself sets [granted] directly. *)
let dispatch s =
  if s.busy || s.self <> coordinator then (s, [])
  else
    match List.sort Timestamp.compare s.pending with
    | [] -> (s, [])
    | h :: rest ->
      let s = { s with pending = rest; busy = true } in
      if h.Timestamp.pid = coordinator then ({ s with granted = true }, [])
      else (s, [ (h.Timestamp.pid, Msg.Reply h) ])

let request_cs s =
  let clock, ts = Logical_clock.tick s.clock in
  let s = { s with clock; req = ts; mode = View.Hungry } in
  if s.self = coordinator then dispatch { s with pending = ts :: s.pending }
  else (s, [ (coordinator, Msg.Request ts) ])

let try_enter s =
  if s.mode = View.Hungry && s.granted then begin
    let clock, _ = Logical_clock.tick s.clock in
    Some ({ s with clock; mode = View.Eating }, [])
  end
  else None

let release_cs s =
  let clock, ts = Logical_clock.tick s.clock in
  let s = { s with clock; mode = View.Thinking; req = ts; granted = false } in
  if s.self = coordinator then dispatch { s with busy = false }
  else (s, [ (coordinator, Msg.Release ts) ])

let on_message ~from:_ msg s =
  let ts = Msg.timestamp msg in
  let clock, _ = Logical_clock.receive_event s.clock ts in
  let s = { s with clock } in
  let s =
    if s.mode = View.Thinking then { s with req = Logical_clock.read s.clock }
    else s
  in
  match msg with
  | Msg.Request r when s.self = coordinator ->
    dispatch { s with pending = r :: s.pending }
  | Msg.Release _ when s.self = coordinator ->
    dispatch { s with busy = false }
  | Msg.Reply _ when s.mode = View.Hungry -> ({ s with granted = true }, [])
  | Msg.Request _ | Msg.Release _ | Msg.Reply _ -> (s, [])

let corrupt rng s =
  let open Stdext in
  let mode =
    match Rng.int rng 3 with
    | 0 -> View.Thinking
    | 1 -> View.Hungry
    | _ -> View.Eating
  in
  { s with
    mode;
    granted = Rng.bool rng;
    busy = (if s.self = coordinator then Rng.bool rng else s.busy);
    pending = (if s.self = coordinator then [] else s.pending) }

let reset ~n self = init ~n self
let membership_aware = false
let on_view_change ~members:_ s = s

(* Everywhere-mode seeds: a stolen grant, a phantom mode, a coordinator
   that believes a grant is outstanding when none is. *)
let perturb ~n s =
  let base =
    [ { s with mode = View.Hungry };
      { s with mode = View.Eating };
      { s with mode = View.Hungry; granted = true };
      reset ~n s.self ]
  in
  if s.self = coordinator then { s with busy = true } :: base else base

let pp ppf s =
  Format.fprintf ppf "central[%d %a req=%a granted=%b busy=%b |q|=%d]" s.self
    View.pp_mode s.mode Timestamp.pp s.req s.granted s.busy
    (List.length s.pending)
