(** The common machinery of Lamport's mutual-exclusion program, shared
    by the paper's modified variant ({!Lamport_me}) and the original
    ({!Lamport_unmodified}, the negative control).

    Lamport's algorithm: a requester inserts its timestamped request
    into its local [request_queue] and broadcasts it; every receiver
    inserts it and replies immediately; a requester enters the CS when
    it has replies from everyone and its request heads its queue; on
    release it broadcasts a release message that removes its request
    from the queues.

    The paper makes two modifications so the program everywhere
    implements Lspec:
    1. [Insert] keeps at most one request per process, so a fresh
       request overwrites a stale or corrupted one;
    2. the entry rule is "own request ≤ head" rather than
       "own request = head", so a vanished own entry cannot block.

    This reproduction adds a third, in the same spirit, which the
    garbled original leaves implicit but recovery from queue
    corruption requires: a {e thinking} receiver answers a request
    with reply {e and} release; the release prunes any stale queue
    entry of the replier at the requester (a "phantom" entry of a
    process that is not actually requesting).  Without it, a corrupted
    queue entry for a never-requesting process heads the queue forever
    and no wrapper message can dislodge it.  All three are behaviours
    of the implementation, invisible to — and required by nothing in —
    the wrapper. *)

open Clocks
module View = Graybox.View
module Msg = Graybox.Msg

type entry_rule = Leq_head | Exact_head

module type CONFIG = sig
  val name : string

  val purge_on_insert : bool
  (** modification 1: one queue entry per process *)

  val entry_rule : entry_rule
  (** modification 2: [Leq_head], or the original [Exact_head] *)

  val release_echo : bool
  (** modification 3: thinking receivers answer requests with
      reply + release *)
end

module Make (C : CONFIG) : Graybox.Protocol.S = struct
  type state = {
    self : Sim.Pid.t;
    n : int;
    mode : View.mode;
    clock : Logical_clock.t;
    req : Timestamp.t;
    queue : Timestamp.t list;  (* kept sorted by Timestamp.compare *)
    grant : Timestamp.t Sim.Pid.Map.t;  (* k ↦ timestamp of k's reply *)
  }

  let name = C.name

  let peers s = Sim.Pid.others ~self:s.self ~n:s.n

  let init ~n self =
    { self;
      n;
      mode = View.Thinking;
      clock = Logical_clock.create ~pid:self;
      req = Timestamp.zero ~pid:self;
      queue = [];
      grant = Sim.Pid.Map.empty }

  let sort_queue = List.sort Timestamp.compare

  let insert ts queue =
    let queue =
      if C.purge_on_insert then
        List.filter (fun e -> e.Timestamp.pid <> ts.Timestamp.pid) queue
      else queue
    in
    sort_queue (ts :: queue)

  let remove_pid pid queue =
    List.filter (fun e -> e.Timestamp.pid <> pid) queue

  let head queue =
    match sort_queue queue with [] -> None | h :: _ -> Some h

  let entry_of s k = List.find_opt (fun e -> e.Timestamp.pid = k) s.queue

  (* The paper's defined relation: REQ_j lt j.REQ_k iff grant.j.k and
     k's request is not ahead of REQ_j in the queue.  Encoded as a
     timestamp so the view (and hence wrapper and monitors) can use
     the uniform lt test.  "No grant" must encode to a value that is
     lt every possible REQ_j — including zero-clock requests arising
     from improper initialization — hence the clock of -1. *)
  let bottom k = Timestamp.make ~clock:(-1) ~pid:k

  let local_req_of s k =
    match entry_of s k with
    | Some e when Timestamp.lt e s.req -> e
    | Some _ | None ->
      (match Sim.Pid.Map.find_opt k s.grant with
       | Some g -> g
       | None -> bottom k)

  let view s =
    let local_req =
      List.fold_left
        (fun m k -> Sim.Pid.Map.add k (local_req_of s k) m)
        Sim.Pid.Map.empty (peers s)
    in
    View.make ~self:s.self ~mode:s.mode ~req:s.req ~local_req
      ~clock:(Logical_clock.now s.clock)

  let refresh_req_if_thinking s =
    if s.mode = View.Thinking then { s with req = Logical_clock.read s.clock }
    else s

  let request_cs s =
    let clock, ts = Logical_clock.tick s.clock in
    let s =
      { s with
        clock;
        req = ts;
        queue = insert ts s.queue;
        grant = Sim.Pid.Map.empty;
        mode = View.Hungry }
    in
    (s, List.map (fun k -> (k, Msg.Request ts)) (peers s))

  (* Early-exit loop over the pid range (no peers list): the first
     missing grant ends the check, so the n-1 failed attempts a grant
     takes cost O(n log n) total, not O(n^2). *)
  let granted_by_all s =
    let rec go k =
      k >= s.n || ((k = s.self || Sim.Pid.Map.mem k s.grant) && go (k + 1))
    in
    go 0

  let head_allows s =
    match C.entry_rule with
    | Leq_head ->
      (* modification 2, stated robustly: the own request is "at the
         head" iff no other process's queued request is earlier.  Own
         queue entries are ignored — while hungry the own request is
         REQ_j by definition, so a divergent own entry is corrupt and
         must not block (a corrupted copy would otherwise deadlock the
         process forever, since only its owner could purge it). *)
      not
        (List.exists
           (fun e -> e.Timestamp.pid <> s.self && Timestamp.lt e s.req)
           s.queue)
    | Exact_head ->
      (match head s.queue with
       | Some h -> Timestamp.equal s.req h
       | None -> false)

  let try_enter s =
    if s.mode = View.Hungry && granted_by_all s && head_allows s then begin
      let clock, _ = Logical_clock.tick s.clock in
      Some ({ s with clock; mode = View.Eating }, [])
    end
    else None

  let release_cs s =
    let clock, ts = Logical_clock.tick s.clock in
    let queue =
      match C.entry_rule with
      | Leq_head -> remove_pid s.self s.queue
      | Exact_head ->
        (* the original dequeues the head, which is its own request in
           every legitimate state *)
        (match sort_queue s.queue with [] -> [] | _ :: rest -> rest)
    in
    let s =
      { s with
        clock;
        mode = View.Thinking;
        req = ts;
        queue;
        grant = Sim.Pid.Map.empty }
    in
    (s, List.map (fun k -> (k, Msg.Release ts)) (peers s))

  let on_message ~from msg s =
    let ts = Msg.timestamp msg in
    let clock, _ = Logical_clock.receive_event s.clock ts in
    let s = refresh_req_if_thinking { s with clock } in
    match msg with
    | Msg.Request req_k ->
      let s = { s with queue = insert req_k s.queue } in
      let reply = (from, Msg.Reply (Logical_clock.read s.clock)) in
      let sends =
        if C.release_echo && s.mode = View.Thinking then
          [ reply; (from, Msg.Release (Logical_clock.read s.clock)) ]
        else [ reply ]
      in
      (s, sends)
    | Msg.Reply r ->
      if Timestamp.lt s.req r then
        ({ s with grant = Sim.Pid.Map.add from r s.grant }, [])
      else (s, [])
    | Msg.Release _ -> ({ s with queue = remove_pid from s.queue }, [])

  let random_ts ~n rng =
    Timestamp.make
      ~clock:(Stdext.Rng.int rng 64)
      ~pid:(Stdext.Rng.int rng n)

  let corrupt rng s =
    let open Stdext in
    let mode =
      match Rng.int rng 3 with
      | 0 -> View.Thinking
      | 1 -> View.Hungry
      | _ -> View.Eating
    in
    let clock =
      if Rng.bool rng then Logical_clock.with_now s.clock (Rng.int rng 64)
      else s.clock
    in
    (* see Ra_me.corrupt: REQ_j's pid component is structural *)
    let req =
      if Rng.bool rng then Timestamp.make ~clock:(Rng.int rng 64) ~pid:s.self
      else s.req
    in
    let queue =
      let kept = List.filter (fun _ -> Rng.bool rng) s.queue in
      let phantoms =
        List.init (Rng.int rng 3) (fun _ -> random_ts ~n:s.n rng)
      in
      sort_queue (phantoms @ kept)
    in
    let grant =
      Sim.Pid.Map.filter_map
        (fun _ g ->
          if Rng.chance rng 0.3 then None
          else if Rng.chance rng 0.3 then Some (random_ts ~n:s.n rng)
          else Some g)
        s.grant
    in
    { s with mode; clock; req; queue; grant }

  let reset ~n self =
    let s = init ~n self in
    { s with mode = View.Hungry; queue = [ Timestamp.zero ~pid:self ] }

  let membership_aware = false
  let on_view_change ~members:_ s = s

  (* Everywhere-mode seeds: a mode no message explains, phantom grants
     (replies recorded that were never sent), a phantom queue entry for
     a peer that never requested — precisely the corruptions the
     paper's modifications 1–3 are about. *)
  let perturb ~n:_ s =
    let phantom_grants =
      List.fold_left
        (fun m k -> Sim.Pid.Map.add k (Timestamp.make ~clock:5 ~pid:k) m)
        Sim.Pid.Map.empty (peers s)
    in
    let phantom_entry =
      match peers s with
      | [] -> []
      | k :: _ -> [ Timestamp.make ~clock:2 ~pid:k ]
    in
    [ { s with mode = View.Hungry };
      { s with mode = View.Eating };
      { s with mode = View.Hungry; grant = phantom_grants };
      { s with queue = sort_queue (phantom_entry @ s.queue) };
      reset ~n:s.n s.self ]

  let pp ppf s =
    Format.fprintf ppf "%s[%d %a req=%a lc=%d q=[%a] g={%a}]" C.name s.self
      View.pp_mode s.mode Timestamp.pp s.req
      (Logical_clock.now s.clock)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
         Timestamp.pp)
      s.queue
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (k, g) -> Format.fprintf ppf "%d:%a" k Timestamp.pp g))
      (Sim.Pid.Map.bindings s.grant)
end
