type role = Reference | Negative_control | Ablation | Synthesized

type expectation = Expect_recover | Expect_failure | Observe

type partition_expectation = Recovers_after_heal | Deadlocks | Partition_observe

type during_partition = Weak_me1 | Wedge | Unsafe

type entry = {
  name : string;
  proto : (module Protocol.S);
  role : role;
  expectation : expectation;
  partition_expectation : partition_expectation;
  during_partition : during_partition;
  default_delta : int;
  everywhere_checkable : bool;
  lspec_monitorable : bool;
  por_safe : bool;
  synthesizable : bool;
  wrapper_term : Wrapper.t option;
  sweep_rank : int option;
  doc : string;
}

let entry ?(role = Reference) ?expectation ?partition_expectation
    ?during_partition ?(delta = 8) ?(everywhere_checkable = true)
    ?(lspec_monitorable = true) ?por_safe ?synthesizable ?wrapper_term
    ?sweep_rank ~doc (module P : Protocol.S) =
  let expectation =
    match expectation with
    | Some e -> e
    | None -> (
      match role with
      | Reference | Synthesized -> Expect_recover
      | Negative_control | Ablation -> Expect_failure)
  in
  let partition_expectation =
    match partition_expectation with
    | Some e -> e
    | None -> (
      (* the role defaults mirror the chaos-expectation defaults: a
         wrapped reference must come back after the heal; a negative
         control is expected to get stuck; ablations are measured but
         not gated; synthesized wrappers are certified against wedges,
         not partitions, so their partition cells are informational *)
      match role with
      | Reference -> Recovers_after_heal
      | Negative_control -> Deadlocks
      | Ablation | Synthesized -> Partition_observe)
  in
  let during_partition =
    match during_partition with
    | Some d -> d
    | None -> (
      (* the classical programs need grants from severed peers, so by
         default a split wedges them; negative controls are expected
         to be caught by the epoch monitors *)
      match role with
      | Reference | Ablation | Synthesized -> Wedge
      | Negative_control -> Unsafe)
  in
  let por_safe =
    match por_safe with
    | Some b -> b
    (* references are verified exhaustively elsewhere and their
       expected verdict is Ok, so trading interleavings for reach is
       safe; controls and ablations exist to be caught, and their
       counterexamples are compared across runs — keep those sweeps
       exhaustive unless a registration opts in explicitly.  A
       synthesized entry's wrapper is box-composed by the checker, and
       wrapper moves are outside the ample-set argument *)
    | None -> role = Reference
  in
  let synthesizable =
    match synthesizable with
    | Some b -> b
    (* synthesis needs the full oracle: perturbation seeds for the
       safety leg (everywhere_checkable) and spec-level views the
       monitors understand (lspec_monitorable) *)
    | None -> role = Reference && everywhere_checkable && lspec_monitorable
  in
  { name = P.name;
    proto = (module P);
    role;
    expectation;
    partition_expectation;
    during_partition;
    default_delta = delta;
    everywhere_checkable;
    lspec_monitorable;
    por_safe;
    synthesizable;
    wrapper_term;
    sweep_rank;
    doc }

(* Registration order is meaningful (listings, the default reference),
   so the table is an append-only list, not a hashtable — it holds
   O(10) entries and is scanned only at dispatch boundaries. *)
let table : entry list ref = ref []

let register e =
  if e.name = "" then invalid_arg "Registry.register: empty protocol name";
  if List.exists (fun e' -> e'.name = e.name) !table then
    invalid_arg (Printf.sprintf "Registry.register: duplicate protocol %S" e.name);
  table := !table @ [ e ]

let all ?role () =
  match role with
  | None -> !table
  | Some r -> List.filter (fun e -> e.role = r) !table

let names ?role () = List.map (fun e -> e.name) (all ?role ())

let find name = List.find_opt (fun e -> e.name = name) !table

let mem name = find name <> None

let find_protocol name = Option.map (fun e -> e.proto) (find name)

let default_sweep () =
  !table
  |> List.filter_map (fun e -> Option.map (fun r -> (r, e.name)) e.sweep_rank)
  |> List.sort compare
  |> List.map snd

let default_reference () =
  List.find_opt (fun e -> e.role = Reference) !table

let everywhere_checkable_names () =
  List.filter_map
    (fun e -> if e.everywhere_checkable then Some e.name else None)
    !table

let por_safe_names () =
  List.filter_map (fun e -> if e.por_safe then Some e.name else None) !table

let synthesizable_names () =
  List.filter_map (fun e -> if e.synthesizable then Some e.name else None) !table

let role_label = function
  | Reference -> "reference"
  | Negative_control -> "negative-control"
  | Ablation -> "ablation"
  | Synthesized -> "synthesized"

let expectation_label = function
  | Expect_recover -> "recover"
  | Expect_failure -> "fail"
  | Observe -> "observe"

let partition_expectation_label = function
  | Recovers_after_heal -> "recovers-after-heal"
  | Deadlocks -> "deadlocks"
  | Partition_observe -> "observe"

let during_partition_label = function
  | Weak_me1 -> "weak-me1"
  | Wedge -> "wedge"
  | Unsafe -> "unsafe"

(* The expectation lattice — base readings and demotions.  Documented
   once, in the interface; the campaign calls these and adds no rules
   of its own. *)

let expectation_of_partition = function
  | Recovers_after_heal -> Expect_recover
  | Deadlocks -> Expect_failure
  | Partition_observe -> Observe

let expectation_of_during = function
  | Weak_me1 | Wedge -> Expect_recover
  | Unsafe -> Expect_failure

let demote_unwrapped = function
  | Expect_recover -> Observe
  | (Expect_failure | Observe) as e -> e

let demote_buffered = function
  | Expect_failure -> Observe
  | (Expect_recover | Observe) as e -> e

let unknown_protocol_message name =
  Printf.sprintf "unknown protocol %S (known: %s)" name
    (String.concat ", " (names ()))
