(** Executable monitors for TME_Spec (paper §3.1):
    ME1 mutual exclusion, ME2 starvation freedom, ME3 first-come
    first-serve.

    Theorem 5 states that every implementation of Lspec implements
    TME_Spec from initial states; these monitors are the empirical
    check — they must hold on every fault-free trace of a conforming
    implementation, and (by Theorem 8) on a suffix of every faulty
    trace of a wrapped one. *)

type vtrace = (View.t, Msg.t) Sim.Trace.t

val me1 : vtrace -> Unityspec.Temporal.verdict
(** [(∀j,k :: e.j ∧ e.k ⇒ j = k)]: at most one process eats. *)

val me1_violations : vtrace -> int
(** Number of snapshots with two or more eaters (for recovery
    accounting rather than a verdict). *)

val me2 : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [(∀j :: h.j ↝ e.j)]: every hungry process eventually eats. *)

val me3 : Harness.entry_record list -> Unityspec.Temporal.verdict
(** FCFS over the oracle entry log: if [a]'s request happened-before
    [b]'s request (exact, via oracle vector clocks), then [a]'s entry
    precedes [b]'s in the trace.  The log must be in trace order. *)

val check_all :
  n:int -> entries:Harness.entry_record list -> vtrace -> Unityspec.Report.t

val report_of_verdicts :
  me1:Unityspec.Temporal.verdict ->
  me2:Unityspec.Temporal.verdict ->
  me3:Unityspec.Temporal.verdict -> Unityspec.Report.t
(** The report shape shared by {!check_all} and the streaming path:
    the three clause labels paired with the given verdicts. *)

(** {2 Online monitors}

    The same clauses as incremental {!Unityspec.Online} monitors, fed
    while the engine runs instead of over a recorded trace.  ME1 and
    ME2 consume the per-snapshot view array (one feed per trace
    snapshot, in order); ME3 consumes the oracle entry stream.  On
    equal input prefixes the verdicts equal the offline operators —
    including [at] indices and reasons (asserted in tests). *)

val me1_online : unit -> View.t array Unityspec.Online.t

val me2_online : n:int -> View.t array Unityspec.Online.t

val me3_online : unit -> Harness.entry_record Unityspec.Online.t
