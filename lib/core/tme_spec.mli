(** Executable monitors for TME_Spec (paper §3.1):
    ME1 mutual exclusion, ME2 starvation freedom, ME3 first-come
    first-serve.

    Theorem 5 states that every implementation of Lspec implements
    TME_Spec from initial states; these monitors are the empirical
    check — they must hold on every fault-free trace of a conforming
    implementation, and (by Theorem 8) on a suffix of every faulty
    trace of a wrapped one. *)

type vtrace = (View.t, Msg.t) Sim.Trace.t

val me1 : vtrace -> Unityspec.Temporal.verdict
(** [(∀j,k :: e.j ∧ e.k ⇒ j = k)]: at most one process eats. *)

val me1_violations : vtrace -> int
(** Number of snapshots with two or more eaters (for recovery
    accounting rather than a verdict). *)

val me2 : n:int -> vtrace -> Unityspec.Temporal.verdict
(** [(∀j :: h.j ↝ e.j)]: every hungry process eventually eats. *)

val me3 : Harness.entry_record list -> Unityspec.Temporal.verdict
(** FCFS over the oracle entry log: if [a]'s request happened-before
    [b]'s request (exact, via oracle vector clocks), then [a]'s entry
    precedes [b]'s in the trace.  The log must be in trace order. *)

val check_all :
  n:int -> entries:Harness.entry_record list -> vtrace -> Unityspec.Report.t

val report_of_verdicts :
  me1:Unityspec.Temporal.verdict ->
  me2:Unityspec.Temporal.verdict ->
  me3:Unityspec.Temporal.verdict -> Unityspec.Report.t
(** The report shape shared by {!check_all} and the streaming path:
    the three clause labels paired with the given verdicts. *)

(** {2 Online monitors}

    The same clauses as incremental {!Unityspec.Online} monitors, fed
    while the engine runs instead of over a recorded trace.  ME1 and
    ME2 consume the per-snapshot view array (one feed per trace
    snapshot, in order); ME3 consumes the oracle entry stream.  On
    equal input prefixes the verdicts equal the offline operators —
    including [at] indices and reasons (asserted in tests). *)

val me1_online : unit -> View.t array Unityspec.Online.t

val me2_online : n:int -> View.t array Unityspec.Online.t

val me3_online : unit -> Harness.entry_record Unityspec.Online.t

(** {2 Epoch-indexed monitors}

    The regime-epoch restatement of TME_Spec over a
    {!Sim.Regime.timeline}: during a [Global] epoch the classical
    clauses apply unchanged; during a [Split] epoch ME1 weakens to at
    most one CS holder {e per connected group}, ME2 opens no new
    obligations (a minority group may starve legitimately — open
    obligations still discharge whenever served), and ME3 compares
    only entries that could have communicated (same group, or either
    entry in a global epoch).  A cross-epoch {e heal obligation}
    watches every regime change: the eater set carried across the
    transition may violate the new topology (one holder per side of a
    heal); it is tolerated while it only shrinks and must reach a
    topology-legal state before the run ends — no dual-holder
    survives heal-complete.

    One monitor serves both observation modes: {!Epoch.feed}/
    {!Epoch.feed_entry} stream snapshots as the engine runs, and
    {!Epoch.of_trace} replays a recorded trace through the same fold,
    so the two reports are equal field-for-field (asserted across the
    registry × partition-plan grid in tests). *)

module Epoch : sig
  type row = {
    topo : Sim.Regime.topo;
    me1 : Unityspec.Temporal.verdict;
        (** per-group mutual exclusion during this epoch *)
    row_entries : int;  (** CS entries while this epoch governed *)
  }

  type report = {
    rows : row list;  (** one per epoch of the timeline, in order *)
    heal : Unityspec.Temporal.verdict;  (** the cross-epoch obligation *)
    me2 : Unityspec.Temporal.verdict;
    me3 : Unityspec.Temporal.verdict;
    split_entries : int;
        (** CS entries during [Split] epochs — the during-partition
            grant availability a tolerant protocol must keep nonzero *)
    snapshots : int;
  }

  type t
  (** Mutable accumulator — create one per run. *)

  val create : n:int -> timeline:Sim.Regime.timeline -> t

  val feed : t -> time:int -> View.t array -> unit
  (** Consume the next snapshot's views (read during the call only). *)

  val feed_entry : t -> time:int -> Harness.entry_record -> unit
  (** Consume the next oracle CS entry, before the snapshot of the
      event that produced it. *)

  val report : t -> report

  val safe : report -> bool
  (** The safety half alone: every epoch's ME1 holds and the
      cross-epoch heal obligation holds.  This is the verdict the
      campaign's during-split cells gate on ({!Registry.during_partition}) —
      liveness and ordering are reported but not gated there. *)

  val ok : ?margin:int -> report -> bool
  (** [safe], ME3 holds, and ME2 is clean up to obligations opened
      within the final [margin] snapshots (default 300). *)

  val of_trace :
    timeline:Sim.Regime.timeline ->
    n:int ->
    entries:Harness.entry_record list ->
    vtrace ->
    report
  (** Offline recomputation: replay a recorded trace (entries fed at
      their ["enter-cs"] events) through the same fold. *)

  val pp : Format.formatter -> report -> unit
end
