open Unityspec
open Clocks

type vtrace = (View.t, Msg.t) Sim.Trace.t

let eaters (snap : (View.t, Msg.t) Sim.Trace.snapshot) =
  Array.fold_left
    (fun acc v -> if View.eating v then acc + 1 else acc)
    0 snap.states

let me1 tr =
  Temporal.invariant ~name:"ME1" (fun snap -> eaters snap <= 1) tr

let me1_violations tr =
  List.fold_left (fun acc snap -> if eaters snap > 1 then acc + 1 else acc) 0 tr

let me2 ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.leads_to ~name:(Printf.sprintf "ME2.%d" j)
        ~p:(fun snap -> View.hungry snap.Sim.Trace.states.(j))
        ~q:(fun snap -> View.eating snap.Sim.Trace.states.(j))
        tr)
    n

let me3 entries =
  (* Entries are in trace order; an entry whose request causally
     preceded an *earlier* entry's request violates FCFS. *)
  let rec scan idx earlier = function
    | [] -> Temporal.Holds
    | (e : Harness.entry_record) :: rest ->
      let bad =
        List.exists
          (fun (prev : Harness.entry_record) ->
            Vector_clock.lt e.entry_req_vc prev.entry_req_vc)
          earlier
      in
      if bad then
        Temporal.Violated
          { at = idx;
            reason =
              Printf.sprintf
                "entry %d by process %d served a request that \
                 happened-before an already-served one"
                idx e.entry_pid }
      else scan (idx + 1) (e :: earlier) rest
  in
  scan 0 [] entries

let report_of_verdicts ~me1 ~me2 ~me3 =
  Report.of_list
    [ ("ME1 (mutual exclusion)", me1);
      ("ME2 (starvation freedom)", me2);
      ("ME3 (FCFS)", me3) ]

let check_all ~n ~entries tr =
  report_of_verdicts ~me1:(me1 tr) ~me2:(me2 ~n tr) ~me3:(me3 entries)

(* ------------------------------------------------------------------ *)
(* Online monitors: the same three clauses as incremental folds over
   view arrays (ME1, ME2) and the oracle entry stream (ME3), with the
   same verdicts — index for index, reason for reason — as the offline
   operators above on the corresponding prefix. *)

let eaters_of views =
  Array.fold_left (fun acc v -> if View.eating v then acc + 1 else acc) 0 views

let me1_online () =
  Online.invariant ~name:"ME1" (fun views -> eaters_of views <= 1)

let me2_online ~n =
  Online.all
    (List.init n (fun j ->
         Online.leads_to ~name:(Printf.sprintf "ME2.%d" j)
           (fun (views : View.t array) -> View.hungry views.(j))
           (fun views -> View.eating views.(j))))

let me3_online () =
  Online.stateful ~init:(0, [])
    ~step:(fun (idx, earlier) (e : Harness.entry_record) ->
      let bad =
        List.exists
          (fun (prev : Harness.entry_record) ->
            Vector_clock.lt e.entry_req_vc prev.entry_req_vc)
          earlier
      in
      let verdict =
        if bad then
          Temporal.Violated
            { at = idx;
              reason =
                Printf.sprintf
                  "entry %d by process %d served a request that \
                   happened-before an already-served one"
                  idx e.entry_pid }
        else Temporal.Holds
      in
      ((idx + 1, e :: earlier), verdict))
