open Unityspec
open Clocks

type vtrace = (View.t, Msg.t) Sim.Trace.t

let eaters (snap : (View.t, Msg.t) Sim.Trace.snapshot) =
  Array.fold_left
    (fun acc v -> if View.eating v then acc + 1 else acc)
    0 snap.states

let me1 tr =
  Temporal.invariant ~name:"ME1" (fun snap -> eaters snap <= 1) tr

let me1_violations tr =
  List.fold_left (fun acc snap -> if eaters snap > 1 then acc + 1 else acc) 0 tr

let me2 ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.leads_to ~name:(Printf.sprintf "ME2.%d" j)
        ~p:(fun snap -> View.hungry snap.Sim.Trace.states.(j))
        ~q:(fun snap -> View.eating snap.Sim.Trace.states.(j))
        tr)
    n

let me3 entries =
  (* Entries are in trace order; an entry whose request causally
     preceded an *earlier* entry's request violates FCFS. *)
  let rec scan idx earlier = function
    | [] -> Temporal.Holds
    | (e : Harness.entry_record) :: rest ->
      let bad =
        List.exists
          (fun (prev : Harness.entry_record) ->
            Vector_clock.lt e.entry_req_vc prev.entry_req_vc)
          earlier
      in
      if bad then
        Temporal.Violated
          { at = idx;
            reason =
              Printf.sprintf
                "entry %d by process %d served a request that \
                 happened-before an already-served one"
                idx e.entry_pid }
      else scan (idx + 1) (e :: earlier) rest
  in
  scan 0 [] entries

let report_of_verdicts ~me1 ~me2 ~me3 =
  Report.of_list
    [ ("ME1 (mutual exclusion)", me1);
      ("ME2 (starvation freedom)", me2);
      ("ME3 (FCFS)", me3) ]

let check_all ~n ~entries tr =
  report_of_verdicts ~me1:(me1 tr) ~me2:(me2 ~n tr) ~me3:(me3 entries)

(* ------------------------------------------------------------------ *)
(* Online monitors: the same three clauses as incremental folds over
   view arrays (ME1, ME2) and the oracle entry stream (ME3), with the
   same verdicts — index for index, reason for reason — as the offline
   operators above on the corresponding prefix. *)

let eaters_of views =
  Array.fold_left (fun acc v -> if View.eating v then acc + 1 else acc) 0 views

let me1_online () =
  Online.invariant ~name:"ME1" (fun views -> eaters_of views <= 1)

let me2_online ~n =
  Online.all
    (List.init n (fun j ->
         Online.leads_to ~name:(Printf.sprintf "ME2.%d" j)
           (fun (views : View.t array) -> View.hungry views.(j))
           (fun views -> View.eating views.(j))))

(* ------------------------------------------------------------------ *)
(* Epoch-indexed monitors: the same spec, weakened per regime.  During
   a [Global] epoch the clauses above apply unchanged; during a
   [Split] epoch ME1 weakens to at-most-one-eater *per connected
   group*, ME2 stops opening obligations (a minority group may starve
   legitimately), and ME3 compares only entries that could have
   communicated (same group, or either in a global epoch).  A
   cross-epoch obligation watches regime changes: the eater set
   carried over a transition may violate the new topology (one eater
   per side of a heal); it is tolerated as long as it only shrinks,
   and must reach a topology-legal state before the run ends — a
   dual-holder surviving heal-complete is the violation the classical
   ME1 would have charged to the wrong epoch. *)

module Epoch = struct
  type row = {
    topo : Sim.Regime.topo;
    me1 : Temporal.verdict;
    row_entries : int;  (** CS entries while this epoch governed *)
  }

  type report = {
    rows : row list;
    heal : Temporal.verdict;
    me2 : Temporal.verdict;
    me3 : Temporal.verdict;
    split_entries : int;  (** CS entries during [Split] epochs *)
    snapshots : int;
  }

  type row_state = {
    r_topo : Sim.Regime.topo;
    mutable r_me1 : Temporal.verdict;
    mutable r_entries : int;
  }

  type obligation = {
    ob_pids : Sim.Pid.t list;  (** carried-over eaters, ascending *)
    ob_time : int;
    ob_idx : int;
  }

  type t = {
    n : int;
    cursor : Sim.Regime.cursor;
    rows : row_state array;
    mutable cur_epoch : int;
    mutable idx : int;  (** snapshots fed so far *)
    mutable obligation : obligation option;
    mutable heal : Temporal.verdict;  (** latches failed obligations *)
    mutable me2_m : (Sim.Regime.phase * View.t array) Online.t;
    mutable me3 : Temporal.verdict;
    mutable earlier : (Harness.entry_record * Sim.Regime.topo) list;
    mutable entry_idx : int;
    mutable split_entries : int;
  }

  let create ~n ~timeline =
    { n;
      cursor = Sim.Regime.cursor timeline;
      rows =
        Sim.Regime.epochs timeline
        |> List.map (fun topo ->
               { r_topo = topo; r_me1 = Temporal.Holds; r_entries = 0 })
        |> Array.of_list;
      cur_epoch = 0;
      idx = 0;
      obligation = None;
      heal = Temporal.Holds;
      me2_m =
        Online.all
          (List.init n (fun j ->
               Online.leads_to_gated
                 ~name:(Printf.sprintf "ME2.%d" j)
                 ~gate:(fun ((ph : Sim.Regime.phase), _) ->
                   ph = Sim.Regime.Global)
                 (fun ((_, views) : _ * View.t array) ->
                   View.hungry views.(j))
                 (fun (_, views) -> View.eating views.(j))));
      me3 = Temporal.Holds;
      earlier = [];
      entry_idx = 0;
      split_entries = 0 }

  let eater_pids views =
    let acc = ref [] in
    for j = Array.length views - 1 downto 0 do
      if View.eating views.(j) then acc := j :: !acc
    done;
    !acc

  (* at most one eater per connected group of [topo] *)
  let me1_ok (topo : Sim.Regime.topo) eaters =
    List.for_all
      (fun g ->
        List.length (List.filter (fun k -> List.mem k g) eaters) <= 1)
      topo.Sim.Regime.groups

  let pids_label pids =
    "{" ^ String.concat "," (List.map string_of_int pids) ^ "}"

  let subset a b = List.for_all (fun k -> List.mem k b) a

  let feed m ~time views =
    let topo = Sim.Regime.advance m.cursor time in
    let eaters = eater_pids views in
    if topo.Sim.Regime.epoch <> m.cur_epoch then begin
      m.cur_epoch <- topo.Sim.Regime.epoch;
      (* regime change: the CS holders observed at the first snapshot
         of the new regime carry over (an entry granted under the old
         topology can land in the boundary step itself, so the last
         pre-change snapshot under-counts).  If they violate the new
         topology they are on notice: tolerated only while shrinking,
         and the obligation must discharge before the run ends. *)
      if (not (me1_ok topo eaters)) && m.obligation = None then
        m.obligation <-
          Some { ob_pids = eaters; ob_time = time; ob_idx = m.idx }
    end;
    let row = m.rows.(topo.Sim.Regime.epoch) in
    let legal = me1_ok topo eaters in
    let tolerated =
      match m.obligation with
      | Some ob -> subset eaters ob.ob_pids
      | None -> false
    in
    if legal then m.obligation <- None;
    (if (not legal) && not tolerated then
       match row.r_me1 with
       | Temporal.Holds ->
         let bad_group =
           List.find_opt
             (fun g ->
               List.length (List.filter (fun k -> List.mem k g) eaters) > 1)
             topo.Sim.Regime.groups
         in
         let glabel =
           match bad_group with Some g -> pids_label g | None -> "{}"
         in
         row.r_me1 <-
           Temporal.Violated
             { at = m.idx;
               reason =
                 Printf.sprintf
                   "ME1[epoch %d]: concurrent CS holders %s in group %s"
                   topo.Sim.Regime.epoch (pids_label eaters) glabel }
       | _ -> ());
    (* ME2: obligations open only while the regime is global *)
    m.me2_m <- Online.feed m.me2_m (topo.Sim.Regime.phase, views);
    m.idx <- m.idx + 1

  let feed_entry m ~time (e : Harness.entry_record) =
    let topo = Sim.Regime.advance m.cursor time in
    let row = m.rows.(topo.Sim.Regime.epoch) in
    row.r_entries <- row.r_entries + 1;
    if topo.Sim.Regime.phase = Sim.Regime.Split then
      m.split_entries <- m.split_entries + 1;
    (match m.me3 with
     | Temporal.Holds ->
       let bad =
         List.exists
           (fun ((prev : Harness.entry_record), prev_topo) ->
             let comparable =
               (* entries in different groups of a split could not have
                  communicated; FCFS scopes to intra-group requests *)
               topo.Sim.Regime.phase = Sim.Regime.Global
               || prev_topo.Sim.Regime.phase = Sim.Regime.Global
               || Sim.Regime.same_group topo e.entry_pid prev.entry_pid
             in
             comparable
             && Clocks.Vector_clock.lt e.entry_req_vc prev.entry_req_vc)
           m.earlier
       in
       if bad then
         m.me3 <-
           Temporal.Violated
             { at = m.entry_idx;
               reason =
                 Printf.sprintf
                   "entry %d by process %d served a request that \
                    happened-before an already-served one"
                   m.entry_idx e.entry_pid }
     | _ -> ());
    m.earlier <- (e, topo) :: m.earlier;
    m.entry_idx <- m.entry_idx + 1

  let report m =
    let heal =
      match (m.heal, m.obligation) with
      | (Temporal.Violated _ as v), _ -> v
      | _, Some ob ->
        Temporal.Violated
          { at = ob.ob_idx;
            reason =
              Printf.sprintf
                "CS holders %s spanning the regime change at time %d \
                 were never resolved to one"
                (pids_label ob.ob_pids) ob.ob_time }
      | v, None -> v
    in
    let me2 = Online.verdict m.me2_m in
    { rows =
        Array.to_list m.rows
        |> List.map (fun r ->
               { topo = r.r_topo; me1 = r.r_me1; row_entries = r.r_entries });
      heal;
      me2;
      me3 = m.me3;
      split_entries = m.split_entries;
      snapshots = m.idx }

  let safe (r : report) =
    List.for_all (fun row -> Temporal.is_ok row.me1) r.rows
    && Temporal.is_ok r.heal

  let ok ?(margin = 300) (r : report) =
    safe r && Temporal.is_ok r.me3
    && Temporal.ok_with_tail ~trace_len:r.snapshots ~margin r.me2

  let of_trace ~timeline ~n ~entries (tr : vtrace) =
    let m = create ~n ~timeline in
    let remaining = ref entries in
    List.iter
      (fun (snap : (View.t, Msg.t) Sim.Trace.snapshot) ->
        (match snap.event with
         | Sim.Trace.Internal { label = "enter-cs"; _ } -> (
           (* the oracle logged one entry for this event; feed it
              before the post-event snapshot, as the streaming path
              does *)
           match !remaining with
           | e :: rest ->
             feed_entry m ~time:snap.time e;
             remaining := rest
           | [] -> ())
         | _ -> ());
        feed m ~time:snap.time snap.states)
      tr;
    report m

  let pp_row ppf row =
    let phase =
      match row.topo.Sim.Regime.phase with
      | Sim.Regime.Global -> "global"
      | Sim.Regime.Split -> "split"
    in
    Format.fprintf ppf "epoch %d %-6s since %5d  %-18s entries %3d  ME1 %a"
      row.topo.Sim.Regime.epoch phase row.topo.Sim.Regime.since
      (Sim.Regime.groups_label row.topo)
      row.row_entries Temporal.pp_verdict row.me1

  let pp ppf (r : report) =
    List.iter (fun row -> Format.fprintf ppf "%a@," pp_row row) r.rows;
    Format.fprintf ppf "heal obligation: %a@," Temporal.pp_verdict r.heal;
    Format.fprintf ppf "ME2 (global epochs): %a@," Temporal.pp_verdict r.me2;
    Format.fprintf ppf "ME3 (intra-group): %a@," Temporal.pp_verdict r.me3;
    Format.fprintf ppf "during-split entries: %d" r.split_entries
end

let me3_online () =
  Online.stateful ~init:(0, [])
    ~step:(fun (idx, earlier) (e : Harness.entry_record) ->
      let bad =
        List.exists
          (fun (prev : Harness.entry_record) ->
            Vector_clock.lt e.entry_req_vc prev.entry_req_vc)
          earlier
      in
      let verdict =
        if bad then
          Temporal.Violated
            { at = idx;
              reason =
                Printf.sprintf
                  "entry %d by process %d served a request that \
                   happened-before an already-served one"
                  idx e.entry_pid }
        else Temporal.Holds
      in
      ((idx + 1, e :: earlier), verdict))
