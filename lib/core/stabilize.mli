(** Convergence analysis: did the system stabilize, and how fast?

    "C is stabilizing to A iff every computation of C has a suffix
    that is a suffix of some computation of A that starts at an
    initial state of A."  Over a recorded trace we judge the suffix
    behaviourally: from the convergence point onward, mutual exclusion
    is never violated, every hungry process is served, and every eater
    releases.  Obligations still open within [tail_margin] snapshots
    of the trace end are treated as in-progress rather than failed,
    since a finite trace always truncates some computation. *)

type vtrace = (View.t, Msg.t) Sim.Trace.t

type analysis = {
  trace_len : int;
  last_fault_index : int option;
      (** index of the last injected fault, if any *)
  converged_index : int option;
      (** earliest index from which the legitimate-suffix criteria
          hold to the end of the trace *)
  recovery_steps : int option;
      (** simulated steps from the last fault (or trace start) to the
          convergence point; [Some 0] when never perturbed/immediate *)
  me1_violations : int;
      (** snapshots violating mutual exclusion after the last fault *)
  starving : Sim.Pid.t list;
      (** processes whose final hungry interval exceeds [tail_margin]
          without being served — deadlock/starvation witnesses *)
  recovered : bool;
      (** [converged_index] exists — the headline verdict *)
}

val analyse : ?tail_margin:int -> vtrace -> analysis
(** [analyse ?tail_margin tr] computes the analysis.  [tail_margin]
    defaults to 300 snapshots. *)

(** Streaming analysis: the incremental restatement of {!analyse} and
    {!service_round_latency}, fed one view snapshot at a time so a run
    needs no recorded trace (O(n) state instead of O(steps × n)).  On
    the same snapshot sequence, {!Online.analysis} equals {!analyse}
    and {!Online.latency} equals {!service_round_latency} at
    [after = last fault index (or 0)] — field for field; the test
    suite asserts this across the protocol × wrapper × seed grid. *)
module Online : sig
  type t
  (** Mutable accumulator — create one per run. *)

  val create : ?tail_margin:int -> unit -> t
  (** Same [tail_margin] default (300) as {!analyse}. *)

  val feed : t -> time:int -> fault:bool -> View.t array -> unit
  (** [feed t ~time ~fault views] consumes the next snapshot: its
      engine [time], whether it is a fault event, and the post-event
      views.  The array is read during the call only (safe to reuse). *)

  val analysis : t -> analysis
  (** The analysis of the snapshots fed so far. *)

  val latency : t -> int option
  (** {!service_round_latency} measured from the last fault fed (or
      the start), maintained incrementally. *)

  val of_trace : ?tail_margin:int -> vtrace -> t
  (** Fold a recorded trace — the equivalence bridge used in tests. *)
end

val pp : Format.formatter -> analysis -> unit

val service_round_latency : vtrace -> after:int -> int option
(** [service_round_latency tr ~after] is the number of simulated steps
    from snapshot index [after] until every process has completed at
    least one critical-section entry strictly after [after] — a
    recovery-latency measure that requires every process to be live
    again, so it scales with contention and ring size.  [None] if some
    process never re-enters within the trace. *)

val service_times : ?after:int -> vtrace -> int list
(** [service_times ?after tr] lists the duration (in simulated steps)
    of every completed hungry-to-eating interval that starts at or
    after snapshot index [after] (default 0) — the per-request service
    latencies, for percentile reporting. *)

val time_to_quiescent_consistency : vtrace -> after:int -> int option
(** [time_to_quiescent_consistency tr ~after] is the number of steps
    from [after] to the first subsequent snapshot at which no process
    is eating together with another (ME1 holds) and every hungry
    process's request is known to all peers — a cheap spot check of
    restored mutual consistency.  [None] if never reached. *)
