(** The protocol registry: one metadata-driven dispatch layer.

    The paper's point is that a single graybox wrapper is {e reused}
    across many implementations — RA, the modified Lamport program,
    deliberately broken controls.  This module is the repository's
    rendering of that reuse as data: every implementation is one
    {!entry} carrying its module, its experimental {!role}, the chaos
    {!expectation} it should be swept under, a default wrapper delta,
    and its capabilities.  Scenarios, the chaos campaign, the model
    checker's CLI, and the bench harness all dispatch through the
    table, so adding protocol #9 (or a synthesized one) is a one-line
    registration, not a five-file hunt.

    The registry itself is name-agnostic: an entry's [name] is read
    off the protocol module ({!Protocol.S.name}), so each name literal
    exists exactly once in the tree — at the module that defines it.
    Registration happens at module-initialization time of the
    registration site ({!Tme.Scenarios}); every executable that talks
    about protocols links it, so the table is full before any [main]
    runs. *)

type role =
  | Reference
      (** an everywhere-implementation of Lspec: the wrapper is
          expected to rescue it from any transient fault *)
  | Negative_control
      (** deliberately not everywhere-correct (e.g. Lamport's
          unmodified program, the kept-reply RA mutant): wrapped runs
          must still fail, or the harness has lost its teeth *)
  | Ablation
      (** a partially-modified variant for the modification-ablation
          experiment: runs correctly from Init but is not gated on
          recovery *)
  | Synthesized
      (** a reference implementation registered {e with} a machine-found
          wrapper term ([wrapper_term]): the campaign and scenarios run
          it under that term instead of the hand-written [W'(δ)], so
          the synthesized wrapper faces the same chaos gates *)

type expectation =
  | Expect_recover  (** chaos gate: every wrapped run must recover *)
  | Expect_failure  (** chaos gate: at least one run must fail *)
  | Observe  (** informational only *)

(** What a {e wrapped} run of this protocol should do after a group
    partition ({!Sim.Faults.Split}) heals — the registry side of the
    PARTITION experiment, gated by the campaign's partition cells the
    same way {!expectation} gates the chaos cells. *)
type partition_expectation =
  | Recovers_after_heal
      (** every wrapped partition run must converge after the heal —
          including under the buffered heal-time message flood *)
  | Deadlocks
      (** under a {e lossy} heal at least one run must fail to
          recover (lost cross-partition messages leave unservable
          protocol state the wrapper cannot retract); the buffered
          cell is informational, since nothing is lost there *)
  | Partition_observe  (** measured, not gated *)

(** What a {e wrapped} run of this protocol should do {e while} a
    group partition is open — the during-partition half of the
    regime-epoch specs ({!Tme_spec.Epoch}); the heal side is
    {!partition_expectation}.  Gated by the campaign's during-split
    cells against the epoch monitors' safety verdict (per-group ME1
    plus the cross-heal dual-holder obligation). *)
type during_partition =
  | Weak_me1
      (** degrades explicitly to per-group mutual exclusion: every
          wrapped during-split run must be epoch-safe, {e and} at
          least one run must enter the CS while the split is open —
          availability inside severed groups is the point of the
          degradation *)
  | Wedge
      (** refuses service across the split rather than degrade: runs
          must still be epoch-safe (trivially, nobody new enters), but
          no during-split availability is required *)
  | Unsafe
      (** violates even per-group ME1 or lets dual holders survive the
          heal: at least one wrapped during-split run must be caught
          epoch-unsafe, or the epoch monitors have lost their teeth *)

type entry = {
  name : string;  (** {!Protocol.S.name} of [proto], the lookup key *)
  proto : (module Protocol.S);
  role : role;
  expectation : expectation;
      (** how a {e wrapped} chaos cell over this protocol is gated
          (unwrapped cells are demoted — see {!demote_unwrapped}) *)
  partition_expectation : partition_expectation;
      (** how the campaign's heal-recovery partition cells
          ([--partitions]) over this protocol are gated *)
  during_partition : during_partition;
      (** how the campaign's during-split cells are gated: the
          regime-epoch verdict expected while a partition is open *)
  default_delta : int;  (** wrapper timeout for default sweeps *)
  everywhere_checkable : bool;
      (** [perturb] enumerates a real corruption set, so everywhere-mode
          model checking ([mcheck --everywhere]) is meaningful *)
  lspec_monitorable : bool;
      (** the Lspec / TME_Spec monitors apply to this implementation's
          views (false for the central-coordinator baseline, whose
          coordinator is not a specification-level process) *)
  por_safe : bool;
      (** partial-order reduction ([mcheck --por]) may be applied when
          model-checking mode-level invariants of this entry.  The
          reduction itself guards its ample sets dynamically; this
          flag is {e policy}: negative controls and ablations exist to
          produce comparable counterexamples, so their sweeps stay
          exhaustive *)
  synthesizable : bool;
      (** [graybox-cli synth] accepts this entry as a synthesis
          target: the CEGIS loop ([Synth]) can enumerate wrapper
          candidates and certify one against the model-checking oracle
          ({!Mcheck.Oracle}).  Requires real perturbation seeds
          ([everywhere_checkable]) and spec-level views
          ([lspec_monitorable]) *)
  wrapper_term : Wrapper.t option;
      (** for [Synthesized] entries: the wrapper-DSL term this entry
          is run under — scenarios and the campaign use
          [On_term {term; delta}] instead of the hand-written variant
          wherever this is [Some] *)
  sweep_rank : int option;
      (** position in the default chaos sweep ([None] = not swept by
          default); {!default_sweep} orders by rank *)
  doc : string;  (** one-line description for listings *)
}

val entry :
  ?role:role ->
  ?expectation:expectation ->
  ?partition_expectation:partition_expectation ->
  ?during_partition:during_partition ->
  ?delta:int ->
  ?everywhere_checkable:bool ->
  ?lspec_monitorable:bool ->
  ?por_safe:bool ->
  ?synthesizable:bool ->
  ?wrapper_term:Wrapper.t ->
  ?sweep_rank:int ->
  doc:string ->
  (module Protocol.S) ->
  entry
(** Smart constructor.  [name] is taken from the module.  Defaults:
    [role = Reference]; [expectation] follows the role ([Reference |
    Synthesized -> Expect_recover], otherwise [Expect_failure]);
    [partition_expectation] likewise ([Reference ->
    Recovers_after_heal], [Negative_control -> Deadlocks], [Ablation |
    Synthesized -> Partition_observe] — a synthesized wrapper is
    certified against wedges, not partitions); [during_partition]
    likewise ([Reference | Ablation | Synthesized -> Wedge] — the
    classical programs block on severed quorums — [Negative_control ->
    Unsafe]); [delta = 8]; [everywhere_checkable = true];
    [lspec_monitorable = true]; [por_safe] follows the role
    ([Reference -> true], otherwise [false]); [synthesizable] defaults
    to [role = Reference && everywhere_checkable &&
    lspec_monitorable]; [wrapper_term] defaults to [None]; no sweep
    rank. *)

val register : entry -> unit
(** Append to the table.  Registration order is the listing order of
    {!all}.
    @raise Invalid_argument on an empty name or a duplicate. *)

val all : ?role:role -> unit -> entry list
(** Every entry, in registration order; [?role] filters. *)

val names : ?role:role -> unit -> string list
(** [List.map (fun e -> e.name) (all ?role ())]. *)

val find : string -> entry option
val mem : string -> bool

val find_protocol : string -> (module Protocol.S) option
(** The module alone, for callers that only dispatch. *)

val default_sweep : unit -> string list
(** Names of the ranked entries, ordered by [sweep_rank] — the default
    chaos-campaign protocol list. *)

val default_reference : unit -> entry option
(** The first registered [Reference] — the canonical demo protocol
    (used for CLI defaults and the campaign's deadlock canary). *)

val everywhere_checkable_names : unit -> string list
(** Names of the entries whose [perturb] supports everywhere-mode
    checking; for capability error messages. *)

val por_safe_names : unit -> string list
(** Names of the entries for which [mcheck --por] is allowed; for
    capability error messages. *)

val synthesizable_names : unit -> string list
(** Names of the entries [graybox-cli synth] accepts; for capability
    error messages. *)

val role_label : role -> string
(** ["reference"], ["negative-control"], ["ablation"],
    ["synthesized"]. *)

val expectation_label : expectation -> string
(** ["recover"], ["fail"], ["observe"] — the labels the chaos report
    (and its JSON) uses. *)

val partition_expectation_label : partition_expectation -> string
(** ["recovers-after-heal"], ["deadlocks"], ["observe"]. *)

val during_partition_label : during_partition -> string
(** ["weak-me1"], ["wedge"], ["unsafe"]. *)

(** {2 The expectation lattice}

    Every campaign cell is gated by an {!expectation}, obtained by
    reading the entry's registered metadata through the demotions
    below.  This block is the {e only} statement of the rules — the
    campaign applies these functions verbatim and documents nothing of
    its own.

    Base readings:
    - a standard chaos cell is gated by [entry.expectation] directly;
    - a heal-recovery partition cell by {!expectation_of_partition}
      ([Recovers_after_heal -> Expect_recover], [Deadlocks ->
      Expect_failure], [Partition_observe -> Observe]);
    - a during-split cell by {!expectation_of_during} ([Weak_me1 |
      Wedge -> Expect_recover] over the {e epoch-safety} verdict —
      every run must satisfy per-group ME1 and the cross-heal
      obligation, with [Weak_me1] additionally requiring during-split
      CS entries in at least one run — and [Unsafe -> Expect_failure]:
      at least one run must be caught epoch-unsafe).

    Demotions, applied to the base reading:
    - {!demote_unwrapped}, for any cell run without the wrapper:
      [Expect_recover -> Observe] — only wrapped runs owe recovery (or
      epoch-safety); failure gates survive, since a protocol that is
      broken unwrapped must still demonstrate it;
    - {!demote_buffered}, for partition cells under a buffered heal:
      [Expect_failure -> Observe] — a buffered heal loses nothing, so
      an entry expected to deadlock (or to be epoch-unsafe) under loss
      may legitimately crawl back. *)

val expectation_of_partition : partition_expectation -> expectation

val expectation_of_during : during_partition -> expectation

val demote_unwrapped : expectation -> expectation

val demote_buffered : expectation -> expectation

val unknown_protocol_message : string -> string
(** [unknown_protocol_message name] is the one shared error string for
    a failed lookup: [unknown protocol "name" (known: ...)]. *)
