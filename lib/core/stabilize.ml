type vtrace = (View.t, Msg.t) Sim.Trace.t

type analysis = {
  trace_len : int;
  last_fault_index : int option;
  converged_index : int option;
  recovery_steps : int option;
  me1_violations : int;
  starving : Sim.Pid.t list;
  recovered : bool;
}

(* For process [j], mark every index [i] at which j's pending interval
   (hungry awaiting service, or eating awaiting release) is known to
   resolve correctly: hungry intervals must end in Eating, eating
   intervals in Thinking.  Intervals cut off by the end of the trace
   are acceptable only within [tail_margin]. *)
let resolution_ok modes ~len ~tail_margin j =
  let ok = Array.make len true in
  let interval_start = ref None in
  let mark a b value =
    for i = a to b do
      if not value then ok.(i) <- false
    done
  in
  let close_interval endpoint current_end =
    match !interval_start with
    | None -> ()
    | Some (start, kind) ->
      let resolved =
        match endpoint with
        | Some next_mode ->
          (match kind with
           | View.Hungry -> next_mode = View.Eating
           | View.Eating -> next_mode = View.Thinking
           | View.Thinking -> true)
        | None ->
          (* trace ended mid-interval *)
          current_end - start < tail_margin
      in
      mark start current_end resolved;
      interval_start := None
  in
  for i = 0 to len - 1 do
    let m = modes i j in
    (match !interval_start with
     | Some (_, kind) when kind = m -> ()
     | Some _ ->
       close_interval (Some m) (i - 1);
       if m = View.Hungry || m = View.Eating then interval_start := Some (i, m)
     | None ->
       if m = View.Hungry || m = View.Eating then interval_start := Some (i, m))
  done;
  close_interval None (len - 1);
  ok

let analyse ?(tail_margin = 300) (tr : vtrace) =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 then
    { trace_len = 0;
      last_fault_index = None;
      converged_index = None;
      recovery_steps = None;
      me1_violations = 0;
      starving = [];
      recovered = false }
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let modes i j = snaps.(i).Sim.Trace.states.(j).View.mode in
    let me1_ok i =
      let eaters = ref 0 in
      Array.iter
        (fun v -> if View.eating v then incr eaters)
        snaps.(i).Sim.Trace.states;
      !eaters <= 1
    in
    let last_fault_index =
      let found = ref None in
      Array.iteri
        (fun i snap ->
          match snap.Sim.Trace.event with
          | Sim.Trace.Fault _ -> found := Some i
          | _ -> ())
        snaps;
      !found
    in
    let per_proc =
      Array.init n (fun j -> resolution_ok modes ~len ~tail_margin j)
    in
    (* good.(i): the criteria hold at snapshot i *)
    let good i =
      me1_ok i
      &&
      let rec all j = j >= n || (per_proc.(j).(i) && all (j + 1)) in
      all 0
    in
    (* converged_index: earliest i with good holding on [i, len). *)
    let converged_index =
      let idx = ref None in
      (try
         for i = len - 1 downto 0 do
           if good i then idx := Some i else raise Exit
         done
       with Exit -> ());
      !idx
    in
    let base = match last_fault_index with Some f -> f | None -> 0 in
    let converged_index =
      match converged_index with
      | Some i -> Some (max i base)
      | None -> None
    in
    let recovery_steps =
      match converged_index with
      | None -> None
      | Some i ->
        Some (snaps.(i).Sim.Trace.time - snaps.(base).Sim.Trace.time)
    in
    let me1_violations =
      let count = ref 0 in
      for i = base to len - 1 do
        if not (me1_ok i) then incr count
      done;
      !count
    in
    let starving =
      List.filter
        (fun j ->
          let rec hungry_run i acc =
            if i < 0 || modes i j <> View.Hungry then acc
            else hungry_run (i - 1) (acc + 1)
          in
          hungry_run (len - 1) 0 >= tail_margin)
        (Sim.Pid.range n)
    in
    { trace_len = len;
      last_fault_index;
      converged_index;
      recovery_steps;
      me1_violations;
      starving;
      recovered = converged_index <> None }
  end

(* ------------------------------------------------------------------ *)
(* Streaming analysis                                                  *)

module Online = struct
  (* Incremental restatement of [analyse] + [service_round_latency].
     The offline pipeline needs the whole trace because [converged_index]
     is defined backwards (the earliest suffix on which the criteria
     hold); but every criterion only ever marks *bad* indices — an ME1
     violation, or a hungry/eating interval that closes unresolved —
     and the suffix start is just [max bad index + 1].  So the fold
     tracks the largest known-bad index, the open interval per process,
     the trailing hungry run, and the post-fault service round; the
     final record is provably equal to the offline one on the same
     snapshot sequence (asserted over the protocol grid in the test
     suite). *)

  type t = {
    tail_margin : int;
    mutable len : int;  (** snapshots fed so far *)
    mutable n : int;
    (* per-process interval tracking, mirroring [resolution_ok] *)
    mutable ivals : (int * View.mode) option array;
        (** open interval per process: start index and kind *)
    mutable hungry_run : int array;  (** trailing Hungry run length *)
    mutable prev_eating : bool array;
    (* convergence: the largest index known to violate the criteria *)
    mutable last_bad : int;  (** -1 when nothing bad was seen *)
    mutable suffix_time : int;  (** engine time at index [last_bad + 1] *)
    mutable suffix_pending : bool;
        (** [last_bad + 1] not seen yet (the violation was at the
            latest snapshot) *)
    (* fault base *)
    mutable base : int;
    mutable base_time : int;
    mutable have_fault : bool;
    mutable me1_bad : int;  (** ME1-violating snapshots since [base] *)
    (* service round since [base] ([service_round_latency]) *)
    mutable served : bool array;
    mutable remaining : int;
    mutable round_latency : int option;
  }

  let create ?(tail_margin = 300) () =
    { tail_margin;
      len = 0;
      n = 0;
      ivals = [||];
      hungry_run = [||];
      prev_eating = [||];
      last_bad = -1;
      suffix_time = 0;
      suffix_pending = false;
      base = 0;
      base_time = 0;
      have_fault = false;
      me1_bad = 0;
      served = [||];
      remaining = 0;
      round_latency = None }

  let feed t ~time ~fault (views : View.t array) =
    let idx = t.len in
    if idx = 0 then begin
      let n = Array.length views in
      t.n <- n;
      t.ivals <- Array.make n None;
      t.hungry_run <- Array.make n 0;
      t.prev_eating <- Array.make n false;
      t.served <- Array.make n false;
      t.remaining <- n;
      t.base_time <- time
    end;
    if t.suffix_pending then begin
      t.suffix_time <- time;
      t.suffix_pending <- false
    end;
    if fault then begin
      t.base <- idx;
      t.base_time <- time;
      t.have_fault <- true;
      t.me1_bad <- 0;
      Array.fill t.served 0 t.n false;
      t.remaining <- t.n;
      t.round_latency <- None
    end;
    let eaters = ref 0 in
    for j = 0 to t.n - 1 do
      let m = views.(j).View.mode in
      let eating = m = View.Eating in
      if eating then incr eaters;
      (* interval transitions: a hungry interval must close into
         Eating, an eating interval into Thinking; an unresolved close
         marks the whole interval — whose largest index is its end,
         [idx - 1] — bad *)
      (match t.ivals.(j) with
       | Some (_, kind) when kind = m -> ()
       | Some (_, kind) ->
         let resolved =
           match kind with
           | View.Hungry -> m = View.Eating
           | View.Eating -> m = View.Thinking
           | View.Thinking -> true
         in
         if (not resolved) && idx - 1 > t.last_bad then begin
           t.last_bad <- idx - 1;
           t.suffix_time <- time;
           t.suffix_pending <- false
         end;
         t.ivals.(j) <-
           (if m = View.Hungry || m = View.Eating then Some (idx, m) else None)
       | None ->
         if m = View.Hungry || m = View.Eating then
           t.ivals.(j) <- Some (idx, m));
      t.hungry_run.(j) <-
        (if m = View.Hungry then t.hungry_run.(j) + 1 else 0);
      (* service round: first fresh entry per process after [base] *)
      if
        idx > t.base && idx >= 1
        && (not t.served.(j))
        && (not t.prev_eating.(j))
        && eating
      then begin
        t.served.(j) <- true;
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 && t.round_latency = None then
          t.round_latency <- Some (time - t.base_time)
      end;
      t.prev_eating.(j) <- eating
    done;
    if !eaters > 1 then begin
      t.me1_bad <- t.me1_bad + 1;
      if idx > t.last_bad then begin
        t.last_bad <- idx;
        t.suffix_pending <- true
      end
    end;
    t.len <- idx + 1

  let latency t = t.round_latency

  let analysis t =
    if t.len = 0 then
      { trace_len = 0;
        last_fault_index = None;
        converged_index = None;
        recovery_steps = None;
        me1_violations = 0;
        starving = [];
        recovered = false }
    else begin
      let len = t.len in
      (* an interval still open at the end is acceptable only within
         the tail margin; otherwise it marks bad up to [len - 1] *)
      let tail_bad =
        Array.exists
          (function
            | Some (start, _) -> len - 1 - start >= t.tail_margin
            | None -> false)
          t.ivals
      in
      let last_bad = if tail_bad then len - 1 else t.last_bad in
      let suffix_start = last_bad + 1 in
      let converged_index =
        if suffix_start > len - 1 then None
        else Some (max suffix_start t.base)
      in
      let recovery_steps =
        match converged_index with
        | None -> None
        | Some ci ->
          if ci <= t.base then Some 0
          else Some (t.suffix_time - t.base_time)
      in
      let starving =
        List.filter
          (fun j -> t.hungry_run.(j) >= t.tail_margin)
          (Sim.Pid.range t.n)
      in
      { trace_len = len;
        last_fault_index = (if t.have_fault then Some t.base else None);
        converged_index;
        recovery_steps;
        me1_violations = t.me1_bad;
        starving;
        recovered = converged_index <> None }
    end

  let of_trace ?tail_margin (tr : vtrace) =
    let t = create ?tail_margin () in
    List.iter
      (fun (snap : (View.t, Msg.t) Sim.Trace.snapshot) ->
        let fault =
          match snap.Sim.Trace.event with
          | Sim.Trace.Fault _ -> true
          | _ -> false
        in
        feed t ~time:snap.Sim.Trace.time ~fault snap.Sim.Trace.states)
      tr;
    t
end

let service_round_latency (tr : vtrace) ~after =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 || after >= len then None
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let served = Array.make n false in
    let remaining = ref n in
    let answer = ref None in
    (try
       for i = max 1 (after + 1) to len - 1 do
         for j = 0 to n - 1 do
           if
             (not served.(j))
             && (not (View.eating snaps.(i - 1).Sim.Trace.states.(j)))
             && View.eating snaps.(i).Sim.Trace.states.(j)
           then begin
             served.(j) <- true;
             decr remaining;
             if !remaining = 0 then begin
               answer :=
                 Some
                   (snaps.(i).Sim.Trace.time - snaps.(after).Sim.Trace.time);
               raise Exit
             end
           end
         done
       done
     with Exit -> ());
    !answer
  end

let service_times ?(after = 0) (tr : vtrace) =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 then []
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let samples = ref [] in
    for j = 0 to n - 1 do
      let start = ref None in
      for i = 0 to len - 1 do
        let mode = snaps.(i).Sim.Trace.states.(j).View.mode in
        match !start, mode with
        | None, View.Hungry -> if i >= after then start := Some i
        | Some s, View.Eating ->
          samples :=
            (snaps.(i).Sim.Trace.time - snaps.(s).Sim.Trace.time) :: !samples;
          start := None
        | Some _, View.Thinking ->
          (* interval aborted (fault reset the mode): not a service *)
          start := None
        | Some _, View.Hungry | None, (View.Thinking | View.Eating) -> ()
      done
    done;
    List.rev !samples
  end

let time_to_quiescent_consistency (tr : vtrace) ~after =
  let snaps = Array.of_list tr in
  let len = Array.length snaps in
  if len = 0 || after >= len then None
  else begin
    let n = Array.length snaps.(0).Sim.Trace.states in
    let consistent (snap : (View.t, Msg.t) Sim.Trace.snapshot) =
      let eaters = ref 0 in
      Array.iter (fun v -> if View.eating v then incr eaters) snap.states;
      !eaters <= 1
      && List.for_all
           (fun j ->
             let vj = snap.states.(j) in
             (not (View.hungry vj))
             || List.for_all
                  (fun k ->
                    not
                      (Clocks.Timestamp.lt
                         (View.local_req snap.states.(k) j)
                         vj.View.req))
                  (Sim.Pid.others ~self:j ~n))
           (Sim.Pid.range n)
    in
    let answer = ref None in
    (try
       for i = after to len - 1 do
         if consistent snaps.(i) then begin
           answer := Some (snaps.(i).Sim.Trace.time - snaps.(after).Sim.Trace.time);
           raise Exit
         end
       done
     with Exit -> ());
    !answer
  end

let pp ppf a =
  Format.fprintf ppf
    "@[<v>trace length      : %d@,last fault        : %a@,\
     converged at      : %a@,recovery steps    : %a@,\
     ME1 violations    : %d@,starving          : %a@,recovered         : %b@]"
    a.trace_len
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "none")
       Format.pp_print_int)
    a.last_fault_index
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "never")
       Format.pp_print_int)
    a.converged_index
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "-")
       Format.pp_print_int)
    a.recovery_steps a.me1_violations
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    a.starving a.recovered
