(** The contract an implementation must satisfy to be wrapped.

    This is the repository's rendering of "any system [M] that
    everywhere implements Lspec": a module of this type supplies the
    TME actions (request, try-enter, release, message handling), the
    projection {!S.view} onto the specification-level state, and the
    whitebox hooks the {e fault injector} (not the wrapper!) needs.
    The wrapper and all monitors see implementations only through
    views and {!Msg.t} values. *)

module type S = sig
  type state

  val name : string
  (** Short identifier, e.g. ["ra"] or ["lamport"]. *)

  val init : n:int -> Sim.Pid.t -> state
  (** [init ~n self] is the proper initial state for a ring of [n]
      processes — the paper's Init: thinking, [REQ_j = 0], clock 0. *)

  val view : state -> View.t
  (** The graybox projection. *)

  val request_cs : state -> state * (Sim.Pid.t * Msg.t) list
  (** Client decided to request the critical section.  Only called
      when [view] is [Thinking]; implementations should be robust to
      other modes anyway (fault tolerance). *)

  val try_enter : state -> (state * (Sim.Pid.t * Msg.t) list) option
  (** [try_enter s] is [Some] exactly when the implementation's CS
      entry guard holds; the returned state is [Eating]. *)

  val release_cs : state -> state * (Sim.Pid.t * Msg.t) list
  (** Client finished the critical section.  Only called when [view]
      is [Eating]. *)

  val on_message :
    from:Sim.Pid.t -> Msg.t -> state -> state * (Sim.Pid.t * Msg.t) list
  (** Handle a delivered message.  Must be total: after faults,
      messages can arrive that no legitimate execution would produce
      (stale, duplicated, corrupted); everywhere-implementations
      handle them from any state. *)

  val corrupt : Stdext.Rng.t -> state -> state
  (** Whitebox fault-injection hook: an {e arbitrary} transient
      corruption of this implementation's representation.  Used only
      by the fault injector — the wrapper never sees inside. *)

  val reset : n:int -> Sim.Pid.t -> state
  (** Improper-initialization hook: a plausible but not-necessarily-
      legitimate restart state (the fault injector may also use
      {!init}). *)

  val membership_aware : bool
  (** Whether this implementation subscribes to the simulated group
      membership service: during a {!Sim.Faults.Split} window the
      fault injector announces each process's connected group via
      {!on_view_change}.  [false] for classical TME programs — they
      receive no announcements and their executions are unchanged. *)

  val on_view_change : members:Sim.Pid.t list -> state -> state
  (** Membership announcement: [members] is the set of processes
      (including self) the membership service currently believes
      reachable.  Called at partition open and heal for subscribing
      implementations ([membership_aware = true]); must be the
      identity for the rest.  Like {!on_message}, must be total from
      any state. *)

  val perturb : n:int -> state -> state list
  (** Everywhere-mode model-checking hook ([Mcheck.check_everywhere]):
      a {e bounded, deterministic} enumeration of transiently corrupted
      variants of [state] — mode flips no message explains, phantom
      bookkeeping, improper restarts.  Where {!corrupt} draws one
      arbitrary corruption for the randomized fault injector, this list
      seeds {e exhaustive} exploration from non-initial states (the
      paper's [C ⇒ A] as opposed to [C ⇒ A]init), so it must be small
      (O(10) states) and identical on every call. *)

  val pp : Format.formatter -> state -> unit
end
