open Clocks
open Unityspec

type vtrace = (View.t, Msg.t) Sim.Trace.t

let views (snap : (View.t, Msg.t) Sim.Trace.snapshot) = snap.states

let view_of snap j = (views snap).(j)

let mode snap j = (view_of snap j).View.mode
let req snap j = (view_of snap j).View.req
let local snap j k = View.local_req (view_of snap j) k

let channel (snap : (View.t, Msg.t) Sim.Trace.snapshot) ~src ~dst =
  match
    List.find_opt
      (fun (s, d, _) -> s = src && d = dst)
      (Sim.Trace.channels snap)
  with
  | Some (_, _, ms) -> ms
  | None -> []

let is_fault_step (snap : (View.t, Msg.t) Sim.Trace.snapshot) =
  match snap.event with Sim.Trace.Fault _ -> true | _ -> false

(* A step-invariant that is exempted across fault transitions: faults
   teleport the state, which no clause of Lspec constrains. *)
let guarded_step_invariant ?name r tr =
  Temporal.step_invariant ?name
    (fun prev next -> is_fault_step next || r prev next)
    tr

let structural ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.invariant ~name:(Printf.sprintf "structural.%d" j)
        (fun snap ->
          match mode snap j with
          | View.Thinking | View.Hungry | View.Eating -> true)
        tr)
    n

let flow ~n tr =
  Temporal.forall
    (fun j ->
      guarded_step_invariant ~name:(Printf.sprintf "flow.%d" j)
        (fun prev next ->
          match mode prev j, mode next j with
          | View.Thinking, (View.Thinking | View.Hungry)
          | View.Hungry, (View.Hungry | View.Eating)
          | View.Eating, (View.Eating | View.Thinking) -> true
          | View.Thinking, View.Eating
          | View.Hungry, View.Thinking
          | View.Eating, View.Hungry -> false)
        tr)
    n

let cs ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.leads_to ~name:(Printf.sprintf "cs.%d" j)
        ~p:(fun snap -> mode snap j = View.Eating)
        ~q:(fun snap -> mode snap j <> View.Eating)
        tr)
    n

let request_safety ~n tr =
  Temporal.forall
    (fun j ->
      guarded_step_invariant ~name:(Printf.sprintf "request-safety.%d" j)
        (fun prev next ->
          (not (mode prev j = View.Hungry && mode next j = View.Hungry))
          || Timestamp.equal (req prev j) (req next j))
        tr)
    n

(* k "has heard" REQ_j when its copy is not behind j's request. *)
let heard snap ~j ~k = not (Timestamp.lt (local snap k j) (req snap j))

let request_in_flight snap ~j ~k =
  List.exists
    (function
      | Msg.Request ts -> not (Timestamp.lt ts (req snap j))
      | Msg.Reply _ | Msg.Release _ -> false)
    (channel snap ~src:j ~dst:k)

let request_liveness ~n tr =
  Temporal.forall_pairs
    (fun j k ->
      let unaware snap =
        mode snap j = View.Hungry
        && (not (heard snap ~j ~k))
        && not (request_in_flight snap ~j ~k)
      in
      Temporal.leads_to
        ~name:(Printf.sprintf "request-liveness.%d.%d" j k)
        ~p:unaware
        ~q:(fun snap -> not (unaware snap))
        tr)
    n

let reply_liveness ~n tr =
  Temporal.forall_pairs
    (fun j k ->
      (* j knows k's current, earlier request: k should progress. *)
      let blocked snap =
        mode snap j = View.Hungry
        && mode snap k = View.Hungry
        && Timestamp.equal (local snap j k) (req snap k)
        && Timestamp.lt (req snap k) (req snap j)
      in
      Temporal.leads_to
        ~name:(Printf.sprintf "reply-liveness.%d.%d" j k)
        ~p:blocked
        ~q:(fun snap -> mode snap k <> View.Hungry)
        tr)
    n

let earliest snap j ~n =
  View.earliest (view_of snap j) ~peers:(Sim.Pid.others ~self:j ~n)

let cs_entry_safety ~n tr =
  Temporal.forall
    (fun j ->
      guarded_step_invariant ~name:(Printf.sprintf "cs-entry-safety.%d" j)
        (fun prev next ->
          (not (mode prev j <> View.Eating && mode next j = View.Eating))
          || earliest prev j ~n)
        tr)
    n

let cs_entry_liveness ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.leads_to ~name:(Printf.sprintf "cs-entry-liveness.%d" j)
        ~p:(fun snap -> mode snap j = View.Hungry && earliest snap j ~n)
        ~q:(fun snap -> mode snap j = View.Eating)
        tr)
    n

let cs_release ~n tr =
  Temporal.forall
    (fun j ->
      Temporal.invariant ~name:(Printf.sprintf "cs-release.%d" j)
        (fun snap ->
          mode snap j <> View.Thinking
          ||
          let v = view_of snap j in
          Timestamp.equal v.View.req
            (Timestamp.make ~clock:v.View.clock ~pid:j))
        tr)
    n

let timestamp_spec ~n tr =
  let monotone =
    Temporal.forall
      (fun j ->
        guarded_step_invariant ~name:(Printf.sprintf "clock-monotone.%d" j)
          (fun prev next ->
            (view_of prev j).View.clock <= (view_of next j).View.clock)
          tr)
      n
  in
  let receive_rule =
    Temporal.step_invariant ~name:"clock-receive-rule"
      (fun _prev next ->
        match next.Sim.Trace.event with
        | Sim.Trace.Deliver { dst; msg; _ } ->
          (view_of next dst).View.clock >= (Msg.timestamp msg).Timestamp.clock
        | _ -> true)
      tr
  in
  Temporal.both monotone receive_rule

(* FIFO check: on a Deliver over channel c, c loses its head and may
   gain appends; every other evolution may only append. *)
let communication_fifo ~n:_ tr =
  let prefix_of xs ys =
    let rec go xs ys =
      match xs, ys with
      | [], _ -> true
      | x :: xs, y :: ys -> Msg.equal x y && go xs ys
      | _ :: _, [] -> false
    in
    go xs ys
  in
  Temporal.step_invariant ~name:"communication-fifo"
    (fun prev next ->
      is_fault_step next
      ||
      let delivered_chan =
        match next.Sim.Trace.event with
        | Sim.Trace.Deliver { src; dst; _ } -> Some (src, dst)
        | _ -> None
      in
      let chans =
        List.sort_uniq compare
          (List.map (fun (s, d, _) -> (s, d)) (Sim.Trace.channels prev)
          @ List.map (fun (s, d, _) -> (s, d)) (Sim.Trace.channels next))
      in
      List.for_all
        (fun (src, dst) ->
          let before = channel prev ~src ~dst in
          let after = channel next ~src ~dst in
          if delivered_chan = Some (src, dst) then
            match before with
            | [] -> false (* delivery from an empty channel *)
            | _ :: tl -> prefix_of tl after
          else prefix_of before after)
        chans)
    tr

let init_spec ~n tr =
  match tr with
  | [] -> Temporal.Holds
  | first :: _ ->
    let ok =
      Sim.Trace.channels first = []
      && List.for_all
           (fun j ->
             let v = view_of first j in
             v.View.mode = View.Thinking
             && v.View.clock = 0
             && Timestamp.equal v.View.req (Timestamp.zero ~pid:j)
             && List.for_all
                  (fun k ->
                    (* "j.REQ_k = 0": at or below the zero stamp — the
                       Lamport encoding uses a strict bottom for "no
                       information" *)
                    Timestamp.leq (View.local_req v k)
                      (Timestamp.zero ~pid:k))
                  (Sim.Pid.others ~self:j ~n))
           (Sim.Pid.range n)
    in
    if ok then Temporal.Holds
    else Temporal.Violated { at = 0; reason = "Init conditions fail" }

let clause_names =
  [ "structural"; "flow"; "cs"; "request-safety"; "request-liveness";
    "reply-liveness"; "cs-entry-safety"; "cs-entry-liveness"; "cs-release";
    "timestamp"; "communication-fifo"; "init" ]

let check_all ~n tr =
  Report.of_list
    [ ("structural", structural ~n tr);
      ("flow", flow ~n tr);
      ("cs", cs ~n tr);
      ("request-safety", request_safety ~n tr);
      ("request-liveness", request_liveness ~n tr);
      ("reply-liveness", reply_liveness ~n tr);
      ("cs-entry-safety", cs_entry_safety ~n tr);
      ("cs-entry-liveness", cs_entry_liveness ~n tr);
      ("cs-release", cs_release ~n tr);
      ("timestamp", timestamp_spec ~n tr);
      ("communication-fifo", communication_fifo ~n tr);
      ("init", init_spec ~n tr) ]
