(* The wrapper language.  A wrapper is one guarded send over the
   specification-level View vocabulary; the hand-written W and W'(δ)
   are two closed terms of this language, and the synthesizer
   (lib/synth) enumerates the same language in size order.  The
   historical [variant] enum survives as a thin alias onto the two
   closed terms, so the pre-DSL call sites evaluate byte-identically. *)

type mode_pred = Is_thinking | Is_hungry | Is_eating

type peer_test = Any_peer | Peer_lt_own | Own_lt_peer

type guard =
  | Mode of mode_pred
  | Timer_zero
  | Not of guard
  | And of guard * guard
  | Or of guard * guard
  | Exists_peer of peer_test
  | Forall_peer of peer_test

type send = Send_request | Send_reply | Send_release

type t = { guard : guard; target : peer_test; send : send }

let mode_holds p v =
  match p with
  | Is_thinking -> View.thinking v
  | Is_hungry -> View.hungry v
  | Is_eating -> View.eating v

let peer_holds test (v : View.t) k =
  match test with
  | Any_peer -> true
  | Peer_lt_own -> View.earlier v ~than:v.req k
  | Own_lt_peer -> Clocks.Timestamp.lt v.req (View.local_req v k)

let rec guard_holds g (v : View.t) ~timer ~peers =
  match g with
  | Mode p -> mode_holds p v
  | Timer_zero -> timer = 0
  | Not g -> not (guard_holds g v ~timer ~peers)
  | And (a, b) -> guard_holds a v ~timer ~peers && guard_holds b v ~timer ~peers
  | Or (a, b) -> guard_holds a v ~timer ~peers || guard_holds b v ~timer ~peers
  | Exists_peer t -> List.exists (peer_holds t v) peers
  | Forall_peer t -> List.for_all (peer_holds t v) peers

let term_targets t (v : View.t) ~n ~timer =
  let peers = Sim.Pid.others ~self:v.self ~n in
  if guard_holds t.guard v ~timer ~peers then
    List.filter (peer_holds t.target v) peers
  else []

(* Send_reply / Send_release stamp the sender's current clock reading —
   the only timestamp the View vocabulary offers besides REQ_j.  A
   candidate choosing these is how the synthesizer can propose (and the
   oracle refute) reply-forging wrappers. *)
let payload send (v : View.t) =
  match send with
  | Send_request -> Msg.Request v.req
  | Send_reply -> Msg.Reply (Clocks.Timestamp.make ~clock:v.clock ~pid:v.self)
  | Send_release -> Msg.Release (Clocks.Timestamp.make ~clock:v.clock ~pid:v.self)

let eval t v ~n ~timer =
  List.map (fun k -> (k, payload t.send v)) (term_targets t v ~n ~timer)

(* ------------------------------------------------------------------ *)
(* The hand-written wrappers as closed terms                           *)

let w_unrefined =
  { guard = Mode Is_hungry; target = Any_peer; send = Send_request }

let w_refined =
  { guard = Mode Is_hungry; target = Peer_lt_own; send = Send_request }

let timed t = { t with guard = And (Timer_zero, t.guard) }

let w_timed = timed w_refined

(* ------------------------------------------------------------------ *)
(* Size measure: one per guard node, quantifiers pay for their test;
   every wrapper pays 2 for its target/send pair.  w_refined has
   size 4 — the synthesizer's "level-2 guards in size order" starts
   below it and must climb to it. *)

let rec guard_size = function
  | Mode _ | Timer_zero -> 1
  | Not g -> 1 + guard_size g
  | And (a, b) | Or (a, b) -> 1 + guard_size a + guard_size b
  | Exists_peer _ | Forall_peer _ -> 2

let size t = guard_size t.guard + 2

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

(* ------------------------------------------------------------------ *)
(* Printer, in the paper's notation                                    *)

let mode_pred_to_string = function
  | Is_thinking -> "t.j"
  | Is_hungry -> "h.j"
  | Is_eating -> "e.j"

let peer_test_to_string = function
  | Any_peer -> "true"
  | Peer_lt_own -> "j.REQ_k lt REQ_j"
  | Own_lt_peer -> "REQ_j lt j.REQ_k"

let rec guard_to_string = function
  | Mode p -> mode_pred_to_string p
  | Timer_zero -> "timer.j = 0"
  | Not g -> Printf.sprintf "not (%s)" (guard_to_string g)
  | And (a, b) ->
    Printf.sprintf "%s and %s" (guard_operand a) (guard_operand b)
  | Or (a, b) -> Printf.sprintf "%s or %s" (guard_operand a) (guard_operand b)
  | Exists_peer t ->
    Printf.sprintf "(exists k : %s)" (peer_test_to_string t)
  | Forall_peer t ->
    Printf.sprintf "(forall k : %s)" (peer_test_to_string t)

and guard_operand g =
  match g with
  | And _ | Or _ -> Printf.sprintf "(%s)" (guard_to_string g)
  | _ -> guard_to_string g

let send_to_string = function
  | Send_request -> "send(REQ_j, j, k)"
  | Send_reply -> "send(REPLY ts.j, j, k)"
  | Send_release -> "send(RELEASE ts.j, j, k)"

let to_string t =
  let dom =
    match t.target with
    | Any_peer -> "k /= j"
    | test -> peer_test_to_string test
  in
  Printf.sprintf "%s -> (forall k : %s : %s)" (guard_to_string t.guard) dom
    (send_to_string t.send)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* The historical two-variant surface, as aliases onto the terms       *)

type variant = Refined | Unrefined

let term_of_variant = function
  | Refined -> w_refined
  | Unrefined -> w_unrefined

let targets variant v ~n = term_targets (term_of_variant variant) v ~n ~timer:0

let fire variant v ~n = eval (term_of_variant variant) v ~n ~timer:0

let action_label = "wrapper"
