(** Composition of implementation □ wrapper □ client into a runnable
    node, plus the oracle layer the test monitors need.

    The box operator of the paper composes systems by unioning their
    actions; here that union is literal: a node's enabled actions are
    the protocol's client-driven actions, the client's think/eat
    ticks, and — when enabled — the wrapper's correction action, and
    the scheduler interleaves them.  The wrapper action reads only
    [P.view], never [P.state]: this module and {!Wrapper} are the
    graybox boundary.

    The oracle layer (vector clocks piggybacked on message envelopes,
    request stamps, entry counters) exists solely for the monitors —
    it is invisible to protocol and wrapper and is never corrupted by
    fault injection, because it represents ground-truth causality
    rather than system state. *)

type wrapper_mode =
  | Off
  | On of { variant : Wrapper.variant; delta : int }
      (** [delta = 0] is the paper's [W]; [delta > 0] is [W'(δ)]. *)
  | On_term of { term : Wrapper.t; delta : int }
      (** an arbitrary DSL term (e.g. a synthesized wrapper) under the
          same [δ]-timer harness discipline: the term's guard
          (evaluated as if the timer had expired) enables the wrapper
          action, the timer rate-limits actual firing, and firing
          resets it to [delta] *)

type params = {
  n : int;
  wrapper : wrapper_mode;
  think_min : int;
  think_max : int;  (** thinking lasts a uniform number of client ticks *)
  eat_min : int;
  eat_max : int;  (** CS occupancy in client ticks (CS Spec: finite) *)
  passive : Sim.Pid.t list;
      (** processes whose client never requests the critical section;
          they still participate in the protocol (receive, reply).
          TME permits this — and it is the situation in which
          Lamport's program needs the release echo (see
          [Tme.Lamport_core]) *)
}

val params :
  ?wrapper:wrapper_mode -> ?think_min:int -> ?think_max:int -> ?eat_min:int ->
  ?eat_max:int -> ?passive:Sim.Pid.t list -> n:int -> unit -> params
(** [params ~n ()] with defaults: no wrapper, think 2–8 ticks, eat 1–3
    ticks, no passive processes.
    @raise Invalid_argument on nonsensical ranges, [n < 2], or passive
    pids out of range. *)

(** One CS entry, as recorded by the oracle for the FCFS monitor. *)
type entry_record = {
  entry_time : int;  (** engine time of the entry step *)
  entry_pid : Sim.Pid.t;
  entry_req : Clocks.Timestamp.t;  (** the request this entry served *)
  entry_req_vc : Clocks.Vector_clock.t;  (** causal stamp of that request *)
}

module Make (P : Protocol.S) : sig
  (** Message envelope: the protocol payload plus the oracle's vector
      clock (never read by protocol or wrapper). *)
  type envelope = { payload : Msg.t; ovc : Clocks.Vector_clock.t }

  (** A full node: protocol state composed with wrapper timer, client
      counters, and the oracle. *)
  type node = {
    params : params;
    self : Sim.Pid.t;
    proto : P.state;
    timer : int;  (** wrapper timeout counter, domain [0 .. δ] *)
    think_left : int;
    eat_left : int;
    client_rng : Stdext.Rng.t;
    ovc : Clocks.Vector_clock.t;  (** oracle vector clock *)
    req_vc : Clocks.Vector_clock.t;  (** oracle stamp of current request *)
    entries : int;  (** oracle CS-entry counter *)
  }

  val view : node -> View.t
  (** The graybox projection of a composed node (= [P.view] of its
      protocol state). *)

  val init : params -> client_seed:int -> Sim.Pid.t -> node

  module Node : Sim.Engine.NODE with type state = node and type msg = envelope

  module Run : module type of Sim.Engine.Make (Node)

  val make_engine : ?record:bool -> ?indexed:bool -> ?deliver_weight:int ->
    params -> seed:int -> Run.t
  (** [?indexed] selects the engine's move-index implementation (see
      {!Sim.Engine.Make.config}); the default maintains O(log n)
      incremental indexes, [~indexed:false] keeps the scanning
      scheduler.  Schedules are bit-identical either way. *)

  val view_trace : Run.t -> (View.t, Msg.t) Sim.Trace.t
  (** The recorded trace projected to spec level: views and bare
      messages. *)

  val views : Run.t -> View.t array
  (** Current views of all processes. *)

  val entry_log : Run.t -> entry_record list
  (** Oracle CS-entry records in trace order (for {!Tme_spec.me3}). *)

  val total_entries : Run.t -> int

  (** {2 Protocol-aware fault constructors}

      These lower the generic fault kinds onto this protocol's
      representation (its [corrupt]/[reset] hooks, request-payload
      recognition), plus wrapper-timer corruption where relevant. *)

  val corrupt_node : Stdext.Rng.t -> node -> node

  val fault_corrupt_process :
    Sim.Faults.proc_selector -> (node, envelope) Sim.Faults.kind

  val fault_reset_process :
    params -> Sim.Faults.proc_selector -> (node, envelope) Sim.Faults.kind

  val fault_drop_requests :
    Sim.Faults.chan_selector -> count:int -> (node, envelope) Sim.Faults.kind

  val fault_drop_any :
    Sim.Faults.chan_selector -> count:int -> (node, envelope) Sim.Faults.kind

  val fault_corrupt_messages :
    params -> Sim.Faults.chan_selector -> count:int ->
    (node, envelope) Sim.Faults.kind

  val fault_duplicate :
    Sim.Faults.chan_selector -> count:int -> (node, envelope) Sim.Faults.kind

  val fault_reorder :
    Sim.Faults.chan_selector -> count:int -> (node, envelope) Sim.Faults.kind

  val fault_flush : Sim.Faults.chan_selector -> (node, envelope) Sim.Faults.kind

  val fault_view_change :
    members_of:(Sim.Pid.t -> Sim.Pid.t list) -> (node, envelope) Sim.Faults.kind
  (** The group membership service speaking: every process receives
      {!Protocol.S.on_view_change} with [members_of self].  Scheduled
      by the scenario layer at partition open and heal, and only for
      [membership_aware] protocols — classical protocols never see
      these events, so their plans (and traces) are unchanged. *)
end
