(** The graybox stabilization wrapper for TME (paper §4), as a
    first-class guard/send language.

    The level-2 wrapper reestablishes mutual consistency between
    processes.  Its entire interface to the wrapped system is the
    specification-level {!View.t}:

    {v W_j  ::  h.j → (∀k : k ≠ j ∧ j.REQ_k lt REQ_j : send(REQ_j, j, k)) v}

    and its timeout refinement (an everywhere implementation of [W_j],
    hence by Theorem 4 itself a valid wrapper):

    {v W'_j ::  timer.j = 0 ∧ h.j →
          (∀k : k ≠ j ∧ j.REQ_k lt REQ_j : send(REQ_j, j, k));
          timer.j := δ v}

    Rather than hard-coding these two, this module defines the small
    AST they live in — mode predicates, the timer gate, peer
    timestamp tests, boolean connectives, and a guarded broadcast —
    together with an evaluator, a printer in the paper's notation, and
    a size measure.  {!w_refined}, {!w_unrefined} and {!w_timed} are
    the hand-written wrappers as closed terms; the synthesizer
    ([Synth]) enumerates the same language in size order and asks the
    model-checking oracle to certify candidates.  The historical
    {!variant} enum survives as a thin alias onto the closed terms, so
    pre-DSL call sites evaluate byte-identically.

    No level-1 wrapper is needed: Lspec already captures per-process
    internal consistency, so any everywhere implementation is
    internally consistent in every state (paper §4). *)

(** {2 The guard/send AST} *)

type mode_pred = Is_thinking | Is_hungry | Is_eating
(** The paper's [t.j] / [h.j] / [e.j]. *)

(** A per-peer timestamp test, evaluated at peer [k] of the view's
    process [j]. *)
type peer_test =
  | Any_peer  (** true — quantification over [k ≠ j] alone *)
  | Peer_lt_own  (** [j.REQ_k lt REQ_j] — the refined [W_j] test *)
  | Own_lt_peer  (** [REQ_j lt j.REQ_k] — the [earliest.j] ingredient *)

type guard =
  | Mode of mode_pred
  | Timer_zero  (** [timer.j = 0] — the [W'] gate; reads the harness timer *)
  | Not of guard
  | And of guard * guard
  | Or of guard * guard
  | Exists_peer of peer_test  (** [∃k : k ≠ j : test] *)
  | Forall_peer of peer_test  (** [∀k : k ≠ j : test] *)

(** What the wrapper sends to each selected peer.  [Send_request] is
    the only correct choice for TME ([send(REQ_j, j, k)]); the reply
    and release kinds exist so the synthesizer can propose — and the
    oracle refute — reply-forging candidates. *)
type send = Send_request | Send_reply | Send_release

type t = {
  guard : guard;  (** when the wrapper fires *)
  target : peer_test;  (** which peers it corrects *)
  send : send;  (** what it sends them *)
}
(** A wrapper term: [guard → (∀k : k ≠ j ∧ target : send)]. *)

(** {2 Evaluation} *)

val guard_holds : guard -> View.t -> timer:int -> peers:Sim.Pid.t list -> bool
(** [guard_holds g v ~timer ~peers] evaluates [g] over the view;
    [timer] feeds {!Timer_zero}, [peers] the quantifiers. *)

val term_targets : t -> View.t -> n:int -> timer:int -> Sim.Pid.t list
(** The peers a term would correct: empty unless the guard holds,
    otherwise the peers passing [t.target]. *)

val eval : t -> View.t -> n:int -> timer:int -> (Sim.Pid.t * Msg.t) list
(** [eval t v ~n ~timer] is the term's send list — the wrapper.  Note
    the type mentions no implementation state. *)

(** {2 The hand-written wrappers as closed terms} *)

val w_unrefined : t
(** The paper's first, coarser [W_j]: [h.j → (∀k : k ≠ j : send(REQ_j, j, k))]. *)

val w_refined : t
(** The paper's final [W_j]: targets only [j.REQ_k lt REQ_j] peers. *)

val timed : t -> t
(** [timed t] conjoins the [timer.j = 0] gate — the [W'(δ)] shape; the
    [timer.j := δ] reset on firing is the harness's side
    ({!Harness.wrapper_mode}). *)

val w_timed : t
(** [timed w_refined] — the paper's [W'_j]. *)

(** {2 Measure, order, printing} *)

val guard_size : guard -> int

val size : t -> int
(** AST size: guard nodes (quantifiers pay for their test) + 2 for the
    target/send pair.  {!w_refined} has size 3; the synthesizer's
    size-ordered enumeration climbs to it. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val mode_pred_to_string : mode_pred -> string
val peer_test_to_string : peer_test -> string
val guard_to_string : guard -> string
val send_to_string : send -> string

val to_string : t -> string
(** The paper's notation, e.g. [w_refined]:
    ["h.j -> (forall k : j.REQ_k lt REQ_j : send(REQ_j, j, k))"]. *)

val pp : Format.formatter -> t -> unit

(** {2 The historical two-variant surface}

    Thin aliases onto {!w_refined} / {!w_unrefined}; every pre-DSL call
    site evaluates byte-identically through these. *)

type variant =
  | Refined
      (** send only to processes [k] with [j.REQ_k lt REQ_j] — the
          paper's final [W_j] *)
  | Unrefined
      (** send to every [k ≠ j] — the paper's first, coarser [W_j];
          kept for the overhead ablation *)

val term_of_variant : variant -> t
(** [Refined -> w_refined], [Unrefined -> w_unrefined]. *)

val targets : variant -> View.t -> n:int -> Sim.Pid.t list
(** [targets variant v ~n] lists the processes the wrapper would
    correct, given only the view: all peers for [Unrefined], the
    [j.REQ_k lt REQ_j] peers for [Refined].  Empty unless [hungry v].
    Equals [term_targets (term_of_variant variant) v ~n ~timer:0]. *)

val fire : variant -> View.t -> n:int -> (Sim.Pid.t * Msg.t) list
(** [fire variant v ~n] is the wrapper's send list:
    [Request REQ_j] to every target.  This function {e is} the wrapper
    — note its type mentions no implementation state. *)

val action_label : string
(** The engine action label under which wrapper sends are attributed
    in {!Sim.Metrics} (["wrapper"]). *)
