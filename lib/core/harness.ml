(** Composition of implementation □ wrapper □ client into a runnable
    node, plus the oracle layer the test monitors need.

    The box operator of the paper composes systems by unioning their
    actions; here that union is literal: a node's enabled actions are
    the protocol's client-driven actions, the client's think/eat
    ticks, and — when enabled — the wrapper's correction action, and
    the scheduler interleaves them.  The wrapper action reads only
    [P.view], never [P.state]: grep this file and {!Wrapper} for the
    graybox boundary.

    The oracle layer (vector clocks piggybacked on message envelopes
    and entry/request bookkeeping) exists solely for the monitors —
    it is invisible to protocol and wrapper and is never corrupted by
    fault injection, because it represents ground-truth causality
    rather than system state. *)

open Stdext
open Clocks

type wrapper_mode =
  | Off
  | On of { variant : Wrapper.variant; delta : int }
      (** [delta = 0] is the paper's [W]; [delta > 0] is [W'(δ)]. *)
  | On_term of { term : Wrapper.t; delta : int }
      (** an arbitrary DSL term (e.g. a synthesized wrapper) under the
          same [δ]-timer harness discipline *)

type params = {
  n : int;
  wrapper : wrapper_mode;
  think_min : int;
  think_max : int;  (** thinking lasts a uniform number of client ticks *)
  eat_min : int;
  eat_max : int;  (** CS occupancy in client ticks (CS Spec: finite) *)
  passive : Sim.Pid.t list;
      (** processes whose client never requests the critical section;
          they still participate in the protocol (receive, reply).
          TME permits this — and it is the situation in which
          Lamport's program needs the release echo (see
          {!Tme.Lamport_core}) *)
}

let params ?(wrapper = Off) ?(think_min = 2) ?(think_max = 8) ?(eat_min = 1)
    ?(eat_max = 3) ?(passive = []) ~n () =
  if n <= 1 then invalid_arg "Harness.params: need at least two processes";
  if think_min < 0 || think_max < think_min || eat_min < 0 || eat_max < eat_min
  then invalid_arg "Harness.params: bad client ranges";
  if List.exists (fun p -> p < 0 || p >= n) passive then
    invalid_arg "Harness.params: passive pid out of range";
  { n; wrapper; think_min; think_max; eat_min; eat_max; passive }

(** One CS entry, as recorded by the oracle for the FCFS monitor. *)
type entry_record = {
  entry_time : int;  (** engine time (filled in by trace analysis) *)
  entry_pid : Sim.Pid.t;
  entry_req : Timestamp.t;  (** the request this entry served *)
  entry_req_vc : Vector_clock.t;  (** causal stamp of that request *)
}

module Make (P : Protocol.S) = struct
  type envelope = { payload : Msg.t; ovc : Vector_clock.t }

  type node = {
    params : params;
    self : Sim.Pid.t;
    proto : P.state;
    timer : int;  (** wrapper timeout counter, domain [0 .. δ] *)
    think_left : int;
    eat_left : int;
    client_rng : Rng.t;
    ovc : Vector_clock.t;  (** oracle vector clock *)
    req_vc : Vector_clock.t;  (** oracle stamp of the current request *)
    entries : int;  (** oracle CS-entry counter *)
  }

  let view node = P.view node.proto

  let draw_think p rng = Rng.int_in rng p.think_min p.think_max
  let draw_eat p rng = Rng.int_in rng p.eat_min p.eat_max

  let init params ~client_seed self =
    let client_rng = Rng.create (client_seed + (7919 * (self + 1))) in
    { params;
      self;
      proto = P.init ~n:params.n self;
      timer = 0;
      think_left = draw_think params client_rng;
      eat_left = 0;
      client_rng;
      ovc = Vector_clock.create ~n:params.n;
      req_vc = Vector_clock.create ~n:params.n;
      entries = 0 }

  let tick_ovc node = { node with ovc = Vector_clock.tick node.ovc node.self }

  let wrap_sends node sends =
    List.map (fun (dst, m) -> (dst, { payload = m; ovc = node.ovc })) sends

  module Node = struct
    type state = node
    type msg = envelope

    let receive ~self:_ ~from { payload; ovc } node =
      let node = { node with ovc = Vector_clock.merge node.ovc ovc } in
      let node = tick_ovc node in
      let proto, sends = P.on_message ~from payload node.proto in
      let node = { node with proto } in
      (node, wrap_sends node sends)

    (* The action closures below capture nothing — each reads
       everything from the node it is applied to — so the singleton
       action lists are allocated once at functor instantiation and
       [actions] allocates nothing beyond the occasional append.  The
       scheduler calls [actions] for every process at every step, so
       this is the simulator's hottest allocation site. *)

    let act_think =
      [ ("think", fun node -> ({ node with think_left = node.think_left - 1 }, []))
      ]

    let act_request_cs =
      [ ("request-cs",
         fun node ->
           let node = tick_ovc node in
           let proto, sends = P.request_cs node.proto in
           let node = { node with proto; req_vc = node.ovc } in
           (node, wrap_sends node sends)) ]

    let act_enter_cs =
      [ ("enter-cs",
         fun node ->
           match P.try_enter node.proto with
           | None -> (node, [])  (* guard raced with nothing: keep state *)
           | Some (proto, sends) ->
             let node = tick_ovc node in
             let node =
               { node with
                 proto;
                 entries = node.entries + 1;
                 eat_left = draw_eat node.params node.client_rng }
             in
             (node, wrap_sends node sends)) ]

    let act_eat =
      [ ("eat", fun node -> ({ node with eat_left = node.eat_left - 1 }, [])) ]

    let act_release_cs =
      [ ("release-cs",
         fun node ->
           let node = tick_ovc node in
           let proto, sends = P.release_cs node.proto in
           let node =
             { node with
               proto;
               think_left = draw_think node.params node.client_rng }
           in
           (node, wrap_sends node sends)) ]

    let act_wrapper_tick =
      [ ("wrapper-tick", fun node -> ({ node with timer = node.timer - 1 }, []))
      ]

    let act_wrapper_fire =
      [ (Wrapper.action_label,
         fun node ->
           match node.params.wrapper with
           | Off -> (node, []) (* unreachable: guarded by [wrapper_actions] *)
           | On { variant; delta } ->
             let v = view node in
             let sends = Wrapper.fire variant v ~n:node.params.n in
             let node = { node with timer = delta } in
             (node, wrap_sends node sends)
           | On_term { term; delta } ->
             let v = view node in
             let sends = Wrapper.eval term v ~n:node.params.n ~timer:node.timer in
             let node = { node with timer = delta } in
             (node, wrap_sends node sends)) ]

    let client_actions v node =
      match v.View.mode with
      | View.Thinking when List.mem node.self node.params.passive -> []
      | View.Thinking when node.think_left > 0 -> act_think
      | View.Thinking -> act_request_cs
      | View.Hungry ->
        (match P.try_enter node.proto with
         | None -> []
         | Some _ -> act_enter_cs)
      | View.Eating when node.eat_left > 0 -> act_eat
      | View.Eating -> act_release_cs

    let wrapper_actions v node =
      match node.params.wrapper with
      | Off -> []
      | On { variant; delta } ->
        if not (View.hungry v) then []
        else if node.timer > 0 then act_wrapper_tick
        else
          let sends = Wrapper.fire variant v ~n:node.params.n in
          if sends = [] && delta = 0 then [] else act_wrapper_fire
      | On_term { term; _ } ->
        (* the term's own guard (evaluated as if the timer had expired)
           is the enablement; the harness timer then rate-limits actual
           firing exactly as for the hand-written W'(δ) *)
        if Wrapper.eval term v ~n:node.params.n ~timer:0 = [] then []
        else if node.timer > 0 then act_wrapper_tick
        else act_wrapper_fire

    let actions ~self:_ node =
      let v = view node in
      match wrapper_actions v node with
      | [] -> client_actions v node
      | w -> (match client_actions v node with [] -> w | c -> c @ w)
  end

  module Run = Sim.Engine.Make (Node)

  let make_engine ?(record = true) ?indexed ?deliver_weight params ~seed =
    let cfg = Run.config ?deliver_weight ?indexed ~record ~n:params.n ~seed () in
    Run.create cfg ~init:(init params ~client_seed:(seed * 31 + 17))

  let view_trace engine =
    Run.trace engine
    |> Sim.Trace.map_states view
    |> Sim.Trace.map_msgs (fun e -> e.payload)

  let views engine = Array.map view (Run.states engine)

  (** Entry records in trace order, for the FCFS (ME3) oracle. *)
  let entry_log engine =
    let snaps = Run.trace engine in
    let rec go acc = function
      | prev :: (next :: _ as rest) ->
        let acc =
          match next.Sim.Trace.event with
          | Sim.Trace.Internal { pid; label = "enter-cs" } ->
            let before = prev.Sim.Trace.states.(pid) in
            { entry_time = next.Sim.Trace.time;
              entry_pid = pid;
              entry_req = (view before).View.req;
              entry_req_vc = before.req_vc }
            :: acc
          | _ -> acc
        in
        go acc rest
      | [] | [ _ ] -> List.rev acc
    in
    go [] snaps

  let total_entries engine =
    Array.fold_left (fun acc node -> acc + node.entries) 0 (Run.states engine)

  (** {2 Protocol-aware fault constructors} *)

  let corrupt_node rng node =
    let proto = P.corrupt rng node.proto in
    let timer =
      match node.params.wrapper with
      | Off -> node.timer
      | On { delta; _ } | On_term { delta; _ } -> Rng.int rng (delta + 1)
    in
    { node with proto; timer }

  let fault_corrupt_process proc : (node, envelope) Sim.Faults.kind =
    Mutate_state { proc; f = corrupt_node }

  let fault_reset_process params proc : (node, envelope) Sim.Faults.kind =
    Reset_state
      { proc;
        f =
          (fun p ->
            let node = init params ~client_seed:(p + 101) p in
            { node with proto = P.reset ~n:params.n p }) }

  let fault_drop_requests chan ~count : (node, envelope) Sim.Faults.kind =
    Drop { chan; count; only = Some (fun e -> Msg.is_request e.payload) }

  let fault_drop_any chan ~count : (node, envelope) Sim.Faults.kind =
    Drop { chan; count; only = None }

  let fault_corrupt_messages params chan ~count :
      (node, envelope) Sim.Faults.kind =
    Corrupt_messages
      { chan;
        count;
        f =
          (fun rng e ->
            { e with payload = Msg.corrupt ~n:params.n rng e.payload }) }

  let fault_duplicate chan ~count : (node, envelope) Sim.Faults.kind =
    Duplicate { chan; count }

  let fault_reorder chan ~count : (node, envelope) Sim.Faults.kind =
    Reorder { chan; count }

  let fault_flush chan : (node, envelope) Sim.Faults.kind = Flush chan

  (* Not a fault at all from the protocol's point of view: the
     simulated group membership service announcing each process's
     connected group.  Lowered as [Mutate_state] so the engine stays
     protocol-agnostic; scheduled only for [membership_aware]
     protocols, so the rest see plans identical to before the GMS
     existed. *)
  let fault_view_change ~members_of : (node, envelope) Sim.Faults.kind =
    Mutate_state
      { proc = Any_proc;
        f =
          (fun _rng node ->
            { node with
              proto = P.on_view_change ~members:(members_of node.self) node.proto }) }
end
