(** Summary statistics over small samples of measurements. *)

val mean : float list -> float
(** [mean xs] is the arithmetic mean; [nan] on the empty list. *)

val stddev : float list -> float
(** [stddev xs] is the population standard deviation; [nan] on the
    empty list, [0.] on singletons. *)

val median : float list -> float
(** [median xs] is the (lower-interpolated) median; [nan] on the empty
    list. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [\[0, 100\]] using nearest-rank;
    [nan] on the empty list. *)

val min_max : float list -> float * float
(** [min_max xs] returns [(min, max)].
    @raise Invalid_argument on the empty list. *)

val sum : float list -> float

val mean_int : int list -> float
(** [mean_int xs] is the mean of integer samples. *)

val percentile_supported : samples:int -> float -> bool
(** [percentile_supported ~samples q] holds when at least 2 of
    [samples] lie at or above the [q]-th percentile — the threshold
    below which a reported pX.Y figure degenerates to the sample
    maximum.  Exact integer arithmetic in tenths of a percent, so a
    sample size that supports [q] exactly is accepted (the float form
    [samples *. (1. -. q /. 100.)] misfires there). *)

val suppress_unsupported :
  samples:int -> float list -> float list -> float option list
(** [suppress_unsupported ~samples qs ps] maps each percentile value
    [p] (computed at level [q], both lists in lockstep) to [Some p]
    when {!percentile_supported} accepts its level and [p] is not
    [nan], and [None] otherwise — the uniform "report null, not a
    lookalike" rule for benchmark percentile columns. *)

val percentiles : float Vec.t -> float list -> float list
(** [percentiles v ps] computes one nearest-rank percentile per entry
    of [ps] (e.g. [[50.; 99.; 99.9]]) with a single sort of the sample
    — exact, not estimated.  Each result is [nan] when [v] is empty;
    ties and singletons follow the same nearest-rank rule as
    {!percentile}, with which this agrees value-for-value. *)
