(* Fenwick (binary-indexed) tree over nonnegative integer weights.
   [tree] is the classic 1-based partial-sum array; [vals] shadows the
   current weight of every slot so point reads and assignments are O(1)
   and O(log n) respectively without a prefix subtraction. *)

type t = {
  n : int;
  tree : int array; (* 1-based: tree.(j) sums a binary-indexed block *)
  vals : int array; (* current weight per 0-based slot *)
  mutable total : int;
  topbit : int; (* largest power of two <= n, for [select]'s descent *)
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create: need n >= 0";
  let topbit =
    let b = ref 1 in
    while 2 * !b <= n do
      b := 2 * !b
    done;
    if n = 0 then 0 else !b
  in
  { n; tree = Array.make (n + 1) 0; vals = Array.make (max n 1) 0; total = 0; topbit }

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.get: index out of bounds";
  t.vals.(i)

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of bounds";
  if t.vals.(i) + delta < 0 then invalid_arg "Fenwick.add: negative weight";
  t.vals.(i) <- t.vals.(i) + delta;
  t.total <- t.total + delta;
  let j = ref (i + 1) in
  while !j <= t.n do
    t.tree.(!j) <- t.tree.(!j) + delta;
    j := !j + (!j land - !j)
  done

let set t i v = add t i (v - get t i)

let total t = t.total

let prefix t i =
  if i < 0 || i > t.n then invalid_arg "Fenwick.prefix: index out of bounds";
  let s = ref 0 and j = ref i in
  while !j > 0 do
    s := !s + t.tree.(!j);
    j := !j - (!j land - !j)
  done;
  !s

(* Binary-lifting descent: O(log n), no prefix recomputation. *)
let select t k =
  if k < 0 || k >= t.total then invalid_arg "Fenwick.select: rank out of range";
  let idx = ref 0 and rem = ref k and bit = ref t.topbit in
  while !bit > 0 do
    let next = !idx + !bit in
    if next <= t.n && t.tree.(next) <= !rem then begin
      idx := next;
      rem := !rem - t.tree.(next)
    end;
    bit := !bit / 2
  done;
  !idx
