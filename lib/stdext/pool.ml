let default_jobs () = Domain.recommended_domain_count ()

let shard_of ~hash ~shards =
  if shards < 1 then invalid_arg "Pool.shard_of: need shards >= 1";
  if shards = 1 then 0 else (hash lsr 33) mod shards

type 'b slot = Empty | Done of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.map: need jobs >= 1";
  match xs with
  | [] -> []
  | xs when jobs = 1 -> List.map f xs
  | xs ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let results = Array.make n Empty in
    let next = Atomic.make 0 in
    (* Each worker claims indices off the shared counter until the
       input is exhausted; a raise is captured into its slot so one bad
       element cannot strand the other workers. *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            (match f input.(i) with
             | v -> Done v
             | exception e -> Raised (e, Printexc.get_raw_backtrace ()))
      done
    in
    let helpers =
      List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
         | Empty -> assert false)
