(** Fenwick (binary-indexed) tree over nonnegative integer weights.

    The scheduler's move index: one slot per process holding its
    enabled-action count, so a weighted draw is a prefix {!select} and
    a state change is a point {!set} — both O(log n), replacing the
    per-step full scan.  {!select}'s order is ascending slot index,
    which is exactly the ascending-pid order the scheduler's virtual
    move list has always used. *)

type t

val create : int -> t
(** [create n] is a tree of [n] slots, all weight 0. *)

val length : t -> int

val get : t -> int -> int
(** [get t i] is slot [i]'s current weight, O(1). *)

val add : t -> int -> int -> unit
(** [add t i delta] adjusts slot [i] by [delta], O(log n).
    @raise Invalid_argument if the slot would go negative. *)

val set : t -> int -> int -> unit
(** [set t i v] assigns slot [i] the weight [v], O(log n). *)

val total : t -> int
(** [total t] is the sum of all weights, O(1). *)

val prefix : t -> int -> int
(** [prefix t i] is the sum of slots [0 .. i-1], O(log n). *)

val select : t -> int -> int
(** [select t k] is the unique slot [i] with
    [prefix t i <= k < prefix t (i+1)] — the slot containing the
    [k]-th unit of weight, in ascending-slot order.  O(log n).
    @raise Invalid_argument unless [0 <= k < total t]. *)
