(** A fixed-size domain pool for embarrassingly parallel sweeps.

    Campaign rows and bench seed sweeps are seed-deterministic and
    share no state, so they parallelize with no coordination beyond a
    work-stealing counter.  [map] keeps the sequential contract:
    results come back in input order and the first (by input position)
    exception re-raises in the caller, so [map ~jobs:k f xs] is
    observably [List.map f xs] for pure [f] — only faster. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the whole machine. *)

val shard_of : hash:int -> shards:int -> int
(** [shard_of ~hash ~shards] routes a hashed key to its owning shard
    (in [0 .. shards-1]) by the {e high} bits of [hash], so data that
    is also open-address-probed by the low bits of the same hash never
    correlates shard choice with probe position.  The model checker
    routes successor states to per-domain visited-set shards with
    this.  [hash] must already be well mixed.
    @raise Invalid_argument when [shards < 1]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] on up to
    [jobs] domains (the caller's domain included) and returns the
    results in input order.

    [~jobs:1] runs exactly [List.map f xs] on the calling domain: no
    domain is spawned, making the serial path bit-for-bit identical to
    pre-pool code.  If one or more applications raise, the exception of
    the smallest input index re-raises (with its backtrace) after all
    workers have drained.

    [f] must be safe to run concurrently with itself ([jobs >= 2]
    executes elements on different domains).

    @raise Invalid_argument when [jobs < 1]. *)
