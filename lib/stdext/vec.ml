type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get v.data i

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    (* [x] doubles as the filler for the fresh slots; it is overwritten
       or out of [len]-range, so it never leaks. *)
    let data = Array.make (if cap = 0 then 16 else 2 * cap) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let to_list v = List.init v.len (fun i -> Array.unsafe_get v.data i)
