type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get v.data i

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    (* [x] doubles as the filler for the fresh slots; it is overwritten
       or out of [len]-range, so it never leaks. *)
    let data = Array.make (if cap = 0 then 16 else 2 * cap) x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let to_list v = List.init v.len (fun i -> Array.unsafe_get v.data i)

let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

(* Keeps the backing array, so a cleared scratch Vec refills without
   reallocating — the engine's per-step dirty list relies on this. *)
let clear v = v.len <- 0
