(** Persistent arrays with O(1) access on the newest version
    (Baker's trick, as popularized by Conchon & Filliatre).

    A [set] allocates one small diff node instead of copying the
    backing array; reading any version {e reroots} the backing array to
    that version, so the most recently touched version always pays
    array speed.  Old versions stay valid — reading one costs the
    length of the diff chain back to it.

    This is what lets {!Sim.Network} keep its persistent interface
    while dropping the O(n{^2}) copy it used to pay per message.

    Not thread-safe across domains: rerooting mutates shared nodes.
    Confine each value (and all its versions) to one domain. *)

type 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a persistent array of [n] copies of [x]. *)

val init : int -> (int -> 'a) -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** O(1) on the version touched last; O(chain) on older versions. *)

val set : 'a t -> int -> 'a -> 'a t
(** [set t i x] is a new version with [x] at [i]; [t] is unchanged.
    Returns [t] itself when [x] is physically the current element. *)

val to_list : 'a t -> 'a list

val foldi : (int -> 'acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [foldi f acc t] folds left over indices [0 .. length - 1]. *)
