(* Size-augmented AVL set of ints: stdlib-Set balancing (height
   difference at most 2) with a cardinality field in every node, which
   adds O(log n) rank/select — the operations the network's live-channel
   index needs that [Set.Make] cannot answer without an O(n) walk. *)

type t = Leaf | Node of { l : t; v : int; r : t; h : int; s : int }

let empty = Leaf

let is_empty = function Leaf -> true | Node _ -> false

let height = function Leaf -> 0 | Node { h; _ } -> h

let cardinal = function Leaf -> 0 | Node { s; _ } -> s

let mk l v r =
  Node
    { l;
      v;
      r;
      h = 1 + max (height l) (height r);
      s = 1 + cardinal l + cardinal r }

let bal l v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Leaf -> assert false
    | Node { l = ll; v = lv; r = lr; _ } ->
      if height ll >= height lr then mk ll lv (mk lr v r)
      else begin
        match lr with
        | Leaf -> assert false
        | Node { l = lrl; v = lrv; r = lrr; _ } ->
          mk (mk ll lv lrl) lrv (mk lrr v r)
      end
  else if hr > hl + 2 then
    match r with
    | Leaf -> assert false
    | Node { l = rl; v = rv; r = rr; _ } ->
      if height rr >= height rl then mk (mk l v rl) rv rr
      else begin
        match rl with
        | Leaf -> assert false
        | Node { l = rll; v = rlv; r = rlr; _ } ->
          mk (mk l v rll) rlv (mk rlr rv rr)
      end
  else mk l v r

let rec mem x = function
  | Leaf -> false
  | Node { l; v; r; _ } ->
    if x = v then true else if x < v then mem x l else mem x r

let rec add x = function
  | Leaf -> mk Leaf x Leaf
  | Node { l; v; r; _ } as t ->
    if x = v then t
    else if x < v then
      let l' = add x l in
      if l' == l then t else bal l' v r
    else
      let r' = add x r in
      if r' == r then t else bal l v r'

let rec min_elt = function
  | Leaf -> invalid_arg "Oset.min_elt: empty"
  | Node { l = Leaf; v; _ } -> v
  | Node { l; _ } -> min_elt l

let rec remove_min = function
  | Leaf -> invalid_arg "Oset.remove_min: empty"
  | Node { l = Leaf; r; _ } -> r
  | Node { l; v; r; _ } -> bal (remove_min l) v r

let merge l r =
  match l, r with
  | Leaf, t | t, Leaf -> t
  | _, _ -> bal l (min_elt r) (remove_min r)

let rec remove x = function
  | Leaf -> Leaf
  | Node { l; v; r; _ } as t ->
    if x = v then merge l r
    else if x < v then
      let l' = remove x l in
      if l' == l then t else bal l' v r
    else
      let r' = remove x r in
      if r' == r then t else bal l v r'

(* k-th smallest, 0-based — the index's select. *)
let rec nth t k =
  match t with
  | Leaf -> invalid_arg "Oset.nth: rank out of range"
  | Node { l; v; r; _ } ->
    let cl = cardinal l in
    if k < cl then nth l k else if k = cl then v else nth r (k - cl - 1)

(* Number of elements strictly below [x] — the index's rank. *)
let rec count_below t x =
  match t with
  | Leaf -> 0
  | Node { l; v; r; _ } ->
    if x <= v then count_below l x else cardinal l + 1 + count_below r x

(* Elements in the half-open interval [lo, hi). *)
let count_range t ~lo ~hi =
  if hi <= lo then 0 else count_below t hi - count_below t lo

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node { l; v; r; _ } -> fold f r (f v (fold f l acc))

let rec fold_range ~lo ~hi f t acc =
  match t with
  | Leaf -> acc
  | Node { l; v; r; _ } ->
    let acc = if lo < v then fold_range ~lo ~hi f l acc else acc in
    let acc = if lo <= v && v < hi then f v acc else acc in
    if v + 1 < hi then fold_range ~lo ~hi f r acc else acc

let elements t = List.rev (fold (fun v acc -> v :: acc) t [])

let union a b =
  (* fold the smaller set into the larger: the index only unions the
     (usually tiny) waiting set into the live set for snapshots *)
  let small, big = if cardinal a <= cardinal b then (a, b) else (b, a) in
  fold add small big

let of_list xs = List.fold_left (fun t x -> add x t) empty xs
