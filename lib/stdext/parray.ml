(* Persistent arrays via version trees: the newest version owns the
   flat array and every older version is a chain of (index, old value)
   diffs hanging off it.  Reading an old version reverses the chain so
   that version becomes the owner ("rerooting"); the previous owner
   turns into a diff.  All mutation is internal — observable behaviour
   is purely functional. *)

type 'a t = 'a data ref
and 'a data = Arr of 'a array | Diff of int * 'a * 'a t

let make n x = ref (Arr (Array.make n x))
let init n f = ref (Arr (Array.init n f))

let reroot t =
  match !t with
  | Arr a -> a
  | Diff _ ->
    (* Diff nodes from [t] to the current owner, nearest-owner first;
       tail-recursive so long chains cannot blow the stack. *)
    let rec collect acc node =
      match !node with
      | Arr a -> (acc, a)
      | Diff (_, _, next) -> collect (node :: acc) next
    in
    let path, a = collect [] t in
    List.iter
      (fun node ->
        match !node with
        | Arr _ -> assert false
        | Diff (i, v, next) ->
          let old = a.(i) in
          a.(i) <- v;
          next := Diff (i, old, node);
          node := Arr a)
      path;
    a

let length t =
  let rec go node =
    match !node with Arr a -> Array.length a | Diff (_, _, next) -> go next
  in
  go t

let get t i = match !t with Arr a -> a.(i) | Diff _ -> (reroot t).(i)

let set t i v =
  let a = reroot t in
  let old = a.(i) in
  if old == v then t
  else begin
    a.(i) <- v;
    let res = ref (Arr a) in
    t := Diff (i, old, res);
    res
  end

let to_list t = Array.to_list (reroot t)

let foldi f acc t =
  let a = reroot t in
  let acc = ref acc in
  for i = 0 to Array.length a - 1 do
    acc := f i !acc a.(i)
  done;
  !acc
