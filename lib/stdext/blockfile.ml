(* Raw little-endian 64-bit words over a Unix fd.  The staging buffer
   turns an int-array slice into bytes with Bytes.set_int64_le (a
   store, not a syscall, per word) so an append is one write(2); pread
   is implemented as lseek+read on a per-reader fd, which keeps the
   handles positionally independent without depending on a pread
   binding. *)

type t = {
  w_path : string;
  mutable w_fd : Unix.file_descr option;
  mutable w_words : int;
  mutable w_buf : Bytes.t;
  mutable removed : bool;
}

type reader = {
  mutable r_fd : Unix.file_descr option;
  mutable r_buf : Bytes.t;
  r_path : string;
}

let create ~dir ~prefix =
  let rec attempt tries =
    if tries = 0 then
      raise (Sys_error (Printf.sprintf "Blockfile.create: cannot create in %s" dir));
    (* stamp from a counter + pid so concurrent creators in one dir
       (shards, parallel tests) never collide; O_EXCL is the arbiter *)
    let name =
      Printf.sprintf "%s-%d-%d.blk" prefix (Unix.getpid ())
        (Random.bits () land 0xFFFFFF)
    in
    let path = Filename.concat dir name in
    match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_EXCL ] 0o600 with
    | fd -> (path, fd)
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> attempt (tries - 1)
  in
  let path, fd = attempt 100 in
  { w_path = path;
    w_fd = Some fd;
    w_words = 0;
    w_buf = Bytes.create 65536;
    removed = false }

let path t = t.w_path
let words t = t.w_words

let really_write fd buf len =
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let append t (a : int array) ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length a then
    invalid_arg "Blockfile.append: bad slice";
  let fd =
    match t.w_fd with
    | Some fd -> fd
    | None -> invalid_arg "Blockfile.append: closed"
  in
  let bytes = 8 * len in
  if Bytes.length t.w_buf < bytes then
    t.w_buf <- Bytes.create (max bytes (2 * Bytes.length t.w_buf));
  for i = 0 to len - 1 do
    Bytes.set_int64_le t.w_buf (8 * i) (Int64.of_int a.(off + i))
  done;
  really_write fd t.w_buf bytes;
  let at = t.w_words in
  t.w_words <- t.w_words + len;
  at

let append_record t a ~off ~len =
  let at = append t [| len |] ~off:0 ~len:1 in
  ignore (append t a ~off ~len);
  at

let close t =
  match t.w_fd with
  | None -> ()
  | Some fd ->
    t.w_fd <- None;
    Unix.close fd

let remove t =
  close t;
  if not t.removed then begin
    t.removed <- true;
    try Unix.unlink t.w_path with Unix.Unix_error _ -> ()
  end

let reader t =
  { r_fd = Some (Unix.openfile t.w_path [ Unix.O_RDONLY ] 0);
    r_buf = Bytes.create 65536;
    r_path = t.w_path }

let pread r ~woff (buf : int array) ~off ~len =
  if woff < 0 || len < 0 || off < 0 || off + len > Array.length buf then
    invalid_arg "Blockfile.pread: bad range";
  let fd =
    match r.r_fd with
    | Some fd -> fd
    | None -> invalid_arg "Blockfile.pread: closed"
  in
  let bytes = 8 * len in
  if Bytes.length r.r_buf < bytes then
    r.r_buf <- Bytes.create (max bytes (2 * Bytes.length r.r_buf));
  ignore (Unix.lseek fd (8 * woff) Unix.SEEK_SET);
  let rec go got =
    if got < bytes then begin
      let k = Unix.read fd r.r_buf got (bytes - got) in
      if k = 0 then
        invalid_arg
          (Printf.sprintf "Blockfile.pread: short read at word %d in %s" woff
             r.r_path);
      go (got + k)
    end
  in
  go 0;
  for i = 0 to len - 1 do
    buf.(off + i) <- Int64.to_int (Bytes.get_int64_le r.r_buf (8 * i))
  done

let close_reader r =
  match r.r_fd with
  | None -> ()
  | Some fd ->
    r.r_fd <- None;
    Unix.close fd

let iter_records r f =
  let fd =
    match r.r_fd with
    | Some fd -> fd
    | None -> invalid_arg "Blockfile.iter_records: closed"
  in
  let total = Unix.lseek fd 0 Unix.SEEK_END / 8 in
  let hdr = Array.make 1 0 in
  let buf = ref (Array.make 256 0) in
  let rec go woff =
    if woff < total then begin
      pread r ~woff hdr ~off:0 ~len:1;
      let len = hdr.(0) in
      if len < 0 || woff + 1 + len > total then
        invalid_arg "Blockfile.iter_records: corrupt length prefix";
      if Array.length !buf < len then buf := Array.make (max len (2 * len)) 0;
      pread r ~woff:(woff + 1) !buf ~off:0 ~len;
      f !buf len;
      go (woff + 1 + len)
    end
  in
  go 0
