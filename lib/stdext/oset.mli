(** Persistent ordered int set with O(log n) rank and select.

    A size-augmented AVL tree: the network keeps its live-channel
    indexes in this structure because the scheduler's delivery draw
    needs "the [k]-th live channel in ascending order" ({!nth}) and the
    destination-sharded counts need "how many elements in [lo, hi)"
    ({!count_range}) — both O(log n), neither answerable by [Set.Make]
    without a linear walk.  Persistence is load-bearing: network
    versions share index nodes, so trace snapshots stay free. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** O(1): every node carries its subtree size. *)

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val nth : t -> int -> int
(** [nth t k] is the [k]-th smallest element (0-based), O(log n).
    @raise Invalid_argument unless [0 <= k < cardinal t]. *)

val count_below : t -> int -> int
(** [count_below t x] is the number of elements strictly below [x]. *)

val count_range : t -> lo:int -> hi:int -> int
(** [count_range t ~lo ~hi] is the number of elements in [\[lo, hi)]. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val fold_range : lo:int -> hi:int -> (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_range ~lo ~hi f t acc] folds the elements in [\[lo, hi)] in
    ascending order, visiting only O(log n + matches) nodes. *)

val elements : t -> int list
(** Ascending order. *)

val union : t -> t -> t
(** [union a b] folds the smaller set into the larger. *)

val of_list : int list -> t
