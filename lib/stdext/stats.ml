let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> nan
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> nan
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let percentile p = function
  | [] -> nan
  | xs ->
    let xs = sorted xs in
    let n = List.length xs in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
      |> max 0
      |> min (n - 1)
    in
    List.nth xs rank

let median xs = percentile 50. xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) y -> (min lo y, max hi y)) (x, x) xs

let mean_int xs = mean (List.map float_of_int xs)

(* Exact percentiles over a sample Vec: one sort, then one nearest-rank
   lookup per requested percentile — the load bench asks for p50/p99/
   p999 of the same latency sample, so sorting once matters.  The rank
   formula is byte-identical to [percentile]'s, so list- and Vec-based
   aggregations agree. *)
(* A percentile is supported when at least 2 samples lie at or above
   it; with fewer, the order statistic degenerates to the sample
   maximum wearing a suit.  Exact integer arithmetic in tenths of a
   percent — the float form [n *. (1. -. 0.999)] lands just under 2.
   and misfires at exactly-supported sample sizes. *)
let percentile_supported ~samples q =
  let tenths = int_of_float (Float.round (q *. 10.)) in
  samples * (1000 - tenths) >= 2 * 1000

let suppress_unsupported ~samples qs ps =
  List.map2
    (fun q p ->
      if Float.is_nan p || not (percentile_supported ~samples q) then None
      else Some p)
    qs ps

let percentiles v ps =
  let xs = Vec.to_array v in
  Array.sort compare xs;
  let n = Array.length xs in
  List.map
    (fun p ->
      if n = 0 then nan
      else
        let rank =
          int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
          |> max 0
          |> min (n - 1)
        in
        xs.(rank))
    ps
