(** Growable arrays (amortized O(1) push, O(1) random access).

    The model checker's visited table maps dense state ids to states
    and parent pointers; a [Vec.t] gives it array-speed indexed reads
    while discovery keeps appending.  Reads are safe from concurrent
    domains as long as no push runs at the same time — the checker
    alternates a parallel read-only expansion phase with a serial
    merge phase that does all the pushing. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th pushed element.
    @raise Invalid_argument when [i] is out of bounds. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x]; amortized O(1). *)

val to_list : 'a t -> 'a list
(** [to_list v] lists elements in push order. *)

val to_array : 'a t -> 'a array
(** [to_array v] copies the elements into a fresh array, push order. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f v] applies [f] in push order. *)

val clear : 'a t -> unit
(** [clear v] resets the length to 0, keeping the backing storage — a
    scratch Vec refills without reallocating. *)
