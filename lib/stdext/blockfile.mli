(** Flat int-array block files: the out-of-core substrate.

    A blockfile stores raw OCaml ints as fixed-width little-endian
    64-bit words, append-only.  There is no Marshal, no framing
    overhead and no per-record allocation on the write path: a caller
    hands a slice of an int array, the words are staged through one
    reusable byte buffer and written with a single [write].  Readers
    address the file by {e word offset} — [pread] fills a caller
    buffer from any offset, so several {!reader} handles (one per
    domain) can stream disjoint ranges of the same file concurrently
    with no shared seek pointer.

    Two layers:

    - the raw layer ({!append} / {!pread}) addresses untyped words —
      the model checker's spill path stores each state key's offset
      and length itself, so it needs exactly this and nothing more;
    - the record layer ({!append_record} / {!iter_records}) adds a
      one-word length prefix per record for callers that want
      self-describing files (tests, ad-hoc dumps).

    Files are created under a caller-supplied directory with
    [O_CREAT|O_EXCL] temp names and are deleted by {!remove}; a
    crashed run leaves them behind for post-mortem, nothing re-reads
    them implicitly. *)

type t
(** An append-only write handle (owns the fd and the staging buffer).
    Not thread-safe: one writer per file, by design — the checker
    gives every visited-set shard its own blockfile. *)

type reader
(** An independent positional read handle on the same path.  Each
    reader owns its fd, so concurrent readers never race on a seek
    pointer. *)

val create : dir:string -> prefix:string -> t
(** [create ~dir ~prefix] makes a fresh, empty blockfile
    [dir/prefix-XXXXXX.blk].
    @raise Sys_error when [dir] is unusable. *)

val path : t -> string

val words : t -> int
(** Words appended so far (= the word offset the next {!append}
    returns). *)

val append : t -> int array -> off:int -> len:int -> int
(** [append t a ~off ~len] appends [a.(off .. off+len-1)] and returns
    the word offset the slice starts at.  Data is written through,
    not buffered: a {!reader} opened afterwards sees it. *)

val append_record : t -> int array -> off:int -> len:int -> int
(** Like {!append} but with a one-word length prefix; returns the
    offset of the prefix.  For {!iter_records} files. *)

val close : t -> unit
(** Close the writer fd; the file stays on disk. *)

val remove : t -> unit
(** Close (if open) and delete the file.  Idempotent. *)

val reader : t -> reader
(** A new positional read handle on [t]'s file.  Reads see every word
    appended before the call ({!append} writes through). *)

val pread : reader -> woff:int -> int array -> off:int -> len:int -> unit
(** [pread r ~woff buf ~off ~len] fills [buf.(off .. off+len-1)] with
    the [len] words starting at word offset [woff].
    @raise Invalid_argument when the range is beyond end-of-file. *)

val close_reader : reader -> unit

val iter_records : reader -> (int array -> int -> unit) -> unit
(** [iter_records r f] streams a file written with {!append_record}
    from offset 0, calling [f buf len] per record; [buf.(0..len-1)] is
    valid only during [f] (the buffer is reused). *)
