open Clocks
module SMap = Map.Make (String)

module Domain = struct
  type t =
    | D_bool
    | D_nat of int
    | D_mode
    | D_own_ts
    | D_peer_ts_map
    | D_pid_set

  let pp ppf = function
    | D_bool -> Format.pp_print_string ppf "bool"
    | D_nat k -> Format.fprintf ppf "nat[0..%d]" k
    | D_mode -> Format.pp_print_string ppf "mode"
    | D_own_ts -> Format.pp_print_string ppf "own-ts"
    | D_peer_ts_map -> Format.pp_print_string ppf "peer-ts-map"
    | D_pid_set -> Format.pp_print_string ppf "pid-set"
end

module Value = struct
  type t =
    | V_bool of bool
    | V_nat of int
    | V_mode of Graybox.View.mode
    | V_own_ts of Timestamp.t
    | V_peer_ts_map of Timestamp.t Sim.Pid.Map.t
    | V_pid_set of Sim.Pid.Set.t

  let peers ~self ~n = Sim.Pid.others ~self ~n

  let in_domain ~self ~n domain v =
    match domain, v with
    | Domain.D_bool, V_bool _ -> true
    | Domain.D_nat _, V_nat x -> x >= 0
    | Domain.D_mode, V_mode _ -> true
    | Domain.D_own_ts, V_own_ts ts ->
      ts.Timestamp.pid = self && ts.Timestamp.clock >= 0
    | Domain.D_peer_ts_map, V_peer_ts_map m ->
      (* keys range over the peers; an absent key reads as the zero
         timestamp ({!map_entry}), so the domain admits any subset —
         large systems keep the map sparse *)
      Sim.Pid.Map.for_all (fun k _ -> k >= 0 && k < n && k <> self) m
    | Domain.D_pid_set, V_pid_set s ->
      Sim.Pid.Set.for_all (fun p -> p >= 0 && p < n && p <> self) s
    | ( ( Domain.D_bool | Domain.D_nat _ | Domain.D_mode | Domain.D_own_ts
        | Domain.D_peer_ts_map | Domain.D_pid_set ),
        _ ) ->
      false

  let random rng ~self ~n domain =
    let open Stdext in
    let random_clock () = Rng.int rng 64 in
    match domain with
    | Domain.D_bool -> V_bool (Rng.bool rng)
    | Domain.D_nat k -> V_nat (Rng.int rng (k + 1))
    | Domain.D_mode ->
      V_mode
        (match Rng.int rng 3 with
         | 0 -> Graybox.View.Thinking
         | 1 -> Graybox.View.Hungry
         | _ -> Graybox.View.Eating)
    | Domain.D_own_ts ->
      V_own_ts (Timestamp.make ~clock:(random_clock ()) ~pid:self)
    | Domain.D_peer_ts_map ->
      V_peer_ts_map
        (List.fold_left
           (fun m k ->
             Sim.Pid.Map.add k
               (Timestamp.make ~clock:(random_clock ()) ~pid:(Rng.int rng n))
               m)
           Sim.Pid.Map.empty (peers ~self ~n))
    | Domain.D_pid_set ->
      V_pid_set
        (List.fold_left
           (fun s k -> if Rng.bool rng then Sim.Pid.Set.add k s else s)
           Sim.Pid.Set.empty (peers ~self ~n))

  let pp ppf = function
    | V_bool b -> Format.pp_print_bool ppf b
    | V_nat x -> Format.pp_print_int ppf x
    | V_mode m -> Graybox.View.pp_mode ppf m
    | V_own_ts ts -> Timestamp.pp ppf ts
    | V_peer_ts_map m ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           (fun ppf (k, ts) -> Format.fprintf ppf "%d:%a" k Timestamp.pp ts))
        (Sim.Pid.Map.bindings m)
    | V_pid_set s ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Sim.Pid.Set.elements s)
end

type schema = (string * Domain.t) list

type t = {
  self : Sim.Pid.t;
  n : int;
  schema : schema;
  values : Value.t SMap.t;
}

let create schema ~self ~n bindings =
  let expected = List.sort compare (List.map fst schema) in
  let given = List.sort compare (List.map fst bindings) in
  if expected <> given then
    invalid_arg "Store.create: bindings do not match the schema";
  List.iter
    (fun (name, v) ->
      let domain = List.assoc name schema in
      if not (Value.in_domain ~self ~n domain v) then
        invalid_arg (Printf.sprintf "Store.create: %s out of domain" name))
    bindings;
  { self;
    n;
    schema;
    values = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty bindings }

let self t = t.self
let size t = t.n
let schema t = t.schema

let fetch t name =
  match SMap.find_opt name t.values with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Store: unknown variable %s" name)

let update t name v =
  let domain =
    match List.assoc_opt name t.schema with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Store: unknown variable %s" name)
  in
  if not (Value.in_domain ~self:t.self ~n:t.n domain v) then
    invalid_arg (Printf.sprintf "Store: %s assignment out of domain" name);
  { t with values = SMap.add name v t.values }

let type_error name = invalid_arg (Printf.sprintf "Store: %s wrong type" name)

let get_bool t name =
  match fetch t name with Value.V_bool b -> b | _ -> type_error name

let set_bool t name b = update t name (Value.V_bool b)

let get_nat t name =
  match fetch t name with Value.V_nat x -> x | _ -> type_error name

let set_nat t name x = update t name (Value.V_nat x)

let get_mode t name =
  match fetch t name with Value.V_mode m -> m | _ -> type_error name

let set_mode t name m = update t name (Value.V_mode m)

let get_ts t name =
  match fetch t name with Value.V_own_ts ts -> ts | _ -> type_error name

let set_ts t name ts = update t name (Value.V_own_ts ts)

let get_map t name =
  match fetch t name with Value.V_peer_ts_map m -> m | _ -> type_error name

let set_map t name m = update t name (Value.V_peer_ts_map m)

let map_entry t name k =
  if k < 0 || k >= t.n || k = t.self then
    invalid_arg (Printf.sprintf "Store: %s has no entry for %d" name k);
  match Sim.Pid.Map.find_opt k (get_map t name) with
  | Some ts -> ts
  | None -> Timestamp.zero ~pid:k

(* Single-entry writes happen per delivered message, so this validates
   only the touched key instead of re-checking the whole map through
   [update] — with a valid key, domain membership is preserved. *)
let set_map_entry t name k ts =
  let m = get_map t name in
  if k < 0 || k >= t.n || k = t.self then
    invalid_arg (Printf.sprintf "Store: %s entry %d out of domain" name k);
  { t with
    values = SMap.add name (Value.V_peer_ts_map (Sim.Pid.Map.add k ts m)) t.values }

let get_set t name =
  match fetch t name with Value.V_pid_set s -> s | _ -> type_error name

let set_set t name s = update t name (Value.V_pid_set s)

let add_to_set t name p = set_set t name (Sim.Pid.Set.add p (get_set t name))

let remove_from_set t name p =
  set_set t name (Sim.Pid.Set.remove p (get_set t name))

let corrupt rng t =
  let open Stdext in
  List.fold_left
    (fun t (name, domain) ->
      if Rng.chance rng 0.5 then
        update t name (Value.random rng ~self:t.self ~n:t.n domain)
      else t)
    t t.schema

let well_formed t =
  List.for_all
    (fun (name, domain) ->
      Value.in_domain ~self:t.self ~n:t.n domain (fetch t name))
    t.schema

let pp ppf t =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (name, _) ->
         Format.fprintf ppf "%s=%a" name Value.pp (fetch t name)))
    t.schema
