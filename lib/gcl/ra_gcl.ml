open Clocks
module View = Graybox.View
module Msg = Graybox.Msg

(* The paper's variables.  lc.j is kept as a plain counter in the
   store; timestamps are built from it on demand. *)
let v_mode = "state"
let v_clock = "lc"
let v_req = "REQ"
let v_local = "localREQ"
let v_received = "received"

let schema =
  [ (v_mode, Store.Domain.D_mode);
    (v_clock, Store.Domain.D_nat 64);
    (v_req, Store.Domain.D_own_ts);
    (v_local, Store.Domain.D_peer_ts_map);
    (v_received, Store.Domain.D_pid_set) ]

type state = Store.t

let name = "ra-gcl"

let store s = s

let peers s = Sim.Pid.others ~self:(Store.self s) ~n:(Store.size s)

let init ~n self =
  Store.create schema ~self ~n
    [ (v_mode, Store.Value.V_mode View.Thinking);
      (v_clock, Store.Value.V_nat 0);
      (v_req, Store.Value.V_own_ts (Timestamp.zero ~pid:self));
      ( v_local,
        (* absent keys read as zero ({!Store.map_entry}); below the
           threshold stay dense so the checker's structural state
           identity is unchanged *)
        Store.Value.V_peer_ts_map
          (if n <= Sim.Pid.dense_threshold then
             List.fold_left
               (fun m k -> Sim.Pid.Map.add k (Timestamp.zero ~pid:k) m)
               Sim.Pid.Map.empty
               (Sim.Pid.others ~self ~n)
           else Sim.Pid.Map.empty) );
      (v_received, Store.Value.V_pid_set Sim.Pid.Set.empty) ]

let view s =
  View.make ~self:(Store.self s) ~mode:(Store.get_mode s v_mode)
    ~req:(Store.get_ts s v_req) ~local_req:(Store.get_map s v_local)
    ~clock:(Store.get_nat s v_clock)

(* lc.j := lc.j + 1, returning the event's timestamp *)
let tick s =
  let now = Store.get_nat s v_clock + 1 in
  let s = Store.set_nat s v_clock now in
  (s, Timestamp.make ~clock:now ~pid:(Store.self s))

(* lc.j := max(lc.j, ts) — call before [tick] on receives *)
let witness s (ts : Timestamp.t) =
  Store.set_nat s v_clock (max (Store.get_nat s v_clock) ts.Timestamp.clock)

let read_now s =
  Timestamp.make ~clock:(Store.get_nat s v_clock) ~pid:(Store.self s)

(* CS Release Spec: t.j => REQ_j = ts.j *)
let refresh_req_if_thinking s =
  if Store.get_mode s v_mode = View.Thinking then
    Store.set_ts s v_req (read_now s)
  else s

(* {Request CS}  t.j -> REQ_j := lc.j; h.j := true; send-request to all *)
let request_cs s =
  let s, ts = tick s in
  let s = Store.set_ts s v_req ts in
  let s = Store.set_mode s v_mode View.Hungry in
  (s, List.map (fun k -> (k, Msg.Request ts)) (peers s))

(* {Grant CS}  h.j ∧ (∀k : REQ_j lt j.REQ_k) -> e.j.  The quantifier
   is an early-exit loop over the pid range with the map fetched once
   — across the attempts a grant takes, the expected total is
   O(n log n) reads, not O(n^2) (see Ra_core.earliest). *)
let try_enter s =
  let earliest =
    let self = Store.self s and n = Store.size s in
    let req = Store.get_ts s v_req in
    let local = Store.get_map s v_local in
    let entry k =
      match Sim.Pid.Map.find_opt k local with
      | Some ts -> ts
      | None -> Timestamp.zero ~pid:k
    in
    let rec go k =
      k >= n || ((k = self || Timestamp.lt req (entry k)) && go (k + 1))
    in
    go 0
  in
  if Store.get_mode s v_mode = View.Hungry && earliest then begin
    let s, _ = tick s in
    Some (Store.set_mode s v_mode View.Eating, [])
  end
  else None

(* deferred_set.j = {k : received(j.REQ_k) ∧ REQ_j lt j.REQ_k} —
   walked over the received set (ascending, like the peers list it
   replaces), so the cost is O(deferred), not O(n) *)
let deferred_set s =
  let req = Store.get_ts s v_req in
  Sim.Pid.Set.fold
    (fun k acc ->
      if Timestamp.lt req (Store.map_entry s v_local k) then k :: acc else acc)
    (Store.get_set s v_received) []
  |> List.rev

(* {Release CS}  e.j -> reply to deferred; t.j; REQ_j := lc.j *)
let release_cs s =
  let deferred = deferred_set s in
  let s, ts = tick s in
  let s = Store.set_mode s v_mode View.Thinking in
  let s = Store.set_ts s v_req ts in
  let s = Store.set_set s v_received Sim.Pid.Set.empty in
  (s, List.map (fun k -> (k, Msg.Reply ts)) deferred)

let on_message ~from msg s =
  let ts = Msg.timestamp msg in
  let s, _ = tick (witness s ts) in
  let s = refresh_req_if_thinking s in
  match msg with
  | Msg.Request req_k ->
    (* received(j.REQ_k) := true; j.REQ_k := REQ_k; reply if
       t.j ∨ REQ_k lt REQ_j *)
    let s = Store.set_map_entry s v_local from req_k in
    if
      Store.get_mode s v_mode = View.Thinking
      || Timestamp.lt req_k (Store.get_ts s v_req)
    then
      (Store.remove_from_set s v_received from, [ (from, Msg.Reply (read_now s)) ])
    else (Store.add_to_set s v_received from, [])
  | Msg.Reply r | Msg.Release r ->
    if Timestamp.lt (Store.get_ts s v_req) r then
      (Store.set_map_entry s v_local from r, [])
    else (s, [])

let corrupt rng s = Store.corrupt rng s

let reset ~n self = Store.set_mode (init ~n self) v_mode View.Hungry
let membership_aware = false
let on_view_change ~members:_ s = s

(* Everywhere-mode seeds: mirrors Ra_core.perturb over the store —
   mode flips and phantom received-sets, timestamps kept legitimate. *)
let perturb ~n s =
  let all_received = Sim.Pid.Set.of_list (peers s) in
  [ Store.set_mode s v_mode View.Hungry;
    Store.set_mode s v_mode View.Eating;
    Store.set_set (Store.set_mode s v_mode View.Hungry) v_received all_received;
    Store.set_set s v_received all_received;
    reset ~n (Store.self s) ]

let pp = Store.pp
