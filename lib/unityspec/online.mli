(** Incremental monitors: the operators of {!Temporal}, consumable one
    snapshot at a time.

    Offline checking records the whole trace and then folds the
    operators over it; for long benchmark runs that is memory the
    engine need not spend.  An online monitor carries its own state,
    is fed each snapshot as it is produced, and yields at any moment
    the verdict of the corresponding offline operator on the prefix
    seen so far (exact equivalence is property-tested in the test
    suite).  Monitors are persistent values: [feed] returns a new
    monitor, so snapshotting a monitor is free. *)

type 'a t

val verdict : 'a t -> Temporal.verdict
(** [verdict m] is the offline verdict on the prefix fed so far. *)

val feed : 'a t -> 'a -> 'a t

val feed_all : 'a t -> 'a list -> 'a t

val run : 'a t -> 'a list -> Temporal.verdict
(** [run m tr] = [verdict (feed_all m tr)]. *)

val invariant : ?name:string -> ('a -> bool) -> 'a t

val step_invariant : ?name:string -> ('a -> 'a -> bool) -> 'a t

val unless : ?name:string -> ('a -> bool) -> ('a -> bool) -> 'a t
(** [unless ?name p q]. *)

val stable : ?name:string -> ('a -> bool) -> 'a t

val leads_to : ?name:string -> ('a -> bool) -> ('a -> bool) -> 'a t
(** [leads_to ?name p q]. *)

val leads_to_always : ?name:string -> ('a -> bool) -> ('a -> bool) -> 'a t
(** [leads_to_always ?name p q]. *)

val leads_to_gated :
  ?name:string -> gate:('a -> bool) -> ('a -> bool) -> ('a -> bool) -> 'a t
(** [leads_to_gated ?name ~gate p q] is {!leads_to} with conditional
    obligation opening: a [p]-snapshot opens an obligation only when
    [gate] also holds there; [q] discharges every open obligation
    regardless of the gate.  With [gate = fun _ -> true] this is
    exactly [leads_to p q].  The regime-epoch monitors use it to scope
    progress clauses to [Global] epochs: a hungry process in a severed
    minority group owes nothing, but an obligation opened under the
    full topology still discharges whenever served. *)

val all : 'a t list -> 'a t
(** [all ms] conjoins monitors, combining verdicts with
    {!Temporal.both}. *)

val contramap : ('b -> 'a) -> 'a t -> 'b t
(** [contramap f m] adapts a monitor to a richer snapshot type — e.g.
    a view-level monitor to engine snapshots, or to an
    {!Sim.Observer} step stream. *)

val stateful :
  init:'s -> step:('s -> 'a -> 's * Temporal.verdict) -> 'a t
(** [stateful ~init ~step] builds a custom monitor from a state
    machine: each feed applies [step] to the carried state and the
    snapshot, yielding the new state and the verdict so far.  The
    verdict before any input is [Holds]; a [Violated] verdict latches
    (further input is ignored), like every safety monitor here.  For
    properties — such as FCFS over an entry stream — that no
    combination of the per-snapshot operators above expresses. *)
