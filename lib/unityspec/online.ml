(* The verdict is lazy: [leads_to] would otherwise rebuild (and
   reverse) its obligation list at every feed, making a long streaming
   run quadratic in its own length; nothing reads verdicts more than a
   handful of times per run. *)
type 'a t = { verdict : Temporal.verdict Lazy.t; feed : 'a -> 'a t }

let verdict m = Lazy.force m.verdict

let feed m x = m.feed x

let feed_all m xs = List.fold_left feed m xs

let run m xs = verdict (feed_all m xs)

let describe name fallback =
  match name with Some n -> n | None -> fallback

(* A violated safety monitor stays violated and ignores further input. *)
let rec sink verdict = { verdict = Lazy.from_val verdict; feed = (fun _ -> sink verdict) }

let holds = Lazy.from_val Temporal.Holds

let invariant ?name p =
  let label = describe name "invariant" in
  let rec at i =
    { verdict = holds;
      feed =
        (fun x ->
          if p x then at (i + 1)
          else sink (Violated { at = i; reason = label ^ " fails" })) }
  in
  at 0

let step_invariant ?name r =
  let label = describe name "step-invariant" in
  let rec after i prev =
    { verdict = holds;
      feed =
        (fun x ->
          if r prev x then after (i + 1) x
          else sink (Violated { at = i + 1; reason = label ^ " fails" })) }
  in
  { verdict = holds; feed = (fun x -> after 0 x) }

let unless ?name p q =
  let label = describe name "unless" in
  step_invariant ~name:label (fun a b -> (not (p a && not (q a))) || p b || q b)

let stable ?name p =
  let label = describe name "stable" in
  unless ~name:label p (fun _ -> false)

let leads_to ?name p q =
  ignore name;
  (* open obligations, most recent first; q discharges all *)
  let rec at i open_obligations =
    let verdict =
      lazy
        (match open_obligations with
        | [] -> Temporal.Holds
        | _ -> Temporal.Pending { obligations = List.rev open_obligations })
    in
    { verdict;
      feed =
        (fun x ->
          let open_obligations = if q x then [] else open_obligations in
          let open_obligations =
            if p x && not (q x) then i :: open_obligations
            else open_obligations
          in
          at (i + 1) open_obligations) }
  in
  at 0 []

let leads_to_gated ?name ~gate p q =
  ignore name;
  (* [leads_to], except obligations open only at snapshots the gate
     admits — conditional progress for regime-indexed specs: a hungry
     process in a severed minority group owes nobody anything, but an
     obligation opened under the full topology still discharges
     whenever it is finally served *)
  let rec at i open_obligations =
    let verdict =
      lazy
        (match open_obligations with
        | [] -> Temporal.Holds
        | _ -> Temporal.Pending { obligations = List.rev open_obligations })
    in
    { verdict;
      feed =
        (fun x ->
          let open_obligations = if q x then [] else open_obligations in
          let open_obligations =
            if gate x && p x && not (q x) then i :: open_obligations
            else open_obligations
          in
          at (i + 1) open_obligations) }
  in
  at 0 []

let rec all ms =
  { verdict = lazy (Temporal.all (List.map verdict ms));
    feed = (fun x -> all (List.map (fun m -> feed m x) ms)) }

let leads_to_always ?name p q =
  let label = describe name "leads-to-always" in
  all
    [ stable ~name:(label ^ " (stability of target)") q; leads_to p q ]

let rec contramap f m =
  { verdict = m.verdict; feed = (fun x -> contramap f (feed m (f x))) }

let stateful ~init ~step =
  let rec at s verdict =
    { verdict = Lazy.from_val verdict;
      feed =
        (fun x ->
          match verdict with
          | Temporal.Violated _ -> sink verdict
          | Temporal.Holds | Temporal.Pending _ ->
            let s', verdict' = step s x in
            at s' verdict') }
  in
  at init Temporal.Holds
