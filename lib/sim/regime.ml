type phase = Global | Split

type topo = {
  epoch : int;
  phase : phase;
  groups : Pid.t list list;
  live : bool array;
  since : int;
}

type timeline = { segs : topo array }

(* effective windows, extracted syntactically from the plan *)
type swin = { w_groups : Pid.t list list; w_from : int; w_until : int }
type cwin = { c_procs : Pid.t list; c_from : int; c_until : int }

let windows ~n plan =
  let splits, crashes =
    List.fold_left
      (fun (ws, cs) (e : _ Faults.event) ->
        match e.Faults.kind with
        | Faults.Split { groups; from_t; until_t; mode = _ }
          when until_t > from_t ->
          let groups = Faults.split_groups ~n groups in
          if List.length groups > 1 then
            ({ w_groups = groups; w_from = from_t; w_until = until_t } :: ws, cs)
          else (ws, cs)
        | Faults.Crash { proc; until_t; lose_deliveries = _ }
          when until_t > e.Faults.at ->
          ( ws,
            { c_procs = Faults.select_procs ~n proc;
              c_from = e.Faults.at;
              c_until = until_t }
            :: cs )
        | _ -> (ws, cs))
      ([], []) plan
  in
  (List.rev splits, List.rev crashes)

let group_index groups k =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem k g then i else go (i + 1) rest
  in
  go 0 groups

(* the topology at one instant: refine the partitions of every active
   split window (same group iff same group in each), kill crashed pids.
   Iterating pids ascending makes the first-seen bucket order canonical:
   groups ordered by least member, members ascending. *)
let topo_of ~n ~splits ~crashes t =
  let active = List.filter (fun w -> w.w_from <= t && t < w.w_until) splits in
  let live = Array.make n true in
  List.iter
    (fun c ->
      if c.c_from <= t && t < c.c_until then
        List.iter (fun p -> if p >= 0 && p < n then live.(p) <- false) c.c_procs)
    crashes;
  let groups =
    match active with
    | [] -> [ List.init n Fun.id ]
    | ws ->
      let buckets = ref [] in
      (* assoc list key -> rev members, kept in first-seen order *)
      List.iter
        (fun k ->
          let key = List.map (fun w -> group_index w.w_groups k) ws in
          match List.assoc_opt key !buckets with
          | Some cell -> cell := k :: !cell
          | None -> buckets := !buckets @ [ (key, ref [ k ]) ])
        (List.init n Fun.id);
      List.map (fun (_, cell) -> List.rev !cell) !buckets
  in
  let phase = if List.length groups > 1 then Split else Global in
  { epoch = 0; phase; groups; live; since = t }

let same_topo a b =
  a.phase = b.phase && a.groups = b.groups && a.live = b.live

let of_plan ~n plan =
  let splits, crashes = windows ~n plan in
  let bounds =
    List.concat_map (fun w -> [ w.w_from; w.w_until ]) splits
    @ List.concat_map (fun c -> [ c.c_from; c.c_until ]) crashes
    |> List.filter (fun t -> t > 0)
    |> List.sort_uniq compare
  in
  let raw = List.map (topo_of ~n ~splits ~crashes) (0 :: bounds) in
  let merged =
    List.fold_left
      (fun acc t ->
        match acc with
        | prev :: _ when same_topo prev t -> acc
        | _ -> t :: acc)
      [] raw
    |> List.rev
    |> List.mapi (fun i t -> { t with epoch = i })
  in
  { segs = Array.of_list merged }

let trivial ~n = of_plan ~n []
let nontrivial tl = Array.length tl.segs > 1
let epochs tl = Array.to_list tl.segs

let at tl t =
  (* greatest epoch with [since <= t]; epoch 0 for earlier times *)
  let segs = tl.segs in
  let rec go lo hi =
    (* invariant: segs.(lo).since <= t (or lo = 0), segs above hi are > t *)
    if lo >= hi then segs.(lo)
    else
      let mid = (lo + hi + 1) / 2 in
      if segs.(mid).since <= t then go mid hi else go lo (mid - 1)
  in
  go 0 (Array.length segs - 1)

let group_of topo k = group_index topo.groups k

let group_members topo k =
  match group_of topo k with
  | -1 -> []
  | i -> List.nth topo.groups i

let same_group topo j k =
  let gj = group_of topo j in
  gj >= 0 && gj = group_of topo k

type cursor = { tl : timeline; mutable idx : int }

let cursor tl = { tl; idx = 0 }

let advance c t =
  let segs = c.tl.segs in
  let len = Array.length segs in
  while c.idx + 1 < len && segs.(c.idx + 1).since <= t do
    c.idx <- c.idx + 1
  done;
  segs.(c.idx)

let groups_label topo =
  String.concat "|"
    (List.map
       (fun g ->
         "{" ^ String.concat "," (List.map string_of_int g) ^ "}")
       topo.groups)

let pp_topo ppf topo =
  let phase = match topo.phase with Global -> "global" | Split -> "split" in
  let dead =
    Array.to_list topo.live
    |> List.mapi (fun i l -> if l then None else Some (string_of_int i))
    |> List.filter_map Fun.id
  in
  Format.fprintf ppf "epoch %d: %s %s since %d%s" topo.epoch phase
    (groups_label topo) topo.since
    (if dead = [] then "" else " dead:" ^ String.concat "," dead)
