type t = {
  mutable sent : int;
  mutable delivered : int;
  mutable internal_steps : int;
  mutable stutters : int;
  mutable faults : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable reordered : int;
  mutable flushed : int;
  mutable crashes : int;
  by_label : (string, int ref) Hashtbl.t;
      (* counters are cells so the hot path is one lookup, no
         re-insertion *)
}

let create () =
  { sent = 0;
    delivered = 0;
    internal_steps = 0;
    stutters = 0;
    faults = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
    reordered = 0;
    flushed = 0;
    crashes = 0;
    by_label = Hashtbl.create 16 }

let reset t =
  t.sent <- 0;
  t.delivered <- 0;
  t.internal_steps <- 0;
  t.stutters <- 0;
  t.faults <- 0;
  t.dropped <- 0;
  t.duplicated <- 0;
  t.corrupted <- 0;
  t.reordered <- 0;
  t.flushed <- 0;
  t.crashes <- 0;
  Hashtbl.reset t.by_label

let note_send t ~label =
  t.sent <- t.sent + 1;
  match Hashtbl.find t.by_label label with
  | r -> incr r
  | exception Not_found -> Hashtbl.add t.by_label label (ref 1)

let note_delivery t = t.delivered <- t.delivered + 1
let note_internal t = t.internal_steps <- t.internal_steps + 1
let note_stutter t = t.stutters <- t.stutters + 1
let note_fault t = t.faults <- t.faults + 1
let note_dropped t k = t.dropped <- t.dropped + k
let note_duplicated t k = t.duplicated <- t.duplicated + k
let note_corrupted t k = t.corrupted <- t.corrupted + k
let note_reordered t k = t.reordered <- t.reordered + k
let note_flushed t k = t.flushed <- t.flushed + k
let note_crashed t = t.crashes <- t.crashes + 1

let sent t = t.sent
let delivered t = t.delivered
let internal_steps t = t.internal_steps
let stutters t = t.stutters
let faults t = t.faults
let dropped t = t.dropped
let duplicated t = t.duplicated
let corrupted t = t.corrupted
let reordered t = t.reordered
let flushed t = t.flushed
let crashes t = t.crashes

let sends_with_label t label =
  match Hashtbl.find_opt t.by_label label with Some r -> !r | None -> 0

let labels t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.by_label []
  |> List.sort compare

let sends_matching t p =
  List.fold_left (fun acc (l, c) -> if p l then acc + c else acc) 0 (labels t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>sent=%d delivered=%d internal=%d stutters=%d@,\
     faults=%d dropped=%d duplicated=%d corrupted=%d reordered=%d flushed=%d \
     crashes=%d@,\
     sends by label: %a@]"
    t.sent t.delivered t.internal_steps t.stutters t.faults t.dropped
    t.duplicated t.corrupted t.reordered t.flushed t.crashes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (l, c) -> Format.fprintf ppf "%s=%d" l c))
    (labels t)
