type chan_selector =
  | Any_chan
  | Chan of Pid.t * Pid.t
  | From of Pid.t
  | Into of Pid.t

type proc_selector = Any_proc | Proc of Pid.t

type ('s, 'm) kind =
  | Drop of { chan : chan_selector; count : int; only : ('m -> bool) option }
  | Duplicate of { chan : chan_selector; count : int }
  | Corrupt_messages of
      { chan : chan_selector; count : int; f : Stdext.Rng.t -> 'm -> 'm }
  | Reorder of { chan : chan_selector; count : int }
  | Flush of chan_selector
  | Mutate_state of { proc : proc_selector; f : Stdext.Rng.t -> 's -> 's }
  | Reset_state of { proc : proc_selector; f : Pid.t -> 's }
  | Crash of { proc : proc_selector; until_t : int; lose_deliveries : bool }

type ('s, 'm) event = { at : int; kind : ('s, 'm) kind }

type ('s, 'm) plan = ('s, 'm) event list

let label = function
  | Drop _ -> "drop"
  | Duplicate _ -> "duplicate"
  | Corrupt_messages _ -> "corrupt-msg"
  | Reorder _ -> "reorder"
  | Flush _ -> "flush"
  | Mutate_state _ -> "mutate-state"
  | Reset_state _ -> "reset-state"
  | Crash _ -> "crash"

let at time kind = { at = time; kind }

let due plan t =
  let fired, rest = List.partition (fun e -> e.at <= t) plan in
  (List.map (fun e -> e.kind) fired, rest)

let last_time = function
  | [] -> -1
  | plan -> List.fold_left (fun acc e -> max acc e.at) min_int plan

let select_chans ~n = function
  | Chan (src, dst) -> [ (src, dst) ]
  | Any_chan ->
    List.concat_map
      (fun src -> List.map (fun dst -> (src, dst)) (Pid.others ~self:src ~n))
      (Pid.range n)
  | From src -> List.map (fun dst -> (src, dst)) (Pid.others ~self:src ~n)
  | Into dst -> List.map (fun src -> (src, dst)) (Pid.others ~self:dst ~n)

let select_procs ~n = function
  | Any_proc -> Pid.range n
  | Proc p -> [ p ]
