type chan_selector =
  | Any_chan
  | Chan of Pid.t * Pid.t
  | From of Pid.t
  | Into of Pid.t

type proc_selector = Any_proc | Proc of Pid.t

type heal_mode = Lossy | Buffered

type delay_dist =
  | Fixed of int
  | Uniform of int * int
  | Heavy_tail of { mean : int; cap : int }

type ('s, 'm) kind =
  | Drop of { chan : chan_selector; count : int; only : ('m -> bool) option }
  | Duplicate of { chan : chan_selector; count : int }
  | Corrupt_messages of
      { chan : chan_selector; count : int; f : Stdext.Rng.t -> 'm -> 'm }
  | Reorder of { chan : chan_selector; count : int }
  | Flush of chan_selector
  | Mutate_state of { proc : proc_selector; f : Stdext.Rng.t -> 's -> 's }
  | Reset_state of { proc : proc_selector; f : Pid.t -> 's }
  | Crash of { proc : proc_selector; until_t : int; lose_deliveries : bool }
  | Split of
      { groups : Pid.t list list;
        from_t : int;
        until_t : int;
        mode : heal_mode }
  | Delay of { chan : chan_selector; dist : delay_dist }
  | Heal

type ('s, 'm) event = { at : int; kind : ('s, 'm) kind }

type ('s, 'm) plan = ('s, 'm) event list

let label = function
  | Drop _ -> "drop"
  | Duplicate _ -> "duplicate"
  | Corrupt_messages _ -> "corrupt-msg"
  | Reorder _ -> "reorder"
  | Flush _ -> "flush"
  | Mutate_state _ -> "mutate-state"
  | Reset_state _ -> "reset-state"
  | Crash _ -> "crash"
  | Split _ -> "split"
  | Delay _ -> "delay"
  | Heal -> "heal"

let at time kind = { at = time; kind }

let due plan t =
  let fired, rest = List.partition (fun e -> e.at <= t) plan in
  (List.map (fun e -> e.kind) fired, rest)

let last_time = function
  | [] -> -1
  | plan -> List.fold_left (fun acc e -> max acc e.at) min_int plan

let select_chans ~n = function
  | Chan (src, dst) -> [ (src, dst) ]
  | Any_chan ->
    List.concat_map
      (fun src -> List.map (fun dst -> (src, dst)) (Pid.others ~self:src ~n))
      (Pid.range n)
  | From src -> List.map (fun dst -> (src, dst)) (Pid.others ~self:src ~n)
  | Into dst -> List.map (fun src -> (src, dst)) (Pid.others ~self:dst ~n)

let select_procs ~n = function
  | Any_proc -> Pid.range n
  | Proc p -> [ p ]

(* Pids not named by any group form one implicit remainder group, so a
   two-sided partition can be written as a single group. *)
let split_groups ~n groups =
  let groups =
    List.filter_map
      (fun g ->
        match List.filter (fun p -> p >= 0 && p < n) g with
        | [] -> None
        | g -> Some g)
      groups
  in
  let listed = List.concat groups in
  match List.filter (fun p -> not (List.mem p listed)) (Pid.range n) with
  | [] -> groups
  | remainder -> groups @ [ remainder ]

let cross_pairs ~n groups =
  let gid = Array.make n (-1) in
  List.iteri
    (fun i g -> List.iter (fun p -> gid.(p) <- i) g)
    (split_groups ~n groups);
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if gid.(src) <> gid.(dst) then Some (src, dst) else None)
        (Pid.others ~self:src ~n))
    (Pid.range n)

let draw_delay dist rng =
  match dist with
  | Fixed d -> max 0 d
  | Uniform (lo, hi) ->
    let lo = max 0 lo in
    Stdext.Rng.int_in rng lo (max lo hi)
  | Heavy_tail { mean; cap } ->
    (* inverse-transform exponential with the given mean, truncated at
       [cap]: most messages see a short delay, a few see a long one *)
    let mean = float_of_int (max 1 mean) in
    let u = Stdext.Rng.float rng 1.0 in
    min (max 0 cap) (int_of_float (-.mean *. log (1.0 -. u)))
