(** Execution traces: the finite computations over which the UNITY
    monitors check the paper's specifications.

    A trace is a chronological list of snapshots.  Snapshot [i]'s
    [states]/[channels] describe the global state {e after} the
    snapshot's [event] executed, so consecutive snapshots are exactly
    the state pairs quantified over by [unless]-style properties. *)

type ('s, 'm) event =
  | Init  (** the pseudo-event preceding the first real step *)
  | Deliver of { src : Pid.t; dst : Pid.t; msg : 'm }
  | Internal of { pid : Pid.t; label : string }
  | Fault of { label : string }
  | Stutter  (** no enabled move: global quiescence (or deadlock) *)

type ('s, 'm) snapshot = {
  time : int;
  event : ('s, 'm) event;
  states : 's array;
  channels : (Pid.t * Pid.t * 'm list) list Lazy.t;
      (** materialized on first access: the engine's channel matrix is
          a persistent structure, so recording a snapshot is O(1) and
          the per-channel lists are built only for analyses that read
          them (memoized thereafter) *)
}

type ('s, 'm) t = ('s, 'm) snapshot list

val channels : ('s, 'm) snapshot -> (Pid.t * Pid.t * 'm list) list
(** [channels snap] forces and returns the nonempty-channel contents,
    in (src, dst) lexicographic order. *)

val map_states : ('s -> 'v) -> ('s, 'm) t -> ('v, 'm) t
(** [map_states f tr] maps every process state, e.g. projecting
    implementation states to graybox views. *)

val map_msgs : ('m -> 'p) -> ('s, 'm) t -> ('s, 'p) t
(** [map_msgs f tr] maps every message in events and channel snapshots,
    e.g. stripping oracle metadata from envelopes. *)

val states_seq : ('s, 'm) t -> 's array list
(** [states_seq tr] is the bare global-state sequence. *)

val length : ('s, 'm) t -> int

val nth : ('s, 'm) t -> int -> ('s, 'm) snapshot

val events : ('s, 'm) t -> ('s, 'm) event list

val last_fault_index : ('s, 'm) t -> int option
(** [last_fault_index tr] is the index of the last [Fault] snapshot,
    if any — stabilization is judged on the suffix after it. *)

val suffix_from : ('s, 'm) t -> int -> ('s, 'm) t
(** [suffix_from tr i] drops the first [i] snapshots. *)

val pp_event :
  msg:(Format.formatter -> 'm -> unit) ->
  Format.formatter -> ('s, 'm) event -> unit
