type ('s, 'm) step = {
  time : int;
  event : ('s, 'm) Trace.event;
  states : 's array;
}

type ('s, 'm, 'a) t = {
  value : 'a;
  on_step : ('s, 'm) step -> ('s, 'm, 'a) t;
}

let value o = o.value

let observe o step = o.on_step step

let rec fold ~init ~f =
  { value = init; on_step = (fun s -> fold ~init:(f init s) ~f) }

let rec map g o =
  { value = g o.value; on_step = (fun s -> map g (o.on_step s)) }

let rec pair a b =
  { value = (a.value, b.value);
    on_step = (fun s -> pair (a.on_step s) (b.on_step s)) }

let rec premap g o = { value = o.value; on_step = (fun s -> premap g (o.on_step (g s))) }

let feed_all o steps = List.fold_left observe o steps

let run o steps = value (feed_all o steps)

let of_snapshot (snap : ('s, 'm) Trace.snapshot) =
  { time = snap.Trace.time; event = snap.Trace.event; states = snap.Trace.states }

type ('s, 'm) sink = ('s, 'm) step -> unit

let sink o =
  let cur = ref o in
  let feed s = cur := observe !cur s in
  let peek () = value !cur in
  (feed, peek)
