open Stdext

module type NODE = sig
  type state
  type msg

  val receive :
    self:Pid.t -> from:Pid.t -> msg -> state -> state * (Pid.t * msg) list

  val actions :
    self:Pid.t -> state -> (string * (state -> state * (Pid.t * msg) list)) list
end

module Make (N : NODE) = struct
  type policy = Weighted_random | Round_robin

  type config = {
    n : int;
    seed : int;
    deliver_weight : int;
    internal_weight : int;
    policy : policy;
    record : bool;
    indexed : bool;
  }

  let config ?(deliver_weight = 2) ?(internal_weight = 1)
      ?(policy = Weighted_random) ?(record = true) ?(indexed = true) ~n ~seed
      () =
    if n <= 0 then invalid_arg "Engine.config: need n > 0";
    { n; seed; deliver_weight; internal_weight; policy; record; indexed }

  type t = {
    cfg : config;
    sched_rng : Rng.t;
    fault_rng : Rng.t;
    mutable time : int;
    mutable states : N.state array;
    mutable net : N.msg Network.t;
    crash_until : int array;
        (* per-process recovery time; crashed iff [crash_until.(p) > time] *)
    crash_lose : bool array;
        (* while crashed, lose (rather than buffer) inbound deliveries *)
    acts : (string * (N.state -> N.state * (Pid.t * N.msg) list)) list array;
        (* per-process enabled actions.  [N.actions] is a pure function
           of (self, state) — every node implementation computes its
           action list from the state alone — so the list is cached
           across steps and recomputed only when the process's state or
           crash status changed ([acts_dirty]). *)
    acts_dirty : bool array;
    dirty : int Vec.t;
        (* indexed mode: the processes with [acts_dirty] set since the
           last refresh, so the refresh touches only them instead of
           scanning all n.  Invariant: [acts_dirty.(p)] iff [p] is in
           [dirty] (exactly once) — [mark_dirty] pushes on the
           false-to-true flip only. *)
    act_counts : Fenwick.t;
        (* indexed mode: per-process enabled-action counts, kept in
           lockstep with [acts] — the internal-move half of the
           weighted draw is [total] + [select] instead of a scan *)
    crashed_now : bool array;
        (* crash status at the last refresh; [crashed] depends on
           [time], so a flip must dirty the cache even though no state
           write happened.  Indexed mode maintains it eagerly (at fault
           injection and at recovery detection). *)
    mutable crashed_pids : int list;
        (* indexed mode: the processes currently inside a crash window
           (those with [crashed_now] set), so crash bookkeeping costs
           O(crashed), not O(n) — and nothing once every window has
           elapsed *)
    deliv : int array;
        (* scan-mode scratch (empty when [cfg.indexed]): channel
           indices (src * n + dst) of the deliverable messages found by
           [refresh_moves], so the chosen delivery is an array lookup
           rather than a second fold *)
    mutable crash_faults_seen : bool;
        (* no Crash fault has ever been applied: every live channel is
           deliverable, so the per-step crash bookkeeping (the
           crash-effects scan and the deliverable-channel filter) can
           be skipped entirely *)
    delay_dists : (int, Faults.delay_dist) Hashtbl.t;
        (* per-channel (src * n + dst) delivery-delay distribution,
           installed by Delay faults; absent means deliver immediately *)
    mutable net_faults_seen : bool;
        (* no Split/Delay fault has ever been applied: sends need no
           link-status check or delay draw, and the per-step
           [Network.advance] can be skipped — the network clock stays
           at 0 and the staging layer is invisible *)
    mutable rev_trace : (N.state, N.msg) Trace.snapshot list;
    observers : (N.state, N.msg) Observer.sink Vec.t;
        (* notified (in registration order) at exactly the points a
           snapshot is recorded, so the step stream equals the trace *)
    metrics : Metrics.t;
  }

  (* The network is persistent, so a snapshot just captures the current
     version; the channel lists materialize lazily if an analysis reads
     them.  Recording is therefore O(n) (the states copy) per step
     instead of O(channels). *)
  let record t event =
    if t.cfg.record then begin
      let net = t.net in
      t.rev_trace <-
        { Trace.time = t.time;
          event;
          states = Array.copy t.states;
          channels = lazy (Network.snapshot net) }
        :: t.rev_trace
    end

  (* Observers get the live states array — no copy.  [Observer.step]
     documents that it must not be retained across steps. *)
  let notify t event =
    if Vec.length t.observers > 0 then begin
      let step = { Observer.time = t.time; event; states = t.states } in
      Vec.iter (fun f -> f step) t.observers
    end

  let create cfg ~init =
    let master = Rng.create cfg.seed in
    let t =
      { cfg;
        sched_rng = Rng.split master;
        fault_rng = Rng.split master;
        time = 0;
        states = Array.init cfg.n init;
        net = Network.create ~n:cfg.n;
        crash_until = Array.make cfg.n 0;
        crash_lose = Array.make cfg.n false;
        acts = Array.make cfg.n [];
        acts_dirty = Array.make cfg.n true;
        dirty = Vec.create ();
        act_counts = Fenwick.create cfg.n;
        crashed_now = Array.make cfg.n false;
        crashed_pids = [];
        deliv = Array.make (if cfg.indexed then 0 else cfg.n * cfg.n) 0;
        crash_faults_seen = false;
        delay_dists = Hashtbl.create 7;
        net_faults_seen = false;
        rev_trace = [];
        observers = Vec.create ();
        metrics = Metrics.create () }
    in
    if cfg.indexed then
      for p = 0 to cfg.n - 1 do
        Vec.push t.dirty p
      done;
    record t Trace.Init;
    t

  let time t = t.time
  let n_processes t = t.cfg.n
  let state t p = t.states.(p)
  let states t = Array.copy t.states
  let network t = t.net
  let metrics t = t.metrics
  let trace t = List.rev t.rev_trace

  (* The false-to-true flip is the only push, so [dirty] never holds a
     process twice and the indexed refresh touches each at most once. *)
  let mark_dirty t p =
    if not t.acts_dirty.(p) then begin
      t.acts_dirty.(p) <- true;
      if t.cfg.indexed then Vec.push t.dirty p
    end

  let set_state t p s =
    t.states.(p) <- s;
    mark_dirty t p
  let set_network t net = t.net <- net
  let crashed t p = t.crash_until.(p) > t.time

  (* An observer joins by seeing the current state as its Init step —
     attached right after [create] (the normal case) that is exactly
     the recorded Init snapshot. *)
  let add_observer t f =
    Vec.push t.observers f;
    f { Observer.time = t.time; event = Trace.Init; states = t.states }

  let observe t o =
    let feed, peek = Observer.sink o in
    add_observer t feed;
    peek

  (* Indexed mode: drop the processes whose crash window has elapsed
     from [crashed_pids], retiring their lose flag (so a later
     buffer-mode crash is not contaminated) and dirtying their action
     cache — the same transitions the scan path discovers by comparing
     [crashed] against [crashed_now] across all n. *)
  let sync_recoveries t =
    match t.crashed_pids with
    | [] -> ()
    | ps ->
      t.crashed_pids <-
        List.filter
          (fun p ->
            if t.crash_until.(p) > t.time then true
            else begin
              t.crashed_now.(p) <- false;
              t.crash_lose.(p) <- false;
              mark_dirty t p;
              false
            end)
          ps

  (* While a lose-mode crash lasts, anything queued toward the dead
     process is lost; once a window elapses the lose flag is retired so
     a later buffer-mode crash of the same process is not contaminated.
     The drain enumerates only the nonempty inbound channels (via the
     network's destination shard), skipping the unused self-channel
     like the scan path's [Pid.others] walk. *)
  let drain_inbound t p =
    if t.crash_lose.(p) then begin
      let srcs =
        Network.fold_inbound_nonempty
          (fun acc ~src -> if src = p then acc else src :: acc)
          [] t.net ~dst:p
      in
      let lost = ref 0 in
      List.iter
        (fun src ->
          lost := !lost + Network.channel_length t.net ~src ~dst:p;
          t.net <- Network.flush_channel t.net ~src ~dst:p)
        srcs;
      if !lost > 0 then Metrics.note_dropped t.metrics !lost
    end

  let apply_crash_effects t =
    if t.cfg.indexed then begin
      sync_recoveries t;
      List.iter (fun p -> drain_inbound t p) t.crashed_pids
    end
    else if t.crash_faults_seen then
      Array.iteri
        (fun p until ->
          if until > t.time then drain_inbound t p
          else t.crash_lose.(p) <- false)
        t.crash_until

  let dispatch t ~src ~label outbox =
    if not t.net_faults_seen then
      List.iter
        (fun (dst, m) ->
          Metrics.note_send t.metrics ~label;
          t.net <- Network.send t.net ~src ~dst m)
        outbox
    else
      List.iter
        (fun (dst, m) ->
          Metrics.note_send t.metrics ~label;
          match Network.link_status t.net ~src ~dst with
          | `Lossy _ ->
            (* severed link: the message is lost at the sender *)
            Metrics.note_dropped t.metrics 1
          | `Open | `Buffered _ ->
            (* a buffered partition is handled inside [Network.send]
               (readiness deferred to the heal); link delays compose
               on top of it *)
            let delay =
              match Hashtbl.find_opt t.delay_dists ((src * t.cfg.n) + dst) with
              | None -> None
              | Some dist -> Some (Faults.draw_delay dist t.fault_rng)
            in
            t.net <- Network.send ?delay t.net ~src ~dst m)
        outbox

  (* Move selection without materializing the move list.  The virtual
     move sequence is: every nonempty channel with a live destination
     (in (src, dst) order), then every enabled internal action
     (ascending pid, each process's actions in list order) — exactly
     the [deliveries @ internals] list earlier versions built per
     step.  A move is addressed by its position in that sequence, and
     the weighted draw consumes the RNG exactly as [Rng.pick_weighted]
     did on the materialized list, so schedules are seed-for-seed
     unchanged.

     Two implementations address that sequence.  The scan refresh
     recounts all n processes (and, after a crash, all live channels)
     every step.  The indexed refresh recounts only the dirtied
     processes into the Fenwick tree and reads both totals in O(1) /
     O(crashed); selection is then a Fenwick [select] or an [Oset]
     [nth] — O(log n) a step instead of O(n).  Both count the same
     moves in the same order, so the draw below is mode-blind. *)
  let refresh_scan t =
    let d =
      if not t.crash_faults_seen then
        (* no crashes ever: every live channel is deliverable, and the
           scratch index is not needed ([nth_delivery] walks the live
           set directly) *)
        Network.live_count t.net
      else begin
        let d = ref 0 in
        Network.fold_nonempty
          (fun () ~src ~dst ->
            if not (crashed t dst) then begin
              t.deliv.(!d) <- (src * t.cfg.n) + dst;
              incr d
            end)
          () t.net;
        !d
      end
    in
    let i = ref 0 in
    for p = 0 to t.cfg.n - 1 do
      let c = crashed t p in
      if c <> t.crashed_now.(p) then begin
        t.crashed_now.(p) <- c;
        t.acts_dirty.(p) <- true
      end;
      if t.acts_dirty.(p) then begin
        t.acts.(p) <- (if c then [] else N.actions ~self:p t.states.(p));
        t.acts_dirty.(p) <- false
      end;
      i := !i + List.length t.acts.(p)
    done;
    (d, !i)

  let refresh_indexed t =
    sync_recoveries t;
    Vec.iter
      (fun p ->
        let acts =
          if t.crashed_now.(p) then [] else N.actions ~self:p t.states.(p)
        in
        t.acts.(p) <- acts;
        Fenwick.set t.act_counts p (List.length acts);
        t.acts_dirty.(p) <- false)
      t.dirty;
    Vec.clear t.dirty;
    let d =
      (* crashed destinations' inbound shards are whole contiguous key
         ranges of the live set, so subtracting their counts equals the
         scan path's per-channel deliverability filter *)
      List.fold_left
        (fun d p -> d - Network.live_into t.net ~dst:p)
        (Network.live_count t.net)
        t.crashed_pids
    in
    (d, Fenwick.total t.act_counts)

  let refresh_moves t =
    if t.cfg.indexed then refresh_indexed t else refresh_scan t

  exception Nth_chan of Pid.t * Pid.t

  (* The k-th deliverable channel in (src, dst) order.  With no crash
     window active every live channel qualifies: indexed mode selects
     it in O(log n), scan mode walks to it (once per step, only for
     the chosen move).  While a crash is active, both modes skip the
     crashed destinations — the scan path from its scratch index, the
     indexed path by walking the live set (crash windows are a
     small-n chaos concern; the walk lasts only as long as they do). *)
  let nth_live_walk t ~skip_crashed k =
    let k = ref k in
    try
      Network.fold_nonempty
        (fun () ~src ~dst ->
          if skip_crashed && t.crashed_now.(dst) then ()
          else if !k = 0 then raise (Nth_chan (src, dst))
          else decr k)
        () t.net;
      assert false (* k < deliverable count *)
    with Nth_chan (src, dst) -> (src, dst)

  let nth_delivery t k =
    if t.cfg.indexed then
      if t.crashed_pids = [] then Network.nth_live t.net k
      else nth_live_walk t ~skip_crashed:true k
    else if t.crash_faults_seen then begin
      let i = t.deliv.(k) in
      (i / t.cfg.n, i mod t.cfg.n)
    end
    else nth_live_walk t ~skip_crashed:false k

  let nth_internal t k =
    if t.cfg.indexed then begin
      let p = Fenwick.select t.act_counts k in
      (p, List.nth t.acts.(p) (k - Fenwick.prefix t.act_counts p))
    end
    else
      let rec go p k =
        let len = List.length t.acts.(p) in
        if k < len then (p, List.nth t.acts.(p) k) else go (p + 1) (k - len)
      in
      go 0 k

  let step t =
    if t.net_faults_seen then t.net <- Network.advance t.net ~now:t.time;
    apply_crash_effects t;
    let d, i = refresh_moves t in
    let event : (N.state, N.msg) Trace.event =
      if d + i = 0 then begin
        Metrics.note_stutter t.metrics;
        Trace.Stutter
      end
      else begin
        let chosen =
          match t.cfg.policy with
          | Weighted_random ->
            (* nonpositive weights are excluded from the total and can
               never be drawn — [pick_weighted]'s skip rule *)
            let dw = max 0 t.cfg.deliver_weight in
            let iw = max 0 t.cfg.internal_weight in
            let total = (dw * d) + (iw * i) in
            if total <= 0 then
              invalid_arg "Rng.pick_weighted: no positive weight";
            let stop = Rng.int t.sched_rng total in
            if stop < dw * d then `Deliver (stop / dw)
            else `Internal ((stop - (dw * d)) / iw)
          | Round_robin ->
            let idx = t.time mod (d + i) in
            if idx < d then `Deliver idx else `Internal (idx - d)
        in
        match chosen with
        | `Deliver k ->
          let src, dst = nth_delivery t k in
          (match Network.deliver t.net ~src ~dst with
           | None -> Trace.Stutter (* cannot happen: channel was nonempty *)
           | Some (msg, net) ->
             t.net <- net;
             Metrics.note_delivery t.metrics;
             let state', outbox =
               N.receive ~self:dst ~from:src msg t.states.(dst)
             in
             t.states.(dst) <- state';
             mark_dirty t dst;
             dispatch t ~src:dst ~label:"deliver" outbox;
             Trace.Deliver { src; dst; msg })
        | `Internal k ->
          let p, (label, f) = nth_internal t k in
          Metrics.note_internal t.metrics;
          let state', outbox = f t.states.(p) in
          t.states.(p) <- state';
          mark_dirty t p;
          dispatch t ~src:p ~label outbox;
          Trace.Internal { pid = p; label }
      end
    in
    t.time <- t.time + 1;
    record t event;
    notify t event;
    event

  (* Positions (front-first) of messages in a channel matching [only]. *)
  let matching_positions t ~src ~dst only =
    let msgs = Network.contents t.net ~src ~dst in
    List.mapi (fun i m -> (i, m)) msgs
    |> List.filter_map (fun (i, m) ->
           match only with
           | None -> Some i
           | Some p -> if p m then Some i else None)

  let apply_chan_fault t ~chan ~count ~only ~note ~(f : src:Pid.t -> dst:Pid.t -> pos:int -> unit) =
    let applied = ref 0 in
    List.iter
      (fun (src, dst) ->
        let remaining = ref count in
        while
          !remaining > 0
          &&
          match matching_positions t ~src ~dst only with
          | [] -> false
          | positions ->
            let pos = Rng.pick t.fault_rng positions in
            f ~src ~dst ~pos;
            incr applied;
            decr remaining;
            true
        do
          ()
        done)
      (Faults.select_chans ~n:t.cfg.n chan);
    note t.metrics !applied

  let apply_fault t kind =
    (match (kind : (N.state, N.msg) Faults.kind) with
     | Drop { chan; count; only } ->
       apply_chan_fault t ~chan ~count ~only ~note:Metrics.note_dropped
         ~f:(fun ~src ~dst ~pos -> t.net <- Network.drop_at t.net ~src ~dst ~pos)
     | Duplicate { chan; count } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_duplicated
         ~f:(fun ~src ~dst ~pos ->
           t.net <- Network.duplicate_at t.net ~src ~dst ~pos)
     | Corrupt_messages { chan; count; f } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_corrupted
         ~f:(fun ~src ~dst ~pos ->
           t.net <-
             Network.corrupt_at t.net ~src ~dst ~pos ~f:(f t.fault_rng))
     | Reorder { chan; count } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_reordered
         ~f:(fun ~src ~dst ~pos ->
           t.net <- Network.reorder_at t.net ~src ~dst ~pos)
     | Flush chan ->
       let flushed = ref 0 in
       List.iter
         (fun (src, dst) ->
           flushed := !flushed + Network.channel_length t.net ~src ~dst;
           t.net <- Network.flush_channel t.net ~src ~dst)
         (Faults.select_chans ~n:t.cfg.n chan);
       Metrics.note_flushed t.metrics !flushed
     | Mutate_state { proc; f } ->
       List.iter
         (fun p ->
           t.states.(p) <- f t.fault_rng t.states.(p);
           mark_dirty t p)
         (Faults.select_procs ~n:t.cfg.n proc)
     | Reset_state { proc; f } ->
       List.iter
         (fun p ->
           t.states.(p) <- f p;
           mark_dirty t p)
         (Faults.select_procs ~n:t.cfg.n proc)
     | Crash { proc; until_t; lose_deliveries } ->
       t.crash_faults_seen <- true;
       List.iter
         (fun p ->
           if until_t > t.time then begin
             t.crash_until.(p) <- max t.crash_until.(p) until_t;
             t.crash_lose.(p) <- t.crash_lose.(p) || lose_deliveries;
             (* indexed mode tracks the crash flip here rather than by
                rescanning at refresh; the scan path discovers it from
                [crash_until] alone, so [crashed_now] must stay
                untouched for it *)
             if t.cfg.indexed && not t.crashed_now.(p) then begin
               t.crashed_now.(p) <- true;
               t.crashed_pids <- p :: t.crashed_pids;
               mark_dirty t p
             end;
             Metrics.note_crashed t.metrics
           end)
         (Faults.select_procs ~n:t.cfg.n proc)
     | Split { groups; from_t = _; until_t; mode } ->
       t.net_faults_seen <- true;
       t.net <- Network.advance t.net ~now:t.time;
       let mode =
         match mode with Faults.Lossy -> `Lossy | Faults.Buffered -> `Buffered
       in
       let net, lost =
         Network.apply_split t.net ~until:until_t ~mode
           ~pairs:(Faults.cross_pairs ~n:t.cfg.n groups)
       in
       t.net <- net;
       if lost > 0 then Metrics.note_dropped t.metrics lost
     | Delay { chan; dist } ->
       t.net_faults_seen <- true;
       t.net <- Network.advance t.net ~now:t.time;
       List.iter
         (fun (src, dst) ->
           Hashtbl.replace t.delay_dists ((src * t.cfg.n) + dst) dist)
         (Faults.select_chans ~n:t.cfg.n chan)
     | Heal ->
       (* a marker, not a mechanism: the heal itself is the partition
          mask expiring inside the network.  Recording the Fault event
          here re-bases recovery-latency measurement at the heal. *)
       ());
    Metrics.note_fault t.metrics;
    let event = Trace.Fault { label = Faults.label kind } in
    record t event;
    notify t event

  (* Duplicate-fault caveat: [duplicate_at] grows the matching set, so
     the loop above must not re-match the copy; [only:None] with
     [count] bounds the iterations, which keeps it finite. *)

  (* Permanent quiescence: no enabled move, and no process inside a
     crash window.  Actions and deliverability are pure functions of
     (states, network, crash status), and with every [crash_until] in
     the past the crash status can never change again, so a quiescent
     engine stutters forever — the one early-exit condition that
     preserves the rest of the run exactly. *)
  let quiescent t =
    (if t.cfg.indexed then begin
       sync_recoveries t;
       t.crashed_pids = []
     end
     else not (Array.exists (fun until -> until > t.time) t.crash_until))
    && begin
      (* staged messages become deliverable at a later step, so they
         are pending moves even though no channel is live yet *)
      if t.net_faults_seen then begin
        t.net <- Network.advance t.net ~now:t.time;
        Network.waiting_count t.net = 0
      end
      else true
    end
    &&
    let d, i = refresh_moves t in
    d + i = 0

  let run ?(plan = []) ~steps t =
    let plan = ref plan in
    for _ = 1 to steps do
      let fired, rest = Faults.due !plan t.time in
      plan := rest;
      List.iter (apply_fault t) fired;
      ignore (step t)
    done

  let run_until ?(plan = []) ~max_steps ~stop t =
    let plan = ref plan in
    let rec go remaining =
      if remaining <= 0 then None
      else begin
        let fired, rest = Faults.due !plan t.time in
        plan := rest;
        List.iter (apply_fault t) fired;
        if !plan = [] && stop t then Some t.time
        else begin
          ignore (step t);
          go (remaining - 1)
        end
      end
    in
    go max_steps
end
