open Stdext

module type NODE = sig
  type state
  type msg

  val receive :
    self:Pid.t -> from:Pid.t -> msg -> state -> state * (Pid.t * msg) list

  val actions :
    self:Pid.t -> state -> (string * (state -> state * (Pid.t * msg) list)) list
end

module Make (N : NODE) = struct
  type policy = Weighted_random | Round_robin

  type config = {
    n : int;
    seed : int;
    deliver_weight : int;
    internal_weight : int;
    policy : policy;
    record : bool;
  }

  let config ?(deliver_weight = 2) ?(internal_weight = 1)
      ?(policy = Weighted_random) ?(record = true) ~n ~seed () =
    if n <= 0 then invalid_arg "Engine.config: need n > 0";
    { n; seed; deliver_weight; internal_weight; policy; record }

  type t = {
    cfg : config;
    sched_rng : Rng.t;
    fault_rng : Rng.t;
    mutable time : int;
    mutable states : N.state array;
    mutable net : N.msg Network.t;
    crash_until : int array;
        (* per-process recovery time; crashed iff [crash_until.(p) > time] *)
    crash_lose : bool array;
        (* while crashed, lose (rather than buffer) inbound deliveries *)
    mutable rev_trace : (N.state, N.msg) Trace.snapshot list;
    metrics : Metrics.t;
  }

  let record t event =
    if t.cfg.record then
      t.rev_trace <-
        { Trace.time = t.time;
          event;
          states = Array.copy t.states;
          channels = Network.snapshot t.net }
        :: t.rev_trace

  let create cfg ~init =
    let master = Rng.create cfg.seed in
    let t =
      { cfg;
        sched_rng = Rng.split master;
        fault_rng = Rng.split master;
        time = 0;
        states = Array.init cfg.n init;
        net = Network.create ~n:cfg.n;
        crash_until = Array.make cfg.n 0;
        crash_lose = Array.make cfg.n false;
        rev_trace = [];
        metrics = Metrics.create () }
    in
    record t Trace.Init;
    t

  let time t = t.time
  let n_processes t = t.cfg.n
  let state t p = t.states.(p)
  let states t = Array.copy t.states
  let network t = t.net
  let metrics t = t.metrics
  let trace t = List.rev t.rev_trace

  let set_state t p s = t.states.(p) <- s
  let set_network t net = t.net <- net
  let crashed t p = t.crash_until.(p) > t.time

  (* While a lose-mode crash lasts, anything queued toward the dead
     process is lost; once a window elapses the lose flag is retired so
     a later buffer-mode crash of the same process is not contaminated. *)
  let apply_crash_effects t =
    Array.iteri
      (fun p until ->
        if until > t.time then begin
          if t.crash_lose.(p) then begin
            let lost = ref 0 in
            List.iter
              (fun src ->
                lost := !lost + Network.channel_length t.net ~src ~dst:p;
                t.net <- Network.flush_channel t.net ~src ~dst:p)
              (Pid.others ~self:p ~n:t.cfg.n);
            if !lost > 0 then Metrics.note_dropped t.metrics !lost
          end
        end
        else t.crash_lose.(p) <- false)
      t.crash_until

  let dispatch t ~src ~label outbox =
    List.iter
      (fun (dst, m) ->
        Metrics.note_send t.metrics ~label;
        t.net <- Network.send t.net ~src ~dst m)
      outbox

  type move =
    | M_deliver of Pid.t * Pid.t
    | M_internal of Pid.t * string * (N.state -> N.state * (Pid.t * N.msg) list)

  let enabled_moves t =
    let deliveries =
      List.filter_map
        (fun (src, dst) ->
          if crashed t dst then None
          else Some (M_deliver (src, dst), t.cfg.deliver_weight))
        (Network.nonempty t.net)
    in
    let internals =
      List.concat_map
        (fun p ->
          if crashed t p then []
          else
            List.map
              (fun (label, f) ->
                (M_internal (p, label, f), t.cfg.internal_weight))
              (N.actions ~self:p t.states.(p)))
        (Pid.range t.cfg.n)
    in
    deliveries @ internals

  let step t =
    apply_crash_effects t;
    let event : (N.state, N.msg) Trace.event =
      match enabled_moves t with
      | [] ->
        Metrics.note_stutter t.metrics;
        Trace.Stutter
      | moves ->
        let chosen =
          match t.cfg.policy with
          | Weighted_random -> Rng.pick_weighted t.sched_rng moves
          | Round_robin -> fst (List.nth moves (t.time mod List.length moves))
        in
        (match chosen with
         | M_deliver (src, dst) ->
           (match Network.deliver t.net ~src ~dst with
            | None -> Trace.Stutter (* cannot happen: channel was nonempty *)
            | Some (msg, net) ->
              t.net <- net;
              Metrics.note_delivery t.metrics;
              let state', outbox =
                N.receive ~self:dst ~from:src msg t.states.(dst)
              in
              t.states.(dst) <- state';
              dispatch t ~src:dst ~label:"deliver" outbox;
              Trace.Deliver { src; dst; msg })
         | M_internal (p, label, f) ->
           Metrics.note_internal t.metrics;
           let state', outbox = f t.states.(p) in
           t.states.(p) <- state';
           dispatch t ~src:p ~label outbox;
           Trace.Internal { pid = p; label })
    in
    t.time <- t.time + 1;
    record t event;
    event

  (* Positions (front-first) of messages in a channel matching [only]. *)
  let matching_positions t ~src ~dst only =
    let msgs = Network.contents t.net ~src ~dst in
    List.mapi (fun i m -> (i, m)) msgs
    |> List.filter_map (fun (i, m) ->
           match only with
           | None -> Some i
           | Some p -> if p m then Some i else None)

  let apply_chan_fault t ~chan ~count ~only ~note ~(f : src:Pid.t -> dst:Pid.t -> pos:int -> unit) =
    let applied = ref 0 in
    List.iter
      (fun (src, dst) ->
        let remaining = ref count in
        while
          !remaining > 0
          &&
          match matching_positions t ~src ~dst only with
          | [] -> false
          | positions ->
            let pos = Rng.pick t.fault_rng positions in
            f ~src ~dst ~pos;
            incr applied;
            decr remaining;
            true
        do
          ()
        done)
      (Faults.select_chans ~n:t.cfg.n chan);
    note t.metrics !applied

  let apply_fault t kind =
    (match (kind : (N.state, N.msg) Faults.kind) with
     | Drop { chan; count; only } ->
       apply_chan_fault t ~chan ~count ~only ~note:Metrics.note_dropped
         ~f:(fun ~src ~dst ~pos -> t.net <- Network.drop_at t.net ~src ~dst ~pos)
     | Duplicate { chan; count } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_duplicated
         ~f:(fun ~src ~dst ~pos ->
           t.net <- Network.duplicate_at t.net ~src ~dst ~pos)
     | Corrupt_messages { chan; count; f } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_corrupted
         ~f:(fun ~src ~dst ~pos ->
           t.net <-
             Network.corrupt_at t.net ~src ~dst ~pos ~f:(f t.fault_rng))
     | Reorder { chan; count } ->
       apply_chan_fault t ~chan ~count ~only:None ~note:Metrics.note_reordered
         ~f:(fun ~src ~dst ~pos ->
           t.net <- Network.reorder_at t.net ~src ~dst ~pos)
     | Flush chan ->
       let flushed = ref 0 in
       List.iter
         (fun (src, dst) ->
           flushed := !flushed + Network.channel_length t.net ~src ~dst;
           t.net <- Network.flush_channel t.net ~src ~dst)
         (Faults.select_chans ~n:t.cfg.n chan);
       Metrics.note_flushed t.metrics !flushed
     | Mutate_state { proc; f } ->
       List.iter
         (fun p -> t.states.(p) <- f t.fault_rng t.states.(p))
         (Faults.select_procs ~n:t.cfg.n proc)
     | Reset_state { proc; f } ->
       List.iter
         (fun p -> t.states.(p) <- f p)
         (Faults.select_procs ~n:t.cfg.n proc)
     | Crash { proc; until_t; lose_deliveries } ->
       List.iter
         (fun p ->
           if until_t > t.time then begin
             t.crash_until.(p) <- max t.crash_until.(p) until_t;
             t.crash_lose.(p) <- t.crash_lose.(p) || lose_deliveries;
             Metrics.note_crashed t.metrics
           end)
         (Faults.select_procs ~n:t.cfg.n proc));
    Metrics.note_fault t.metrics;
    record t (Trace.Fault { label = Faults.label kind })

  (* Duplicate-fault caveat: [duplicate_at] grows the matching set, so
     the loop above must not re-match the copy; [only:None] with
     [count] bounds the iterations, which keeps it finite. *)

  let run ?(plan = []) ~steps t =
    let plan = ref plan in
    for _ = 1 to steps do
      let fired, rest = Faults.due !plan t.time in
      plan := rest;
      List.iter (apply_fault t) fired;
      ignore (step t)
    done

  let run_until ?(plan = []) ~max_steps ~stop t =
    let plan = ref plan in
    let rec go remaining =
      if remaining <= 0 then None
      else begin
        let fired, rest = Faults.due !plan t.time in
        plan := rest;
        List.iter (apply_fault t) fired;
        if !plan = [] && stop t then Some t.time
        else begin
          ignore (step t);
          go (remaining - 1)
        end
      end
    in
    go max_steps
end
