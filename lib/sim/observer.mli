(** Streaming observation of an engine run.

    The offline pipeline records a full {!Trace.t} and analyses it
    afterwards; an observer sees the same information — one {!step} per
    trace snapshot, in the same order — while the engine runs, so
    verdicts are available mid-run and nothing needs to be retained.
    The step stream an engine delivers to its observers is exactly the
    snapshot sequence it would record (asserted in the test suite), so
    any trace analysis can be restated as an observer fold.

    [step.states] is the engine's {e live} state array: it is valid
    (and immutable) for the duration of the callback only.  An observer
    that retains states across steps must copy what it keeps. *)

type ('s, 'm) step = {
  time : int;  (** engine time of the snapshot this step mirrors *)
  event : ('s, 'm) Trace.event;
  states : 's array;  (** live array — copy before retaining *)
}

(** A pure observer: a fold over the step stream carrying its
    accumulator.  Persistent — [observe] returns a new observer — so
    snapshotting mid-run is free. *)
type ('s, 'm, 'a) t

val value : ('s, 'm, 'a) t -> 'a
(** The accumulator over the steps observed so far. *)

val observe : ('s, 'm, 'a) t -> ('s, 'm) step -> ('s, 'm, 'a) t

val fold : init:'a -> f:('a -> ('s, 'm) step -> 'a) -> ('s, 'm, 'a) t
(** [fold ~init ~f] is the primitive observer: [value] after steps
    [s1 .. sk] is [f (... (f init s1) ...) sk]. *)

val map : ('a -> 'b) -> ('s, 'm, 'a) t -> ('s, 'm, 'b) t

val pair : ('s, 'm, 'a) t -> ('s, 'm, 'b) t -> ('s, 'm, 'a * 'b) t
(** Run two observers over one stream. *)

val premap : (('s, 'm) step -> ('s, 'm) step) -> ('s, 'm, 'a) t -> ('s, 'm, 'a) t
(** Pre-process each step (e.g. project states) before observing. *)

val feed_all : ('s, 'm, 'a) t -> ('s, 'm) step list -> ('s, 'm, 'a) t

val run : ('s, 'm, 'a) t -> ('s, 'm) step list -> 'a
(** [run o steps] = [value (feed_all o steps)]. *)

val of_snapshot : ('s, 'm) Trace.snapshot -> ('s, 'm) step
(** Replay glue: the step a recorded snapshot would have produced
    (channels are dropped — observers see states and events only). *)

type ('s, 'm) sink = ('s, 'm) step -> unit
(** What an engine actually calls: an imperative step consumer
    ({!Engine.Make.add_observer}). *)

val sink : ('s, 'm, 'a) t -> ('s, 'm) sink * (unit -> 'a)
(** [sink o] wraps a pure observer for engine attachment: the returned
    function feeds it in place, and the second component reads the
    current accumulator at any time. *)
