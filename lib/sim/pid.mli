(** Process identifiers.

    Pids are dense integers [0 .. n-1]; the tiebreaking order used by
    the paper's timestamp relation [lt] is the integer order. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool

val range : int -> t list
(** [range n] is [\[0; …; n-1\]]. *)

val others : self:t -> n:int -> t list
(** [others ~self ~n] is [range n] without [self] — the paper's
    "(∀k : k ≠ j)" quantification domain. *)

val dense_threshold : int
(** Systems up to this size initialise their peer-keyed maps densely
    (an explicit zero binding per peer, the historical representation);
    above it they start sparse with absent keys reading as the zero
    timestamp, so [init] is O(1) instead of O(n log n).  Small-n
    behaviour — including the model checker's structural state
    identity and the fault injector's draw sequence — is unchanged,
    because below the threshold the representations coincide. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
