(** Fault injection: the paper's §3.1 fault model, as data — extended
    with the production fault family the paper never ran (group
    partitions that heal, and per-link delivery delays).

    "Messages may be corrupted, lost, or duplicated at any time.
    Processes (respectively channels) can be improperly initialized,
    fail, recover, or their state could be transiently (and
    arbitrarily) corrupted at any time.  Stabilization is desired
    notwithstanding the occurrence of any finite number of these
    faults."

    A fault {!kind} describes one transient corruption; a {!plan}
    schedules finitely many of them at simulated times.  Kinds that
    need protocol knowledge (message corruption, state corruption,
    improper re-initialization) carry their mutation as a closure, so
    the engine stays protocol-agnostic while protocols decide what
    "arbitrary corruption" means for their representation. *)

type chan_selector =
  | Any_chan            (** every channel *)
  | Chan of Pid.t * Pid.t  (** one directed channel [src → dst] *)
  | From of Pid.t       (** all channels leaving a process *)
  | Into of Pid.t       (** all channels entering a process *)

type proc_selector = Any_proc | Proc of Pid.t

type heal_mode =
  | Lossy
      (** cross-partition messages are {e lost} for the window — the
          classic severed-link case *)
  | Buffered
      (** cross-partition messages queue for the window and flood in
          at heal time — the stress case for stabilization *)

(** Per-link delivery-delay distribution, in scheduler steps.  Draws
    come from the engine's fault RNG, so delayed runs stay
    seed-deterministic. *)
type delay_dist =
  | Fixed of int  (** every message waits exactly this many steps *)
  | Uniform of int * int  (** uniform in [\[lo, hi\]] *)
  | Heavy_tail of { mean : int; cap : int }
      (** exponential with the given mean, truncated at [cap]: most
          messages are barely delayed, a few straggle *)

type ('s, 'm) kind =
  | Drop of { chan : chan_selector; count : int; only : ('m -> bool) option }
      (** Lose up to [count] messages per selected channel, front-first,
          restricted to messages matching [only] when given. *)
  | Duplicate of { chan : chan_selector; count : int }
      (** Duplicate up to [count] messages per selected channel. *)
  | Corrupt_messages of
      { chan : chan_selector; count : int; f : Stdext.Rng.t -> 'm -> 'm }
      (** Replace up to [count] messages per selected channel by
          corrupted versions. *)
  | Reorder of { chan : chan_selector; count : int }
      (** Move up to [count] random messages per selected channel to
          the channel's back: a transient FIFO violation. *)
  | Flush of chan_selector
      (** Empty the selected channels (channel failure/recovery). *)
  | Mutate_state of { proc : proc_selector; f : Stdext.Rng.t -> 's -> 's }
      (** Transient arbitrary corruption of process state. *)
  | Reset_state of { proc : proc_selector; f : Pid.t -> 's }
      (** Improper (re)initialization: replace a process's state
          wholesale, e.g. with a fresh-but-wrong initial state. *)
  | Crash of { proc : proc_selector; until_t : int; lose_deliveries : bool }
      (** Process failure and recovery ("processes … fail, recover"): from
          the moment of injection until simulated time [until_t] the
          selected processes take no internal actions and receive no
          deliveries.  With [lose_deliveries] their inbound channels are
          emptied for the whole crash window (messages sent to a dead
          process are lost); otherwise deliveries merely stall and resume
          after recovery.  State survives the crash — combine with
          [Reset_state] for crash-with-amnesia.  A window that has already
          elapsed ([until_t] at or before the injection time) is a
          no-op. *)
  | Split of
      { groups : Pid.t list list;
        from_t : int;
        until_t : int;
        mode : heal_mode }
      (** Group partition: from injection (scheduled at [from_t]) until
          [until_t], {e every} channel between processes in different
          groups is down.  Pids not named by any group form one
          implicit remainder group, so [\[\[0; 1\]\]] over n = 3 means
          [{0,1} | {2}].  [mode] decides the fate of cross-partition
          traffic: {!Lossy} loses it (in-flight messages included),
          {!Buffered} holds it and delivers everything after the heal.
          Processes keep taking internal actions throughout — only
          cross-group channels are affected. *)
  | Delay of { chan : chan_selector; dist : delay_dist }
      (** From injection on, every message sent over the selected
          channels is delivered no earlier than [send time + draw],
          with draws from [dist] — asymmetric link delays ([Chan]/
          [From]/[Into] select directions independently).  Per-channel
          FIFO order is preserved: delays stage {e readiness}, they do
          not reorder. *)
  | Heal
      (** A no-op marker recorded as a fault event.  {!Split} lowering
          schedules one at [until_t] so convergence (and recovery
          latency) is measured from the heal, not from the moment the
          partition began. *)

type ('s, 'm) event = { at : int; kind : ('s, 'm) kind }

type ('s, 'm) plan = ('s, 'm) event list

val label : ('s, 'm) kind -> string
(** [label k] is a short trace tag, e.g. ["drop"], ["split"], ["heal"]. *)

val at : int -> ('s, 'm) kind -> ('s, 'm) event

val due : ('s, 'm) plan -> int -> ('s, 'm) kind list * ('s, 'm) plan
(** [due plan t] splits off the kinds scheduled at time [<= t]
    (in schedule order) from the remainder of the plan. *)

val last_time : ('s, 'm) plan -> int
(** [last_time plan] is the latest scheduled time, [-1] for the empty
    plan — convergence is measured from this point on. *)

val select_chans : n:int -> chan_selector -> (Pid.t * Pid.t) list
(** [select_chans ~n sel] expands a selector over [n] processes into
    directed pairs (excluding self-loops). *)

val select_procs : n:int -> proc_selector -> Pid.t list

val split_groups : n:int -> Pid.t list list -> Pid.t list list
(** [split_groups ~n groups] normalizes a {!Split}'s group list:
    out-of-range pids and empty groups are dropped, and unlisted pids
    are appended as one implicit remainder group. *)

val cross_pairs : n:int -> Pid.t list list -> (Pid.t * Pid.t) list
(** [cross_pairs ~n groups] lists every directed channel that crosses
    the partition described by [groups] (after {!split_groups}
    normalization) — the channels a {!Split} takes down. *)

val draw_delay : delay_dist -> Stdext.Rng.t -> int
(** [draw_delay dist rng] samples one non-negative delay. *)
