open Stdext
module Imap = Map.Make (Int)

(* Channels live in a sparse persistent map (absent key = empty
   channel), so memory and [create] are O(occupied channels) instead of
   O(n^2), and incremental indexes ride along with every version: the
   set of channels with a deliverable head in a rank/select set
   ({!Stdext.Oset}) — so [nonempty] enumerates live channels, the
   scheduler's delivery draw is [nth_live] in O(log n), and a
   destination-major mirror answers per-destination shard counts
   ([live_into]) for crash bookkeeping — plus the set of channels whose
   head is staged for a later step ([waiting]) and the total
   queued-message count, making [in_flight]/[is_empty] O(1).  All are
   pure fields of the version, so persistence is preserved: an old [t]
   still answers for its own contents.

   Every message carries a ready step.  Plain sends stamp [now], so on
   fault-free runs [waiting] stays empty, heads are always ready, and
   every operation behaves (and costs) exactly as the unstaged network
   did.  Link delays stamp [now + delay]; a Buffered partition mask
   restamps to the heal time.  A channel is in exactly one of [live]
   (nonempty, head ready at [now]) or [waiting] (nonempty, head staged
   for later); [advance] promotes waiting channels as [now] grows.
   FIFO is per channel and readiness is monotone in queue position only
   per send order — delivery always pops the head, so a delayed head
   also delays everything behind it, preserving FIFO exactly. *)
type 'm t = {
  n : int;
  now : int; (* last [advance] step; readiness is judged against it *)
  chans : ('m * int) Fqueue.t Imap.t;
      (* (payload, ready step), keyed src * n + dst; absent = empty *)
  live : Oset.t; (* src-major: channels whose head is deliverable now *)
  live_dst : Oset.t;
      (* the same channels keyed dst * n + src: contiguous key ranges
         are destination shards, so inbound counts and enumeration are
         rank queries instead of scans *)
  waiting : Oset.t; (* src-major: nonempty channels, head not ready yet *)
  msgs : int; (* total queued messages, ready or not *)
  blocked : (int * [ `Lossy | `Buffered ]) Imap.t;
      (* partition mask: channel index -> (heal step, mode); consulted
         on [send] and pruned lazily by [advance] *)
}

let idx t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Network: pid out of range";
  (src * t.n) + dst

(* dst-major mirror key of a src-major channel index *)
let mirror t i = ((i mod t.n) * t.n) + (i / t.n)

let create ~n =
  if n <= 0 then invalid_arg "Network.create: need n > 0";
  { n;
    now = 0;
    chans = Imap.empty;
    live = Oset.empty;
    live_dst = Oset.empty;
    waiting = Oset.empty;
    msgs = 0;
    blocked = Imap.empty }

let size t = t.n

let chan t i =
  match Imap.find_opt i t.chans with Some q -> q | None -> Fqueue.empty

let status t q =
  match Fqueue.peek q with
  | None -> `Empty
  | Some (_, ready) -> if ready <= t.now then `Live else `Waiting

let update t i q =
  let old = chan t i in
  let olds = status t old and news = status t q in
  let live, live_dst, waiting =
    if olds = news then (t.live, t.live_dst, t.waiting)
    else begin
      let live, live_dst, waiting =
        match olds with
        | `Live -> (Oset.remove i t.live, Oset.remove (mirror t i) t.live_dst, t.waiting)
        | `Waiting -> (t.live, t.live_dst, Oset.remove i t.waiting)
        | `Empty -> (t.live, t.live_dst, t.waiting)
      in
      match news with
      | `Live -> (Oset.add i live, Oset.add (mirror t i) live_dst, waiting)
      | `Waiting -> (live, live_dst, Oset.add i waiting)
      | `Empty -> (live, live_dst, waiting)
    end
  in
  { t with
    chans =
      (if Fqueue.is_empty q then Imap.remove i t.chans else Imap.add i q t.chans);
    live;
    live_dst;
    waiting;
    msgs = t.msgs - Fqueue.length old + Fqueue.length q }

let advance t ~now =
  if now <= t.now then t
  else begin
    let t = { t with now } in
    let t =
      if Imap.is_empty t.blocked then t
      else
        { t with
          blocked = Imap.filter (fun _ (until, _) -> until > now) t.blocked }
    in
    if Oset.is_empty t.waiting then t
    else
      Oset.fold
        (fun i t ->
          match Fqueue.peek (chan t i) with
          | Some (_, ready) when ready <= now ->
            { t with
              live = Oset.add i t.live;
              live_dst = Oset.add (mirror t i) t.live_dst;
              waiting = Oset.remove i t.waiting }
          | _ -> t)
        t.waiting t
  end

let link_status t ~src ~dst =
  match Imap.find_opt (idx t ~src ~dst) t.blocked with
  | Some (until, _) when until <= t.now -> `Open
  | Some (until, `Lossy) -> `Lossy until
  | Some (until, `Buffered) -> `Buffered until
  | None -> `Open

let send ?delay t ~src ~dst m =
  let i = idx t ~src ~dst in
  let ready =
    match delay with None -> t.now | Some d -> t.now + max 0 d
  in
  (* the partition mask is consulted on send: a Buffered window holds
     the message until the heal (Lossy windows are handled by the
     sender, which consults [link_status] and never enqueues) *)
  let ready =
    if Imap.is_empty t.blocked then ready
    else
      match Imap.find_opt i t.blocked with
      | Some (until, `Buffered) when until > t.now -> max ready until
      | _ -> ready
  in
  update t i (Fqueue.push (m, ready) (chan t i))

let deliver t ~src ~dst =
  let i = idx t ~src ~dst in
  match Fqueue.pop (chan t i) with
  | Some ((m, ready), q) when ready <= t.now -> Some (m, update t i q)
  | _ -> None (* empty, or head staged for a later step *)

let peek t ~src ~dst = Option.map fst (Fqueue.peek (chan t (idx t ~src ~dst)))

let contents t ~src ~dst =
  List.map fst (Fqueue.to_list (chan t (idx t ~src ~dst)))

let channel_length t ~src ~dst = Fqueue.length (chan t (idx t ~src ~dst))

(* [Oset] iterates ascending, and src-major index order is (src, dst)
   lexicographic order — the order the scheduler has always seen. *)
let nonempty t =
  List.map (fun i -> (i / t.n, i mod t.n)) (Oset.elements t.live)

let fold_nonempty f acc t =
  Oset.fold (fun i acc -> f acc ~src:(i / t.n) ~dst:(i mod t.n)) t.live acc

let nth_live t k =
  let i = Oset.nth t.live k in
  (i / t.n, i mod t.n)

let live_count t = Oset.cardinal t.live

let live_into t ~dst =
  Oset.count_range t.live_dst ~lo:(dst * t.n) ~hi:((dst * t.n) + t.n)

(* Every nonempty channel into [dst], staged heads included — the
   crash drain's enumeration.  Cost is O(log n + inbound live) plus the
   (normally empty) waiting set. *)
let fold_inbound_nonempty f acc t ~dst =
  let acc =
    Oset.fold_range
      ~lo:(dst * t.n)
      ~hi:((dst * t.n) + t.n)
      (fun i acc -> f acc ~src:(i - (dst * t.n)))
      t.live_dst acc
  in
  if Oset.is_empty t.waiting then acc
  else
    Oset.fold
      (fun i acc -> if i mod t.n = dst then f acc ~src:(i / t.n) else acc)
      t.waiting acc

let waiting_count t = Oset.cardinal t.waiting

let in_flight t = t.msgs

let is_empty t = t.msgs = 0

let apply_split t ~pairs ~until ~mode =
  if until <= t.now then (t, 0)
  else
    List.fold_left
      (fun (t, dropped) (src, dst) ->
        let i = idx t ~src ~dst in
        (* overlapping windows: the heal time only grows, the newest
           injection decides the mode *)
        let blocked =
          Imap.update i
            (function
              | Some (u, _) -> Some (max u until, mode)
              | None -> Some (until, mode))
            t.blocked
        in
        let t = { t with blocked } in
        match mode with
        | `Lossy ->
          let lost = channel_length t ~src ~dst in
          (update t i Fqueue.empty, dropped + lost)
        | `Buffered ->
          let q =
            Fqueue.map (fun (m, ready) -> (m, max ready until)) (chan t i)
          in
          (update t i q, dropped))
      (t, 0) pairs

let drop_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (chan t i) with
  | None -> t
  | Some (_, q) -> update t i q

let duplicate_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (chan t i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos m (Fqueue.insert_at pos m q))

let corrupt_at t ~src ~dst ~pos ~f =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (chan t i) with
  | None -> t
  | Some ((m, ready), q) -> update t i (Fqueue.insert_at pos (f m, ready) q)

let reorder_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (chan t i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.push m q)

let flush_channel t ~src ~dst = update t (idx t ~src ~dst) Fqueue.empty

let flush_all t =
  { t with
    chans = Imap.empty;
    live = Oset.empty;
    live_dst = Oset.empty;
    waiting = Oset.empty;
    msgs = 0 }

(* [map] preserves queue lengths and ready stamps, so the indexes
   carry over. *)
let map f t =
  { t with
    chans =
      Imap.map (Fqueue.map (fun (m, ready) -> (f m, ready))) t.chans }

(* Folds and snapshots cover every queued message, staged or not —
   live ∪ waiting is exactly the nonempty channels. *)
let occupied t = Oset.union t.live t.waiting

let fold_messages f acc t =
  Oset.fold
    (fun i acc ->
      let src = i / t.n and dst = i mod t.n in
      List.fold_left
        (fun acc (m, _) -> f acc ~src ~dst m)
        acc
        (Fqueue.to_list (chan t i)))
    (occupied t) acc

let snapshot t =
  List.map
    (fun i -> (i / t.n, i mod t.n, contents t ~src:(i / t.n) ~dst:(i mod t.n)))
    (Oset.elements (occupied t))
