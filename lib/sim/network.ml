open Stdext
module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

(* The channel matrix lives in a persistent array (one diff node per
   update instead of an O(n^2) copy per message), and incremental
   indexes ride along with every version: the set of channels with a
   deliverable head — so [nonempty] enumerates live channels instead of
   rescanning all n^2 — the set of channels whose head is staged for a
   later step ([waiting]), and the total queued-message count, making
   [in_flight]/[is_empty] O(1).  All are pure fields of the version, so
   persistence is preserved: an old [t] still answers for its own
   contents.

   Every message carries a ready step.  Plain sends stamp [now], so on
   fault-free runs [waiting] stays empty, heads are always ready, and
   every operation behaves (and costs) exactly as the unstaged network
   did.  Link delays stamp [now + delay]; a Buffered partition mask
   restamps to the heal time.  A channel is in exactly one of [live]
   (nonempty, head ready at [now]) or [waiting] (nonempty, head staged
   for later); [advance] promotes waiting channels as [now] grows.
   FIFO is per channel and readiness is monotone in queue position only
   per send order — delivery always pops the head, so a delayed head
   also delays everything behind it, preserving FIFO exactly. *)
type 'm t = {
  n : int;
  now : int; (* last [advance] step; readiness is judged against it *)
  chans : ('m * int) Fqueue.t Parray.t; (* (payload, ready step); src * n + dst *)
  live : Iset.t; (* channels whose head is deliverable now *)
  nlive : int; (* |live|, maintained incrementally (Set.cardinal is O(n)) *)
  waiting : Iset.t; (* nonempty channels whose head is not ready yet *)
  msgs : int; (* total queued messages, ready or not *)
  blocked : (int * [ `Lossy | `Buffered ]) Imap.t;
      (* partition mask: channel index -> (heal step, mode); consulted
         on [send] and pruned lazily by [advance] *)
}

let idx t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Network: pid out of range";
  (src * t.n) + dst

let create ~n =
  if n <= 0 then invalid_arg "Network.create: need n > 0";
  { n;
    now = 0;
    chans = Parray.make (n * n) Fqueue.empty;
    live = Iset.empty;
    nlive = 0;
    waiting = Iset.empty;
    msgs = 0;
    blocked = Imap.empty }

let size t = t.n

let status t q =
  match Fqueue.peek q with
  | None -> `Empty
  | Some (_, ready) -> if ready <= t.now then `Live else `Waiting

let update t i q =
  let old = Parray.get t.chans i in
  let olds = status t old and news = status t q in
  let live, nlive, waiting =
    if olds = news then (t.live, t.nlive, t.waiting)
    else begin
      let live, nlive, waiting =
        match olds with
        | `Live -> (Iset.remove i t.live, t.nlive - 1, t.waiting)
        | `Waiting -> (t.live, t.nlive, Iset.remove i t.waiting)
        | `Empty -> (t.live, t.nlive, t.waiting)
      in
      match news with
      | `Live -> (Iset.add i live, nlive + 1, waiting)
      | `Waiting -> (live, nlive, Iset.add i waiting)
      | `Empty -> (live, nlive, waiting)
    end
  in
  { t with
    chans = Parray.set t.chans i q;
    live;
    nlive;
    waiting;
    msgs = t.msgs - Fqueue.length old + Fqueue.length q }

let advance t ~now =
  if now <= t.now then t
  else begin
    let t = { t with now } in
    let t =
      if Imap.is_empty t.blocked then t
      else
        { t with
          blocked = Imap.filter (fun _ (until, _) -> until > now) t.blocked }
    in
    if Iset.is_empty t.waiting then t
    else
      Iset.fold
        (fun i t ->
          match Fqueue.peek (Parray.get t.chans i) with
          | Some (_, ready) when ready <= now ->
            { t with
              live = Iset.add i t.live;
              nlive = t.nlive + 1;
              waiting = Iset.remove i t.waiting }
          | _ -> t)
        t.waiting t
  end

let link_status t ~src ~dst =
  match Imap.find_opt (idx t ~src ~dst) t.blocked with
  | Some (until, _) when until <= t.now -> `Open
  | Some (until, `Lossy) -> `Lossy until
  | Some (until, `Buffered) -> `Buffered until
  | None -> `Open

let send ?delay t ~src ~dst m =
  let i = idx t ~src ~dst in
  let ready =
    match delay with None -> t.now | Some d -> t.now + max 0 d
  in
  (* the partition mask is consulted on send: a Buffered window holds
     the message until the heal (Lossy windows are handled by the
     sender, which consults [link_status] and never enqueues) *)
  let ready =
    if Imap.is_empty t.blocked then ready
    else
      match Imap.find_opt i t.blocked with
      | Some (until, `Buffered) when until > t.now -> max ready until
      | _ -> ready
  in
  update t i (Fqueue.push (m, ready) (Parray.get t.chans i))

let deliver t ~src ~dst =
  let i = idx t ~src ~dst in
  match Fqueue.pop (Parray.get t.chans i) with
  | Some ((m, ready), q) when ready <= t.now -> Some (m, update t i q)
  | _ -> None (* empty, or head staged for a later step *)

let peek t ~src ~dst =
  Option.map fst (Fqueue.peek (Parray.get t.chans (idx t ~src ~dst)))

let contents t ~src ~dst =
  List.map fst (Fqueue.to_list (Parray.get t.chans (idx t ~src ~dst)))

let channel_length t ~src ~dst =
  Fqueue.length (Parray.get t.chans (idx t ~src ~dst))

(* [Iset.elements] is ascending, and index order is (src, dst)
   lexicographic order — the order the scheduler has always seen. *)
let nonempty t =
  List.map (fun i -> (i / t.n, i mod t.n)) (Iset.elements t.live)

let fold_nonempty f acc t =
  Iset.fold (fun i acc -> f acc ~src:(i / t.n) ~dst:(i mod t.n)) t.live acc

let live_count t = t.nlive

let waiting_count t = Iset.cardinal t.waiting

let in_flight t = t.msgs

let is_empty t = t.msgs = 0

let apply_split t ~pairs ~until ~mode =
  if until <= t.now then (t, 0)
  else
    List.fold_left
      (fun (t, dropped) (src, dst) ->
        let i = idx t ~src ~dst in
        (* overlapping windows: the heal time only grows, the newest
           injection decides the mode *)
        let blocked =
          Imap.update i
            (function
              | Some (u, _) -> Some (max u until, mode)
              | None -> Some (until, mode))
            t.blocked
        in
        let t = { t with blocked } in
        match mode with
        | `Lossy ->
          let lost = channel_length t ~src ~dst in
          (update t i Fqueue.empty, dropped + lost)
        | `Buffered ->
          let q =
            Fqueue.map
              (fun (m, ready) -> (m, max ready until))
              (Parray.get t.chans i)
          in
          (update t i q, dropped))
      (t, 0) pairs

let drop_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (_, q) -> update t i q

let duplicate_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos m (Fqueue.insert_at pos m q))

let corrupt_at t ~src ~dst ~pos ~f =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some ((m, ready), q) -> update t i (Fqueue.insert_at pos (f m, ready) q)

let reorder_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.push m q)

let flush_channel t ~src ~dst = update t (idx t ~src ~dst) Fqueue.empty

let flush_all t =
  { t with
    chans = Parray.make (t.n * t.n) Fqueue.empty;
    live = Iset.empty;
    nlive = 0;
    waiting = Iset.empty;
    msgs = 0 }

(* [map] preserves queue lengths and ready stamps, so the indexes
   carry over. *)
let map f t =
  { t with
    chans =
      Parray.init (t.n * t.n) (fun i ->
          Fqueue.map (fun (m, ready) -> (f m, ready)) (Parray.get t.chans i)) }

(* Folds and snapshots cover every queued message, staged or not —
   live ∪ waiting is exactly the nonempty channels. *)
let occupied t = Iset.union t.live t.waiting

let fold_messages f acc t =
  Iset.fold
    (fun i acc ->
      let src = i / t.n and dst = i mod t.n in
      List.fold_left
        (fun acc (m, _) -> f acc ~src ~dst m)
        acc
        (Fqueue.to_list (Parray.get t.chans i)))
    (occupied t) acc

let snapshot t =
  List.map
    (fun i -> (i / t.n, i mod t.n, contents t ~src:(i / t.n) ~dst:(i mod t.n)))
    (Iset.elements (occupied t))
