open Stdext
module Iset = Set.Make (Int)

(* The channel matrix lives in a persistent array (one diff node per
   update instead of an O(n^2) copy per message), and two incremental
   indexes ride along with every version: the set of nonempty channel
   indices — so [nonempty] enumerates live channels instead of
   rescanning all n^2 — and the total queued-message count, making
   [in_flight]/[is_empty] O(1).  Both are pure fields of the version,
   so persistence is preserved: an old [t] still answers for its own
   contents. *)
type 'm t = {
  n : int;
  chans : 'm Fqueue.t Parray.t; (* index src * n + dst *)
  live : Iset.t; (* indices of nonempty channels *)
  nlive : int; (* |live|, maintained incrementally (Set.cardinal is O(n)) *)
  msgs : int; (* total queued messages *)
}

let idx t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Network: pid out of range";
  (src * t.n) + dst

let create ~n =
  if n <= 0 then invalid_arg "Network.create: need n > 0";
  { n;
    chans = Parray.make (n * n) Fqueue.empty;
    live = Iset.empty;
    nlive = 0;
    msgs = 0 }

let size t = t.n

let update t i q =
  let old = Parray.get t.chans i in
  let was = Fqueue.is_empty old and now = Fqueue.is_empty q in
  let live, nlive =
    if was = now then (t.live, t.nlive) (* emptiness unchanged *)
    else if now then (Iset.remove i t.live, t.nlive - 1)
    else (Iset.add i t.live, t.nlive + 1)
  in
  { t with
    chans = Parray.set t.chans i q;
    live;
    nlive;
    msgs = t.msgs - Fqueue.length old + Fqueue.length q }

let send t ~src ~dst m =
  let i = idx t ~src ~dst in
  update t i (Fqueue.push m (Parray.get t.chans i))

let deliver t ~src ~dst =
  let i = idx t ~src ~dst in
  match Fqueue.pop (Parray.get t.chans i) with
  | None -> None
  | Some (m, q) -> Some (m, update t i q)

let peek t ~src ~dst = Fqueue.peek (Parray.get t.chans (idx t ~src ~dst))

let contents t ~src ~dst = Fqueue.to_list (Parray.get t.chans (idx t ~src ~dst))

let channel_length t ~src ~dst =
  Fqueue.length (Parray.get t.chans (idx t ~src ~dst))

(* [Iset.elements] is ascending, and index order is (src, dst)
   lexicographic order — the order the scheduler has always seen. *)
let nonempty t =
  List.map (fun i -> (i / t.n, i mod t.n)) (Iset.elements t.live)

let fold_nonempty f acc t =
  Iset.fold (fun i acc -> f acc ~src:(i / t.n) ~dst:(i mod t.n)) t.live acc

let live_count t = t.nlive

let in_flight t = t.msgs

let is_empty t = t.msgs = 0

let drop_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (_, q) -> update t i q

let duplicate_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos m (Fqueue.insert_at pos m q))

let corrupt_at t ~src ~dst ~pos ~f =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.insert_at pos (f m) q)

let reorder_at t ~src ~dst ~pos =
  let i = idx t ~src ~dst in
  match Fqueue.remove_at pos (Parray.get t.chans i) with
  | None -> t
  | Some (m, q) -> update t i (Fqueue.push m q)

let flush_channel t ~src ~dst = update t (idx t ~src ~dst) Fqueue.empty

let flush_all t =
  { t with
    chans = Parray.make (t.n * t.n) Fqueue.empty;
    live = Iset.empty;
    nlive = 0;
    msgs = 0 }

(* [map] preserves queue lengths, so both indexes carry over. *)
let map f t =
  { t with
    chans =
      Parray.init (t.n * t.n) (fun i -> Fqueue.map f (Parray.get t.chans i)) }

let fold_messages f acc t =
  Iset.fold
    (fun i acc ->
      let src = i / t.n and dst = i mod t.n in
      List.fold_left
        (fun acc m -> f acc ~src ~dst m)
        acc
        (Fqueue.to_list (Parray.get t.chans i)))
    t.live acc

let snapshot t =
  List.map
    (fun (src, dst) -> (src, dst, contents t ~src ~dst))
    (nonempty t)
