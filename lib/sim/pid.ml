type t = int

let compare = Int.compare
let equal = Int.equal

let range n = List.init n Fun.id

let others ~self ~n = List.filter (fun k -> k <> self) (range n)

let dense_threshold = 64

let pp = Format.pp_print_int

module Map = Map.Make (Int)
module Set = Set.Make (Int)
