(** Execution counters maintained by the engine.

    Message sends are attributed to the label of the action that
    produced them, which is how the benchmarks separate wrapper
    traffic (actions labeled by the wrapper) from protocol traffic
    without inspecting payloads. *)

type t

val create : unit -> t

val reset : t -> unit

(** {2 Incrementers (engine-side)} *)

val note_send : t -> label:string -> unit
val note_delivery : t -> unit
val note_internal : t -> unit
val note_stutter : t -> unit
val note_fault : t -> unit
val note_dropped : t -> int -> unit
val note_duplicated : t -> int -> unit
val note_corrupted : t -> int -> unit
val note_reordered : t -> int -> unit
val note_flushed : t -> int -> unit
val note_crashed : t -> unit

(** {2 Readers} *)

val sent : t -> int
(** [sent t] counts all messages enqueued on channels. *)

val delivered : t -> int
val internal_steps : t -> int
val stutters : t -> int
val faults : t -> int
val dropped : t -> int
val duplicated : t -> int
val corrupted : t -> int
val reordered : t -> int
val flushed : t -> int

val crashes : t -> int
(** [crashes t] counts process-crash injections (one per process per
    {!Faults.Crash} application). *)

val sends_with_label : t -> string -> int
(** [sends_with_label t l] counts sends attributed to action label
    [l]. *)

val sends_matching : t -> (string -> bool) -> int
(** [sends_matching t p] sums send counts over labels satisfying
    [p]. *)

val labels : t -> (string * int) list
(** [labels t] lists (label, send count) pairs, label-sorted. *)

val pp : Format.formatter -> t -> unit
