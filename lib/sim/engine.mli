(** The asynchronous execution engine.

    The paper's system model: processes communicate solely by message
    passing over FIFO channels; execution is asynchronous (every
    process at its own speed, arbitrary finite transmission delays).
    The engine realises this as a randomized interleaving scheduler: at
    each step it picks — deterministically from the seed — one enabled
    move, either the delivery of some channel's head message or an
    enabled internal action of some process.  Random interleaving makes
    every enabled move occur with probability 1 in long runs, which is
    the probabilistic counterpart of the weak fairness the UNITY
    [leads-to] obligations assume.

    The engine is a functor so that protocols, wrappers, and clients
    compose outside of it; it knows nothing about mutual exclusion. *)

module type NODE = sig
  type state
  (** A process's complete local state (protocol + any composed
      wrapper/client state). *)

  type msg

  val receive :
    self:Pid.t -> from:Pid.t -> msg -> state -> state * (Pid.t * msg) list
  (** [receive ~self ~from m s] handles delivery of [m], returning the
      new state and messages to send as [(destination, payload)]. *)

  val actions :
    self:Pid.t -> state -> (string * (state -> state * (Pid.t * msg) list)) list
  (** [actions ~self s] lists the internal actions currently enabled at
      [s], each with a label (used for trace readability and for
      attributing the messages it sends in {!Metrics}).  The scheduler
      picks at most one per step. *)
end

module Make (N : NODE) : sig
  type policy =
    | Weighted_random
        (** pick uniformly among enabled moves, weighted — the default;
            probabilistically fair *)
    | Round_robin
        (** rotate deterministically through the enabled-move list —
            deterministic fairness, useful for debugging (still
            seed-reproducible: the rotation depends only on time) *)

  type config = {
    n : int;  (** number of processes *)
    seed : int;  (** master seed; equal seeds give equal executions *)
    deliver_weight : int;
        (** scheduling weight of each pending delivery (default 2) *)
    internal_weight : int;
        (** scheduling weight of each enabled internal action *)
    policy : policy;
    record : bool;  (** keep a full trace (costs memory) *)
    indexed : bool;
        (** maintain incremental move indexes (a Fenwick tree of
            per-process action counts and the network's rank/select
            live set) so each step costs O(log n) instead of a full
            O(n + channels) rescan — the default.  [false] keeps the
            original scanning scheduler; both consume the RNG
            identically, so schedules are seed-for-seed bit-identical
            across the two (the equivalence suite checks this). *)
  }

  val config : ?deliver_weight:int -> ?internal_weight:int -> ?policy:policy ->
    ?record:bool -> ?indexed:bool -> n:int -> seed:int -> unit -> config

  type t

  val create : config -> init:(Pid.t -> N.state) -> t
  (** [create cfg ~init] builds the initial global state with empty
      channels ("Init" in the paper's Lspec). *)

  (** {2 Observation} *)

  val time : t -> int
  val n_processes : t -> int
  val state : t -> Pid.t -> N.state
  val states : t -> N.state array
  (** [states t] is a copy; mutating it does not affect the engine. *)

  val network : t -> N.msg Network.t
  val metrics : t -> Metrics.t
  val trace : t -> (N.state, N.msg) Trace.t
  (** [trace t] is the chronological trace (empty unless
      [cfg.record]). *)

  val crashed : t -> Pid.t -> bool
  (** [crashed t p] holds while a {!Faults.Crash} window covers [p]: the
      process takes no internal actions and receives no deliveries until
      its recovery time.  In lose-deliveries mode its inbound channels
      are drained at each step while the window lasts. *)

  val quiescent : t -> bool
  (** [quiescent t] holds when no move is enabled, no process is
      inside a crash window, {e and} no message is staged for later
      delivery (delayed or buffered behind a partition) — the
      execution is permanently quiescent: every future fault-free step
      is a [Stutter] that changes nothing.  The sound early-exit test
      for streaming runs (deadlocks). *)

  (** {2 Streaming observation}

      Observers receive one {!Observer.step} at exactly the points a
      snapshot would be recorded — [Init] on attachment, each [step],
      each [apply_fault] — so the step stream equals the trace the
      engine would record, independently of [cfg.record]. *)

  val add_observer : t -> (N.state, N.msg) Observer.sink -> unit
  (** [add_observer t f] registers [f] (called in registration order)
      and immediately feeds it an [Init] step of the current state:
      attached right after {!create}, [f] sees exactly the recorded
      trace, snapshot for snapshot. *)

  val observe : t -> (N.state, N.msg, 'a) Observer.t -> unit -> 'a
  (** [observe t o] attaches the pure observer [o]; the returned thunk
      reads its current accumulator at any moment (mid-run verdicts). *)

  (** {2 Mutation} *)

  val set_state : t -> Pid.t -> N.state -> unit
  (** Direct state override — exposed for tests and custom faults. *)

  val set_network : t -> N.msg Network.t -> unit

  val step : t -> (N.state, N.msg) Trace.event
  (** [step t] executes one scheduler move (or records [Stutter] when
      nothing is enabled) and advances time by one. *)

  val apply_fault : t -> (N.state, N.msg) Faults.kind -> unit
  (** [apply_fault t k] injects [k] now, recording a [Fault] trace
      event.  Does not advance time. *)

  val run : ?plan:(N.state, N.msg) Faults.plan -> steps:int -> t -> unit
  (** [run ?plan ~steps t] executes [steps] scheduler steps, injecting
      each planned fault just before the step at its scheduled time. *)

  val run_until :
    ?plan:(N.state, N.msg) Faults.plan -> max_steps:int ->
    stop:(t -> bool) -> t -> int option
  (** [run_until ?plan ~max_steps ~stop t] steps until [stop t] holds
      (checked before each step, once the plan is exhausted), returning
      the time at which it held, or [None] after [max_steps]. *)
end
