(** The interprocess network: one FIFO channel per ordered process
    pair, as demanded by the paper's Communication Spec.

    The structure is persistent so that the engine can snapshot channel
    contents into traces and so fault injection is a pure
    transformation.  Internally channels live in a sparse map (absent
    key = empty channel) indexed by two rank/select sets over channel
    ids — one source-major, one destination-major — so {!create} and
    memory are O(occupied channels) rather than O(n{^2}), {!nonempty}
    is O(live channels), {!nth_live} and {!live_into} are O(log n),
    and {!in_flight} is O(1).  Fault primitives (drop / duplicate /
    corrupt / flush / split / delay) are defined here; {e when} they
    fire is decided by {!Faults}.

    {b Delivery-ready staging.}  Every message carries a ready step.
    Undelayed sends are ready immediately, so on fault-free runs the
    staging layer is invisible (and free).  {!send}[ ~delay] and a
    {!apply_split} partition mask stage messages for a later step; a
    staged channel head keeps the whole channel out of {!nonempty} /
    {!fold_nonempty} / {!live_count} until {!advance} moves time past
    its ready step — delivery order within a channel is never changed,
    only {e when} the head becomes deliverable.  {!in_flight},
    {!fold_messages} and {!snapshot} still cover every queued message,
    staged or not. *)

type 'm t

val create : n:int -> 'm t
(** [create ~n] is an empty network over processes [0 .. n-1], at time
    0 with no partition mask. *)

val size : 'm t -> int
(** [size net] is the number of processes. *)

val send : ?delay:int -> 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> 'm t
(** [send net ~src ~dst m] enqueues [m] at the back of channel
    [src→dst], ready [delay] steps from now (default [0]: deliverable
    immediately).  If the channel is under a [`Buffered] partition
    window, readiness is further deferred to the heal step.  Self-sends
    are allowed but unused by the protocols. *)

val deliver : 'm t -> src:Pid.t -> dst:Pid.t -> ('m * 'm t) option
(** [deliver net ~src ~dst] dequeues the head of channel [src→dst],
    or [None] when the channel is empty {e or its head is staged for a
    later step} — a staged head also shields everything behind it
    (FIFO).  The scheduler never hits the staged case: it draws from
    {!nonempty}/{!fold_nonempty}, which only surface ready heads. *)

val peek : 'm t -> src:Pid.t -> dst:Pid.t -> 'm option

val contents : 'm t -> src:Pid.t -> dst:Pid.t -> 'm list
(** [contents net ~src ~dst] lists channel [src→dst] front-first,
    staged messages included. *)

val channel_length : 'm t -> src:Pid.t -> dst:Pid.t -> int

val advance : 'm t -> now:int -> 'm t
(** [advance net ~now] moves the network clock to [now]: staged
    channels whose head has become ready go live, and partition-mask
    entries whose window has elapsed are retired.  O(1) when nothing
    is staged or masked.  [now] below the current clock is ignored
    (the clock is monotone). *)

val link_status :
  'm t -> src:Pid.t -> dst:Pid.t -> [ `Open | `Lossy of int | `Buffered of int ]
(** [link_status net ~src ~dst] reports the partition mask on channel
    [src→dst]: [`Open], or down until the given heal step.  On a
    [`Lossy] link the sender must not enqueue at all; [`Buffered]
    links accept sends ({!send} defers their readiness). *)

val nonempty : 'm t -> (Pid.t * Pid.t) list
(** [nonempty net] lists channels with a {e deliverable} (ready) head,
    in (src, dst) lexicographic order.  Channels whose head is staged
    for a later step are excluded. *)

val fold_nonempty :
  ('acc -> src:Pid.t -> dst:Pid.t -> 'acc) -> 'acc -> 'm t -> 'acc
(** [fold_nonempty f acc net] folds over the ready channels in the
    same (src, dst) order as {!nonempty}, without materializing the
    list — the scheduler's per-step path. *)

val nth_live : 'm t -> int -> Pid.t * Pid.t
(** [nth_live net k] is the [k]-th ready channel in the {!nonempty}
    order, in O(log n) — the scheduler's delivery draw.
    @raise Invalid_argument unless [0 <= k < live_count net]. *)

val live_count : 'm t -> int
(** [live_count net] is the number of ready channels, in O(1). *)

val live_into : 'm t -> dst:Pid.t -> int
(** [live_into net ~dst] counts ready channels into [dst], in
    O(log n) — the scheduler subtracts crashed destinations' shards
    from {!live_count} instead of rescanning. *)

val fold_inbound_nonempty :
  ('acc -> src:Pid.t -> 'acc) -> 'acc -> 'm t -> dst:Pid.t -> 'acc
(** [fold_inbound_nonempty f acc net ~dst] folds over the sources of
    every nonempty channel into [dst] — staged heads included — in
    O(log n + inbound) when nothing is staged.  The crash drain's
    enumeration. *)

val waiting_count : 'm t -> int
(** [waiting_count net] is the number of nonempty channels whose head
    is staged for a later step — nonzero only after delay or buffered
    partition faults. *)

val in_flight : 'm t -> int
(** [in_flight net] is the total number of queued messages, staged or
    not. *)

val is_empty : 'm t -> bool

(** {2 Channel-level fault primitives} *)

val apply_split :
  'm t ->
  pairs:(Pid.t * Pid.t) list ->
  until:int ->
  mode:[ `Lossy | `Buffered ] ->
  'm t * int
(** [apply_split net ~pairs ~until ~mode] masks each channel in
    [pairs] as down until step [until].  [`Lossy] also flushes the
    in-flight messages on those channels (the count flushed is
    returned); [`Buffered] restamps them ready-at-heal instead and
    returns [0].  Overlapping windows keep the latest heal step; the
    newest injection decides the mode.  A window already in the past
    is a no-op. *)

val drop_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [drop_at net ~src ~dst ~pos] loses the message at front-first
    position [pos]; no-op when out of range. *)

val duplicate_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [duplicate_at net ~src ~dst ~pos] duplicates the message at [pos]
    in place (the copy sits immediately behind the original). *)

val corrupt_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> f:('m -> 'm) -> 'm t
(** [corrupt_at net ~src ~dst ~pos ~f] replaces the message at [pos]
    with [f msg] (readiness unchanged); no-op when out of range. *)

val reorder_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [reorder_at net ~src ~dst ~pos] moves the message at [pos] to the
    back of its channel — a FIFO violation fault (the wrapper is only
    guaranteed to stabilize once FIFO behaviour resumes, which this
    transient fault permits). *)

val flush_channel : 'm t -> src:Pid.t -> dst:Pid.t -> 'm t
(** [flush_channel net ~src ~dst] empties channel [src→dst]. *)

val flush_all : 'm t -> 'm t

val map : ('m -> 'm) -> 'm t -> 'm t
(** [map f net] transforms every queued message (readiness stamps are
    preserved). *)

val fold_messages :
  ('acc -> src:Pid.t -> dst:Pid.t -> 'm -> 'acc) -> 'acc -> 'm t -> 'acc
(** [fold_messages f acc net] folds over all queued messages — staged
    or not — channel by channel, front-first. *)

val snapshot : 'm t -> (Pid.t * Pid.t * 'm list) list
(** [snapshot net] lists every nonempty channel with its contents,
    staged messages included — the trace representation. *)
