(** The interprocess network: one FIFO channel per ordered process
    pair, as demanded by the paper's Communication Spec.

    The structure is persistent so that the engine can snapshot channel
    contents into traces and so fault injection is a pure
    transformation.  Internally it is a {!Stdext.Parray} plus an
    incremental nonempty-channel index: updates cost one diff node
    (not an n{^2} copy), {!nonempty} is O(live channels) and
    {!in_flight} is O(1).  Fault primitives (drop / duplicate /
    corrupt / flush) are defined here; {e when} they fire is decided
    by {!Faults}. *)

type 'm t

val create : n:int -> 'm t
(** [create ~n] is an empty network over processes [0 .. n-1]. *)

val size : 'm t -> int
(** [size net] is the number of processes. *)

val send : 'm t -> src:Pid.t -> dst:Pid.t -> 'm -> 'm t
(** [send net ~src ~dst m] enqueues [m] at the back of channel
    [src→dst].  Self-sends are allowed but unused by the protocols. *)

val deliver : 'm t -> src:Pid.t -> dst:Pid.t -> ('m * 'm t) option
(** [deliver net ~src ~dst] dequeues the head of channel [src→dst]. *)

val peek : 'm t -> src:Pid.t -> dst:Pid.t -> 'm option

val contents : 'm t -> src:Pid.t -> dst:Pid.t -> 'm list
(** [contents net ~src ~dst] lists channel [src→dst] front-first. *)

val channel_length : 'm t -> src:Pid.t -> dst:Pid.t -> int

val nonempty : 'm t -> (Pid.t * Pid.t) list
(** [nonempty net] lists channels that currently hold messages, in
    (src, dst) lexicographic order. *)

val fold_nonempty :
  ('acc -> src:Pid.t -> dst:Pid.t -> 'acc) -> 'acc -> 'm t -> 'acc
(** [fold_nonempty f acc net] folds over the nonempty channels in the
    same (src, dst) order as {!nonempty}, without materializing the
    list — the scheduler's per-step path. *)

val live_count : 'm t -> int
(** [live_count net] is the number of nonempty channels, in O(1). *)

val in_flight : 'm t -> int
(** [in_flight net] is the total number of queued messages. *)

val is_empty : 'm t -> bool

(** {2 Channel-level fault primitives} *)

val drop_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [drop_at net ~src ~dst ~pos] loses the message at front-first
    position [pos]; no-op when out of range. *)

val duplicate_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [duplicate_at net ~src ~dst ~pos] duplicates the message at [pos]
    in place (the copy sits immediately behind the original). *)

val corrupt_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> f:('m -> 'm) -> 'm t
(** [corrupt_at net ~src ~dst ~pos ~f] replaces the message at [pos]
    with [f msg]; no-op when out of range. *)

val reorder_at : 'm t -> src:Pid.t -> dst:Pid.t -> pos:int -> 'm t
(** [reorder_at net ~src ~dst ~pos] moves the message at [pos] to the
    back of its channel — a FIFO violation fault (the wrapper is only
    guaranteed to stabilize once FIFO behaviour resumes, which this
    transient fault permits). *)

val flush_channel : 'm t -> src:Pid.t -> dst:Pid.t -> 'm t
(** [flush_channel net ~src ~dst] empties channel [src→dst]. *)

val flush_all : 'm t -> 'm t

val map : ('m -> 'm) -> 'm t -> 'm t
(** [map f net] transforms every queued message. *)

val fold_messages :
  ('acc -> src:Pid.t -> dst:Pid.t -> 'm -> 'acc) -> 'acc -> 'm t -> 'acc
(** [fold_messages f acc net] folds over all queued messages, channel
    by channel, front-first. *)

val snapshot : 'm t -> (Pid.t * Pid.t * 'm list) list
(** [snapshot net] lists every nonempty channel with its contents —
    the trace representation. *)
