(** Regime epochs: the piecewise-constant communication topology a
    fault plan induces, derived {e from the plan} before the run.

    A {!Faults.Split} window cuts the process set into connected
    groups for [\[from_t, until_t)]; a {!Faults.Crash} window removes
    processes from the live set.  Segmenting the simulated time axis
    at every window boundary yields a sequence of {e epochs}, each
    with one constant topology ({!topo}).  Monitors index their specs
    by the current epoch: during a [Global] epoch the classical specs
    apply unchanged; during a [Split] epoch mutual exclusion weakens
    to {e per connected group} and liveness obligations scope to
    intra-group traffic (see {!Graybox.Tme_spec.Epoch}).

    The derivation is purely syntactic over the plan — the same plan
    the engine executes — so online monitors and offline recomputation
    see byte-identical epoch structure, and a plan without effective
    split/crash windows yields the one-epoch {!trivial} timeline whose
    monitors behave exactly like their un-epoched ancestors. *)

type phase =
  | Global  (** one connected component: the classical regime *)
  | Split   (** ≥ 2 connected groups: specs weaken per group *)

type topo = {
  epoch : int;  (** index on the timeline, [0] = initial epoch *)
  phase : phase;
  groups : Pid.t list list;
      (** the connected groups, refined across all overlapping split
          windows; canonical form — groups ordered by least member,
          members ascending.  A [Global] topo has exactly one group. *)
  live : bool array;
      (** [live.(p)] is false while [p] is inside a crash window *)
  since : int;  (** first simulated time of this epoch *)
}

type timeline
(** The full epoch sequence of one plan over [n] processes. *)

val of_plan : n:int -> ('s, 'm) Faults.plan -> timeline
(** [of_plan ~n plan] segments the time axis at every effective
    split/crash window boundary.  Windows that have zero width, or
    splits whose normalized groups do not actually partition, are
    ignored; adjacent segments with identical topology merge (so
    back-to-back identical splits are one epoch, as no global moment
    separates them). *)

val trivial : n:int -> timeline
(** One [Global] epoch from time 0 — what {!of_plan} returns for a
    plan without effective split or crash windows. *)

val nontrivial : timeline -> bool
(** Whether any epoch differs from the initial global one — the
    switch that turns epoch-indexed monitoring on. *)

val at : timeline -> int -> topo
(** [at tl t] is the topo governing simulated time [t] (times before
    the first epoch read as the first epoch). *)

val epochs : timeline -> topo list
(** All epochs in time order. *)

val group_of : topo -> Pid.t -> int
(** Index into [groups] of the group containing the pid ([-1] for an
    out-of-range pid). *)

val group_members : topo -> Pid.t -> Pid.t list
(** The members of the pid's connected group, ascending — what a
    group membership service would announce to it. *)

val same_group : topo -> Pid.t -> Pid.t -> bool

(** {1 Cursor} — monotone O(1) epoch lookup for streaming monitors *)

type cursor

val cursor : timeline -> cursor

val advance : cursor -> int -> topo
(** [advance c t] is [at tl t] for non-decreasing [t] across calls
    (amortized O(1); earlier times read the current epoch). *)

val groups_label : topo -> string
(** ["{0,1}|{2}"]-style rendering of [groups]. *)

val pp_topo : Format.formatter -> topo -> unit
