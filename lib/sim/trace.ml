type ('s, 'm) event =
  | Init
  | Deliver of { src : Pid.t; dst : Pid.t; msg : 'm }
  | Internal of { pid : Pid.t; label : string }
  | Fault of { label : string }
  | Stutter

type ('s, 'm) snapshot = {
  time : int;
  event : ('s, 'm) event;
  states : 's array;
  channels : (Pid.t * Pid.t * 'm list) list Lazy.t;
}

type ('s, 'm) t = ('s, 'm) snapshot list

let channels snap = Lazy.force snap.channels

let map_event : ('s, 'm) event -> ('v, 'm) event = function
  | Init -> Init
  | Deliver { src; dst; msg } -> Deliver { src; dst; msg }
  | Internal { pid; label } -> Internal { pid; label }
  | Fault { label } -> Fault { label }
  | Stutter -> Stutter

let map_states f tr =
  List.map
    (fun snap ->
      { time = snap.time;
        event = map_event snap.event;
        states = Array.map f snap.states;
        channels = snap.channels })
    tr

let map_msgs f tr =
  let map_event : ('s, 'm) event -> ('s, 'p) event = function
    | Init -> Init
    | Deliver { src; dst; msg } -> Deliver { src; dst; msg = f msg }
    | Internal { pid; label } -> Internal { pid; label }
    | Fault { label } -> Fault { label }
    | Stutter -> Stutter
  in
  List.map
    (fun snap ->
      { time = snap.time;
        event = map_event snap.event;
        states = snap.states;
        channels =
          lazy
            (List.map
               (fun (src, dst, ms) -> (src, dst, List.map f ms))
               (Lazy.force snap.channels)) })
    tr

let states_seq tr = List.map (fun snap -> snap.states) tr

let length = List.length

let nth = List.nth

let events tr = List.map (fun snap -> snap.event) tr

let last_fault_index tr =
  let _, found =
    List.fold_left
      (fun (i, found) snap ->
        match snap.event with
        | Fault _ -> (i + 1, Some i)
        | Init | Deliver _ | Internal _ | Stutter -> (i + 1, found))
      (0, None) tr
  in
  found

let rec suffix_from tr i =
  match tr with
  | rest when i <= 0 -> rest
  | [] -> []
  | _ :: rest -> suffix_from rest (i - 1)

let pp_event ~msg ppf = function
  | Init -> Format.fprintf ppf "init"
  | Deliver { src; dst; msg = m } ->
    Format.fprintf ppf "deliver %d->%d %a" src dst msg m
  | Internal { pid; label } -> Format.fprintf ppf "internal %d %s" pid label
  | Fault { label } -> Format.fprintf ppf "fault %s" label
  | Stutter -> Format.fprintf ppf "stutter"
