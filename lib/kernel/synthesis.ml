let needs_correction a ~spec =
  let from_settlements = List.concat (Actsys.bad_settlements a ~spec) in
  let from_deadlocks = Actsys.illegitimate_deadlocks a ~spec in
  List.sort_uniq compare (from_settlements @ from_deadlocks)

let correction_targets ~spec =
  let reach = Tsys.reachable spec ~from:(Tsys.init_states spec) in
  List.filter (fun s -> reach.(s)) (List.init (Tsys.n_states spec) Fun.id)

let synthesize ?(action_name = "correct") ?target a ~spec =
  match correction_targets ~spec, needs_correction a ~spec with
  | [], _ -> None (* nowhere legitimate to escape to *)
  | default :: _, corrected ->
    let target = Option.value target ~default in
    let edges = List.map (fun s -> (s, target)) corrected in
    let w =
      Actsys.create ~n:(Actsys.n_states a)
        ~actions:[ (action_name, edges) ]
        ~init:(Actsys.init_states a) ()
    in
    (* The construction is sound only when the specification's
       initialized part is closed in [a] (faults are modelled as
       initial displacement, not as standing transitions); rather than
       checking the precondition we verify the postcondition. *)
    if Actsys.is_fairly_stabilizing_to (Actsys.box a w) spec then Some w
    else None

let is_minimal a ~spec ~wrapper =
  (* Edge-wise, per action: dropping any one correction edge — from
     whichever action carries it, the others kept intact — must break
     fair stabilization.  A wrapper with no edges at all corrects
     nothing and is vacuously non-minimal. *)
  let actions =
    List.map
      (fun name -> (name, Actsys.transitions wrapper name))
      (Actsys.action_names wrapper)
  in
  List.exists (fun (_, edges) -> edges <> []) actions
  && List.for_all
       (fun (action, edges) ->
         List.for_all
           (fun removed ->
             let reduced =
               Actsys.create ~n:(Actsys.n_states wrapper)
                 ~actions:
                   (List.map
                      (fun (name, edges') ->
                        ( name,
                          if name = action then
                            List.filter (fun e -> e <> removed) edges'
                          else edges' ))
                      actions)
                 ~init:(Actsys.init_states wrapper) ()
             in
             not
               (Actsys.is_fairly_stabilizing_to (Actsys.box a reduced) spec))
           edges)
       actions
