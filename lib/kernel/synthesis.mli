(** Automatic synthesis of stabilization wrappers (the research
    direction the paper closes with: "Another direction we are
    pursuing is automatic synthesis of graybox dependability").

    Given an action system [a] and a specification [spec] (typically
    [to_tsys a]'s legitimate part, but any same-space {!Tsys.t}), the
    synthesizer produces a correction action — a set of edges from
    illegitimate states back into the specification's initialized
    part — such that [a □ W] is stabilizing to [spec] under weak
    fairness ({!Actsys.is_fairly_stabilizing_to}).

    Under the plain path semantics no wrapper can ever help: box is
    union, so every behaviour of [a] survives composition.  Fairness
    is what makes synthesis meaningful — a correction enabled at every
    state of a would-be settlement region must eventually fire.
    Consequently a correction edge is needed at {e every} state of
    every "viable bad settlement" (a strongly connected state set
    that fairness allows and that contains an illegitimate
    transition), and at every illegitimate dead end.  {!needs_correction}
    computes that state set exactly (by subset enumeration — systems
    must be small); {!synthesize} turns it into a wrapper and verifies
    the result. *)

val needs_correction : Actsys.t -> spec:Tsys.t -> int list
(** [needs_correction a ~spec] lists the states at which a correction
    action must be enabled: members of viable bad settlements, and
    illegitimate dead ends.  Empty iff [a] is already fairly
    stabilizing to [spec]. *)

val correction_targets : spec:Tsys.t -> int list
(** [correction_targets ~spec] lists sensible states to correct {e to}:
    the specification's initialized reachable states. *)

val synthesize :
  ?action_name:string -> ?target:int -> Actsys.t -> spec:Tsys.t ->
  Actsys.t option
(** [synthesize ?action_name ?target a ~spec] returns the wrapper
    action system [w] (a single action, default name ["correct"],
    sending every state of {!needs_correction} to [target], default:
    the first correction target), or [None] when the spec has no
    initialized reachable state to escape to.  Postcondition (verified
    before returning, [assert]ed): [Actsys.box a w] is fairly
    stabilizing to [spec]. *)

val is_minimal : Actsys.t -> spec:Tsys.t -> wrapper:Actsys.t -> bool
(** [is_minimal a ~spec ~wrapper] checks that removing any single
    correction edge from [wrapper] — from whichever of its actions
    carries the edge, the others kept intact — breaks fair
    stabilization; a wrapper with no edges at all is vacuously
    non-minimal.  The synthesized wrapper is minimal in this
    edge-wise sense whenever every corrected state lies in some bad
    settlement on its own (which {!needs_correction} guarantees).
    Multi-action wrappers (e.g. one action per corrected region) are
    measured the same way, edge by edge. *)
