(** Bounded exhaustive exploration of a TME protocol: every
    interleaving, not a sampled schedule.

    The simulator runs one (seeded) schedule at a time; qcheck samples
    many; this module enumerates {e all} of them, breadth-first, up to
    a depth bound, with visited-state deduplication.  The client is
    maximally nondeterministic — a thinking process may request at any
    time, an eating process may release at any time — so the explored
    behaviours over-approximate every client the harness can express.

    The checker is built for throughput and scale.  Process states and
    messages are hash-consed to small integer ids (deep hashing paid
    once per {e distinct} value, never per state), a global state is a
    flat int array, successor keys are spliced from the parent's by
    int blits into reusable scratch buffers, and transitions are
    memoized on ids — in steady state a successor costs no allocation
    and no protocol call.  The visited set is {e sharded by hash
    range}: each shard owns a slice of key space with its own probe
    table and key arena, so with [jobs > 1] the admission phase runs
    one domain per shard with no locking.  When the resident key
    arenas outgrow [mem_budget] words they are streamed to per-shard
    temp files ({!Stdext.Blockfile}) and deduplication falls back to
    stored ~125-bit fingerprints — visited capacity is bounded by
    disk, not RAM, and [stats] reports both the resident peak and the
    bytes spilled.  Queue entries carry a compact parent pointer
    instead of a trace (the counterexample path is rebuilt only on
    violation), so per-state memory is O(1) words.  Results —
    including the trace and every [stats] field — are {e identical for
    every [jobs] value and every [shards] value}: parallelism and
    sharding change wall-clock, never the answer.

    [por] enables a conservative partial-order reduction: at states
    that have a {e quiet receiver} — a hungry process with entry
    disabled whose pending deliveries are all silent and
    mode-preserving — only that process's deliveries are explored.
    Sound for mode-level predicates such as ME1 (the skipped
    interleavings are permutations reaching the same states; see
    EXPERIMENTS.md for the ample-set argument), and still
    deterministic across [jobs] and [shards].  It is {e off} by
    default and gated per protocol by the registry's [por_safe] flag:
    negative controls and ablations keep exhaustive semantics.

    Two exploration modes mirror the paper's central distinction
    (Figure 1 / Theorem 1) between [C ⇒ A]init and [C ⇒ A]:

    - {!check_me1} / {!check_invariant} explore from the proper
      initial states — the [init] side;
    - {!check_everywhere} additionally seeds the frontier with a
      bounded enumeration of {e perturbed} states (per-process
      corruptions from {!Graybox.Protocol.S.perturb}, plus arbitrary
      in-flight messages), so an implementation that is only correct
      from initial states is exposed within a handful of steps even
      where the init-mode check at the same depth finds nothing.  The
      test suite demonstrates the discrimination on a mutant
      Ricart–Agrawala and on Lamport's unmodified program. *)



type stats = {
  name : string;  (** the invariant this exploration checked *)
  explored : int;  (** states whose predicate was evaluated *)
  visited : int;  (** distinct states admitted to the visited set *)
  frontier_peak : int;  (** widest BFS level *)
  depth_reached : int;
  truncated : bool;  (** hit the depth or state bound before closure *)
  peak_mem_words : int;
      (** peak resident visited-set words (hot key arenas plus the
          3-word per-state index; probe-table geometry excluded so the
          figure is identical across shard counts) *)
  spill_bytes : int;  (** bytes streamed to spill files, 0 if none *)
}

type 'v result =
  | Ok of stats
      (** no reachable violation within the bounds *)
  | Violation of {
      trace : string list;
      witness : 'v;
      path : 'v list;
      stats : stats;
    }
      (** [trace] is the action-label path from the initial state; in
          everywhere mode its first element names the seeding
          perturbation (["corrupt(p#i)"] or ["inflight(src->dst,m)"]).
          [path] is the state sequence the trace traverses — seed
          state first, violating state last, one entry per action
          label plus one — as data for counterexample-guided callers
          ({!Oracle}, [Synth]); like [trace] it is identical for every
          [jobs] and [shards] value. *)

val check_me1 :
  ?wrapper:Graybox.Wrapper.t ->
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?shards:int ->
  ?max_depth:int -> ?max_states:int -> ?mem_budget:int -> ?spill_dir:string ->
  ?por:bool -> unit -> Graybox.View.t array result
(** [check_me1 proto ~n ()] explores the protocol with [n] processes
    from its initial states under every interleaving of client steps
    and FIFO deliveries, checking mutual exclusion (at most one eater)
    in every reachable state.  Default bounds: [max_depth = 30],
    [max_states = 200_000]; [max_states] is a hard bound on the
    visited set.  [jobs] (default 1) sets the expansion domain count
    and [shards] (default [min jobs 64], max 64) the visited-set shard
    count; every combination returns the same result.  [mem_budget]
    (default unlimited) caps resident visited-key words — beyond it,
    key arenas spill to temp blockfiles under [spill_dir] (default the
    system temp dir; files are removed on exit).  [por] (default
    false) enables the quiet-receiver partial-order reduction; only
    set it for protocols the registry marks [por_safe].

    [wrapper] (all four checks) box-composes a {!Graybox.Wrapper} DSL
    term with the protocol: every process gains a correction action
    that, when the term's guard holds of its view, sends the term's
    messages to the term's targets (state unchanged).  The checker
    abstracts the [W'(δ)] timer to zero — it explores the
    timer-expired interleavings, which contain every behaviour of the
    rate-limited wrapper — and never re-sends a correction that is
    already in flight on the same channel (the state space would
    otherwise be unbounded in the channel dimension).  [wrapper] and
    [por] are mutually exclusive: the ample-set argument ignores
    wrapper moves.
    @raise Invalid_argument when both are supplied. *)

val check_invariant :
  ?wrapper:Graybox.Wrapper.t ->
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?shards:int ->
  ?max_depth:int -> ?max_states:int -> ?mem_budget:int -> ?spill_dir:string ->
  ?por:bool -> name:string -> (Graybox.View.t array -> bool) ->
  Graybox.View.t array result
(** [check_invariant proto ~n ~name p] checks an arbitrary view-level
    state predicate the same way.  [p] must be pure — with [jobs > 1]
    it runs on several domains at once — and must not retain its
    argument array, which is reused between states (the [witness] of a
    {!Violation} is a private copy).  [name] is echoed in [stats.name]
    so reports can say which invariant failed.  With [~por:true] the
    predicate must additionally depend on the views' {e modes} only
    (as ME1 does): the reduction treats mode-preserving deliveries as
    invisible. *)

val check_me1_everywhere :
  ?wrapper:Graybox.Wrapper.t -> ?inflight:bool ->
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?shards:int ->
  ?max_depth:int -> ?max_states:int -> ?mem_budget:int -> ?spill_dir:string ->
  ?por:bool -> ?max_seeds:int -> unit -> Graybox.View.t array result
(** Like {!check_me1}, but the frontier is seeded with perturbed
    states — every {!Graybox.Protocol.S.perturb} corruption of every
    process, plus (unless [~inflight:false]) single arbitrary
    in-flight messages on every channel — capped at [max_seeds]
    (default 256) seeds beyond the initial state.  This is the paper's
    everywhere-exploration: a protocol that merely implements the spec
    from Init generally fails it. *)

val check_everywhere :
  ?wrapper:Graybox.Wrapper.t -> ?inflight:bool ->
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?shards:int ->
  ?max_depth:int -> ?max_states:int -> ?mem_budget:int -> ?spill_dir:string ->
  ?por:bool -> ?max_seeds:int -> name:string ->
  (Graybox.View.t array -> bool) -> Graybox.View.t array result
(** Everywhere-mode {!check_invariant}. *)

val replay :
  ?wrapper:Graybox.Wrapper.t ->
  (module Graybox.Protocol.S) -> n:int -> string list ->
  Graybox.View.t array option
(** [replay proto ~n trace] re-executes an init-mode counterexample
    trace (the labels of a {!Violation}) from the initial state and
    returns the views it ends in, or [None] if some label does not
    name an enabled transition — the independent check that a reported
    trace really is an execution.  Everywhere-mode traces start from a
    perturbed seed and cannot be replayed from Init.  [wrapper] makes
    the composed wrapper's [wrap(p)] labels replayable. *)

(** The model-checking oracle behind wrapper synthesis ([Synth]): one
    reusable answer to "is this candidate term a wrapper for P?",
    returned as data.  {!check} runs two legs:

    - {e safety}: everywhere-mode ME1 of the wrapped system over the
      state-corruption seed closure (in-flight-message seeds are
      excluded — a forged reply delivered in one step defeats any
      view-reading wrapper at this abstraction; message faults remain
      covered by the chaos campaign's statistical gates);
    - {e recovery}: from every §4 wedge seed (requests lost in flight;
      the all-lost wedge has {e no} enabled transition without a
      wrapper), the system must reach the CS again — from each
      singleton wedge(p), process [p] itself; from the all-lost wedge,
      {e some} process (enough to break the deadlock: candidates are
      pid-symmetric, and demanding the lowest-priority process would
      push the bounded search through every full CS rotation).

    Verdicts, counterexample traces and paths are identical for every
    [jobs] and [shards] value, so a synthesis transcript built on this
    oracle is deterministic by construction. *)
module Oracle : sig
  type obligation =
    | Safety  (** the candidate let ME1 break *)
    | Recovery of int
        (** process [p] could not reach the CS from its wedge(p) seed *)
    | Progress
        (** no process could reach the CS from the all-lost wedge *)

  type cex = {
    obligation : obligation;
    seed : string;  (** seeding perturbation (or wedge) label *)
    trace : string list;  (** action labels; empty for recovery *)
    path : Graybox.View.t array list;
        (** states along the trace (for recovery: the wedge state the
            candidate failed to leave) *)
    fired : (int * Graybox.View.t) list;
        (** the candidate's firings along the trace — (process, its
            view at the firing) — the states the counterexample blames
            on the candidate *)
    stats : stats list;
        (** exploration stats of every run up to and including the
            refuting one, so callers can account oracle work on
            refuted candidates too *)
  }

  type verdict =
    | Safe of stats list  (** both legs passed; one stats per run *)
    | Cex of cex

  val obligation_label : obligation -> string
  (** ["safety"], ["recovery(p)"], ["progress"]. *)

  val check :
    (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?shards:int ->
    ?safety_depth:int -> ?recovery_depth:int -> ?max_states:int ->
    ?mem_budget:int -> ?spill_dir:string -> ?max_seeds:int ->
    Graybox.Wrapper.t -> verdict
  (** [check proto ~n candidate] certifies or refutes one candidate.
      Defaults: [safety_depth = 8], [recovery_depth = 14],
      [max_states = 200_000].  [jobs]/[shards]/[mem_budget] tune the
      underlying explorations without changing any verdict. *)
end
