(** Bounded exhaustive exploration of a TME protocol: every
    interleaving, not a sampled schedule.

    The simulator runs one (seeded) schedule at a time; qcheck samples
    many; this module enumerates {e all} of them, breadth-first, up to
    a depth bound, with visited-state deduplication.  The client is
    maximally nondeterministic — a thinking process may request at any
    time, an eating process may release at any time — so the explored
    behaviours over-approximate every client the harness can express.

    The checker is built for throughput.  Process states and messages
    are hash-consed to small integer ids (deep hashing paid once per
    {e distinct} value, never per state), a global state is a flat int
    array probed against an arena-backed visited set in a single pass,
    successor keys are spliced from the parent's by int blits into
    reusable scratch buffers, and transitions are memoized on ids — in
    steady state a successor costs no allocation and no protocol call.
    Queue entries carry a compact parent pointer instead of a trace
    (the counterexample path is rebuilt only on violation), so
    per-state memory is O(1), and each BFS level's expansion can fan
    out over a domain pool.  Results — including [stats] — are
    {e identical for every [jobs] value}: parallelism changes
    wall-clock, never the answer.

    Two exploration modes mirror the paper's central distinction
    (Figure 1 / Theorem 1) between [C ⇒ A]init and [C ⇒ A]:

    - {!check_me1} / {!check_invariant} explore from the proper
      initial states — the [init] side;
    - {!check_everywhere} additionally seeds the frontier with a
      bounded enumeration of {e perturbed} states (per-process
      corruptions from {!Graybox.Protocol.S.perturb}, plus arbitrary
      in-flight messages), so an implementation that is only correct
      from initial states is exposed within a handful of steps even
      where the init-mode check at the same depth finds nothing.  The
      test suite demonstrates the discrimination on a mutant
      Ricart–Agrawala and on Lamport's unmodified program. *)



type stats = {
  name : string;  (** the invariant this exploration checked *)
  explored : int;  (** states whose predicate was evaluated *)
  visited : int;  (** distinct states admitted to the visited set *)
  frontier_peak : int;  (** widest BFS level *)
  depth_reached : int;
  truncated : bool;  (** hit the depth or state bound before closure *)
}

type 'v result =
  | Ok of stats
      (** no reachable violation within the bounds *)
  | Violation of { trace : string list; witness : 'v; stats : stats }
      (** [trace] is the action-label path from the initial state; in
          everywhere mode its first element names the seeding
          perturbation (["corrupt(p#i)"] or ["inflight(src->dst,m)"]) *)

val check_me1 :
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?max_depth:int ->
  ?max_states:int -> unit -> Graybox.View.t array result
(** [check_me1 proto ~n ()] explores the protocol with [n] processes
    from its initial states under every interleaving of client steps
    and FIFO deliveries, checking mutual exclusion (at most one eater)
    in every reachable state.  Default bounds: [max_depth = 30],
    [max_states = 200_000]; [max_states] is a hard bound on the
    visited set.  [jobs] (default 1) sets the expansion domain count;
    every value returns the same result. *)

val check_invariant :
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?max_depth:int ->
  ?max_states:int -> name:string -> (Graybox.View.t array -> bool) ->
  Graybox.View.t array result
(** [check_invariant proto ~n ~name p] checks an arbitrary view-level
    state predicate the same way.  [p] must be pure — with [jobs > 1]
    it runs on several domains at once — and must not retain its
    argument array, which is reused between states (the [witness] of a
    {!Violation} is a private copy).  [name] is echoed in [stats.name]
    so reports can say which invariant failed. *)

val check_me1_everywhere :
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?max_depth:int ->
  ?max_states:int -> ?max_seeds:int -> unit -> Graybox.View.t array result
(** Like {!check_me1}, but the frontier is seeded with perturbed
    states — every {!Graybox.Protocol.S.perturb} corruption of every
    process, plus single arbitrary in-flight messages on every channel
    — capped at [max_seeds] (default 256) seeds beyond the initial
    state.  This is the paper's everywhere-exploration: a protocol
    that merely implements the spec from Init generally fails it. *)

val check_everywhere :
  (module Graybox.Protocol.S) -> n:int -> ?jobs:int -> ?max_depth:int ->
  ?max_states:int -> ?max_seeds:int -> name:string ->
  (Graybox.View.t array -> bool) -> Graybox.View.t array result
(** Everywhere-mode {!check_invariant}. *)

val replay :
  (module Graybox.Protocol.S) -> n:int -> string list ->
  Graybox.View.t array option
(** [replay proto ~n trace] re-executes an init-mode counterexample
    trace (the labels of a {!Violation}) from the initial state and
    returns the views it ends in, or [None] if some label does not
    name an enabled transition — the independent check that a reported
    trace really is an execution.  Everywhere-mode traces start from a
    perturbed seed and cannot be replayed from Init. *)
